"""repro: Active Learning of Abstract System Models from Traces using Model Checking.

Reproduction of Jeppu, Melham & Kroening, DATE 2022 (arXiv:2112.05990).

The package is organised bottom-up:

* :mod:`repro.expr`     -- typed expression IR (guards, relations, predicates)
* :mod:`repro.sat`      -- CDCL SAT solver and Tseitin gates
* :mod:`repro.smt`      -- bit-blaster and SMT-style facade
* :mod:`repro.system`   -- the formal system model S = (X, X', R, Init)
* :mod:`repro.mc`       -- BMC / k-induction / explicit-state model checking
* :mod:`repro.traces`   -- traces, trace sets, random-input generation
* :mod:`repro.automata` -- symbolic NFAs with predicate-labelled edges
* :mod:`repro.learn`    -- pluggable model-learning components (T2M-style &c.)
* :mod:`repro.core`     -- the paper's active-learning algorithm
* :mod:`repro.stateflow`-- Stateflow-like chart DSL, flattener, code generator
* :mod:`repro.bdd`      -- ROBDD manager (symbolic reachability back-end)
* :mod:`repro.evaluation`-- Table I runners incl. the random-sampling baseline
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
