"""Observability facade: re-exports of :mod:`repro.core.telemetry`.

``from repro import obs`` is the short spelling for scripts and
notebooks; the implementation (and the import-cycle rules that keep it
stdlib-only) lives in :mod:`repro.core.telemetry`.  See
``docs/observability.md`` for the naming scheme and export format.
"""

from .core.telemetry import (
    NOOP_SPAN,
    MetricsRegistry,
    Span,
    TelemetrySession,
    Tracer,
    active,
    deterministic_view,
    enabled,
    export_jsonl,
    merge_into,
    metrics,
    read_events,
    render_profile,
    session,
    snapshot_delta,
    span,
    start,
    stop,
)

__all__ = [
    "NOOP_SPAN",
    "MetricsRegistry",
    "Span",
    "TelemetrySession",
    "Tracer",
    "active",
    "deterministic_view",
    "enabled",
    "export_jsonl",
    "merge_into",
    "metrics",
    "read_events",
    "render_profile",
    "session",
    "snapshot_delta",
    "span",
    "start",
    "stop",
]
