"""The paper's contribution: active learning of abstract system models.

Condition extraction (§III-A), the completeness oracle with spuriousness
handling (§III-B/C), counterexample-to-trace refinement, the main loop,
metrics, and invariant extraction (§VI) — plus the unified telemetry
layer (:mod:`repro.core.telemetry`: spans, metrics registry,
deterministic JSONL export; see ``docs/observability.md``).
"""

from .coverage import (
    CoverageHole,
    CoverageReport,
    HoleClosingResult,
    close_holes,
    evaluate_suite,
)
from .crosscheck import CrossCheckReport, InvariantViolation, cross_check
from .conditions import (
    Condition,
    ConditionKind,
    extract_conditions,
    outgoing_disjunction,
)
from .invariants import (
    Invariant,
    extract_invariants,
    render_invariants,
    validate_invariants,
)
from .loop import ActiveLearner, ActiveLearningResult, IterationRecord
from .metrics import (
    BaselineRow,
    TableRow,
    format_baseline_table,
    format_table,
)
from .oracle import CompletenessOracle, ConditionOutcome, OracleReport
from .parallel import (
    OracleSpec,
    ParallelCompletenessOracle,
    SystemSpec,
    make_oracle,
)
from . import telemetry
from .pool import BatchRun, PersistentWorkerPool, PoolWorker
from .telemetry import MetricsRegistry, Span, TelemetrySession, Tracer
from .refine import (
    AugmentResult,
    augment_traces,
    counterexample_traces,
    splice_counterexample,
)

__all__ = [
    "ActiveLearner",
    "AugmentResult",
    "ActiveLearningResult",
    "BaselineRow",
    "CompletenessOracle",
    "CoverageHole",
    "CoverageReport",
    "CrossCheckReport",
    "HoleClosingResult",
    "InvariantViolation",
    "MetricsRegistry",
    "Span",
    "TelemetrySession",
    "Tracer",
    "Condition",
    "ConditionKind",
    "ConditionOutcome",
    "Invariant",
    "IterationRecord",
    "BatchRun",
    "OracleReport",
    "OracleSpec",
    "ParallelCompletenessOracle",
    "PersistentWorkerPool",
    "PoolWorker",
    "SystemSpec",
    "TableRow",
    "make_oracle",
    "telemetry",
    "augment_traces",
    "close_holes",
    "cross_check",
    "counterexample_traces",
    "extract_conditions",
    "evaluate_suite",
    "extract_invariants",
    "format_baseline_table",
    "format_table",
    "outgoing_disjunction",
    "render_invariants",
    "splice_counterexample",
    "validate_invariants",
]
