"""Persistent worker pools: generic deterministic process fan-out.

Extracted from the parallel completeness oracle (PR 2) so other
embarrassingly-parallel stages — per-segment learning, future portfolio
racing — share one battle-tested pool instead of re-implementing
process lifecycle, stale-reply filtering and crash recovery.

The pool runs *batches of indexed items* on long-lived worker
processes and streams results back one item at a time:

* parent → worker: ``("check", generation, [(index, item), ...],
  deadline | None)`` or ``("stop",)``;
* worker → parent: one ``("one", generation, index, result)`` per item,
  then ``("done", generation, snapshot | None)`` per batch, where
  ``snapshot`` is the worker's metrics delta for the batch when the
  spec carries a true ``telemetry`` attribute (the worker then runs a
  metrics-only telemetry session; see :mod:`repro.core.telemetry`).
  The parent folds the per-slot snapshots into the active session in
  **slot order** — never completion order — so fleet totals are
  deterministic run to run.

Streaming per item is what lets the parent recover precisely when a
worker dies mid-batch; the echoed generation lets it discard stale
replies if an earlier call was abandoned mid-collection (e.g. by
KeyboardInterrupt) with results still in flight.

A pool is built from a picklable *spec* — any object with a
``make_runner(worker_index)`` method returning the per-item callable
``runner(item, deadline) -> (result, stop_after)`` (``stop_after=True``
ends the batch early, e.g. a truncated outcome).  The spec travels to
the worker by pickle under any start method; ``"spawn"`` is the
default.  An optional ``fault`` attribute ``(worker_index,
results_before_exit)`` on the spec injects a hard crash for tests,
exactly where a real crash is hardest to handle: after computing a
result, before sending it.

Determinism is the caller's contract, not the pool's: the pool
guarantees only that every dispatched item either yields its worker's
result or is reported back for retry (``BatchRun.retry``) — never
silently dropped — and that results are keyed by the caller's indices.
Callers get bit-for-bit reproducible output by making each item's
result history-independent (canonical counterexamples, deterministic
learners) and merging by index.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from multiprocessing.connection import Connection, wait
from typing import Any, Protocol, runtime_checkable

from . import telemetry

#: Per-item worker callable: (item, deadline) -> (result, stop_after).
ItemRunner = Callable[[Any, float | None], tuple[Any, bool]]


@runtime_checkable
class WorkerSpec(Protocol):
    """Picklable recipe a worker rebuilds its per-item runner from."""

    def make_runner(self, worker_index: int) -> ItemRunner: ...


def _pool_worker_main(spec: WorkerSpec, worker_index: int, conn: Connection) -> None:
    """Worker loop: rebuild the runner from the spec, then serve batches."""
    session = None
    last_snapshot = None
    if getattr(spec, "telemetry", False):
        # Metrics-only: spans are dropped (a long-lived worker would
        # otherwise accumulate them without bound and they never ship).
        session = telemetry.start(record_spans=False)
        last_snapshot = session.metrics.snapshot()
    runner = spec.make_runner(worker_index)
    fault = getattr(spec, "fault", None)
    sent = 0
    while True:
        try:
            message = conn.recv()
        except (EOFError, KeyboardInterrupt):
            break
        if message[0] == "stop":
            break
        _tag, generation, batch, deadline = message
        for index, item in batch:
            if deadline is not None and time.monotonic() > deadline:
                break
            result, stop_after = runner(item, deadline)
            if fault is not None and fault[0] == worker_index:
                if sent >= fault[1]:
                    os._exit(1)
            conn.send(("one", generation, index, result))
            sent += 1
            if stop_after:
                break
        if session is None:
            conn.send(("done", generation, None))
        else:
            snapshot = session.metrics.snapshot()
            conn.send(
                ("done", generation,
                 telemetry.snapshot_delta(snapshot, last_snapshot))
            )
            last_snapshot = snapshot
    conn.close()


@dataclass
class PoolWorker:
    process: multiprocessing.Process
    conn: Connection

    def alive(self) -> bool:
        return self.process.is_alive()


@dataclass
class BatchRun:
    """Outcome of one :meth:`PersistentWorkerPool.run_batches` call."""

    #: index -> result, for every item some worker finished.
    results: dict[int, Any] = field(default_factory=dict)
    #: index -> item, for items lost to dead workers (caller retries).
    retry: dict[int, Any] = field(default_factory=dict)
    #: how many workers died or refused dispatch during this run.
    failures: int = 0
    #: slot -> metrics snapshot delta, for telemetry-enabled workers.
    snapshots: dict[int, dict[str, Any]] = field(default_factory=dict)


class PersistentWorkerPool:
    """Long-lived worker processes serving indexed batches.

    Workers are spawned lazily per slot on first dispatch and live
    until :meth:`close` (they are daemonic, so a forgotten close can
    never hang interpreter exit).  Dead workers are respawned on the
    next dispatch; their unfinished items come back in
    :attr:`BatchRun.retry`.
    """

    def __init__(
        self,
        spec: WorkerSpec,
        jobs: int,
        *,
        start_method: str = "spawn",
        name: str = "pool",
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.spec = spec
        self.jobs = jobs
        self.name = name
        self._ctx = multiprocessing.get_context(start_method)
        self._workers: list[PoolWorker | None] = [None] * jobs
        self._generation = 0  # batch tag; see module docstring protocol
        self._abandoned = False  # a run_batches exited abnormally
        self._closed = False

    # -- lifecycle -----------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Shut down all worker processes."""
        self._closed = True
        for slot, worker in enumerate(self._workers):
            if worker is None:
                continue
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2.0)
            worker.conn.close()
            self._workers[slot] = None

    def reset(self) -> None:
        """Kill every worker; the next dispatch spawns a fresh pool.

        Used after a run exits abnormally: an abandoned batch can leave
        a worker blocked mid-``send`` on a full result pipe, and
        dispatching to it again could deadlock.  Workers hold no state
        that cannot be rebuilt from the spec.
        """
        for slot, worker in enumerate(self._workers):
            if worker is None:
                continue
            worker.process.terminate()
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=2.0)
            worker.conn.close()
            self._workers[slot] = None
        self._abandoned = False

    def __enter__(self) -> "PersistentWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort; daemon workers die anyway
        try:
            self.close()
        except Exception:
            pass

    def ensure_worker(self, slot: int) -> PoolWorker:
        """The live worker for a slot, (re)spawning it if needed."""
        worker = self._workers[slot]
        if worker is not None and worker.alive():
            return worker
        if worker is not None:
            worker.conn.close()
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_pool_worker_main,
            args=(self.spec, slot, child_conn),
            daemon=True,
            name=f"{self.name}-{slot}",
        )
        process.start()
        child_conn.close()
        worker = PoolWorker(process=process, conn=parent_conn)
        self._workers[slot] = worker
        return worker

    # -- dispatch ------------------------------------------------------
    def run_batches(
        self,
        batches: Sequence[Sequence[tuple[int, Any]]],
        deadline: float | None = None,
    ) -> BatchRun:
        """Run one pre-sharded batch per worker slot; stream results.

        ``batches[slot]`` is the (index, item) list for that slot (empty
        lists skip the slot).  Blocks until every dispatched batch is
        done or its worker is dead.  Items a dead worker never finished
        come back in :attr:`BatchRun.retry`; nothing is retried
        in-pool, so the caller decides the fallback path.
        """
        if self._closed:
            raise RuntimeError(f"worker pool {self.name!r} is closed")
        if self._abandoned:
            # The previous call exited abnormally with batches possibly
            # still in flight; a worker blocked on a full result pipe
            # would deadlock a fresh dispatch, so start clean.
            # (Generation tags already guard plain stale messages.)
            self.reset()
        try:
            return self._run_batches(batches, deadline)
        except BaseException:
            self._abandoned = True
            raise

    def _run_batches(
        self,
        batches: Sequence[Sequence[tuple[int, Any]]],
        deadline: float | None,
    ) -> BatchRun:
        started = time.monotonic()
        run = BatchRun()
        pending: dict[int, dict[int, Any]] = {}
        active: dict[int, PoolWorker] = {}
        self._generation += 1
        generation = self._generation

        for slot, batch in enumerate(batches):
            if not batch:
                continue
            worker = self.ensure_worker(slot)
            try:
                worker.conn.send(("check", generation, list(batch), deadline))
            except (BrokenPipeError, OSError):
                run.failures += 1
                run.retry.update(dict(batch))
                continue
            pending[slot] = dict(batch)
            active[slot] = worker

        def drain(worker: PoolWorker, slot: int) -> str:
            """Consume buffered replies; 'done', 'dead' or 'idle'.

            Replies from an earlier generation (a run abandoned
            mid-collection) are discarded rather than misattributed to
            this batch's indices.
            """
            while worker.conn.poll(0):
                try:
                    message = worker.conn.recv()
                except (EOFError, OSError):
                    return "dead"
                if message[1] != generation:
                    continue
                if message[0] == "one":
                    _tag, _gen, index, result = message
                    run.results[index] = result
                    pending[slot].pop(index, None)
                elif message[0] == "done":
                    if message[2] is not None:
                        run.snapshots[slot] = message[2]
                    return "done"
            return "idle"

        while pending:
            by_conn = {active[s].conn: s for s in pending}
            by_sentinel = {active[s].process.sentinel: s for s in pending}
            ready = wait(list(by_conn) + list(by_sentinel))
            touched = {by_conn.get(obj, by_sentinel.get(obj)) for obj in ready}
            for slot in touched:
                if slot not in pending:
                    continue
                worker = active[slot]
                state = drain(worker, slot)
                if state == "idle" and not worker.process.is_alive():
                    # The drain may have raced the exit; anything still
                    # buffered in the pipe is readable after death.
                    state = drain(worker, slot)
                    if state == "idle":
                        state = "dead"
                if state == "done":
                    pending.pop(slot)
                elif state == "dead":
                    run.failures += 1
                    run.retry.update(pending.pop(slot))

        session = telemetry.active()
        if session is not None:
            # Slot order, not completion order: float sums are
            # order-dependent, and this is what makes repeated --jobs N
            # runs report byte-identical fleet totals.
            for slot in sorted(run.snapshots):
                session.absorb(run.snapshots[slot])
            registry = session.metrics
            registry.inc("pool.batches")
            registry.inc("pool.items", len(run.results))
            if run.failures:
                registry.inc("pool.worker_failures", run.failures)
            registry.observe(
                "pool.batch_seconds", time.monotonic() - started
            )
        return run
