"""Extraction of completeness conditions from a candidate abstraction.

Implements §III-A of the paper.  Given a candidate NFA ``M`` the
completeness hypothesis -- *every system transition has a counterpart in
M* -- is encoded as one condition per proof obligation:

* **Condition (1)**, for the initial automaton states: from any initial
  system state, the first observation satisfies some outgoing predicate
  of an initial state.

* **Condition (2)**, for every state ``q_j`` and every distinct predicate
  ``p_i`` on its incoming transitions: if an observation satisfies
  ``p_i`` and the system takes a transition, the next observation
  satisfies some outgoing predicate of ``q_j``.

The fraction of conditions that hold is the paper's degree of
completeness ``α``; when all hold, Theorem 1 gives
``Traces_X(S) ⊆ L(M)`` and the conditions are implementation invariants.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..automata.nfa import SymbolicNFA
from ..expr.ast import Expr, lor
from ..expr.simplify import simplify


class ConditionKind(Enum):
    INIT = "init"   # condition (1)
    STEP = "step"   # condition (2)


@dataclass(frozen=True)
class Condition:
    """One extracted proof obligation.

    ``assumption`` is ``p_i`` for condition (2); for condition (1) it is
    ``None`` and the checker substitutes the system's ``Init``.
    ``conclusion`` is the disjunction of outgoing predicates.
    """

    kind: ConditionKind
    state: int
    state_name: str
    assumption: Expr | None
    conclusion: Expr

    def describe(self) -> str:
        from ..expr.printer import to_str

        if self.kind is ConditionKind.INIT:
            return (
                f"(1) Init ∧ R ⟹ outgoing({self.state_name}): "
                f"{to_str(self.conclusion, style='paper')}"
            )
        return (
            f"(2) {to_str(self.assumption, style='paper')} ∧ R ⟹ "
            f"outgoing({self.state_name}): "
            f"{to_str(self.conclusion, style='paper')}"
        )


def outgoing_disjunction(nfa: SymbolicNFA, state: int) -> Expr:
    """``⋁ p_o`` over the outgoing predicates of ``state``.

    A state without outgoing transitions yields ``false``: the condition
    then demands that no system transition leaves a matching observation,
    which a counterexample will refute, growing the model -- exactly the
    refinement behaviour the paper describes for dead-end states.
    """
    return simplify(lor(*(t.guard for t in nfa.outgoing(state))))


def extract_conditions(nfa: SymbolicNFA) -> list[Condition]:
    """All completeness conditions of the candidate abstraction."""
    conditions: list[Condition] = []
    for state in sorted(nfa.initial_states):
        conditions.append(
            Condition(
                kind=ConditionKind.INIT,
                state=state,
                state_name=nfa.state_name(state),
                assumption=None,
                conclusion=outgoing_disjunction(nfa, state),
            )
        )
    for state in nfa.states:
        # P(j,in) is a *set* of predicates; guards are interned, so the
        # dedup is an identity-set probe instead of a structural scan.
        seen: set[Expr] = set()
        for transition in nfa.incoming(state):
            predicate = transition.guard
            if predicate in seen:
                continue
            seen.add(predicate)
            conditions.append(
                Condition(
                    kind=ConditionKind.STEP,
                    state=state,
                    state_name=nfa.state_name(state),
                    assumption=predicate,
                    conclusion=outgoing_disjunction(nfa, state),
                )
            )
    return conditions
