"""Unified instrumentation: span tracing, metrics, deterministic export.

This module is the single home for the repo's observability layer
(``docs/observability.md``):

* a **hierarchical span tracer** — ``with span("oracle.check", k=3):``
  records wall time (``perf_counter``) with parent/child attribution on
  a process-local current-span stack;
* a **metrics registry** — named counters, gauges, and power-of-two
  histograms with a ``snapshot()``/``snapshot_delta()`` protocol so
  worker processes can ship per-batch deltas to the parent;
* **deterministic JSONL export** — ``export_jsonl`` writes spans plus
  the final snapshot as JSON events with stable field order; wall-clock
  time is isolated to the single optional ``ts`` field and measured
  durations to the ``t`` field, so ``deterministic_view`` of a run is
  byte-for-byte reproducible.  Every event also carries the
  ``trace``/``obs`` keys the streaming trace readers
  (:func:`repro.traces.io.iter_jsonl`) expect, so a telemetry log is
  itself a checkable trace.

Design constraints, in force because every engine layer imports this
module:

* **stdlib only** — importing :mod:`repro.core.telemetry` must never
  pull in another ``repro`` module, or the engine layers (``sat``,
  ``smt``, ``bdd``) could not use it without import cycles.  Modules
  *outside* ``repro.core`` must import it lazily (inside a function):
  a module-level ``from ..core import telemetry`` in e.g.
  ``sat/solver.py`` would execute ``repro.core.__init__`` while
  ``sat.solver`` is still half-initialised and break
  ``from ..sat.solver import Solver`` further down the chain.
* **disabled means free** — when no session is active, :func:`span`
  returns a shared no-op singleton (zero allocations) and
  :func:`active` returns ``None`` after one global read, so
  instrumented hot paths cost a single ``is None`` test.
"""

from __future__ import annotations

import json
import math
from time import perf_counter
from typing import Any, Iterable, Iterator, TextIO

__all__ = [
    "NOOP_SPAN",
    "MetricsRegistry",
    "Span",
    "TelemetrySession",
    "Tracer",
    "active",
    "deterministic_view",
    "enabled",
    "export_jsonl",
    "merge_into",
    "metrics",
    "read_events",
    "render_profile",
    "session",
    "snapshot_delta",
    "span",
    "start",
    "stop",
]


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------


class Span:
    """One timed region.  Use as a context manager via :meth:`Tracer.span`.

    ``start``/``end`` are ``perf_counter`` stamps; children are attached
    in entry order, so sibling order in the export is deterministic.
    """

    __slots__ = ("name", "attrs", "parent", "children", "start", "end", "_tracer")

    def __init__(self, name: str, attrs: dict[str, Any], tracer: "Tracer") -> None:
        self.name = name
        self.attrs = attrs
        self.parent: Span | None = None
        self.children: list[Span] = []
        self.start = 0.0
        self.end = 0.0
        self._tracer = tracer

    def set(self, **attrs: Any) -> "Span":
        """Attach/overwrite attributes (chainable, usable mid-span)."""
        self.attrs.update(attrs)
        return self

    @property
    def total_seconds(self) -> float:
        return self.end - self.start

    @property
    def self_seconds(self) -> float:
        """Total time minus time attributed to direct children."""
        return self.total_seconds - sum(c.total_seconds for c in self.children)

    @property
    def depth(self) -> int:
        d = 0
        node = self.parent
        while node is not None:
            d += 1
            node = node.parent
        return d

    def __enter__(self) -> "Span":
        tracer = self._tracer
        stack = tracer._stack
        if stack:
            self.parent = stack[-1]
            self.parent.children.append(self)
        else:
            tracer.roots.append(self)
        stack.append(self)
        self.start = perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.end = perf_counter()
        self._tracer._stack.pop()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, total={self.total_seconds:.6f})"


class _NoopSpan:
    """Shared do-nothing span returned by :func:`span` when disabled.

    A single module-level instance (:data:`NOOP_SPAN`) is reused for
    every call so the disabled path allocates nothing.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    @property
    def total_seconds(self) -> float:
        return 0.0

    @property
    def self_seconds(self) -> float:
        return 0.0


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Process-local span stack plus the forest of completed roots."""

    __slots__ = ("roots", "_stack")

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def span(self, name: str, **attrs: Any) -> Span:
        return Span(name, attrs, self)

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    def iter_spans(self) -> Iterator[Span]:
        """All recorded spans, preorder, roots in entry order."""
        pending = list(reversed(self.roots))
        while pending:
            node = pending.pop()
            yield node
            pending.extend(reversed(node.children))


class _NullTracer(Tracer):
    """Tracer that records nothing — used by metrics-only worker sessions
    so long-lived pool workers cannot accumulate spans without bound."""

    __slots__ = ()

    def span(self, name: str, **attrs: Any) -> Any:
        return NOOP_SPAN


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


def _bucket(value: float) -> int:
    """Power-of-two histogram bucket: the binary exponent of ``value``.

    ``value`` lands in bucket ``e`` iff ``2**(e-1) <= value < 2**e``
    (and non-positive values in a floor bucket), which keeps bucketing
    exact and platform-independent for both sub-second latencies and
    large integer sizes.
    """
    if value <= 0.0:
        return -1075  # below the smallest positive double
    return math.frexp(value)[1]


class _Histogram:
    __slots__ = ("count", "sum", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        b = _bucket(value)
        self.buckets[b] = self.buckets.get(b, 0) + 1

    def as_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "buckets": [[e, self.buckets[e]] for e in sorted(self.buckets)],
        }


class MetricsRegistry:
    """Named counters, gauges, and histograms.

    Naming scheme (checked by the contract linter, code C006): dotted
    lowercase ``component.metric`` — e.g. ``sat.conflicts``,
    ``bdd.cache.ite_hits``, ``pool.batch_seconds``.

    * counters (:meth:`inc`) merge by summation;
    * gauges (:meth:`gauge` / :meth:`gauge_max`) merge by maximum —
      they describe peaks (frames, live nodes), where the fleet-wide
      peak is the max over processes;
    * histograms (:meth:`observe`) merge bucket-wise.
    """

    __slots__ = ("_counters", "_gauges", "_hists")

    def __init__(self) -> None:
        self._counters: dict[str, int | float] = {}
        self._gauges: dict[str, int | float] = {}
        self._hists: dict[str, _Histogram] = {}

    # -- recording ----------------------------------------------------

    def inc(self, name: str, amount: int | float = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: int | float) -> None:
        self._gauges[name] = value

    def gauge_max(self, name: str, value: int | float) -> None:
        prev = self._gauges.get(name)
        if prev is None or value > prev:
            self._gauges[name] = value

    def observe(self, name: str, value: int | float) -> None:
        hist = self._hists.get(name)
        if hist is None:
            hist = self._hists[name] = _Histogram()
        hist.observe(value)

    def counter(self, name: str) -> int | float:
        return self._counters.get(name, 0)

    # -- snapshot protocol --------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Plain-JSON state with deterministically sorted keys."""
        return {
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
            "histograms": {
                k: self._hists[k].as_dict() for k in sorted(self._hists)
            },
        }

    def delta(self, prev: dict[str, Any]) -> dict[str, Any]:
        """Snapshot of what changed since ``prev`` (a prior snapshot)."""
        return snapshot_delta(self.snapshot(), prev)


_EMPTY_SNAPSHOT: dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}


def snapshot_delta(current: dict[str, Any], prev: dict[str, Any]) -> dict[str, Any]:
    """``current - prev`` for counters/histograms; gauges keep current.

    Workers ship these per-batch deltas so the parent can merge them
    into fleet totals without double counting across generations.
    """
    counters = {}
    for name in sorted(current["counters"]):
        diff = current["counters"][name] - prev["counters"].get(name, 0)
        if diff:
            counters[name] = diff
    gauges = dict(current["gauges"])
    hists = {}
    for name in sorted(current["histograms"]):
        cur = current["histograms"][name]
        old = prev["histograms"].get(name)
        if old is None:
            if cur["count"]:
                hists[name] = cur
            continue
        count = cur["count"] - old["count"]
        if not count:
            continue
        old_buckets = dict(old["buckets"])
        buckets = []
        for exp, n in cur["buckets"]:
            d = n - old_buckets.get(exp, 0)
            if d:
                buckets.append([exp, d])
        hists[name] = {
            "count": count,
            "sum": cur["sum"] - old["sum"],
            # min/max of the delta window are unknowable from totals;
            # keep the cumulative extrema (still valid bounds).
            "min": cur["min"],
            "max": cur["max"],
            "buckets": buckets,
        }
    return {"counters": counters, "gauges": gauges, "histograms": hists}


def merge_into(registry: MetricsRegistry, snapshot: dict[str, Any]) -> None:
    """Fold a snapshot (or delta) into ``registry``.

    Counters add, gauges max-merge, histogram buckets add.  Keys are
    iterated sorted, so for a fixed multiset of snapshots applied in a
    fixed order the result is deterministic; callers that merge worker
    snapshots do so in **slot order** (not completion order) so float
    sums are order-independent across runs.
    """
    for name in sorted(snapshot.get("counters", ())):
        registry.inc(name, snapshot["counters"][name])
    for name in sorted(snapshot.get("gauges", ())):
        registry.gauge_max(name, snapshot["gauges"][name])
    for name in sorted(snapshot.get("histograms", ())):
        data = snapshot["histograms"][name]
        if not data["count"]:
            continue
        hist = registry._hists.get(name)
        if hist is None:
            hist = registry._hists[name] = _Histogram()
        hist.count += data["count"]
        hist.sum += data["sum"]
        if data["min"] < hist.min:
            hist.min = data["min"]
        if data["max"] > hist.max:
            hist.max = data["max"]
        for exp, n in data["buckets"]:
            hist.buckets[exp] = hist.buckets.get(exp, 0) + n


# ---------------------------------------------------------------------------
# Session management
# ---------------------------------------------------------------------------


class TelemetrySession:
    """One enabled telemetry scope: a tracer plus a metrics registry.

    ``worker_snapshots`` counts how many cross-process snapshots were
    merged in (for reporting fleet fan-in).
    """

    __slots__ = (
        "tracer",
        "metrics",
        "command",
        "args",
        "worker_snapshots",
        "records_spans",
    )

    def __init__(
        self,
        command: str = "",
        args: dict[str, Any] | None = None,
        *,
        record_spans: bool = True,
    ) -> None:
        self.records_spans = record_spans
        self.tracer: Tracer = Tracer() if record_spans else _NullTracer()
        self.metrics = MetricsRegistry()
        self.command = command
        self.args = dict(args or {})
        self.worker_snapshots = 0

    def absorb(self, snapshot: dict[str, Any]) -> None:
        """Merge one worker snapshot delta into the fleet registry."""
        merge_into(self.metrics, snapshot)
        self.worker_snapshots += 1


_ACTIVE: TelemetrySession | None = None


def active() -> TelemetrySession | None:
    """The enabled session, or ``None`` — the one-read fast path."""
    return _ACTIVE


def enabled() -> bool:
    return _ACTIVE is not None


def start(
    command: str = "",
    args: dict[str, Any] | None = None,
    *,
    record_spans: bool = True,
) -> TelemetrySession:
    """Enable telemetry process-wide; returns the new session."""
    global _ACTIVE
    _ACTIVE = TelemetrySession(command, args, record_spans=record_spans)
    return _ACTIVE


def stop() -> TelemetrySession | None:
    """Disable telemetry; returns the session that was active."""
    global _ACTIVE
    prev = _ACTIVE
    _ACTIVE = None
    return prev


class session:
    """``with telemetry.session("run") as s:`` — scoped enable/disable."""

    def __init__(self, command: str = "", args: dict[str, Any] | None = None):
        self._command = command
        self._args = args

    def __enter__(self) -> TelemetrySession:
        return start(self._command, self._args)

    def __exit__(self, *exc: object) -> None:
        stop()


def span(name: str, **attrs: Any) -> Any:
    """A span on the active session's tracer, or the shared no-op."""
    current = _ACTIVE
    if current is None:
        return NOOP_SPAN
    return current.tracer.span(name, **attrs)


def metrics() -> MetricsRegistry | None:
    """The active session's registry, or ``None`` when disabled."""
    current = _ACTIVE
    return None if current is None else current.metrics


# ---------------------------------------------------------------------------
# Deterministic JSONL export
# ---------------------------------------------------------------------------
#
# Event schema (one JSON object per line, keys always serialised sorted):
#
#   {"event": "meta", "format": 1, "command": ..., "args": {...},
#    "trace": 0, "obs": {"kind": 0}, ["ts": "<iso8601>"]}
#   {"event": "span", "id": i, "parent": p|-1, "name": "...",
#    "attrs": {...}, "t": {"self": s, "total": t},
#    "trace": 0, "obs": {"kind": 1, "depth": d, ...int attrs...}}
#   {"event": "snapshot", "counters": {...}, "gauges": {...},
#    "histograms": {...}, "workers": n, "trace": 0, "obs": {"kind": 2}}
#
# ``t`` (measured durations) and ``ts`` (wall clock) are the only
# non-deterministic fields; ``deterministic_view`` drops them.  The
# ``trace``/``obs`` keys make each line a valid observation for
# ``repro.traces.io.iter_jsonl`` (kind codes 0/1/2 + integer span
# attributes and depth), so telemetry logs can be re-read — and
# checked — with the repo's own streaming trace tooling.

_KIND_META = 0
_KIND_SPAN = 1
_KIND_SNAPSHOT = 2


def _span_obs(index: int, span_obj: Span) -> dict[str, int]:
    obs = {"kind": _KIND_SPAN, "depth": span_obj.depth, "seq": index}
    for key in sorted(span_obj.attrs):
        value = span_obj.attrs[key]
        if isinstance(value, bool):
            obs[key] = int(value)
        elif isinstance(value, int):
            obs[key] = value
    return obs


def export_jsonl(
    sess: TelemetrySession,
    out: TextIO,
    *,
    timestamp: str | None = None,
) -> int:
    """Write the session as JSONL; returns the number of events.

    ``timestamp`` (an ISO-8601 string, or ``None`` to omit) is the one
    field allowed to carry wall-clock time; everything else in the file
    is deterministic for a deterministic workload, modulo the measured
    durations under ``t``.
    """
    events = 0

    def emit(record: dict[str, Any]) -> None:
        nonlocal events
        out.write(json.dumps(record, sort_keys=True) + "\n")
        events += 1

    meta: dict[str, Any] = {
        "event": "meta",
        "format": 1,
        "command": sess.command,
        "args": {k: sess.args[k] for k in sorted(sess.args)},
        "trace": 0,
        "obs": {"kind": _KIND_META},
    }
    if timestamp is not None:
        meta["ts"] = timestamp
    emit(meta)

    ids: dict[int, int] = {}
    for index, span_obj in enumerate(sess.tracer.iter_spans()):
        ids[id(span_obj)] = index
        parent = -1 if span_obj.parent is None else ids[id(span_obj.parent)]
        emit(
            {
                "event": "span",
                "id": index,
                "parent": parent,
                "name": span_obj.name,
                "attrs": {
                    k: span_obj.attrs[k] for k in sorted(span_obj.attrs)
                },
                "t": {
                    "self": span_obj.self_seconds,
                    "total": span_obj.total_seconds,
                },
                "trace": 0,
                "obs": _span_obs(index, span_obj),
            }
        )

    snap = sess.metrics.snapshot()
    emit(
        {
            "event": "snapshot",
            "counters": snap["counters"],
            "gauges": snap["gauges"],
            "histograms": snap["histograms"],
            "workers": sess.worker_snapshots,
            "trace": 0,
            "obs": {"kind": _KIND_SNAPSHOT},
        }
    )
    return events


def read_events(lines: Iterable[str]) -> list[dict[str, Any]]:
    """Parse exported JSONL back into event dicts (blank lines skipped)."""
    events = []
    for line in lines:
        line = line.strip()
        if line:
            events.append(json.loads(line))
    return events


_TIMING_FIELDS = ("t", "ts")


def deterministic_view(event: dict[str, Any]) -> dict[str, Any]:
    """The event minus its timing fields (``t``/``ts`` and any
    ``*seconds*``-named metric, whose values are measured durations)."""
    view = {k: v for k, v in event.items() if k not in _TIMING_FIELDS}
    for section in ("counters", "gauges"):
        if section in view:
            view[section] = {
                k: v for k, v in view[section].items() if "seconds" not in k
            }
    if "histograms" in view:
        view["histograms"] = {
            k: v for k, v in view["histograms"].items() if "seconds" not in k
        }
    return view


# ---------------------------------------------------------------------------
# Profile rendering (`repro profile`)
# ---------------------------------------------------------------------------


class _ProfileNode:
    __slots__ = ("name", "count", "total", "self_time", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.self_time = 0.0
        self.children: dict[str, _ProfileNode] = {}


def _aggregate_spans(events: list[dict[str, Any]]) -> _ProfileNode:
    """Fold span events into a tree keyed by name-path.

    Sibling spans with the same name aggregate into one node (count,
    summed total/self), which keeps the rendering readable when a loop
    emits thousands of structurally identical spans.
    """
    root = _ProfileNode("")
    nodes: dict[int, _ProfileNode] = {}
    for event in events:
        if event.get("event") != "span":
            continue
        parent = nodes.get(event["parent"], root)
        node = parent.children.get(event["name"])
        if node is None:
            node = parent.children[event["name"]] = _ProfileNode(event["name"])
        node.count += 1
        node.total += event["t"]["total"]
        node.self_time += event["t"]["self"]
        nodes[event["id"]] = node
    return root


def _rewrite_rule_rows(
    counters: dict[str, int],
) -> list[tuple[str, int, int]]:
    """``(rule, fires, attempts)`` rows from the rewrite engine's
    per-rule counters, ranked by payoff (fires, then attempts)."""
    rows: dict[str, list[int]] = {}
    prefix = "rewrite.rule."
    for name, value in counters.items():
        if not name.startswith(prefix):
            continue
        stem, _, metric = name[len(prefix):].rpartition(".")
        if metric == "fires":
            rows.setdefault(stem, [0, 0])[0] = value
        elif metric == "attempts":
            rows.setdefault(stem, [0, 0])[1] = value
    return sorted(
        ((rule, fires, attempts) for rule, (fires, attempts) in rows.items()),
        key=lambda row: (-row[1], -row[2], row[0]),
    )


def render_profile(
    events: list[dict[str, Any]], *, top: int = 10
) -> str:
    """Human-readable span tree + top-k counters from exported events."""
    lines: list[str] = []
    meta = next((e for e in events if e.get("event") == "meta"), None)
    if meta is not None and meta.get("command"):
        lines.append(f"command: {meta['command']}")

    root = _aggregate_spans(events)
    if root.children:
        lines.append("span tree (seconds):")
        lines.append(
            f"  {'total':>10}  {'self':>10}  {'count':>7}  phase"
        )

        def walk(node: _ProfileNode, depth: int) -> None:
            lines.append(
                f"  {node.total:>10.3f}  {node.self_time:>10.3f}"
                f"  {node.count:>7d}  {'  ' * depth}{node.name}"
            )
            for child in node.children.values():
                walk(child, depth + 1)

        for child in root.children.values():
            walk(child, 0)

        # %Tm denominator: the loop's own root span when present (other
        # roots, e.g. eval.score, are outside the reported T), else the
        # sum of all roots.
        run_total = _find_total(root, "loop.run")
        if run_total is None:
            run_total = sum(c.total for c in root.children.values())
        learn = _find_total(root, "loop.learn")
        if run_total > 0 and learn is not None:
            lines.append(
                f"learn-phase share: {100.0 * learn / run_total:.1f}%"
                " of loop.run total (Table I %Tm)"
            )

    snap = next(
        (e for e in reversed(events) if e.get("event") == "snapshot"), None
    )
    if snap is not None:
        # Per-rule rewrite counters get their own ranked section below;
        # keep the generic top-k list readable without them.
        counters = sorted(
            (
                kv
                for kv in snap["counters"].items()
                if not kv[0].startswith("rewrite.rule.")
            ),
            key=lambda kv: (-kv[1], kv[0]),
        )
        if counters:
            lines.append(f"top {min(top, len(counters))} counters:")
            width = max(len(name) for name, _ in counters[:top])
            for name, value in counters[:top]:
                lines.append(f"  {name:<{width}}  {value}")
        rules = _rewrite_rule_rows(snap["counters"])
        if rules:
            shown = rules[:top]
            lines.append(
                f"top {len(shown)} rewrite rules (fires/attempts):"
            )
            width = max(len(rule) for rule, _, _ in shown)
            for rule, fires, attempts in shown:
                rate = 100.0 * fires / attempts if attempts else 0.0
                lines.append(
                    f"  {rule:<{width}}  {fires:>8} / {attempts:<8}"
                    f"  ({rate:.1f}%)"
                )
        if snap["gauges"]:
            lines.append("gauges:")
            width = max(len(name) for name in snap["gauges"])
            for name in sorted(snap["gauges"]):
                lines.append(f"  {name:<{width}}  {snap['gauges'][name]}")
        if snap.get("workers"):
            lines.append(f"worker snapshots merged: {snap['workers']}")
    return "\n".join(lines)


def _find_total(root: _ProfileNode, name: str) -> float | None:
    """Summed total of every node named ``name`` anywhere in the tree."""
    found = 0.0
    hit = False
    pending = [root]
    while pending:
        node = pending.pop()
        for child in node.children.values():
            if child.name == name:
                found += child.total
                hit = True
            pending.append(child)
    return found if hit else None
