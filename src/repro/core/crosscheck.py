"""Cross-checking implementations against mined invariants (paper §VI).

"The conditions extracted from the learned model are invariants that
hold on the implementation.  These can be used as additional
specifications to verify multiple system implementations."  This module
packages that workflow: take the invariants mined from a reference
implementation and model-check them against another implementation of
the same design; violations localise behavioural divergences with
concrete counterexample steps -- without any hand-written specification.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..mc.condition_check import IncrementalConditionChecker
from ..system.transition_system import SymbolicSystem
from ..system.valuation import Valuation
from .invariants import Invariant


@dataclass
class InvariantViolation:
    """One divergence: the invariant and a concrete witnessing step."""

    invariant: Invariant
    step: tuple[Valuation, Valuation]

    def describe(self) -> str:
        v_t, v_t1 = self.step
        return (
            f"{self.invariant.render()}\n"
            f"    violated by: {dict(v_t)} -> {dict(v_t1)}"
        )


@dataclass
class CrossCheckReport:
    """Outcome of checking mined invariants against an implementation."""

    total: int
    violations: list[InvariantViolation] = field(default_factory=list)

    @property
    def agreed(self) -> int:
        return self.total - len(self.violations)

    @property
    def consistent(self) -> bool:
        return not self.violations

    def describe(self) -> str:
        lines = [
            f"{self.agreed}/{self.total} invariants hold on the "
            "implementation under check"
        ]
        for index, violation in enumerate(self.violations, start=1):
            lines.append(f"[{index}] {violation.describe()}")
        return "\n".join(lines)


def cross_check(
    invariants: list[Invariant], implementation: SymbolicSystem
) -> CrossCheckReport:
    """Model-check mined invariants against another implementation.

    The implementation must expose the same observables (names and
    sorts) as the system the invariants were mined from.
    """
    checker = IncrementalConditionChecker(implementation)
    report = CrossCheckReport(total=len(invariants))
    for invariant in invariants:
        result = checker.check(invariant.assumption, invariant.conclusion)
        if not result.holds:
            report.violations.append(
                InvariantViolation(
                    invariant=invariant, step=result.counterexample
                )
            )
    return report
