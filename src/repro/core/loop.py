"""The active model-learning loop (paper Fig. 1 and §III).

``ActiveLearner`` ties everything together:

1. learn a candidate NFA from the current trace set (pluggable learner);
2. extract completeness conditions from its structure;
3. model-check each condition, classifying and excluding spurious
   counterexamples along the way;
4. on violations, splice counterexamples into new traces and iterate;
5. terminate when ``α = 1`` (all behaviour admitted -- Theorem 1), when
   the time budget is exhausted (paper: 10 h; here configurable), or
   when an iteration cap is hit.

The result carries everything Table I reports: iterations ``i``, model
size ``N``, degree of completeness ``α``, total runtime ``T`` and the
share of runtime spent in model learning ``%Tm``, plus the invariants.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..automata.nfa import SymbolicNFA
from ..expr.ast import Expr
from ..learn.base import LearnerSession, ModelLearner, start_session
from ..mc.explicit import reachable_formula, shared_reachability
from ..system.transition_system import SymbolicSystem
from ..traces.trace import TraceSet
from . import telemetry
from .conditions import extract_conditions
from .invariants import Invariant, extract_invariants
from .oracle import OracleReport
from .parallel import make_oracle
from .refine import augment_traces


@dataclass
class IterationRecord:
    """Statistics for one learn-check-refine round.

    ``warm_start`` is True when the model came out of a learner session
    reusing state from earlier iterations (False for iteration 1, for
    stateless learners, and for iterations where the session had to
    rebuild cold, e.g. after mode-variable drift) -- so benchmarks can
    separate cold from warm learning time.  Learn/check durations are
    measured with ``time.perf_counter``.
    """

    index: int
    num_states: int
    num_transitions: int
    conditions: int
    violations: int
    alpha: float
    new_traces: int
    spurious_excluded: int
    learn_seconds: float
    check_seconds: float
    warm_start: bool = False
    duplicates_skipped: int = 0


@dataclass
class ActiveLearningResult:
    """Everything the evaluation reports about one run."""

    model: SymbolicNFA
    alpha: float
    iterations: int
    records: list[IterationRecord] = field(default_factory=list)
    invariants: list[Invariant] = field(default_factory=list)
    #: Inductive invariant accumulated by a proof-based spuriousness
    #: engine (``spurious_engine="ic3"``): the conjunction of every
    #: frame clause IC3 converged on while classifying counterexamples.
    #: None for the other engines (and under ``jobs > 1``, where the
    #: frames live in worker processes).
    proved_invariant: "Expr | None" = None
    total_seconds: float = 0.0
    learn_seconds: float = 0.0
    check_seconds: float = 0.0
    timed_out: bool = False
    converged: bool = False
    final_trace_count: int = 0
    recorded_inconclusive: int = 0
    session_mode: bool = False

    @property
    def num_states(self) -> int:
        """Table I's ``N``."""
        return self.model.num_states

    @property
    def percent_learning(self) -> float:
        """Table I's ``%Tm``."""
        if self.total_seconds == 0:
            return 0.0
        return 100.0 * self.learn_seconds / self.total_seconds

    @property
    def cold_learn_seconds(self) -> float:
        """Learning time in cold (from-scratch) iterations."""
        return sum(
            r.learn_seconds for r in self.records if not r.warm_start
        )

    @property
    def warm_learn_seconds(self) -> float:
        """Learning time in warm (session-reuse) iterations."""
        return sum(r.learn_seconds for r in self.records if r.warm_start)

    @property
    def warm_iterations(self) -> int:
        return sum(1 for r in self.records if r.warm_start)


class ActiveLearner:
    """The paper's algorithm, parameterised exactly as the evaluation.

    Parameters
    ----------
    system:
        The implementation ``S`` (grey-box: simulated for traces,
        model-checked for conditions).
    learner:
        Pluggable model-learning component (§II-B contract).
    k:
        Fig. 3b bound for counterexample-validity checks, assumed known
        a priori per benchmark (§IV-B), cf. Table I's ``k`` column.
    spurious_engine:
        ``"explicit"`` (exact reachability oracle; default), ``"bdd"``
        (exact symbolic reachability via BDD image computation),
        ``"kinduction"`` (the literal Fig. 3b SAT check), ``"ic3"``
        (unbounded IC3/PDR proofs: never inconclusive, no ``k``
        sensitivity, generalized spurious exclusions) or ``"none"``
        (skip the check; every counterexample treated as valid).  See
        ``docs/engines.md``.
    respect_k:
        For the explicit engine: report what a k-bounded analysis would
        (states deeper than ``k`` come back inconclusive).
    state_only:
        Strengthen spurious exclusions with the state projection (the
        paper's domain-knowledge runtime optimisation) instead of full
        valuations including free inputs.
    max_iterations:
        Safety cap on learn-check-refine rounds.
    budget_seconds:
        Wall-clock budget (the paper used 10 h; benchmarks here default
        to tens of seconds).  On expiry the current model is returned
        with ``timed_out=True``, like the paper's timeout rows.
    guide_with_reachable:
        Strengthen every condition check with the reachable-state
        formula (requires the explicit engine).  This is the paper's own
        mitigation for the spurious-counterexample churn that caused its
        timeouts (§IV-B.1); off by default for faithfulness, on in the
        benchmark harness for laptop-scale runtimes.
    jobs:
        Number of condition-checking worker processes.  ``1`` (default)
        checks everything in-process, exactly as before.  With more,
        ``check_all`` shards conditions across a persistent pool with
        sticky condition→worker affinity and produces a bit-for-bit
        identical report (see :mod:`repro.core.parallel`).  Call
        :meth:`close` (or use the learner as a context manager) to shut
        the pool down; the workers are kept alive *across* loop
        iterations so their learned-clause databases stay hot.
    oracle_start_method:
        Multiprocessing start method for the worker pool (``"spawn"``
        default; ``"fork"`` starts faster where available).
    canonical_counterexamples:
        Force counterexample canonicalisation on (``True``) or leave the
        per-``jobs`` default (``None``): off for the fast serial path,
        always on for worker pools.  ``True`` with ``jobs=1`` yields the
        deterministic serial reference that any ``jobs>1`` run
        reproduces bit for bit.
    use_session:
        Learn through a :class:`~repro.learn.base.LearnerSession`
        (default).  The trace set only ever grows across iterations, so
        sessions re-learn incrementally from the per-iteration delta --
        a persistent APT + SAT solver for the SAT-DFA learner,
        persistent merge structures for T2M/k-tails -- instead of from
        scratch; the per-iteration models are the same either way
        (differentially tested), only the learning time changes.
        Learners without a native session run through the stateless
        adapter, which reproduces the pre-session behaviour exactly.
        ``False`` forces a plain ``learn()`` call every iteration.
    validate:
        Run the static analyzer over the system up front and over every
        condition before it is model-checked (the flag rides inside
        :class:`~repro.core.parallel.OracleSpec`, so pool workers
        validate too).  ERROR findings raise
        :class:`~repro.analysis.diagnostics.AnalysisError` with the full
        diagnostic report.
    """

    def __init__(
        self,
        system: SymbolicSystem,
        learner: ModelLearner,
        k: int,
        spurious_engine: str = "explicit",
        respect_k: bool = True,
        state_only: bool = True,
        max_iterations: int = 50,
        budget_seconds: float | None = None,
        max_strengthenings: int = 100,
        guide_with_reachable: bool = False,
        jobs: int = 1,
        oracle_start_method: str = "spawn",
        canonical_counterexamples: bool | None = None,
        use_session: bool = True,
        validate: bool = False,
    ):
        self._system = system
        self._learner = learner
        self._k = k
        self._max_iterations = max_iterations
        self._budget_seconds = budget_seconds
        self._use_session = use_session
        domain_assumption = None
        if guide_with_reachable:
            if spurious_engine != "explicit":
                raise ValueError(
                    "guide_with_reachable requires the explicit engine"
                )
            domain_assumption = reachable_formula(
                system, shared_reachability(system)
            )
        self._oracle = make_oracle(
            system,
            spurious_engine,
            k,
            jobs=jobs,
            respect_k=respect_k,
            state_only=state_only,
            max_strengthenings=max_strengthenings,
            domain_assumption=domain_assumption,
            start_method=oracle_start_method,
            canonical=canonical_counterexamples,
            validate=validate,
        )

    def close(self) -> None:
        """Shut down the worker pools (oracle, and learner if it owns one)."""
        self._oracle.close()
        # A pooled learner (e.g. SegmentedLearner with jobs > 1) owns
        # worker processes of its own; closing here gives "with
        # ActiveLearner(...)" one lifetime for everything.
        closer = getattr(self._learner, "close", None)
        if closer is not None:
            closer()

    def __enter__(self) -> "ActiveLearner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def run(self, initial_traces: TraceSet) -> ActiveLearningResult:
        """Iterate learn-check-refine until α = 1 or resources expire.

        All reported timings (``T``, learn/check splits, hence ``%Tm``
        and the cold/warm decomposition) are derived from telemetry
        spans: the run is wrapped in a ``loop.run`` span with one
        ``loop.iteration`` → ``loop.learn``/``loop.check`` subtree per
        round.  With telemetry enabled the spans land on the active
        session (and in the ``--telemetry`` export); disabled, a
        throwaway local :class:`~repro.core.telemetry.Tracer` provides
        identical timing at identical cost, so enabling telemetry never
        changes what Table I reports.
        """
        active = telemetry.active()
        if active is not None and active.records_spans:
            tracer = active.tracer
        else:
            tracer = telemetry.Tracer()
        run_span = tracer.span("loop.run", system=self._system.name)
        with run_span:
            result = self._run_loop(initial_traces, tracer)
        run_span.set(iterations=result.iterations, converged=result.converged)
        result.total_seconds = run_span.total_seconds
        if active is not None:
            registry = active.metrics
            registry.inc("loop.runs")
            registry.inc("loop.iterations", result.iterations)
            registry.gauge_max("loop.model_states", result.model.num_states)
            registry.gauge_max(
                "loop.final_trace_count", result.final_trace_count
            )
        return result

    def _run_loop(
        self, initial_traces: TraceSet, tracer: "telemetry.Tracer"
    ) -> ActiveLearningResult:
        start = time.monotonic()
        deadline = (
            start + self._budget_seconds
            if self._budget_seconds is not None
            else None
        )
        traces = initial_traces.copy()
        records: list[IterationRecord] = []
        learn_total = 0.0
        check_total = 0.0
        model: SymbolicNFA | None = None
        report: OracleReport | None = None
        session: LearnerSession | None = None
        delta: tuple = ()
        timed_out = False
        converged = False
        inconclusive_total = 0

        for index in range(1, self._max_iterations + 1):
            with tracer.span("loop.learn", iteration=index) as learn_span:
                if self._use_session:
                    if session is None:
                        session = start_session(self._learner, traces)
                        model = session.model
                    else:
                        model = session.add_traces(delta)
                    warm_start = session.warm
                else:
                    model = self._learner.learn(traces)
                    warm_start = False
                learn_span.set(warm=warm_start, states=model.num_states)
            learn_elapsed = learn_span.total_seconds
            learn_total += learn_elapsed

            with tracer.span("loop.check", iteration=index) as check_span:
                conditions = extract_conditions(model)
                report = self._oracle.check_all(conditions, deadline=deadline)
                check_span.set(
                    conditions=len(report.outcomes),
                    violations=len(report.violations),
                )
            check_elapsed = check_span.total_seconds
            check_total += check_elapsed

            inconclusive_total += len(report.recorded_inconclusive)
            new_traces = 0
            duplicates_skipped = 0
            delta = ()
            if report.violations and not report.truncated:
                augmented = augment_traces(traces, report.violations)
                new_traces = augmented.num_added
                duplicates_skipped = augmented.duplicates_skipped
                delta = tuple(augmented.added)

            records.append(
                IterationRecord(
                    index=index,
                    num_states=model.num_states,
                    num_transitions=model.num_transitions,
                    conditions=len(report.outcomes),
                    violations=len(report.violations),
                    alpha=report.alpha,
                    new_traces=new_traces,
                    spurious_excluded=report.total_spurious,
                    learn_seconds=learn_elapsed,
                    check_seconds=check_elapsed,
                    warm_start=warm_start,
                    duplicates_skipped=duplicates_skipped,
                )
            )

            if report.truncated:
                timed_out = True
                break
            # Convergence is only ever declared on a fully checked
            # condition set: truncated reports broke out above, and an
            # empty-but-truncated report's alpha is 0.0, not a vacuous
            # 1.0 (see OracleReport.alpha).
            if report.alpha == 1.0:
                converged = True
                break
            if deadline is not None and time.monotonic() > deadline:
                timed_out = True
                break
            if new_traces == 0:
                # No progress is impossible for genuine violations (the
                # spliced trace is rejected by the current model), but a
                # degenerate learner could loop; bail out safely.
                break

        assert model is not None and report is not None
        with tracer.span("loop.invariants", converged=converged):
            invariants = (
                extract_invariants(self._system, report.outcomes)
                if converged
                else []
            )
        proved_invariant = None
        checker = getattr(self._oracle, "spurious_checker", None)
        if checker is not None:
            proved_invariant = getattr(checker, "proved_invariant", None)
        # total_seconds is stamped by run() from the enclosing loop.run
        # span once it closes; learn/check splits come from the per-
        # iteration spans accumulated above.
        return ActiveLearningResult(
            model=model,
            alpha=report.alpha,
            iterations=len(records),
            records=records,
            invariants=invariants,
            proved_invariant=proved_invariant,
            learn_seconds=learn_total,
            check_seconds=check_total,
            timed_out=timed_out,
            converged=converged,
            final_trace_count=len(traces),
            recorded_inconclusive=inconclusive_total,
            session_mode=self._use_session,
        )
