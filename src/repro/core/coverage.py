"""Test-coverage evaluation and hole filling (paper §VI).

"The approach can also be used to evaluate test coverage for a given
test suite and generate new tests to address coverage holes."  This
module is that use-case as a library API:

* :func:`evaluate_suite` learns a model from the suite's traces and
  measures its degree of completeness α -- the fraction of the
  implementation's behaviour the suite exercises;
* each violated completeness condition describes a *hole*, and its
  counterexample is an input scenario no test covers;
* :func:`close_holes` iterates suite ← suite ∪ generated tests until the
  suite covers every behaviour (α = 1) or a round budget expires.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..automata.nfa import SymbolicNFA
from ..learn.base import ModelLearner
from ..mc.explicit import reachable_formula
from ..system.transition_system import SymbolicSystem
from ..traces.trace import Trace, TraceSet
from .conditions import extract_conditions
from .oracle import CompletenessOracle, ConditionOutcome
from .parallel import ParallelCompletenessOracle, make_oracle
from .refine import counterexample_traces


@dataclass
class CoverageHole:
    """One uncovered behaviour with generated tests reaching it."""

    description: str
    outcome: ConditionOutcome
    generated_tests: list[Trace] = field(default_factory=list)


@dataclass
class CoverageReport:
    """Coverage of a test suite, measured as the paper's α."""

    alpha: float
    conditions: int
    holes: list[CoverageHole] = field(default_factory=list)
    model: SymbolicNFA | None = None

    @property
    def complete(self) -> bool:
        return self.alpha == 1.0

    def all_generated_tests(self) -> list[Trace]:
        tests: list[Trace] = []
        for hole in self.holes:
            tests.extend(hole.generated_tests)
        return tests


def _oracle_for(
    system: SymbolicSystem, k: int, guided: bool, jobs: int = 1
) -> CompletenessOracle | ParallelCompletenessOracle:
    return make_oracle(
        system,
        "explicit",
        k,
        jobs=jobs,
        respect_k=False,
        domain_assumption=reachable_formula(system) if guided else None,
    )


def evaluate_suite(
    system: SymbolicSystem,
    suite: TraceSet,
    learner: ModelLearner,
    k: int = 10,
    guided: bool = True,
    jobs: int = 1,
    oracle: "CompletenessOracle | ParallelCompletenessOracle | None" = None,
) -> CoverageReport:
    """Measure how completely ``suite`` exercises ``system``.

    ``jobs > 1`` shards the condition checks across worker processes;
    pass a pre-built ``oracle`` instead to keep one pool (and its hot
    solver state) alive across repeated evaluations, as
    :func:`close_holes` does.
    """
    model = learner.learn(suite)
    own_oracle = oracle is None
    if own_oracle:
        oracle = _oracle_for(system, k, guided, jobs=jobs)
    try:
        report = oracle.check_all(extract_conditions(model))
    finally:
        if own_oracle:
            oracle.close()
    holes = [
        CoverageHole(
            description=outcome.condition.describe(),
            outcome=outcome,
            generated_tests=counterexample_traces(suite, outcome),
        )
        for outcome in report.violations
    ]
    return CoverageReport(
        alpha=report.alpha,
        conditions=len(report.outcomes),
        holes=holes,
        model=model,
    )


@dataclass
class HoleClosingResult:
    """Outcome of iterated hole filling."""

    suite: TraceSet
    progression: list[float]
    rounds: int

    @property
    def final_alpha(self) -> float:
        return self.progression[-1]

    @property
    def closed(self) -> bool:
        return self.final_alpha == 1.0


def close_holes(
    system: SymbolicSystem,
    suite: TraceSet,
    learner: ModelLearner,
    k: int = 10,
    max_rounds: int = 25,
    guided: bool = True,
    jobs: int = 1,
) -> HoleClosingResult:
    """Grow ``suite`` with generated tests until coverage reaches α = 1.

    Coverage may dip transiently -- newly exercised behaviour creates new
    proof obligations -- before converging; the progression records it.
    One oracle (and, with ``jobs > 1``, one worker pool) serves every
    round, so solver state learned in round ``n`` speeds up round
    ``n + 1``.
    """
    working = suite.copy()
    oracle = _oracle_for(system, k, guided, jobs=jobs)
    try:
        report = evaluate_suite(system, working, learner, k, guided, oracle=oracle)
        progression = [report.alpha]
        rounds = 0
        while not report.complete and rounds < max_rounds:
            added = 0
            for hole in report.holes:
                added += working.update(hole.generated_tests)
            rounds += 1
            if added == 0:
                break
            report = evaluate_suite(
                system, working, learner, k, guided, oracle=oracle
            )
            progression.append(report.alpha)
    finally:
        oracle.close()
    return HoleClosingResult(
        suite=working, progression=progression, rounds=rounds
    )
