"""Parallel completeness oracle: sharded condition checking.

The completeness conditions of one candidate model are mutually
independent (each is its own Fig. 3a harness), which makes
:meth:`CompletenessOracle.check_all` embarrassingly parallel -- and it is
the dominant wall-clock cost of the active-learning loop now that each
individual query is incremental.  This module shards ``check_all`` across
persistent worker processes while keeping the report *bit-for-bit
identical* to the serial one.

Design
------

**Spawn-safe construction.**  A live oracle is not picklable (it owns a
CDCL solver mid-flight), so workers are handed an :class:`OracleSpec`: a
plain-data recipe -- system fields, spurious-engine *name*, ``k``,
strengthening knobs, optional domain assumption -- from which each worker
rebuilds its own :class:`~repro.core.oracle.CompletenessOracle`, with its
own persistent :class:`~repro.mc.condition_check.IncrementalConditionChecker`.
This works under any multiprocessing start method; the default is
``"spawn"``.  Because the spuriousness strategy travels by *name*, the
proof engines ride along for free: a worker given ``"ic3"`` rebuilds its
own :class:`~repro.mc.ic3.Ic3Engine` whose frames then strengthen
monotonically across every condition routed to that worker (sticky
affinity keeps those proofs hot, exactly like the learned clauses).

**Sticky affinity.**  Workers live for the oracle's lifetime, so their
solvers accumulate learned clauses exactly like the serial checker does.
To keep those clause databases hot, conditions are routed with two-level
sticky affinity: a condition seen in an earlier ``check_all`` call goes
back to the worker that checked it before; a *new* condition prefers the
worker already owning conditions over the same observable symbols
(their encodings share literals, so lemmas transfer), unless that worker
is already at its fair share of the current batch, in which case the
least-loaded worker takes it.

**Determinism.**  The oracle uses canonical (lexicographically minimal)
counterexamples, making every outcome a pure function of its condition:
the CDCL model a worker would otherwise return depends on clause-database
history and on per-process hash salting of the encoder's variable order.
With canonical outcomes the merged report -- outcomes listed in the
original condition order -- is identical to the serial report regardless
of ``jobs`` or scheduling.

**Deadlines.**  The ``deadline`` (``time.monotonic`` scale, which is a
system-wide clock on the supported platforms) is forwarded to every
worker, which honours it exactly like the serial path: between
conditions and between spurious-strengthening rounds.  The merge keeps
the longest prefix (in original order) of contiguously checked
conditions, so a truncated parallel report has the same shape as a
truncated serial one and never claims conditions it did not check.

**Worker failure.**  Results are streamed per condition.  If a worker
dies mid-batch (its pipe hits EOF or its sentinel fires before ``done``),
the unfinished conditions are re-checked serially in the parent and a
``RuntimeWarning`` is emitted -- a crash can slow a report down but never
silently shorten it.  Dead workers are respawned on the next dispatch.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass

from ..expr.ast import Expr, free_vars
from ..mc.spurious import (
    SPURIOUS_ENGINES,
    build_spurious_checker,
    unknown_engine_message,
)
from ..system.transition_system import SymbolicSystem
from ..system.valuation import Valuation
from . import telemetry
from .conditions import Condition
from .oracle import CompletenessOracle, ConditionOutcome, OracleReport
from .pool import ItemRunner, PersistentWorkerPool, PoolWorker


# Sticky-affinity tables are bounded (oldest-first eviction) so a pool
# that lives across many loop iterations cannot leak dead conditions.
_AFFINITY_CAP = 10_000


# ---------------------------------------------------------------------------
# picklable specs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SystemSpec:
    """Reconstruction recipe for a :class:`SymbolicSystem`.

    The system dataclass itself would pickle, but live instances carry
    process-local caches (notably the shared reachability engine, whose
    table can hold hundreds of thousands of states) that must not ride
    along.  The spec captures exactly the declared fields.
    """

    name: str
    state_vars: tuple
    input_vars: tuple
    init_state: Valuation
    next_exprs: tuple[tuple[object, Expr], ...]
    input_samples: tuple[Valuation, ...]

    @classmethod
    def of(cls, system: SymbolicSystem) -> "SystemSpec":
        return cls(
            name=system.name,
            state_vars=system.state_vars,
            input_vars=system.input_vars,
            init_state=system.init_state,
            next_exprs=tuple(
                sorted(system.next_exprs.items(), key=lambda kv: kv[0].name)
            ),
            input_samples=tuple(system.input_samples),
        )

    def build(self) -> SymbolicSystem:
        return SymbolicSystem(
            name=self.name,
            state_vars=self.state_vars,
            input_vars=self.input_vars,
            init_state=self.init_state,
            next_exprs=dict(self.next_exprs),
            input_samples=list(self.input_samples),
        )


@dataclass(frozen=True)
class OracleSpec:
    """Everything a worker needs to rebuild a serial oracle."""

    system: SystemSpec
    spurious_engine: str
    k: int
    respect_k: bool = True
    state_only: bool = True
    max_strengthenings: int = 100
    domain_assumption: Expr | None = None
    #: Rebuilt oracles validate their system and every condition through
    #: the static analyzer.  Because workers rebuild from this spec, a
    #: validating parent hands out validating workers -- the future job
    #: server's untrusted-spec front door inherits the check for free.
    validate: bool = False
    #: Captured at construction from the parent's telemetry state:
    #: workers of a telemetry-enabled parent run metrics-only sessions
    #: and attach per-batch snapshot deltas to their batch replies.
    telemetry: bool = False
    # Test-only crash injection: (worker_index, outcomes_before_exit).
    fault: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        if self.spurious_engine not in SPURIOUS_ENGINES:
            raise ValueError(unknown_engine_message(self.spurious_engine))

    def build_oracle(self, system: SymbolicSystem | None = None) -> CompletenessOracle:
        if system is None:
            system = self.system.build()
        return CompletenessOracle(
            system,
            build_spurious_checker(
                system,
                self.spurious_engine,
                respect_k=self.respect_k,
                state_only=self.state_only,
            ),
            self.k,
            state_only=self.state_only,
            max_strengthenings=self.max_strengthenings,
            domain_assumption=self.domain_assumption,
            canonical_counterexamples=True,
            validate=self.validate,
        )

    def make_runner(self, worker_index: int) -> ItemRunner:
        """Per-item runner for :class:`~repro.core.pool.PersistentWorkerPool`.

        Rebuilds a serial oracle in the worker; each item is a
        :class:`Condition`, each result a :class:`ConditionOutcome`.  A
        truncated outcome (expired deadline mid-strengthening) stops the
        batch, matching the serial ``check_all`` shape.
        """
        oracle = self.build_oracle()

        def run(condition: Condition, deadline: float | None):
            outcome = oracle.check(condition, deadline=deadline)
            return outcome, outcome.truncated

        return run


# ---------------------------------------------------------------------------
# the parallel oracle
# ---------------------------------------------------------------------------


class ParallelCompletenessOracle:
    """Drop-in ``check_all`` that shards conditions across processes.

    Construction mirrors :class:`CompletenessOracle` except that the
    spuriousness strategy is named (``spurious_engine``) rather than
    passed as a live object, so it can travel to workers as part of the
    picklable :class:`OracleSpec`.  With ``jobs=1`` no processes are
    created and every call runs on an in-process serial oracle.

    The oracle is a context manager; :meth:`close` shuts the workers
    down.  Workers are daemonic, so a forgotten ``close`` can never hang
    interpreter exit.
    """

    def __init__(
        self,
        system: SymbolicSystem,
        spurious_engine: str,
        k: int,
        *,
        jobs: int = 2,
        respect_k: bool = True,
        state_only: bool = True,
        max_strengthenings: int = 100,
        domain_assumption: Expr | None = None,
        start_method: str = "spawn",
        validate: bool = False,
        _fault: tuple[int, int] | None = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self._system = system
        self._jobs = jobs
        self._spec = OracleSpec(
            system=SystemSpec.of(system),
            spurious_engine=spurious_engine,
            k=k,
            respect_k=respect_k,
            state_only=state_only,
            max_strengthenings=max_strengthenings,
            domain_assumption=domain_assumption,
            validate=validate,
            telemetry=telemetry.enabled(),
            fault=_fault,
        )
        if validate:
            # Fail fast in the parent too: a bad system should surface
            # at construction, not as an AnalysisError inside a worker.
            from ..analysis.system_check import validate_system

            validate_system(system)
        # The generic pool owns process lifecycle, the wire protocol,
        # stale-reply filtering and crash detection; this class owns the
        # oracle-specific parts (affinity sharding, serial fallback,
        # report merge).
        self._pool = PersistentWorkerPool(
            self._spec,
            jobs,
            start_method=start_method,
            name=f"oracle-worker-{system.name}",
        )
        # Two-level sticky affinity (see module docstring).
        self._condition_affinity: dict[Condition, int] = {}
        self._symbol_affinity: dict[tuple[str, ...], int] = {}
        self._serial: CompletenessOracle | None = None
        self.worker_failures = 0

    # -- lifecycle -----------------------------------------------------
    @property
    def _closed(self) -> bool:
        return self._pool.closed

    @property
    def _workers(self) -> list[PoolWorker | None]:
        return self._pool._workers

    @property
    def _generation(self) -> int:
        return self._pool._generation

    def close(self) -> None:
        """Shut down all worker processes."""
        self._pool.close()

    def _ensure_worker(self, slot: int) -> PoolWorker:
        return self._pool.ensure_worker(slot)

    def __enter__(self) -> "ParallelCompletenessOracle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort; daemon workers die anyway
        try:
            self.close()
        except Exception:
            pass

    # -- serial pieces -------------------------------------------------
    def _serial_oracle(self) -> CompletenessOracle:
        """In-process oracle used for ``jobs=1``, tiny batches, single
        checks and worker-failure fallback.

        Canonical counterexamples make its outcomes identical to any
        worker's, so mixing the two paths cannot perturb a report.
        """
        if self._serial is None:
            self._serial = self._spec.build_oracle(system=self._system)
        return self._serial

    def check(
        self, condition: Condition, deadline: float | None = None
    ) -> ConditionOutcome:
        if self._closed:
            raise RuntimeError("oracle is closed")
        return self._serial_oracle().check(condition, deadline=deadline)

    @property
    def spurious_checker(self):
        """The in-process fallback oracle's checker, if one was built.

        Worker processes own their own checkers (and IC3 frames); those
        are not reachable from the parent, so invariant reporting under
        ``jobs > 1`` only reflects the serial fallback path.
        """
        if self._serial is None:
            return None
        return self._serial.spurious_checker

    # -- sharding ------------------------------------------------------
    @staticmethod
    def _symbols(condition: Condition) -> tuple[str, ...]:
        names = {v.name for v in free_vars(condition.conclusion)}
        if condition.assumption is not None:
            names |= {v.name for v in free_vars(condition.assumption)}
        return tuple(sorted(names))

    def _assign(
        self, conditions: list[Condition]
    ) -> list[list[tuple[int, Condition]]]:
        """Shard with sticky affinity, capped for balance.

        Repeat conditions always return to their previous worker (their
        exact encodings, and any lemmas over them, live there).  New
        conditions prefer the worker owning their symbol group but fall
        back to the least-loaded worker once that one reached its fair
        share of this batch, so a single hot symbol group cannot
        serialise the whole check.
        """
        jobs = self._jobs
        fair_share = -(-len(conditions) // jobs)  # ceil
        loads = [0] * jobs
        batches: list[list[tuple[int, Condition]]] = [[] for _ in range(jobs)]
        for index, condition in enumerate(conditions):
            worker = self._condition_affinity.get(condition)
            if worker is None:
                symbols = self._symbols(condition)
                preferred = self._symbol_affinity.get(symbols)
                if preferred is not None and loads[preferred] < fair_share:
                    worker = preferred
                else:
                    worker = min(range(jobs), key=lambda j: (loads[j], j))
                self._condition_affinity[condition] = worker
                self._symbol_affinity.setdefault(symbols, worker)
            loads[worker] += 1
            batches[worker].append((index, condition))
        # Affinity is an optimisation, not a correctness requirement:
        # candidate models change every iteration and their dead
        # conditions would otherwise accumulate forever.  Evict oldest
        # entries (insertion order) once well past any live working set.
        while len(self._condition_affinity) > _AFFINITY_CAP:
            self._condition_affinity.pop(
                next(iter(self._condition_affinity))
            )
        while len(self._symbol_affinity) > _AFFINITY_CAP:
            self._symbol_affinity.pop(next(iter(self._symbol_affinity)))
        return batches

    # -- the sharded check_all -----------------------------------------
    def check_all(
        self, conditions: list[Condition], deadline: float | None = None
    ) -> OracleReport:
        """Serial-identical report, computed on the worker pool.

        See :meth:`CompletenessOracle.check_all` for the report
        semantics; this method only changes *where* conditions run.
        """
        if self._closed:
            raise RuntimeError("oracle is closed")
        if self._jobs == 1 or len(conditions) < 2:
            return self._serial_oracle().check_all(conditions, deadline=deadline)
        with telemetry.span(
            "oracle.check_all", jobs=self._jobs, conditions=len(conditions)
        ):
            return self._check_all_pooled(conditions, deadline)

    def _check_all_pooled(
        self, conditions: list[Condition], deadline: float | None
    ) -> OracleReport:
        run = self._pool.run_batches(self._assign(conditions), deadline)
        outcomes: dict[int, ConditionOutcome] = run.results

        if run.failures:
            self.worker_failures += run.failures
            warnings.warn(
                f"{run.failures} completeness-oracle worker(s) died; "
                f"re-checking {len(run.retry)} condition(s) serially",
                RuntimeWarning,
                stacklevel=2,
            )
        if run.retry:
            serial = self._serial_oracle()
            for index in sorted(run.retry):
                if deadline is not None and time.monotonic() > deadline:
                    break
                outcome = serial.check(run.retry[index], deadline=deadline)
                outcomes[index] = outcome
                if outcome.truncated:
                    break

        # Deterministic merge: original order, longest contiguous prefix.
        # A gap means some worker's deadline expired before reaching that
        # condition, so -- like the serial path -- the report ends there
        # and is marked truncated rather than skipping ahead.
        report = OracleReport()
        for index in range(len(conditions)):
            outcome = outcomes.get(index)
            if outcome is None:
                report.truncated = True
                break
            report.outcomes.append(outcome)
            if outcome.truncated:
                report.truncated = True
                break
        return report


def make_oracle(
    system: SymbolicSystem,
    spurious_engine: str,
    k: int,
    *,
    jobs: int = 1,
    respect_k: bool = True,
    state_only: bool = True,
    max_strengthenings: int = 100,
    domain_assumption: Expr | None = None,
    start_method: str = "spawn",
    canonical: bool | None = None,
    validate: bool = False,
) -> CompletenessOracle | ParallelCompletenessOracle:
    """Build a serial (``jobs=1``) or sharded (``jobs>1``) oracle.

    Both variants expose ``check``/``check_all``/``close``, so callers
    can treat the result uniformly and ``close()`` it when done.

    ``validate`` turns on the static-analysis boundary: the system is
    analyzed up front and every condition before it is checked (in
    workers too -- the flag travels inside :class:`OracleSpec`), raising
    :class:`~repro.analysis.diagnostics.AnalysisError` on ERROR
    findings.

    ``canonical`` controls counterexample canonicalisation.  Its default
    follows ``jobs``: the sharded oracle *requires* it (the merge is
    only serial-identical with history-independent outcomes), while the
    ``jobs=1`` default keeps the historical fast serial path.  Pass
    ``canonical=True`` with ``jobs=1`` to get the deterministic serial
    reference that any ``jobs>1`` report reproduces bit for bit.
    """
    if jobs == 1:
        return CompletenessOracle(
            system,
            build_spurious_checker(
                system, spurious_engine, respect_k=respect_k, state_only=state_only
            ),
            k,
            state_only=state_only,
            max_strengthenings=max_strengthenings,
            domain_assumption=domain_assumption,
            canonical_counterexamples=bool(canonical),
            validate=validate,
        )
    if canonical is False:
        raise ValueError(
            "jobs > 1 requires canonical counterexamples: without them "
            "worker outcomes depend on per-process solver state and the "
            "merged report would not be deterministic"
        )
    return ParallelCompletenessOracle(
        system,
        spurious_engine,
        k,
        jobs=jobs,
        respect_k=respect_k,
        state_only=state_only,
        max_strengthenings=max_strengthenings,
        domain_assumption=domain_assumption,
        start_method=start_method,
        validate=validate,
    )
