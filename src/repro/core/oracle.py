"""The completeness oracle: condition checking with spuriousness handling.

Implements the §III-B/§III-C interaction: each extracted condition is
model-checked (Fig. 3a, k-induction with ``k = 1``); counterexamples are
classified (Fig. 3b); spurious counterexamples strengthen the assumption
(``r ← r ∧ ¬s'``) and the check repeats; valid or inconclusive
counterexamples surface as genuine violations.  Inconclusive ones are
*recorded* (paper: "we treat such a counterexample as valid but record it
for future reference").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..expr.ast import Expr, land
from ..mc.condition_check import IncrementalConditionChecker
from ..mc.harness import strengthened_assumption
from ..mc.spurious import SpuriousnessChecker
from ..mc.verdicts import SpuriousVerdict
from ..system.transition_system import SymbolicSystem
from ..system.valuation import Valuation
from . import telemetry
from .conditions import Condition, ConditionKind


@dataclass
class ConditionOutcome:
    """Result of checking one condition to a verdict."""

    condition: Condition
    holds: bool
    final_assumption: Expr | None  # after spurious strengthenings
    counterexample: tuple[Valuation, Valuation] | None = None
    inconclusive: bool = False
    spurious_excluded: int = 0
    solver_checks: int = 0
    truncated: bool = False  # deadline expired mid-strengthening


@dataclass
class OracleReport:
    """Aggregate over all conditions of one candidate model."""

    outcomes: list[ConditionOutcome] = field(default_factory=list)
    truncated: bool = False  # budget ran out mid-check

    @property
    def alpha(self) -> float:
        """Degree of completeness: fraction of conditions that hold.

        An empty report is vacuously complete *only* if it is actually
        finished: when the deadline expired before the first condition
        was checked (``truncated`` with no outcomes) nothing is known,
        and claiming ``α = 1`` would let the active loop declare
        convergence on zero evidence -- so that case reports ``0.0``.
        """
        if not self.outcomes:
            return 0.0 if self.truncated else 1.0
        return sum(1 for o in self.outcomes if o.holds) / len(self.outcomes)

    @property
    def violations(self) -> list[ConditionOutcome]:
        return [o for o in self.outcomes if not o.holds]

    @property
    def total_spurious(self) -> int:
        return sum(o.spurious_excluded for o in self.outcomes)

    @property
    def recorded_inconclusive(self) -> list[ConditionOutcome]:
        return [o for o in self.outcomes if o.inconclusive]


class CompletenessOracle:
    """Checks candidate models against the implementation.

    Parameters
    ----------
    system:
        The implementation ``S``.
    spurious_checker:
        Strategy classifying counterexample states (Fig. 3b); ``None``
        disables the check and treats every counterexample as valid.
    k:
        The Fig. 3b bound, from domain knowledge (Table I's ``k``).
    state_only:
        Strengthen with the state projection of spurious counterexamples
        (the paper's suggested domain-knowledge optimisation) rather than
        the full valuation including free inputs.
    max_strengthenings:
        Cap on spurious-exclusion rounds per condition.  Once exhausted
        the pending counterexample is treated as valid-but-recorded,
        mirroring how the paper's timed-out benchmarks keep churning
        through invalid counterexamples (§IV-B.1).
    domain_assumption:
        Optional formula over the observables conjoined (as a base
        constraint) to every condition check -- the paper's suggested
        domain-knowledge strengthening that guides the checker towards
        valid counterexamples, e.g. the reachable-state formula from
        :func:`repro.mc.explicit.reachable_formula`.
    validate:
        Run the static analyzer over the system at construction and over
        every condition before it is checked, raising
        :class:`~repro.analysis.diagnostics.AnalysisError` with the full
        diagnostic report on ERROR findings.  This is the front-door
        validation boundary: anything that feeds the oracle untrusted
        specs (the CLI, the evaluation runners, a future job server's
        workers -- which rebuild their oracles from
        :class:`~repro.core.parallel.OracleSpec` and therefore inherit
        the flag) fails fast with named diagnostics instead of a deep
        engine traceback.  Condition validation reuses one eid-memoised
        checker across the oracle's lifetime, so re-checking the
        conditions of successive candidate models costs only the DAG
        nodes not seen before.
    canonical_counterexamples:
        Return the lexicographically minimal counterexample per query
        instead of the solver's first model.  Canonical counterexamples
        make every outcome a pure function of the condition --
        independent of solver history, condition order and process
        boundaries -- which is what lets the sharded
        :class:`~repro.core.parallel.ParallelCompletenessOracle`
        reproduce the same report regardless of ``jobs``.  Off by
        default: minimisation costs extra solver probes per
        counterexample (~4x check time on churn-heavy workloads), so the
        plain serial oracle keeps the historical fast path and the
        parallel oracle family turns it on.
    """

    def __init__(
        self,
        system: SymbolicSystem,
        spurious_checker: SpuriousnessChecker | None,
        k: int,
        state_only: bool = True,
        max_strengthenings: int = 100,
        domain_assumption: Expr | None = None,
        canonical_counterexamples: bool = False,
        validate: bool = False,
    ):
        self._system = system
        self._spurious = spurious_checker
        self._k = k
        self._state_only = state_only
        self._max_strengthenings = max_strengthenings
        self._canonical = canonical_counterexamples
        self._condition_validator = None
        if validate:
            from ..analysis.diagnostics import AnalysisError, AnalysisReport
            from ..analysis.sortcheck import SortChecker
            from ..analysis.system_check import validate_system

            validate_system(system)
            scope = {v.name: v for v in system.variables}
            sort_checker = SortChecker(scope)

            def _validate_condition(condition: Condition) -> None:
                report = AnalysisReport(
                    subject=f"condition({condition.state_name})"
                )
                bodies = []
                if condition.assumption is not None:
                    bodies.append(condition.assumption)
                bodies.append(condition.conclusion)
                for body in bodies:
                    if not body.sort.is_bool():
                        from ..analysis.diagnostics import Diagnostic, Severity
                        from ..expr.printer import to_str

                        report.add(
                            Diagnostic(
                                code="R201",
                                severity=Severity.ERROR,
                                message=(
                                    f"condition body has sort {body.sort}, "
                                    "expected a Boolean predicate over one "
                                    "observation"
                                ),
                                subject=to_str(body),
                            )
                        )
                    report.extend(
                        sort_checker.check(body, allow_primed=False)
                    )
                if report.finalize().errors:
                    raise AnalysisError(report)

            self._condition_validator = _validate_condition
        self._checker = IncrementalConditionChecker(system)
        if domain_assumption is not None:
            self._checker.add_base_constraint(domain_assumption)

    def close(self) -> None:
        """Release resources (no-op for the in-process oracle).

        Present so serial and parallel oracles share a lifecycle
        contract; see :class:`repro.core.parallel.ParallelCompletenessOracle`.
        """

    def __enter__(self) -> "CompletenessOracle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def check(
        self, condition: Condition, deadline: float | None = None
    ) -> ConditionOutcome:
        """Check one condition to a final verdict.

        The ``deadline`` (``time.monotonic`` scale) is consulted between
        spurious-strengthening rounds, not just between conditions: a
        single churning condition would otherwise overshoot the
        wall-clock budget by up to ``max_strengthenings`` solver rounds.
        On expiry the pending counterexample is surfaced as
        inconclusive-and-truncated, mirroring §III-C's
        valid-but-recorded treatment.
        """
        with telemetry.span(
            "oracle.check", kind=condition.kind.name.lower()
        ) as check_span:
            outcome = self._check(condition, deadline)
            registry = telemetry.metrics()
            if registry is not None:
                check_span.set(
                    holds=outcome.holds,
                    strengthened=outcome.spurious_excluded,
                )
                registry.inc("oracle.conditions_checked")
                registry.inc(
                    "oracle.strengthening_rounds", outcome.spurious_excluded
                )
                registry.inc("oracle.solver_checks", outcome.solver_checks)
                if not outcome.holds:
                    registry.inc("oracle.violations")
                if outcome.truncated:
                    registry.inc("oracle.truncated")
            return outcome

    def _check(
        self, condition: Condition, deadline: float | None = None
    ) -> ConditionOutcome:
        if self._condition_validator is not None:
            self._condition_validator(condition)
        system = self._system
        assumption = (
            system.init
            if condition.kind is ConditionKind.INIT
            else condition.assumption
        )
        spurious_excluded = 0
        solver_checks = 0
        while True:
            result = self._checker.check(
                assumption, condition.conclusion, canonical=self._canonical
            )
            solver_checks += result.solver_checks
            if result.holds:
                return ConditionOutcome(
                    condition=condition,
                    holds=True,
                    final_assumption=assumption,
                    spurious_excluded=spurious_excluded,
                    solver_checks=solver_checks,
                )
            v_t, v_t1 = result.counterexample
            if deadline is not None and time.monotonic() > deadline:
                return ConditionOutcome(
                    condition=condition,
                    holds=False,
                    final_assumption=assumption,
                    counterexample=(v_t, v_t1),
                    inconclusive=True,
                    spurious_excluded=spurious_excluded,
                    solver_checks=solver_checks,
                    truncated=True,
                )
            if condition.kind is ConditionKind.INIT:
                # v_0 |= Init is genuine by construction (§III-B).
                verdict = SpuriousVerdict.VALID
            elif self._spurious is None:
                verdict = SpuriousVerdict.VALID
            elif spurious_excluded >= self._max_strengthenings:
                verdict = SpuriousVerdict.INCONCLUSIVE
            else:
                verdict = self._spurious.classify(v_t, self._k)
            if verdict is SpuriousVerdict.SPURIOUS:
                spurious_excluded += 1
                assumption = self._strengthen(assumption, v_t)
                continue
            return ConditionOutcome(
                condition=condition,
                holds=False,
                final_assumption=assumption,
                counterexample=(v_t, v_t1),
                inconclusive=verdict is SpuriousVerdict.INCONCLUSIVE,
                spurious_excluded=spurious_excluded,
                solver_checks=solver_checks,
            )

    @property
    def spurious_checker(self) -> SpuriousnessChecker | None:
        """The live Fig. 3b strategy (for invariant reporting)."""
        return self._spurious

    def _strengthen(self, assumption: Expr, v_t: Valuation) -> Expr:
        """Next assumption after a SPURIOUS verdict.

        The paper's blind strengthening is ``r ∧ ¬s'``: exclude exactly
        the one counterexample state.  A proof engine can do better --
        :class:`~repro.mc.ic3.Ic3Spuriousness` exposes the generalized
        blocking clause of its unreachability proof (an unsat-core-driven
        *region* of unreachable states containing ``v_t``), and
        conjoining that clause rules out the whole region in one round.
        Canonical mode sticks to the blind exclusion: the generalized
        clause depends on the engine's proof history, and canonical
        outcomes must stay pure functions of the condition (that purity
        is what makes the sharded oracle's reports order-independent).
        """
        if not self._canonical:
            supplier = getattr(self._spurious, "spurious_exclusion", None)
            if supplier is not None:
                exclusion = supplier()
                if exclusion is not None:
                    return land(assumption, exclusion)
        return strengthened_assumption(
            assumption, self._system, v_t, self._state_only
        )

    def check_all(
        self, conditions: list[Condition], deadline: float | None = None
    ) -> OracleReport:
        """Check every condition; stops early when the deadline passes.

        A truncated report mirrors the paper's timeout rows: ``α`` is
        computed over the conditions checked so far.  The deadline also
        cuts off a condition mid-strengthening (see :meth:`check`); the
        partial outcome is kept so its counterexample is not lost.
        """
        report = OracleReport()
        for condition in conditions:
            if deadline is not None and time.monotonic() > deadline:
                report.truncated = True
                break
            outcome = self.check(condition, deadline=deadline)
            report.outcomes.append(outcome)
            if outcome.truncated:
                report.truncated = True
                break
        return report
