"""Evaluation metrics and Table-I row formatting.

Collects the quantities the paper reports per FSA:

* ``|X|`` -- number of observable variables,
* ``k``  -- counterexample-validity bound,
* ``i``  -- model-learning iterations,
* ``d``  -- fraction of ground-truth transitions matched,
* ``N``  -- states in the final model,
* ``α``  -- degree of completeness,
* ``T``  -- runtime in seconds,
* ``%Tm`` -- share of runtime spent in model learning,

plus the random-sampling baseline's ``N``, ``α`` and ``T``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TableRow:
    """One row of the reproduction's Table I."""

    benchmark: str
    fsa: str
    num_observables: int
    k: int
    iterations: int
    d: float
    num_states: int
    alpha: float
    time_seconds: float
    percent_learning: float
    timed_out: bool = False

    HEADER = (
        f"{'Benchmark':<44} {'FSA':<22} {'|X|':>4} {'k':>4} "
        f"{'i':>3} {'d':>5} {'N':>3} {'α':>5} {'T(s)':>8} {'%Tm':>6}"
    )

    def format(self) -> str:
        time_text = "timeout" if self.timed_out else f"{self.time_seconds:.1f}"
        return (
            f"{self.benchmark:<44} {self.fsa:<22} {self.num_observables:>4} "
            f"{self.k:>4} {self.iterations:>3} {_metric(self.d):>5} "
            f"{self.num_states:>3} {_metric(self.alpha):>5} {time_text:>8} "
            f"{self.percent_learning:>5.1f}"
        )


@dataclass
class BaselineRow:
    """Random-sampling columns of Table I."""

    benchmark: str
    fsa: str
    num_states: int
    alpha: float
    time_seconds: float
    failed: bool = False  # learner crash (the paper's T2M segfaults)

    HEADER = (
        f"{'Benchmark':<44} {'FSA':<22} {'N':>3} {'α':>5} {'T(s)':>8}"
    )

    def format(self) -> str:
        if self.failed:
            return (
                f"{self.benchmark:<44} {self.fsa:<22} "
                f"{'--':>3} {'--':>5} {'fail':>8}"
            )
        return (
            f"{self.benchmark:<44} {self.fsa:<22} {self.num_states:>3} "
            f"{_metric(self.alpha):>5} {self.time_seconds:>8.1f}"
        )


def _metric(value: float) -> str:
    """Render d/α the way the paper does (1 or one decimal)."""
    if value == 1.0:
        return "1"
    if value == 0.0:
        return "0"
    return f"{value:.1f}"


def format_table(rows: list[TableRow]) -> str:
    lines = [TableRow.HEADER, "-" * len(TableRow.HEADER)]
    lines.extend(row.format() for row in rows)
    return "\n".join(lines)


def format_baseline_table(rows: list[BaselineRow]) -> str:
    lines = [BaselineRow.HEADER, "-" * len(BaselineRow.HEADER)]
    lines.extend(row.format() for row in rows)
    return "\n".join(lines)
