"""Invariants extracted from the final abstraction (paper §III, §VI).

When the algorithm terminates with ``α = 1``, every (possibly
strengthened) condition is an invariant of the implementation: useful as
additional specifications for verifying other implementations of the
same design, and as human-readable insight into the system.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..expr.ast import Expr
from ..expr.printer import to_str
from ..expr.subst import to_primed
from ..mc.condition_check import check_condition
from ..system.transition_system import SymbolicSystem
from .conditions import ConditionKind
from .oracle import ConditionOutcome


@dataclass(frozen=True)
class Invariant:
    """``assumption(v_t) ∧ R(v_t, v_t+1) ⟹ conclusion(v_t+1)``."""

    assumption: Expr
    conclusion: Expr
    origin: str  # which condition produced it

    def render(self, style: str = "paper") -> str:
        arrow = " ⟹ " if style == "paper" else " -> "
        return (
            f"{to_str(self.assumption, style)} ∧ R{arrow}"
            f"{to_str(to_primed(self.conclusion), style)}"
            if style == "paper"
            else f"{to_str(self.assumption, style)} && R{arrow}"
            f"{to_str(to_primed(self.conclusion), style)}"
        )


def extract_invariants(
    system: SymbolicSystem, outcomes: list[ConditionOutcome]
) -> list[Invariant]:
    """Invariants from the conditions that hold (final assumptions)."""
    invariants = []
    for outcome in outcomes:
        if not outcome.holds:
            continue
        assumption = (
            system.init
            if outcome.condition.kind is ConditionKind.INIT
            else outcome.final_assumption
        )
        invariants.append(
            Invariant(
                assumption=assumption,
                conclusion=outcome.condition.conclusion,
                origin=outcome.condition.describe(),
            )
        )
    return invariants


def validate_invariants(
    system: SymbolicSystem, invariants: list[Invariant]
) -> bool:
    """Re-check every invariant against the implementation."""
    return all(
        check_condition(system, inv.assumption, inv.conclusion).holds
        for inv in invariants
    )


def render_invariants(invariants: list[Invariant]) -> str:
    return "\n".join(
        f"[{index}] {invariant.render()}"
        for index, invariant in enumerate(invariants, start=1)
    )
