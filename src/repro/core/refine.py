"""Counterexample-to-trace refinement (paper §III-B).

A violated condition yields a counterexample ``(v_t, v_t+1)``.  New
traces are constructed by splicing it onto the input traces: for each
trace ``σ ∈ T``, the *smallest* prefix ``σ' = v_1..v_j`` with
``v_j |= r`` is extended as ``σ_CE = v_1, ..., v_j-1, v_t, v_t+1``.
Since ``v_t |= r``, the new trace keeps the behaviour represented by the
prefix and augments it with the missing behaviour.

Condition (1) violations produce the trace ``[v_1]`` directly (the
counterexample's second observation is a genuine first observation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..expr.ast import Expr
from ..expr.eval import holds
from ..system.valuation import Valuation
from ..traces.trace import Trace, TraceSet
from .conditions import ConditionKind
from .oracle import ConditionOutcome


def splice_counterexample(
    traces: TraceSet,
    assumption: Expr,
    counterexample: tuple[Valuation, Valuation],
) -> list[Trace]:
    """The σ_CE construction for a condition-(2) counterexample."""
    v_t, v_t1 = counterexample
    new_traces: list[Trace] = []
    seen: set[Trace] = set()
    for trace in traces:
        prefix_end = None
        for index, observation in enumerate(trace):
            if holds(assumption, observation):
                prefix_end = index
                break
        if prefix_end is None:
            continue
        spliced = Trace(
            tuple(trace.observations[:prefix_end]) + (v_t, v_t1)
        )
        if spliced not in seen:
            seen.add(spliced)
            new_traces.append(spliced)
    if not new_traces:
        # No input trace visits an r-observation (possible after heavy
        # strengthening): fall back to the bare counterexample pair so
        # the learner still sees the missing behaviour.
        new_traces.append(Trace([v_t, v_t1]))
    return new_traces


def counterexample_traces(
    traces: TraceSet, outcome: ConditionOutcome
) -> list[Trace]:
    """New traces ``T_CE`` for one violated condition."""
    if outcome.holds or outcome.counterexample is None:
        return []
    if outcome.condition.kind is ConditionKind.INIT:
        _v0, v1 = outcome.counterexample
        return [Trace([v1])]
    assumption = outcome.final_assumption
    assert assumption is not None
    return splice_counterexample(traces, assumption, outcome.counterexample)


@dataclass
class AugmentResult:
    """Outcome of one refinement round.

    ``added`` is the exact delta spliced into the trace set, in
    insertion order -- what a learner session consumes.  Splicing can
    reproduce a trace the set already contains (e.g. two violations
    sharing a prefix, or a counterexample re-derived in a later
    iteration); those are deduplicated against the set and counted in
    ``duplicates_skipped``, so sessions never receive a no-op delta.
    """

    added: list[Trace] = field(default_factory=list)
    duplicates_skipped: int = 0

    @property
    def num_added(self) -> int:
        return len(self.added)


def augment_traces(
    traces: TraceSet, outcomes: list[ConditionOutcome]
) -> AugmentResult:
    """Add ``T_CE`` for every violation to ``traces``.

    Returns the genuinely-new traces (the session delta) plus how many
    spliced candidates were already present.
    """
    result = AugmentResult()
    for outcome in outcomes:
        for trace in counterexample_traces(traces, outcome):
            if traces.add(trace):
                result.added.append(trace)
            else:
                result.duplicates_skipped += 1
    return result
