"""Trace substrate: traces, trace sets, generation and serialisation."""

from .generate import guided_trace, random_trace, random_traces
from .io import (
    load_csv,
    load_json,
    read_csv,
    read_json,
    save_csv,
    save_json,
    write_csv,
    write_json,
)
from .trace import Trace, TraceSet

__all__ = [
    "Trace",
    "TraceSet",
    "guided_trace",
    "load_csv",
    "load_json",
    "random_trace",
    "random_traces",
    "read_csv",
    "read_json",
    "save_csv",
    "save_json",
    "write_csv",
    "write_json",
]
