"""Trace generation by executing the system on sampled inputs.

This is the paper's initial-trace-set construction (§IV-B: "an initial
set of 50 traces, each of length 50, by executing the system with
randomly sampled inputs") and the random-sampling baseline (§IV-C).

For the long-trace workload (companion paper, PAPERS.md) the module
also provides *streaming* generation: :func:`iter_trace` yields
observations one at a time without materialising the execution, and
:func:`long_trace_events` emits 10⁶+-event logs — optionally with a
periodic input schedule, the repetitive shape real logs have — in
O(1) memory, ready to feed :func:`repro.traces.segment.segment_trace`
or :func:`repro.traces.io.write_jsonl_events`.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Callable, Iterable, Iterator

from ..system.transition_system import SymbolicSystem
from ..system.valuation import Valuation
from .trace import Trace, TraceSet

InputSampler = Callable[[random.Random], dict[str, int]]


def random_trace(
    system: SymbolicSystem,
    length: int,
    rng: random.Random,
    sampler: InputSampler | None = None,
) -> Trace:
    """One execution trace of the given length from the initial state."""
    sample = sampler or system.random_inputs
    inputs = [sample(rng) for _ in range(length)]
    return Trace(system.run(inputs))


def random_traces(
    system: SymbolicSystem,
    count: int = 50,
    length: int = 50,
    seed: int = 0,
    sampler: InputSampler | None = None,
) -> TraceSet:
    """The paper's default initial trace set: 50 traces of length 50."""
    rng = random.Random(seed)
    traces = TraceSet()
    for _ in range(count):
        traces.add(random_trace(system, length, rng, sampler))
    return traces


def guided_trace(
    system: SymbolicSystem, input_seq: list[dict[str, int]]
) -> Trace:
    """Trace from an explicit input sequence (used by tests/examples)."""
    return Trace(system.run(input_seq))


# ----------------------------------------------------------------------
# Streaming generation (long-trace workload)
# ----------------------------------------------------------------------

def iter_trace(
    system: SymbolicSystem,
    input_seq: Iterable[dict[str, int]],
) -> Iterator[Valuation]:
    """Execute from the initial state, yielding observations lazily.

    Streaming counterpart of ``system.run``: consumes the input
    iterable one step at a time and never materialises the execution,
    so trace length is bounded only by the input stream.
    """
    state = system.init_state
    for inputs in input_seq:
        state = system.step(state, inputs)
        yield system.observe(state, inputs)


def periodic_inputs(
    system: SymbolicSystem,
    period: int,
    seed: int = 0,
    sampler: InputSampler | None = None,
) -> Iterator[dict[str, int]]:
    """An endlessly repeating input schedule of the given period.

    Samples ``period`` random inputs once, then cycles them — the
    eventually-periodic shape of real instrumentation logs, and the
    shape that makes the segment-dedup memo of
    :class:`repro.learn.segmented.SegmentedLearner` pay off.
    """
    if period < 1:
        raise ValueError(f"period must be >= 1, got {period}")
    rng = random.Random(seed)
    sample = sampler or system.random_inputs
    cycle = [sample(rng) for _ in range(period)]
    return itertools.cycle(cycle)


def long_trace_events(
    system: SymbolicSystem,
    length: int,
    seed: int = 0,
    period: int | None = None,
    sampler: InputSampler | None = None,
) -> Iterator[Valuation]:
    """A long execution trace as a bounded-memory observation stream.

    With ``period`` set, inputs follow :func:`periodic_inputs` (a
    repetitive log); otherwise every step is sampled independently.
    Deterministic in ``seed`` either way.  Memory is O(1) in
    ``length`` — suitable for 10⁶+-event traces.
    """
    if length < 0:
        raise ValueError(f"length must be >= 0, got {length}")
    if period is not None:
        inputs: Iterator[dict[str, int]] = periodic_inputs(
            system, period, seed=seed, sampler=sampler
        )
    else:
        rng = random.Random(seed)
        sample = sampler or system.random_inputs
        inputs = (sample(rng) for _ in itertools.count())
    return iter_trace(system, itertools.islice(inputs, length))
