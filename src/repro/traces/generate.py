"""Trace generation by executing the system on sampled inputs.

This is the paper's initial-trace-set construction (§IV-B: "an initial
set of 50 traces, each of length 50, by executing the system with
randomly sampled inputs") and the random-sampling baseline (§IV-C).
"""

from __future__ import annotations

import random
from collections.abc import Callable

from ..system.transition_system import SymbolicSystem
from .trace import Trace, TraceSet

InputSampler = Callable[[random.Random], dict[str, int]]


def random_trace(
    system: SymbolicSystem,
    length: int,
    rng: random.Random,
    sampler: InputSampler | None = None,
) -> Trace:
    """One execution trace of the given length from the initial state."""
    sample = sampler or system.random_inputs
    inputs = [sample(rng) for _ in range(length)]
    return Trace(system.run(inputs))


def random_traces(
    system: SymbolicSystem,
    count: int = 50,
    length: int = 50,
    seed: int = 0,
    sampler: InputSampler | None = None,
) -> TraceSet:
    """The paper's default initial trace set: 50 traces of length 50."""
    rng = random.Random(seed)
    traces = TraceSet()
    for _ in range(count):
        traces.add(random_trace(system, length, rng, sampler))
    return traces


def guided_trace(
    system: SymbolicSystem, input_seq: list[dict[str, int]]
) -> Trace:
    """Trace from an explicit input sequence (used by tests/examples)."""
    return Trace(system.run(input_seq))
