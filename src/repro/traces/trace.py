"""Traces and trace sets (paper §II-A).

A trace is a finite sequence of observations ``v_1, ..., v_n``.  Positive
(execution) traces correspond to system execution paths; every finite
prefix of an execution trace is again an execution trace, so learned
languages must be prefix-closed.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator, Sequence
from itertools import islice

from ..system.valuation import Valuation


@dataclass(frozen=True)
class Trace:
    """A finite sequence of observations."""

    observations: tuple[Valuation, ...]

    def __init__(self, observations: Iterable[Valuation]):
        object.__setattr__(self, "observations", tuple(observations))

    def __len__(self) -> int:
        return len(self.observations)

    def __iter__(self) -> Iterator[Valuation]:
        return iter(self.observations)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Trace(self.observations[index])
        return self.observations[index]

    def __repr__(self) -> str:
        return f"Trace(len={len(self.observations)})"

    def prefix(self, length: int) -> "Trace":
        """The prefix of the given length."""
        if not 0 <= length <= len(self.observations):
            raise ValueError(f"bad prefix length {length} for {self!r}")
        return Trace(self.observations[:length])

    def prefixes(self) -> Iterator["Trace"]:
        """All non-empty prefixes, shortest first."""
        for length in range(1, len(self.observations) + 1):
            yield self.prefix(length)

    def extended(self, *observations: Valuation) -> "Trace":
        return Trace(self.observations + tuple(observations))

    @property
    def variables(self) -> tuple[str, ...]:
        if not self.observations:
            return ()
        return tuple(sorted(self.observations[0]))


class TraceSliceView(Sequence[Trace]):
    """A lazy, immutable window over a :class:`TraceSet`'s append log.

    Returned by :meth:`TraceSet.since`.  The view pins ``[start, stop)``
    at construction time; because trace sets are append-only, the
    underlying entries can never change, so the view is safe to hold
    indefinitely and costs O(1) to create — no per-call tuple copy even
    when the delta spans millions of traces.

    The view compares equal to any sequence with the same elements
    (``since(v) == ()`` and ``since(0) == tuple(traces)`` both hold),
    and slicing with a plain ``[i:j]`` range returns another lazy view.
    """

    __slots__ = ("_log", "_start", "_stop")

    def __init__(self, log: list[Trace], start: int, stop: int):
        self._log = log
        self._start = start
        self._stop = stop

    def __len__(self) -> int:
        return self._stop - self._start

    def __iter__(self) -> Iterator[Trace]:
        return islice(iter(self._log), self._start, self._stop)

    def __getitem__(self, index):
        length = len(self)
        if isinstance(index, slice):
            start, stop, step = index.indices(length)
            if step == 1:
                return TraceSliceView(
                    self._log, self._start + start, self._start + stop
                )
            return tuple(self._log[self._start:self._stop][index])
        if index < 0:
            index += length
        if not 0 <= index < length:
            raise IndexError(index)
        return self._log[self._start + index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TraceSliceView):
            if (
                self._log is other._log
                and self._start == other._start
                and self._stop == other._stop
            ):
                return True
            return len(self) == len(other) and all(
                a == b for a, b in zip(self, other)
            )
        if isinstance(other, (tuple, list)):
            return len(self) == len(other) and all(
                a == b for a, b in zip(self, other)
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash(tuple(self))

    def __repr__(self) -> str:
        return f"TraceSliceView(len={len(self)})"


class TraceSet:
    """A deduplicating, order-preserving collection of traces.

    Trace sets are *append-only*: there is deliberately no removal
    operation, so the set only ever grows.  This monotone-growth
    invariant is what makes incremental re-learning sound (the learner
    sessions of :mod:`repro.learn` extend their internal structures in
    place and never have to handle retraction), and the append log
    doubles as a delta view: :attr:`version` is a snapshot marker and
    :meth:`since` returns exactly the traces added after a snapshot, in
    insertion order.
    """

    def __init__(self, traces: Iterable[Trace] = ()):
        self._traces: list[Trace] = []
        self._seen: set[Trace] = set()
        for trace in traces:
            self.add(trace)

    def add(self, trace: Trace) -> bool:
        """Add a trace; returns False if it was already present."""
        if trace in self._seen:
            return False
        self._seen.add(trace)
        self._traces.append(trace)
        return True

    def update(self, traces: Iterable[Trace]) -> int:
        """Add many traces; returns how many were new."""
        return sum(1 for trace in traces if self.add(trace))

    def __len__(self) -> int:
        return len(self._traces)

    def __iter__(self) -> Iterator[Trace]:
        return iter(self._traces)

    def __contains__(self, trace: Trace) -> bool:
        return trace in self._seen

    def __repr__(self) -> str:
        return f"TraceSet(traces={len(self._traces)}, obs={self.total_observations})"

    @property
    def total_observations(self) -> int:
        return sum(len(trace) for trace in self._traces)

    @property
    def version(self) -> int:
        """Snapshot marker for the append log (= number of traces).

        Because the set is append-only, ``version`` is monotone and two
        snapshots ``a <= b`` delimit exactly the traces added between
        them: ``traces.since(a)[: b - a]``.
        """
        return len(self._traces)

    def since(self, version: int) -> TraceSliceView:
        """The traces appended after snapshot ``version``, in order.

        This is the delta view learner sessions consume: after an
        iteration adds counterexample traces, ``since(v)`` for the
        pre-iteration ``v`` is precisely the new material.

        Returns a lazy O(1) :class:`TraceSliceView` pinned to the
        current length (the append log never mutates existing entries,
        so the view stays valid as the set grows).  It compares equal
        to the tuple it used to be; see ``docs/long_traces.md`` for the
        micro-benchmark that motivated dropping the per-call copy.
        """
        if not 0 <= version <= len(self._traces):
            raise ValueError(
                f"snapshot {version} out of range for {self!r}"
            )
        return TraceSliceView(self._traces, version, len(self._traces))

    def copy(self) -> "TraceSet":
        return TraceSet(self._traces)

    def union(self, other: "TraceSet") -> "TraceSet":
        merged = self.copy()
        merged.update(other)
        return merged

    def observations(self) -> Iterator[Valuation]:
        """All observations across all traces (with repetition)."""
        for trace in self._traces:
            yield from trace

    def consecutive_pairs(self) -> Iterator[tuple[Valuation, Valuation]]:
        """All (v_t, v_t+1) pairs across all traces."""
        for trace in self._traces:
            for i in range(len(trace) - 1):
                yield trace[i], trace[i + 1]
