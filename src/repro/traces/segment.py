"""Trace segmentation for long-trace learning (companion paper).

*Learning Concise Models from Long Execution Traces* (Jeppu, Melham,
Kroening, O'Leary — PAPERS.md) makes SAT-based learning tractable on
10⁵–10⁷-event traces by slicing the trace into overlapping segments,
learning a model per segment, and unifying the per-segment models.
This module provides the slicer; the learner lives in
:mod:`repro.learn.segmented` and the unifier in
:mod:`repro.automata.splice`.

Segmentation contract (``length`` L, ``overlap`` w, stride L − w):

* segment ``i`` covers events ``[i·(L−w), i·(L−w) + L)``;
* consecutive segments share exactly ``w`` events, so with ``w ≥ 1``
  every consecutive observation pair of the original trace lies inside
  some segment — nothing the learner must explain is lost;
* the original event sequence is reconstructed by concatenating
  segment 0 with each later segment minus its first ``w`` events
  (:func:`stitch_segments`), which is the property the round-trip
  tests pin down.

The slicer consumes any iterable — including the streaming readers of
:mod:`repro.traces.io` and the generators of
:mod:`repro.traces.generate` — holding at most ``L`` events at a time,
so a million-event log is segmented with bounded memory.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from ..system.valuation import Valuation
from .trace import Trace


def segment_trace(
    events: Iterable[Valuation],
    length: int,
    overlap: int = 1,
) -> Iterator[Trace]:
    """Slice an event stream into overlapping :class:`Trace` segments.

    Yields segments of ``length`` events with ``overlap`` shared events
    between consecutive segments; the final segment may be shorter.  An
    empty stream yields nothing.  Memory is bounded by ``length``
    regardless of stream size.
    """
    if length < 2:
        raise ValueError(f"segment length must be >= 2, got {length}")
    if not 0 <= overlap < length:
        raise ValueError(
            f"segment overlap must be in [0, length), got {overlap} "
            f"for length {length}"
        )
    stride = length - overlap
    window: list[Valuation] = []
    emitted = False
    for event in events:
        window.append(event)
        if len(window) == length:
            yield Trace(window)
            emitted = True
            del window[:stride]
    # Tail: events past the last full segment (or a stream shorter than
    # one segment).  A leftover window of exactly `overlap` events is
    # fully covered by the previous segment — nothing to emit.
    if not emitted:
        if window:
            yield Trace(window)
    elif len(window) > overlap:
        yield Trace(window)


def stitch_segments(
    segments: Iterable[Trace | Iterable[Valuation]],
    overlap: int,
) -> Iterator[Valuation]:
    """Reconstruct the original event stream from overlapping segments.

    Inverse of :func:`segment_trace` for the same ``overlap``: yields
    segment 0 in full, then each later segment minus its first
    ``overlap`` events.
    """
    if overlap < 0:
        raise ValueError(f"overlap must be >= 0, got {overlap}")
    first = True
    for segment in segments:
        observations = list(segment)
        if first:
            first = False
            yield from observations
        else:
            yield from observations[overlap:]


def segment_count(total_events: int, length: int, overlap: int) -> int:
    """How many segments :func:`segment_trace` yields for a given size."""
    if total_events <= 0:
        return 0
    if total_events <= length:
        return 1
    stride = length - overlap
    # Full segments, plus one tail segment if uncovered events remain.
    full = 1 + (total_events - length) // stride
    covered = length + (full - 1) * stride
    return full + (1 if total_events > covered else 0)
