"""Trace serialisation: CSV, JSON, and appendable JSONL event logs.

The CSV layout matches what a trace-collection harness would dump from an
instrumented run: a ``trace`` column identifying the execution, a ``step``
column, then one column per observable variable.

The JSONL layout is the *appendable* variant of the same idea: one JSON
object per line, ``{"trace": <index>, "obs": {<var>: <value>, ...}}``, so
a harness can append observations as they happen and a reader can consume
the log with bounded memory.  Both formats have streaming readers
(:func:`iter_csv` / :func:`iter_jsonl`) that yield ``(trace_index,
Valuation)`` events one at a time; the eager ``read_*``/``load_*`` API is
a thin collector over them.

Streaming contract: events for one trace are contiguous and steps appear
in order (which is exactly what the writers emit).  Violations — and any
malformed row — raise :class:`TraceFormatError` with the offending line
number, never a ``MemoryError`` from buffering an unbounded group.
"""

from __future__ import annotations

import csv
import json
from collections.abc import Iterable, Iterator
from pathlib import Path
from typing import TextIO

from ..system.valuation import Valuation
from .trace import Trace, TraceSet

#: A streamed trace event: (trace index, observation).
TraceEvent = tuple[int, Valuation]


class TraceFormatError(ValueError):
    """A trace file is malformed (bad header, row, or event ordering)."""


# ----------------------------------------------------------------------
# CSV
# ----------------------------------------------------------------------

def write_csv(traces: TraceSet, out: TextIO) -> None:
    """Write a trace set as CSV."""
    variables: list[str] = []
    for trace in traces:
        if len(trace):
            variables = list(trace[0])
            break
    writer = csv.writer(out)
    writer.writerow(["trace", "step", *variables])
    for index, trace in enumerate(traces):
        for step, obs in enumerate(trace):
            writer.writerow([index, step, *(obs[name] for name in variables)])


def iter_csv(src: TextIO) -> Iterator[TraceEvent]:
    """Stream ``(trace_index, observation)`` events from a trace CSV.

    Bounded memory: one row is held at a time, never a whole trace.
    Rows must be grouped by trace with steps in order (as written by
    :func:`write_csv`); anything else raises :class:`TraceFormatError`.
    """
    reader = csv.reader(src)
    header = next(reader, None)
    if header is None or header[:2] != ["trace", "step"]:
        raise TraceFormatError(
            "not a trace CSV (expected 'trace,step,...' header)"
        )
    variables = header[2:]
    width = len(header)
    seen: set[int] = set()
    current = -1
    next_step = 0
    for lineno, row in enumerate(reader, start=2):
        if not row:
            continue
        if len(row) != width:
            raise TraceFormatError(
                f"line {lineno}: expected {width} columns, got {len(row)}"
            )
        try:
            index, step = int(row[0]), int(row[1])
            values = Valuation(
                {
                    name: int(value)
                    for name, value in zip(variables, row[2:], strict=True)
                }
            )
        except (TypeError, ValueError) as exc:
            raise TraceFormatError(f"line {lineno}: malformed row: {exc}") from exc
        if index != current:
            if index in seen:
                raise TraceFormatError(
                    f"line {lineno}: trace {index} is not contiguous"
                )
            seen.add(index)
            current = index
            next_step = 0
        if step != next_step:
            raise TraceFormatError(
                f"line {lineno}: trace {index} expected step {next_step}, "
                f"got {step}"
            )
        next_step += 1
        yield index, values


def read_csv(src: TextIO) -> TraceSet:
    """Read a trace set written by :func:`write_csv`.

    Thin collector over :func:`iter_csv`.
    """
    return collect_events(iter_csv(src))


def save_csv(traces: TraceSet, path: str | Path) -> None:
    with open(path, "w", newline="") as out:
        write_csv(traces, out)


def load_csv(path: str | Path) -> TraceSet:
    with open(path, newline="") as src:
        return read_csv(src)


# ----------------------------------------------------------------------
# JSON (one document per trace set)
# ----------------------------------------------------------------------

def write_json(traces: TraceSet, out: TextIO) -> None:
    payload = [[obs.as_dict() for obs in trace] for trace in traces]
    json.dump(payload, out, indent=2)


def read_json(src: TextIO) -> TraceSet:
    try:
        payload = json.load(src)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"not a trace JSON document: {exc}") from exc
    if not isinstance(payload, list):
        raise TraceFormatError("trace JSON must be a list of traces")
    traces = TraceSet()
    for t_index, raw_trace in enumerate(payload):
        if not isinstance(raw_trace, list):
            raise TraceFormatError(f"trace {t_index} is not a list")
        traces.add(Trace(_valuation(obs, f"trace {t_index}") for obs in raw_trace))
    return traces


def save_json(traces: TraceSet, path: str | Path) -> None:
    with open(path, "w") as out:
        write_json(traces, out)


def load_json(path: str | Path) -> TraceSet:
    with open(path) as src:
        return read_json(src)


# ----------------------------------------------------------------------
# JSONL (appendable event log)
# ----------------------------------------------------------------------

def write_jsonl(traces: TraceSet | Iterable[Trace], out: TextIO) -> None:
    """Write traces as a JSONL event log (one observation per line)."""
    write_jsonl_events(
        ((index, obs) for index, trace in enumerate(traces) for obs in trace),
        out,
    )


def write_jsonl_events(events: Iterable[TraceEvent], out: TextIO) -> None:
    """Append streamed ``(trace_index, observation)`` events as JSONL."""
    for index, obs in events:
        out.write(
            json.dumps({"trace": index, "obs": obs.as_dict()}, sort_keys=True)
        )
        out.write("\n")


def iter_jsonl(src: TextIO) -> Iterator[TraceEvent]:
    """Stream ``(trace_index, observation)`` events from a JSONL log.

    Bounded memory: one line at a time.  Events for one trace must be
    contiguous (the log is append-only per run); violations raise
    :class:`TraceFormatError`.
    """
    seen: set[int] = set()
    current = -1
    for lineno, line in enumerate(src, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"line {lineno}: not JSON: {exc}") from exc
        if not isinstance(record, dict) or "obs" not in record:
            raise TraceFormatError(
                f"line {lineno}: expected {{'trace': i, 'obs': {{...}}}}"
            )
        try:
            index = int(record.get("trace", 0))
        except (TypeError, ValueError) as exc:
            raise TraceFormatError(
                f"line {lineno}: bad trace index: {record.get('trace')!r}"
            ) from exc
        if index != current:
            if index in seen:
                raise TraceFormatError(
                    f"line {lineno}: trace {index} is not contiguous"
                )
            seen.add(index)
            current = index
        yield index, _valuation(record["obs"], f"line {lineno}")


def read_jsonl(src: TextIO) -> TraceSet:
    """Read a trace set from a JSONL event log (thin collector)."""
    return collect_events(iter_jsonl(src))


def save_jsonl(traces: TraceSet, path: str | Path) -> None:
    with open(path, "w") as out:
        write_jsonl(traces, out)


def load_jsonl(path: str | Path) -> TraceSet:
    with open(path) as src:
        return read_jsonl(src)


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------

def collect_events(events: Iterable[TraceEvent]) -> TraceSet:
    """Group a contiguous event stream into a :class:`TraceSet`.

    This is the eager endpoint of the streaming API; it materialises
    every trace, so for genuinely long logs prefer consuming the event
    iterator directly (e.g. via ``segment_trace``).
    """
    traces = TraceSet()
    current = -1
    pending: list[Valuation] = []
    for index, obs in events:
        if index != current:
            if pending:
                traces.add(Trace(pending))
            current = index
            pending = []
        pending.append(obs)
    if pending:
        traces.add(Trace(pending))
    return traces


def _valuation(raw: object, where: str) -> Valuation:
    if not isinstance(raw, dict):
        raise TraceFormatError(f"{where}: observation is not an object")
    try:
        return Valuation({str(name): int(value) for name, value in raw.items()})
    except (TypeError, ValueError) as exc:
        raise TraceFormatError(f"{where}: non-integer observation: {exc}") from exc
