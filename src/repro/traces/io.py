"""Trace serialisation: CSV (one file per trace set) and JSON.

The CSV layout matches what a trace-collection harness would dump from an
instrumented run: a ``trace`` column identifying the execution, a ``step``
column, then one column per observable variable.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import TextIO

from ..system.valuation import Valuation
from .trace import Trace, TraceSet


def write_csv(traces: TraceSet, out: TextIO) -> None:
    """Write a trace set as CSV."""
    variables: list[str] = []
    for trace in traces:
        if len(trace):
            variables = list(trace[0])
            break
    writer = csv.writer(out)
    writer.writerow(["trace", "step", *variables])
    for index, trace in enumerate(traces):
        for step, obs in enumerate(trace):
            writer.writerow([index, step, *(obs[name] for name in variables)])


def read_csv(src: TextIO) -> TraceSet:
    """Read a trace set written by :func:`write_csv`."""
    reader = csv.reader(src)
    header = next(reader, None)
    if header is None or header[:2] != ["trace", "step"]:
        raise ValueError("not a trace CSV (expected 'trace,step,...' header)")
    variables = header[2:]
    grouped: dict[int, list[tuple[int, Valuation]]] = {}
    for row in reader:
        if not row:
            continue
        index, step = int(row[0]), int(row[1])
        values = Valuation(
            {name: int(value) for name, value in zip(variables, row[2:], strict=False)}
        )
        grouped.setdefault(index, []).append((step, values))
    traces = TraceSet()
    for index in sorted(grouped):
        steps = [obs for _step, obs in sorted(grouped[index])]
        traces.add(Trace(steps))
    return traces


def save_csv(traces: TraceSet, path: str | Path) -> None:
    with open(path, "w", newline="") as out:
        write_csv(traces, out)


def load_csv(path: str | Path) -> TraceSet:
    with open(path, newline="") as src:
        return read_csv(src)


def write_json(traces: TraceSet, out: TextIO) -> None:
    payload = [[obs.as_dict() for obs in trace] for trace in traces]
    json.dump(payload, out, indent=2)


def read_json(src: TextIO) -> TraceSet:
    payload = json.load(src)
    traces = TraceSet()
    for raw_trace in payload:
        traces.add(Trace(Valuation(obs) for obs in raw_trace))
    return traces


def save_json(traces: TraceSet, path: str | Path) -> None:
    with open(path, "w") as out:
        write_json(traces, out)


def load_json(path: str | Path) -> TraceSet:
    with open(path) as src:
        return read_json(src)
