"""Model unification by overlap splicing (companion paper construction).

Per-segment learning (:mod:`repro.learn.segmented`) produces one small
NFA per overlapping trace segment.  This module unifies them:

1. Take the disjoint union of one *copy* of the per-segment model per
   segment occurrence (copies are virtual — only the quotient is ever
   materialised).
2. For each pair of consecutive segments in a chain (= one original
   long trace), align the ``overlap + 1`` run positions that both
   segments explain: after reading ``j`` of the shared events the
   previous copy is in its run state at position ``L_prev − w + j`` and
   the current copy at position ``j``.  Union-find merges every aligned
   pair, splicing the copies into one machine that admits the whole
   trace.
3. Optionally merge states whose *learned names* agree globally (e.g.
   two occurrences of mode ``On`` in non-adjacent segments), excluding
   the initial pseudo-states of non-chain-first copies — those stand
   for "somewhere mid-trace", not for a mode, and must only merge via
   the positional alignment of step 2.
4. Emit the quotient, prune states unreachable from the unified
   initial states, and (optionally) run the existing bisimulation
   minimisation.

Merging NFA states only ever grows the language, so the unified model
admits every input trace (soundness).  For learners whose runs are
deterministic after the first observation — T2M without guard
synthesis/initial-merging, over an explicit variable basis — the
result is exactly the minimised monolithic model; see
``docs/long_traces.md`` for the precision-loss cases.

Everything here is deterministic in the *sequence of calls*: the
quotient depends only on segment order, never on which process learned
a segment or when it finished.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..expr.ast import Expr
from .minimize import minimize_bisimulation
from .nfa import SymbolicNFA

#: Run window: state sets at ``overlap + 1`` consecutive run positions.
RunWindow = Sequence[frozenset[int]]


def run_windows(
    model: SymbolicNFA, segment, overlap: int
) -> tuple[tuple[frozenset[int], ...], tuple[frozenset[int], ...]]:
    """The (entry, exit) run windows a splicer needs for one segment.

    ``entry`` holds the run state sets at positions ``0..overlap`` and
    ``exit`` at the last ``overlap + 1`` positions, for ``model`` run
    on the very segment it was learned from (so the run never dies).
    Computed next to the learner — in a worker, for parallel runs — so
    the splicing parent touches only O(overlap) state sets per segment.
    """
    run = [frozenset(states) for states in model.run(segment)]
    if not run[-1]:
        raise ValueError(
            "segment model does not admit its own segment; refusing to splice"
        )
    width = min(overlap + 1, len(run))
    return tuple(run[:width]), tuple(run[-width:])


class ModelSplicer:
    """Incrementally unify per-segment models into one NFA.

    Usage::

        splicer = ModelSplicer(overlap)
        for trace in long_traces:
            splicer.begin_chain()
            for segment in segment_trace(trace, length, overlap):
                model = learn(segment)
                entry, exit_ = run_windows(model, segment, overlap)
                splicer.add_segment(model, entry, exit_)
        unified = splicer.finish()

    The same model object may be passed for many occurrences (the
    segment-dedup memo does exactly that); each occurrence still gets
    its own virtual copy of the states.
    """

    def __init__(self, overlap: int, merge_named: bool = True):
        if overlap < 0:
            raise ValueError(f"overlap must be >= 0, got {overlap}")
        self.overlap = overlap
        self.merge_named = merge_named
        # Union-find over global state ids; occurrence i's local state s
        # has global id _occ_base[i] + s.
        self._parent: list[int] = []
        self._occ_models: list[SymbolicNFA] = []
        self._occ_base: list[int] = []
        self._occ_chain_first: list[bool] = []
        self._prev: tuple[int, tuple[frozenset[int], ...]] | None = None

    # ------------------------------------------------------------------
    # union-find
    # ------------------------------------------------------------------
    def _find(self, x: int) -> int:
        parent = self._parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def _union(self, a: int, b: int) -> None:
        ra, rb = self._find(a), self._find(b)
        if ra != rb:
            # Smaller id wins so class representatives — and hence the
            # final state order — depend only on insertion order.
            if rb < ra:
                ra, rb = rb, ra
            self._parent[rb] = ra

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def begin_chain(self) -> None:
        """Start splicing a new original trace (chain of segments)."""
        self._prev = None

    def add_segment(
        self,
        model: SymbolicNFA,
        entry: RunWindow,
        exit_: RunWindow,
    ) -> None:
        """Append one segment occurrence to the current chain.

        ``entry``/``exit_`` are the run windows from :func:`run_windows`
        (entry positions ``0..w``, exit positions ``L−w..L``).
        """
        base = len(self._parent)
        self._parent.extend(range(base, base + model.num_states))
        self._occ_models.append(model)
        self._occ_base.append(base)
        self._occ_chain_first.append(self._prev is None)
        if self._prev is not None:
            prev_base, prev_exit = self._prev
            width = min(len(prev_exit), len(entry))
            for j in range(width):
                aligned = sorted(
                    {prev_base + s for s in prev_exit[len(prev_exit) - width + j]}
                    | {base + s for s in entry[j]}
                )
                for other in aligned[1:]:
                    self._union(aligned[0], other)
        self._prev = (base, tuple(frozenset(states) for states in exit_))

    # ------------------------------------------------------------------
    # quotient
    # ------------------------------------------------------------------
    def finish(self, minimize: bool = True) -> SymbolicNFA:
        """Build the unified model from everything added so far."""
        if not self._occ_models:
            raise ValueError("no segments were added")
        if self.merge_named:
            self._merge_named_states()

        # Quotient classes, ordered by their minimal global id so the
        # result is independent of union-find internals.
        roots: list[int] = []
        root_index: dict[int, int] = {}
        names: list[str | None] = []
        initial: set[int] = set()
        for occ, model in enumerate(self._occ_models):
            base = self._occ_base[occ]
            chain_first = self._occ_chain_first[occ]
            for state in model.states:
                root = self._find(base + state)
                if root not in root_index:
                    root_index[root] = len(roots)
                    roots.append(root)
                    names.append(None)
                cls = root_index[root]
                if names[cls] is None:
                    names[cls] = model.raw_state_name(state)
                if chain_first and state in model.initial_states:
                    initial.add(cls)

        # Distinct quotient edges, in first-seen order.  Guards are
        # interned Exprs (identity hash), so the dedup set is O(1) per
        # edge and identical segments contribute each edge once.
        edges: list[tuple[int, Expr, int]] = []
        edge_seen: set[tuple[int, Expr, int]] = set()
        for occ, model in enumerate(self._occ_models):
            base = self._occ_base[occ]
            for transition in model.transitions:
                key = (
                    root_index[self._find(base + transition.src)],
                    transition.guard,
                    root_index[self._find(base + transition.dst)],
                )
                if key not in edge_seen:
                    edge_seen.add(key)
                    edges.append(key)

        # Prune classes unreachable from the unified initial states.
        adjacency: dict[int, list[int]] = {}
        for src, _guard, dst in edges:
            adjacency.setdefault(src, []).append(dst)
        reachable: set[int] = set()
        frontier = sorted(initial)
        while frontier:
            cls = frontier.pop()
            if cls in reachable:
                continue
            reachable.add(cls)
            frontier.extend(adjacency.get(cls, ()))

        unified = SymbolicNFA()
        renumber: dict[int, int] = {}
        for cls in range(len(roots)):
            if cls in reachable:
                renumber[cls] = unified.add_state(
                    names[cls], initial=cls in initial
                )
        for src, guard, dst in edges:
            if src in reachable and dst in reachable:
                unified.add_transition(renumber[src], guard, renumber[dst])
        if minimize:
            unified = minimize_bisimulation(unified)
        return unified

    def _merge_named_states(self) -> None:
        """Union states whose learned names agree (step 3 above).

        Initial states of non-chain-first occurrences are excluded:
        they model "resume mid-trace", not a mode, and may only merge
        positionally.  Chain-first initial states *do* merge across
        chains — every chain starts in the same real initial state.
        """
        by_name: dict[str, int] = {}
        for occ, model in enumerate(self._occ_models):
            base = self._occ_base[occ]
            chain_first = self._occ_chain_first[occ]
            for state in model.states:
                name = model.raw_state_name(state)
                if name is None:
                    continue
                if not chain_first and state in model.initial_states:
                    continue
                anchor = by_name.setdefault(name, base + state)
                self._union(anchor, base + state)
