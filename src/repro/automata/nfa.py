"""Symbolic NFAs: the learned abstractions (paper §II-A).

``M = (Q, Q0, Σ, F, δ)`` over the infinite alphabet of valuations:
transitions carry predicates over the observables, all states are
accepting, and a trace is rejected only by running into a dead end.  The
language is prefix-closed by construction.

States are integers; an optional name (typically the observed mode, e.g.
``"On"``) aids rendering and ground-truth comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator, Sequence

from ..expr.ast import Expr, free_vars
from ..expr.eval import holds
from ..system.valuation import Valuation
from ..traces.trace import Trace


@dataclass(frozen=True)
class Transition:
    """An edge ``src --guard--> dst``; the guard reads one observation."""

    src: int
    guard: Expr
    dst: int

    def enabled(self, observation: Valuation) -> bool:
        return holds(self.guard, observation)


class SymbolicNFA:
    """A mutable symbolic NFA (builders construct, algorithms query)."""

    def __init__(self) -> None:
        self._names: list[str | None] = []
        self._initial: set[int] = set()
        self._transitions: list[Transition] = []
        self._out: dict[int, list[Transition]] = {}
        self._in: dict[int, list[Transition]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_state(self, name: str | None = None, initial: bool = False) -> int:
        state = len(self._names)
        self._names.append(name)
        self._out[state] = []
        self._in[state] = []
        if initial:
            self._initial.add(state)
        return state

    def mark_initial(self, state: int) -> None:
        self._check_state(state)
        self._initial.add(state)

    def add_transition(self, src: int, guard: Expr, dst: int) -> Transition:
        self._check_state(src)
        self._check_state(dst)
        if not guard.sort.is_bool():
            raise TypeError(f"guard must be boolean, got sort {guard.sort}")
        transition = Transition(src, guard, dst)
        if transition in self._transitions:
            return transition
        self._transitions.append(transition)
        self._out[src].append(transition)
        self._in[dst].append(transition)
        return transition

    def _check_state(self, state: int) -> None:
        if not 0 <= state < len(self._names):
            raise ValueError(f"unknown state {state}")

    def copy(self) -> "SymbolicNFA":
        dup = SymbolicNFA()
        for state in self.states:
            dup.add_state(self._names[state], initial=state in self._initial)
        for transition in self._transitions:
            dup.add_transition(transition.src, transition.guard, transition.dst)
        return dup

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        return len(self._names)

    @property
    def num_transitions(self) -> int:
        return len(self._transitions)

    @property
    def states(self) -> range:
        return range(len(self._names))

    @property
    def initial_states(self) -> frozenset[int]:
        return frozenset(self._initial)

    @property
    def transitions(self) -> tuple[Transition, ...]:
        return tuple(self._transitions)

    def state_name(self, state: int) -> str:
        self._check_state(state)
        return self._names[state] or f"q{state}"

    def raw_state_name(self, state: int) -> str | None:
        """The assigned name, or None if the state was never named."""
        self._check_state(state)
        return self._names[state]

    def set_state_name(self, state: int, name: str) -> None:
        self._check_state(state)
        self._names[state] = name

    def state_by_name(self, name: str) -> int | None:
        for state, state_name in enumerate(self._names):
            if state_name == name:
                return state
        return None

    def outgoing(self, state: int) -> tuple[Transition, ...]:
        self._check_state(state)
        return tuple(self._out[state])

    def incoming(self, state: int) -> tuple[Transition, ...]:
        self._check_state(state)
        return tuple(self._in[state])

    def variables(self) -> set[str]:
        """Names of all variables mentioned in guards."""
        names: set[str] = set()
        for transition in self._transitions:
            names.update(v.qualified_name for v in free_vars(transition.guard))
        return names

    # ------------------------------------------------------------------
    # language
    # ------------------------------------------------------------------
    def successors(self, states: Iterable[int], observation: Valuation) -> set[int]:
        """One NFA step: all states reachable by reading ``observation``."""
        reached: set[int] = set()
        for state in states:
            for transition in self._out[state]:
                if transition.dst not in reached and transition.enabled(observation):
                    reached.add(transition.dst)
        return reached

    def run(self, trace: Trace | Sequence[Valuation]) -> list[set[int]]:
        """State sets after each observation (stops early on dead end).

        ``result[0]`` is the initial state set; ``result[t]`` the set after
        reading ``t`` observations.  If the trace is rejected the last
        entry is the empty set and the run is truncated there.
        """
        current = set(self._initial)
        sets = [set(current)]
        for observation in trace:
            current = self.successors(current, observation)
            sets.append(set(current))
            if not current:
                break
        return sets

    def admits(self, trace: Trace | Sequence[Valuation]) -> bool:
        """Trace admission (all states accepting; dead end = reject)."""
        current = set(self._initial)
        if not current:
            return False
        for observation in trace:
            current = self.successors(current, observation)
            if not current:
                return False
        return True

    def admits_all(self, traces: Iterable[Trace]) -> bool:
        return all(self.admits(trace) for trace in traces)

    def rejects(self, trace: Trace | Sequence[Valuation]) -> bool:
        return not self.admits(trace)

    def admitted_prefix_length(self, trace: Trace | Sequence[Valuation]) -> int:
        """Length of the longest admitted prefix (paper Theorem 1 proof)."""
        run = self.run(trace)
        length = 0
        for step, states in enumerate(run[1:], start=1):
            if not states:
                break
            length = step
        return length

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"SymbolicNFA(states={self.num_states}, "
            f"transitions={self.num_transitions}, "
            f"initial={sorted(self._initial)})"
        )

    def __iter__(self) -> Iterator[Transition]:
        return iter(self._transitions)
