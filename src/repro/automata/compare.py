"""Comparison of a learned abstraction against ground truth.

The paper's quality score ``d`` is "the fraction of state transitions in
the Stateflow model that match corresponding transitions in the
abstraction" (§IV-B).  We operationalise "matches" behaviourally: the
flattener supplies, for every ground-truth transition, a *witness* -- a
concrete execution trace that ends by exercising exactly that transition
-- and the transition counts as matched iff the abstraction admits its
witness.  A model with ``α = 1`` admits every system trace, hence scores
``d = 1`` exactly as in Table I; passively learned models miss the
witnesses of unexercised transitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..traces.trace import Trace
from .nfa import SymbolicNFA


@dataclass(frozen=True)
class TransitionWitness:
    """One ground-truth transition plus a trace exercising it."""

    src: str
    dst: str
    label: str
    witness: Trace


@dataclass
class MatchReport:
    """Detailed outcome of a ground-truth comparison."""

    total: int
    matched: int
    missing: list[TransitionWitness] = field(default_factory=list)

    @property
    def score(self) -> float:
        """The paper's ``d``."""
        if self.total == 0:
            return 1.0
        return self.matched / self.total


def transition_match_report(
    nfa: SymbolicNFA, witnesses: list[TransitionWitness]
) -> MatchReport:
    """Score the abstraction against ground-truth transition witnesses."""
    missing = [w for w in witnesses if not nfa.admits(w.witness)]
    return MatchReport(
        total=len(witnesses),
        matched=len(witnesses) - len(missing),
        missing=missing,
    )


def transition_match_score(
    nfa: SymbolicNFA, witnesses: list[TransitionWitness]
) -> float:
    """The paper's ``d`` in one call."""
    return transition_match_report(nfa, witnesses).score
