"""Comparison of a learned abstraction against ground truth.

The paper's quality score ``d`` is "the fraction of state transitions in
the Stateflow model that match corresponding transitions in the
abstraction" (§IV-B).  We operationalise "matches" behaviourally: the
flattener supplies, for every ground-truth transition, a *witness* -- a
concrete execution trace that ends by exercising exactly that transition
-- and the transition counts as matched iff the abstraction admits its
witness.  A model with ``α = 1`` admits every system trace, hence scores
``d = 1`` exactly as in Table I; passively learned models miss the
witnesses of unexercised transitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..traces.trace import Trace
from .nfa import SymbolicNFA


@dataclass(frozen=True)
class TransitionWitness:
    """One ground-truth transition plus a trace exercising it."""

    src: str
    dst: str
    label: str
    witness: Trace


@dataclass
class MatchReport:
    """Detailed outcome of a ground-truth comparison."""

    total: int
    matched: int
    missing: list[TransitionWitness] = field(default_factory=list)

    @property
    def score(self) -> float:
        """The paper's ``d``."""
        if self.total == 0:
            return 1.0
        return self.matched / self.total


def transition_match_report(
    nfa: SymbolicNFA, witnesses: list[TransitionWitness]
) -> MatchReport:
    """Score the abstraction against ground-truth transition witnesses."""
    missing = [w for w in witnesses if not nfa.admits(w.witness)]
    return MatchReport(
        total=len(witnesses),
        matched=len(witnesses) - len(missing),
        missing=missing,
    )


def transition_match_score(
    nfa: SymbolicNFA, witnesses: list[TransitionWitness]
) -> float:
    """The paper's ``d`` in one call."""
    return transition_match_report(nfa, witnesses).score


def nfa_isomorphic(a: SymbolicNFA, b: SymbolicNFA) -> bool:
    """Structural isomorphism: a state bijection preserving initial
    states and guard-labelled transitions (guards are interned, so the
    structural comparison is object identity).

    State *names* are ignored -- two learners (or one learner fed the
    same traces in different orders) may number and label states
    differently while building the same automaton.  Intended for the
    session differential suite; uses signature-pruned backtracking, fine
    for learned-model sizes (tens of states).
    """
    if (
        a.num_states != b.num_states
        or a.num_transitions != b.num_transitions
        or len(a.initial_states) != len(b.initial_states)
    ):
        return False

    def signature(nfa: SymbolicNFA, state: int) -> tuple:
        out = sorted(repr(t.guard) for t in nfa.outgoing(state))
        inn = sorted(repr(t.guard) for t in nfa.incoming(state))
        loops = sum(1 for t in nfa.outgoing(state) if t.dst == state)
        return (state in nfa.initial_states, loops, tuple(out), tuple(inn))

    sig_a = {s: signature(a, s) for s in a.states}
    sig_b = {s: signature(b, s) for s in b.states}
    if sorted(sig_a.values()) != sorted(sig_b.values()):
        return False
    candidates = {
        s: [t for t in b.states if sig_b[t] == sig_a[s]] for s in a.states
    }
    b_edges = {(t.src, t.guard, t.dst) for t in b.transitions}
    order = sorted(a.states, key=lambda s: len(candidates[s]))
    mapping: dict[int, int] = {}
    used: set[int] = set()

    def consistent(state: int, image: int) -> bool:
        for t in a.outgoing(state):
            if t.dst in mapping and (image, t.guard, mapping[t.dst]) not in b_edges:
                return False
        for t in a.incoming(state):
            if t.src in mapping and (mapping[t.src], t.guard, image) not in b_edges:
                return False
        # Self-loops: both endpoints are `state` itself.
        for t in a.outgoing(state):
            if t.dst == state and (image, t.guard, image) not in b_edges:
                return False
        return True

    def assign(position: int) -> bool:
        if position == len(order):
            return True
        state = order[position]
        for image in candidates[state]:
            if image in used or not consistent(state, image):
                continue
            mapping[state] = image
            used.add(image)
            if assign(position + 1):
                return True
            del mapping[state]
            used.discard(image)
        return False

    # An edge-count-preserving injective state map whose edges all land in
    # b's edge set is automatically surjective on edges (SymbolicNFA
    # deduplicates transitions), so the backtracking check is complete.
    return assign(0)
