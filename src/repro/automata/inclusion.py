"""Trace-inclusion verification: an independent check of Theorem 1.

The paper's Definition 2 introduces a simulation relation between the
system ``S`` and the abstraction ``M`` whose existence implies
``Traces_X(S) ⊆ L(M)``.  This module *decides* that inclusion for the
finite systems of the reproduction by exploring the product of the
system's reachable states with the NFA's state sets (the standard
subset construction on the fly):

* a product node is ``(system state, set of NFA states)``;
* for every representative input, the system steps and the NFA reads
  the resulting observation;
* an empty NFA state set is a dead end -- the path to it is a system
  trace the abstraction rejects, returned as a counterexample.

This gives the test suite (and users) a way to *verify* the active
loop's guarantee after convergence, independently of the condition
checker that produced it.  Exhaustiveness is relative to the system's
representative inputs (exact for the benchmark charts, whose samples
cover every guard region).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..system.transition_system import SymbolicSystem
from ..system.valuation import Valuation
from ..traces.trace import Trace
from .nfa import SymbolicNFA


@dataclass
class InclusionResult:
    """Outcome of a trace-inclusion check."""

    included: bool
    counterexample: Trace | None = None
    product_states: int = 0

    def __bool__(self) -> bool:
        return self.included


def check_trace_inclusion(
    system: SymbolicSystem,
    nfa: SymbolicNFA,
    max_product_states: int = 200_000,
) -> InclusionResult:
    """Decide ``Traces_X(S) ⊆ L(M)`` over the representative inputs.

    Returns a shortest rejected execution trace when inclusion fails.
    """
    inputs = system.enumerate_inputs()
    state_names = system.state_names
    initial_nfa = frozenset(nfa.initial_states)
    if not initial_nfa:
        # No initial automaton state: every (even empty) trace rejected.
        return InclusionResult(included=False, counterexample=Trace([]))

    start = (system.init_state.key(state_names), initial_nfa)
    # node -> (parent node | None, observation | None)
    table: dict[tuple, tuple[tuple | None, Valuation | None]] = {start: (None, None)}
    frontier: deque[tuple[tuple[int, ...], frozenset[int]]] = deque([start])

    def rebuild(node: tuple) -> Trace:
        observations: list[Valuation] = []
        cursor = node
        while True:
            parent, observation = table[cursor]
            if parent is None:
                break
            observations.append(observation)
            cursor = parent
        observations.reverse()
        return Trace(observations)

    while frontier:
        state_key, nfa_states = frontier.popleft()
        state = dict(zip(state_names, state_key, strict=True))
        for input_valuation in inputs:
            next_state = system.step(state, input_valuation)
            observation = system.observe(next_state, input_valuation)
            successors = frozenset(nfa.successors(nfa_states, observation))
            node = (next_state.key(state_names), successors)
            if node in table:
                continue
            table[node] = ((state_key, nfa_states), observation)
            if not successors:
                return InclusionResult(
                    included=False,
                    counterexample=rebuild(node),
                    product_states=len(table),
                )
            if len(table) >= max_product_states:
                raise RuntimeError(
                    f"product exploration exceeded {max_product_states} states"
                )
            frontier.append(node)
    return InclusionResult(included=True, product_states=len(table))


def verify_theorem1(
    system: SymbolicSystem, nfa: SymbolicNFA
) -> InclusionResult:
    """Alias with the paper's framing: verify the α = 1 guarantee."""
    return check_trace_inclusion(system, nfa)
