"""Bisimulation minimisation of symbolic NFAs.

A post-processing step in the spirit of the related work the paper
cites (converting an inferred machine to a more concise one after
learning): merge states that are bisimilar under *syntactic* guard
equality.  Partition refinement: start from one block, split blocks
whose members disagree on their (guard, target block) edge sets, repeat
to fixpoint, then quotient.

Syntactic guard comparison makes the quotient conservative (semantically
equal but syntactically different guards keep states apart), which is
exactly what preserves the language: the quotient of a bisimulation is
language-equivalent, and tests verify admission is unchanged on probe
traces.
"""

from __future__ import annotations

from .nfa import SymbolicNFA


def minimize_bisimulation(nfa: SymbolicNFA) -> SymbolicNFA:
    """Quotient ``nfa`` by syntactic bisimilarity."""
    if nfa.num_states == 0:
        return nfa.copy()
    # block id per state; start with everything together.
    block = {state: 0 for state in nfa.states}
    while True:
        signatures: dict[int, tuple] = {}
        for state in nfa.states:
            signature = tuple(
                sorted(
                    (repr(t.guard), block[t.dst]) for t in nfa.outgoing(state)
                )
            )
            signatures[state] = signature
        # Refine: states in the same block with different signatures split.
        mapping: dict[tuple[int, tuple], int] = {}
        new_block: dict[int, int] = {}
        for state in nfa.states:
            key = (block[state], signatures[state])
            if key not in mapping:
                mapping[key] = len(mapping)
            new_block[state] = mapping[key]
        if new_block == block:
            break
        block = new_block

    quotient = SymbolicNFA()
    representatives: dict[int, int] = {}
    for state in nfa.states:  # first member names the block
        if block[state] not in representatives:
            representatives[block[state]] = quotient.add_state(
                nfa.state_name(state)
            )
    for state in sorted(nfa.initial_states):
        quotient.mark_initial(representatives[block[state]])
    for transition in nfa.transitions:
        quotient.add_transition(
            representatives[block[transition.src]],
            transition.guard,
            representatives[block[transition.dst]],
        )
    return quotient
