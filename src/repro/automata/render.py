"""Rendering of learned abstractions: DOT, ASCII tables, paper notation.

The paper's figures write state variables primed on edge labels --
``(inp.temp > T_thresh) ∧ (s' = On)`` -- because an observation records
the state *after* the step.  :func:`guard_label` applies that convention:
guards are stored over unprimed observables, and the variables named in
``primed_names`` (the state variables) are primed for display only.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..expr.ast import Expr, Var
from ..expr.printer import to_str
from ..expr.subst import transform
from .nfa import SymbolicNFA


def _prime_for_display(guard: Expr, primed_names: set[str]) -> Expr:
    def leaf(node: Expr) -> Expr:
        if isinstance(node, Var) and not node.primed and node.name in primed_names:
            return node.prime()
        return node

    return transform(guard, leaf)


def guard_label(
    guard: Expr, primed_names: Iterable[str] = (), style: str = "paper"
) -> str:
    """Paper-style edge label with state variables primed."""
    display = _prime_for_display(guard, set(primed_names))
    return to_str(display, style=style)


def to_dot(
    nfa: SymbolicNFA,
    title: str = "abstraction",
    primed_names: Iterable[str] = (),
) -> str:
    """Graphviz DOT rendering of the abstraction."""
    primed = set(primed_names)
    lines = [
        f'digraph "{title}" {{',
        "    rankdir=LR;",
        '    node [shape=circle, fontname="Helvetica"];',
        '    edge [fontname="Helvetica"];',
        '    __start [shape=point, style=invis];',
    ]
    for state in nfa.states:
        lines.append(f'    q{state} [label="{nfa.state_name(state)}"];')
    for state in sorted(nfa.initial_states):
        lines.append(f"    __start -> q{state};")
    for transition in nfa.transitions:
        label = guard_label(transition.guard, primed, style="plain")
        escaped = label.replace('"', '\\"')
        lines.append(
            f'    q{transition.src} -> q{transition.dst} [label="{escaped}"];'
        )
    lines.append("}")
    return "\n".join(lines)


def to_text(
    nfa: SymbolicNFA,
    title: str = "abstraction",
    primed_names: Iterable[str] = (),
) -> str:
    """Readable ASCII summary, one line per transition (paper notation)."""
    primed = set(primed_names)
    lines = [
        f"{title}: {nfa.num_states} states, {nfa.num_transitions} transitions",
        f"initial: {', '.join(nfa.state_name(q) for q in sorted(nfa.initial_states))}",
    ]
    for transition in nfa.transitions:
        label = guard_label(transition.guard, primed)
        lines.append(
            f"  {nfa.state_name(transition.src)} --[{label}]--> "
            f"{nfa.state_name(transition.dst)}"
        )
    return "\n".join(lines)
