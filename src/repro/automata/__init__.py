"""Automata substrate: symbolic NFAs, rendering, ground-truth comparison."""

from .inclusion import (
    InclusionResult,
    check_trace_inclusion,
    verify_theorem1,
)
from .minimize import minimize_bisimulation
from .compare import (
    MatchReport,
    TransitionWitness,
    nfa_isomorphic,
    transition_match_report,
    transition_match_score,
)
from .nfa import SymbolicNFA, Transition
from .render import guard_label, to_dot, to_text
from .splice import ModelSplicer, run_windows

__all__ = [
    "InclusionResult",
    "MatchReport",
    "ModelSplicer",
    "SymbolicNFA",
    "Transition",
    "TransitionWitness",
    "check_trace_inclusion",
    "guard_label",
    "minimize_bisimulation",
    "nfa_isomorphic",
    "run_windows",
    "to_dot",
    "to_text",
    "transition_match_report",
    "transition_match_score",
    "verify_theorem1",
]
