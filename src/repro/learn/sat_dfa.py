"""SAT-based minimal DFA identification (Heule-Verwer style encoding).

The third pluggable learning component, and the one closest to the SAT
core of the real Trace2Model: find the smallest deterministic automaton
over a finite event alphabet consistent with labelled example sequences.

With positive examples only (the active-learning setting: execution
traces, prefix-closed) the minimal consistent DFA is the single-state
automaton with one self-loop per observed event -- maximally permissive
but still structurally informative (it records which events occur at
all), and it satisfies the active loop's contract of admitting every
input trace.  Supplying *negative* sequences (e.g. from a teacher, or
from the spuriousness checker's proved-unreachable states) makes the
identification non-trivial; tests exercise both regimes.

The encoding, for ``n`` colours over the augmented prefix tree (APT):

* ``x[v,i]``  -- APT node ``v`` has colour ``i`` (exactly-one per node);
* ``y[a,i,j]`` -- the DFA moves ``i --a--> j`` (at-most-one ``j``);
* parent constraints tie node colours to transitions;
* accepting and rejecting nodes may not share a colour.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Hashable, Sequence

from ..automata.nfa import SymbolicNFA
from ..expr.ast import Expr, Var, eq, land
from ..sat.solver import Solver
from ..system.valuation import Valuation
from ..traces.trace import TraceSet
from .base import detect_mode_variables, infer_variables

Event = Hashable


@dataclass
class IdentifiedDfa:
    """A DFA over an abstract event alphabet."""

    num_states: int
    initial: int
    transitions: dict[tuple[int, Event], int]
    accepting: frozenset[int]

    def accepts(self, word: Sequence[Event]) -> bool:
        state = self.initial
        for event in word:
            key = (state, event)
            if key not in self.transitions:
                return False
            state = self.transitions[key]
        return state in self.accepting


class _Apt:
    """Augmented prefix tree over positive/negative words."""

    def __init__(self) -> None:
        self.parent: list[tuple[int, Event] | None] = [None]
        self.label: list[bool | None] = [None]  # True acc, False rej
        self._index: dict[tuple[int, Event], int] = {}

    def insert(
        self, word: Sequence[Event], positive: bool, prefix_closed: bool = False
    ) -> None:
        node = 0
        path = [0]
        for event in word:
            key = (node, event)
            if key not in self._index:
                self._index[key] = len(self.parent)
                self.parent.append(key)
                self.label.append(None)
            node = self._index[key]
            path.append(node)
        if positive:
            # With prefix_closed (execution traces), every node on the
            # path is accepting; otherwise only the word's own node.
            to_mark = path if prefix_closed else [node]
            for visited in to_mark:
                if self.label[visited] is False:
                    raise ValueError(f"contradictory labels for {word!r}")
                self.label[visited] = True
        else:
            if self.label[node] is True:
                raise ValueError(f"contradictory labels for {word!r}")
            self.label[node] = False

    @property
    def size(self) -> int:
        return len(self.parent)

    def alphabet(self) -> list[Event]:
        return sorted({key[1] for key in self._index}, key=repr)


def identify_dfa(
    positive: Sequence[Sequence[Event]],
    negative: Sequence[Sequence[Event]] = (),
    max_states: int = 12,
    prefix_closed: bool = False,
) -> IdentifiedDfa | None:
    """Smallest consistent DFA with at most ``max_states`` states.

    ``prefix_closed=True`` marks every prefix of a positive word as
    accepting (the execution-trace setting); leave it off for classic
    DFA identification where a rejected word may extend an accepted one.

    The ``n → n+1`` search is incremental: one SAT solver instance
    persists across sizes, the APT-structure clauses for colours
    ``< n`` are never re-encoded, and refutations learned while proving
    ``n`` colours insufficient carry over to the ``n+1`` search.
    """
    apt = _Apt()
    for word in positive:
        apt.insert(word, positive=True, prefix_closed=prefix_closed)
    for word in negative:
        apt.insert(word, positive=False)
    search = _IncrementalDfaSearch(apt)
    for _num_states in range(1, max_states + 1):
        dfa = search.try_next_size()
        if dfa is not None:
            return dfa
    return None


class _IncrementalDfaSearch:
    """Heule-Verwer encoding grown one colour at a time.

    All clauses are over a single persistent :class:`Solver`.  The only
    size-dependent constraint -- "every node takes one of the first
    ``n`` colours" -- cannot be widened in place, so each size adds a
    fresh *at-least-one* clause block in a retractable clause group
    that is retracted when the size is refuted.  Everything else
    (colour exclusivity, determinism, parent constraints,
    accepting/rejecting separation) is monotone in ``n`` and persists,
    together with the solver's learned clauses.
    """

    def __init__(self, apt: _Apt):
        self._apt = apt
        self._alphabet = apt.alphabet()
        self._accepting = [v for v in range(apt.size) if apt.label[v] is True]
        self._rejecting = [v for v in range(apt.size) if apt.label[v] is False]
        self.solver = Solver()
        self._n = 0
        # x[v][i]: node v coloured i.
        self._x: list[list[int]] = [[] for _ in range(apt.size)]
        # y[a][i][j]: transition i --a--> j exists.
        self._y: dict[Event, list[list[int]]] = {e: [] for e in self._alphabet}

    def _add_colour(self) -> None:
        """Encode colour ``n`` on top of the existing ``n`` colours."""
        apt, solver, n = self._apt, self.solver, self._n
        for v in range(apt.size):
            self._x[v].append(solver.new_var())
        for event in self._alphabet:
            grid = self._y[event]
            for i in range(n):
                grid[i].append(solver.new_var())  # old row, new column
            grid.append([solver.new_var() for _ in range(n + 1)])  # new row
        if n == 0:
            solver.add_clause([self._x[0][0]])  # symmetry: root is colour 0
        for v in range(apt.size):
            for i in range(n):  # at most one colour: new pairs only
                solver.add_clause([-self._x[v][i], -self._x[v][n]])
        # Determinism: at most one target colour per (event, source).
        for event in self._alphabet:
            grid = self._y[event]
            for i in range(n):
                for j in range(n):
                    solver.add_clause([-grid[i][j], -grid[i][n]])
            for j, l in combinations(range(n + 1), 2):
                solver.add_clause([-grid[n][j], -grid[n][l]])
        # Parent constraints: pairs (i, j) touching the new colour.
        for v in range(1, apt.size):
            parent, event = apt.parent[v]
            grid = self._y[event]
            for i in range(n + 1):
                for j in range(n + 1):
                    if i != n and j != n:
                        continue
                    # x[parent,i] ∧ x[v,j] -> y[event,i,j]
                    solver.add_clause(
                        [-self._x[parent][i], -self._x[v][j], grid[i][j]]
                    )
                    # y[event,i,j] ∧ x[parent,i] -> x[v,j]
                    solver.add_clause(
                        [-grid[i][j], -self._x[parent][i], self._x[v][j]]
                    )
        # Accepting/rejecting separation on the new colour.
        for acc in self._accepting:
            for rej in self._rejecting:
                solver.add_clause([-self._x[acc][n], -self._x[rej][n]])
        self._n = n + 1

    def try_next_size(self) -> IdentifiedDfa | None:
        """Search with one more colour; None if still unsatisfiable."""
        self._add_colour()
        apt, solver, n = self._apt, self.solver, self._n
        # "At least one of the first n colours" is the only constraint
        # that shrinks colour sets, so each size gets its own group,
        # retracted on refutation so the stale block leaves the search.
        group = solver.new_group()
        for v in range(apt.size):
            solver.add_clause(self._x[v], group=group)
        result = solver.solve()
        if not result.satisfiable:
            solver.retract_group(group)
            return None
        colour = [
            next(i for i in range(n) if result.value(self._x[v][i]))
            for v in range(apt.size)
        ]
        transitions: dict[tuple[int, Event], int] = {}
        for v in range(1, apt.size):
            parent, event = apt.parent[v]
            transitions[(colour[parent], event)] = colour[v]
        accepting = frozenset(colour[v] for v in self._accepting)
        return IdentifiedDfa(
            num_states=n,
            initial=0,
            transitions=transitions,
            accepting=accepting or frozenset(range(n)),
        )


class SatDfaLearner:
    """Pluggable learner built on :func:`identify_dfa`.

    Events are mode valuations; optional negative event sequences make
    the identification non-trivial.  See the module docstring for the
    positive-only degeneracy discussion.
    """

    def __init__(
        self,
        mode_vars: list[str] | None = None,
        variables: dict[str, Var] | None = None,
        negative_sequences: Sequence[Sequence[tuple[int, ...]]] = (),
        max_states: int = 12,
        max_distinct: int = 8,
    ):
        self._mode_vars = list(mode_vars) if mode_vars else None
        self._variables = dict(variables) if variables else None
        self._negatives = [tuple(map(tuple, seq)) for seq in negative_sequences]
        self._max_states = max_states
        self._max_distinct = max_distinct

    def learn(self, traces: TraceSet) -> SymbolicNFA:
        from .base import LearningError

        variables = self._variables or infer_variables(traces)
        mode_names = self._mode_vars or detect_mode_variables(
            traces, self._max_distinct
        )
        mode_vars = [variables[name] for name in mode_names]
        words = [
            tuple(
                tuple(observation[name] for name in mode_names)
                for observation in trace
            )
            for trace in traces
        ]
        dfa = identify_dfa(
            words, self._negatives, self._max_states, prefix_closed=True
        )
        if dfa is None:
            raise LearningError(
                f"no consistent DFA with <= {self._max_states} states"
            )
        # SymbolicNFA semantics make every state accepting (rejection is
        # running into a dead end).  Prefix-closure guarantees rejecting
        # DFA states have no accepting descendants, so dropping them (and
        # their edges) preserves the identified language exactly.
        nfa = SymbolicNFA()
        ids: dict[int, int] = {}
        for state in sorted(dfa.accepting):
            ids[state] = nfa.add_state(f"q{state}")
        if dfa.initial not in ids:
            raise LearningError("identified DFA rejects the empty trace")
        nfa.mark_initial(ids[dfa.initial])
        for (src, event), dst in sorted(
            dfa.transitions.items(), key=lambda kv: (kv[0][0], repr(kv[0][1]))
        ):
            if src not in ids or dst not in ids:
                continue
            guard: Expr = land(
                *(eq(var, value) for var, value in zip(mode_vars, event))
            )
            nfa.add_transition(ids[src], guard, ids[dst])
        return nfa
