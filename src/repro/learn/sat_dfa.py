"""SAT-based minimal DFA identification (Heule-Verwer style encoding).

The third pluggable learning component, and the one closest to the SAT
core of the real Trace2Model: find the smallest deterministic automaton
over a finite event alphabet consistent with labelled example sequences.

With positive examples only (the active-learning setting: execution
traces, prefix-closed) the minimal consistent DFA is the single-state
automaton with one self-loop per observed event -- maximally permissive
but still structurally informative (it records which events occur at
all), and it satisfies the active loop's contract of admitting every
input trace.  Supplying *negative* sequences (e.g. from a teacher, or
from the spuriousness checker's proved-unreachable states) makes the
identification non-trivial; tests exercise both regimes.

The encoding, for ``n`` colours over the augmented prefix tree (APT):

* ``x[v,i]``  -- APT node ``v`` has colour ``i`` (exactly-one per node);
* ``y[a,i,j]`` -- the DFA moves ``i --a--> j`` (at-most-one ``j``);
* parent constraints tie node colours to transitions;
* accepting and rejecting nodes may not share a colour.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from collections.abc import Hashable, Sequence

from ..automata.nfa import SymbolicNFA
from ..expr.ast import Expr, Var, eq, land
from ..sat.solver import Solver
from ..traces.trace import TraceSet
from .base import detect_mode_variables, infer_variables


def _tel_metrics():
    """Live metrics registry, or ``None`` (lazy import: this module is
    inside the core package's import closure, see telemetry docstring)."""
    from ..core.telemetry import active

    session = active()
    return None if session is None else session.metrics

Event = Hashable


@dataclass
class IdentifiedDfa:
    """A DFA over an abstract event alphabet."""

    num_states: int
    initial: int
    transitions: dict[tuple[int, Event], int]
    accepting: frozenset[int]

    def accepts(self, word: Sequence[Event]) -> bool:
        state = self.initial
        for event in word:
            key = (state, event)
            if key not in self.transitions:
                return False
            state = self.transitions[key]
        return state in self.accepting


class _Apt:
    """Augmented prefix tree over positive/negative words.

    The tree is append-only (inserting a word never renumbers existing
    nodes), which is what lets a learner session extend a live SAT
    encoding in place.  ``label_log`` records every ``None -> True/False``
    label transition as ``(node, positive)`` so incremental consumers
    can discover which *existing* nodes acquired a label from a later
    insertion (an interior node of a negative word becomes accepting
    when a positive trace runs through it).
    """

    def __init__(self) -> None:
        self.parent: list[tuple[int, Event] | None] = [None]
        self.label: list[bool | None] = [None]  # True acc, False rej
        self.label_log: list[tuple[int, bool]] = []
        self._index: dict[tuple[int, Event], int] = {}

    def insert(
        self, word: Sequence[Event], positive: bool, prefix_closed: bool = False
    ) -> None:
        node = 0
        path = [0]
        for event in word:
            key = (node, event)
            if key not in self._index:
                self._index[key] = len(self.parent)
                self.parent.append(key)
                self.label.append(None)
            node = self._index[key]
            path.append(node)
        if positive:
            # With prefix_closed (execution traces), every node on the
            # path is accepting; otherwise only the word's own node.
            to_mark = path if prefix_closed else [node]
            for visited in to_mark:
                if self.label[visited] is False:
                    raise ValueError(f"contradictory labels for {word!r}")
                if self.label[visited] is None:
                    self.label[visited] = True
                    self.label_log.append((visited, True))
        else:
            if self.label[node] is True:
                raise ValueError(f"contradictory labels for {word!r}")
            if self.label[node] is None:
                self.label[node] = False
                self.label_log.append((node, False))

    @property
    def size(self) -> int:
        return len(self.parent)

    def alphabet(self) -> list[Event]:
        return sorted({key[1] for key in self._index}, key=repr)

    def canonical_order(self) -> list[int]:
        """Node ids in insertion-order-independent BFS order.

        Root first, then breadth-first with each node's children visited
        in ``repr``-sorted event order.  Two APTs built from the same
        *set* of words (in any insertion order) enumerate structurally
        identical trees, so canonical DFA extraction keyed to this order
        yields the same automaton regardless of how the words arrived.
        """
        children: dict[int, list[tuple[str, int]]] = {}
        for (parent, event), child in self._index.items():
            children.setdefault(parent, []).append((repr(event), child))
        order = [0]
        head = 0
        while head < len(order):
            node = order[head]
            head += 1
            for _key, child in sorted(children.get(node, ())):
                order.append(child)
        return order


def identify_dfa(
    positive: Sequence[Sequence[Event]],
    negative: Sequence[Sequence[Event]] = (),
    max_states: int = 12,
    prefix_closed: bool = False,
    canonical: bool = False,
) -> IdentifiedDfa | None:
    """Smallest consistent DFA with at most ``max_states`` states.

    ``prefix_closed=True`` marks every prefix of a positive word as
    accepting (the execution-trace setting); leave it off for classic
    DFA identification where a rejected word may extend an accepted one.

    The ``n → n+1`` search is incremental: one SAT solver instance
    persists across sizes, the APT-structure clauses for colours
    ``< n`` are never re-encoded, and refutations learned while proving
    ``n`` colours insufficient carry over to the ``n+1`` search.

    ``canonical=True`` additionally pins the *witness*: among all
    minimal consistent DFAs, return the one given by the
    lexicographically least colouring along the APT's canonical node
    order.  That makes the result a pure function of the word *set*
    (independent of insertion order and of the solver's clause
    history), at the cost of extra assumption solves -- the same
    trade-off as PR 2's canonical counterexamples.
    """
    apt = _Apt()
    for word in positive:
        apt.insert(word, positive=True, prefix_closed=prefix_closed)
    for word in negative:
        apt.insert(word, positive=False)
    search = _IncrementalDfaSearch(apt, canonical=canonical)
    return search.search_up_to(max_states)


class _IncrementalDfaSearch:
    """Heule-Verwer encoding grown one colour at a time.

    All clauses are over a single persistent :class:`Solver`.  The only
    size-dependent constraint -- "every node takes one of the first
    ``n`` colours" -- cannot be widened in place, so each size adds a
    fresh *at-least-one* clause block in a retractable clause group
    that is retracted when the size is refuted.  Everything else
    (colour exclusivity, determinism, parent constraints,
    accepting/rejecting separation) is monotone in ``n`` and persists,
    together with the solver's learned clauses.

    The search is also incremental in the *APT*: :meth:`extend` encodes
    nodes, events and label changes appended after construction without
    touching the existing clauses.  Since adding words only ever adds
    constraints, every refuted size stays refuted, so a learner session
    resumes at the previously found size instead of restarting at 1 --
    the cross-iteration warm start the active loop exploits.
    """

    def __init__(self, apt: _Apt, canonical: bool = False):
        self._apt = apt
        self._canonical = canonical
        self._alphabet = apt.alphabet()
        self._accepting = [v for v in range(apt.size) if apt.label[v] is True]
        self._rejecting = [v for v in range(apt.size) if apt.label[v] is False]
        self.solver = Solver()
        self._n = 0
        self._group: int | None = None  # active at-least-one block
        self._encoded_nodes = apt.size
        # x[v][i]: node v coloured i.
        self._x: list[list[int]] = [[] for _ in range(apt.size)]
        # y[a][i][j]: transition i --a--> j exists.
        self._y: dict[Event, list[list[int]]] = {e: [] for e in self._alphabet}

    def _add_colour(self) -> None:
        """Encode colour ``n`` on top of the existing ``n`` colours."""
        apt, solver, n = self._apt, self.solver, self._n
        for v in range(apt.size):
            self._x[v].append(solver.new_var())
        for event in self._alphabet:
            grid = self._y[event]
            for i in range(n):
                grid[i].append(solver.new_var())  # old row, new column
            grid.append([solver.new_var() for _ in range(n + 1)])  # new row
        if n == 0:
            solver.add_clause([self._x[0][0]])  # symmetry: root is colour 0
        for v in range(apt.size):
            for i in range(n):  # at most one colour: new pairs only
                solver.add_clause([-self._x[v][i], -self._x[v][n]])
        # Determinism: at most one target colour per (event, source).
        for event in self._alphabet:
            grid = self._y[event]
            for i in range(n):
                for j in range(n):
                    solver.add_clause([-grid[i][j], -grid[i][n]])
            for j, l in combinations(range(n + 1), 2):
                solver.add_clause([-grid[n][j], -grid[n][l]])
        # Parent constraints: pairs (i, j) touching the new colour.
        for v in range(1, apt.size):
            parent, event = apt.parent[v]
            grid = self._y[event]
            for i in range(n + 1):
                for j in range(n + 1):
                    if i != n and j != n:
                        continue
                    # x[parent,i] ∧ x[v,j] -> y[event,i,j]
                    solver.add_clause(
                        [-self._x[parent][i], -self._x[v][j], grid[i][j]]
                    )
                    # y[event,i,j] ∧ x[parent,i] -> x[v,j]
                    solver.add_clause(
                        [-grid[i][j], -self._x[parent][i], self._x[v][j]]
                    )
        # Accepting/rejecting separation on the new colour.
        for acc in self._accepting:
            for rej in self._rejecting:
                solver.add_clause([-self._x[acc][n], -self._x[rej][n]])
        self._n = n + 1

    def extend(self, label_changes: Sequence[tuple[int, bool]]) -> None:
        """Encode APT growth in place: every node appended since the
        last encoding (tracked by ``_encoded_nodes``), any events they
        introduced, and label transitions on existing nodes.

        New clauses only reference the current ``n`` colours; the active
        at-least-one group is widened with the new nodes so the current
        size stays a candidate (it is re-solved, and refuted sizes grow
        the colour count exactly as in the initial search).
        """
        apt, solver, n = self._apt, self.solver, self._n
        old_size = self._encoded_nodes
        assert n > 0, "extend requires an initially solved encoding"
        # New events first: parent constraints below reference the grids.
        for v in range(old_size, apt.size):
            _parent, event = apt.parent[v]
            if event in self._y:
                continue
            grid = [[solver.new_var() for _ in range(n)] for _ in range(n)]
            self._y[event] = grid
            self._alphabet.append(event)
            for i in range(n):
                for j, l in combinations(range(n), 2):
                    solver.add_clause([-grid[i][j], -grid[i][l]])
        # New nodes: colour variables, exclusivity, parent constraints.
        # Parents always precede children in the APT numbering, so a new
        # node's parent is already encoded when the node is reached.
        for v in range(old_size, apt.size):
            self._x.append([solver.new_var() for _ in range(n)])
            for i, j in combinations(range(n), 2):
                solver.add_clause([-self._x[v][i], -self._x[v][j]])
            parent, event = apt.parent[v]
            grid = self._y[event]
            for i in range(n):
                for j in range(n):
                    solver.add_clause(
                        [-self._x[parent][i], -self._x[v][j], grid[i][j]]
                    )
                    solver.add_clause(
                        [-grid[i][j], -self._x[parent][i], self._x[v][j]]
                    )
            if self._group is not None:
                solver.add_clause(self._x[v], group=self._group)
        self._encoded_nodes = apt.size
        # Label transitions (new nodes and newly relabelled old ones).
        for v, positive in label_changes:
            others = self._rejecting if positive else self._accepting
            for other in others:
                for i in range(n):
                    solver.add_clause([-self._x[v][i], -self._x[other][i]])
            (self._accepting if positive else self._rejecting).append(v)

    def search_up_to(self, max_states: int) -> IdentifiedDfa | None:
        """Resume the minimal-size search; None if ``max_states`` falls."""
        while True:
            if self._group is not None:
                dfa = self._solve_current()
                if dfa is not None:
                    return dfa
            if self._n >= max_states:
                return None
            self._add_size()

    def try_next_size(self) -> IdentifiedDfa | None:
        """Search with one more colour; None if still unsatisfiable."""
        self._add_size()
        return self._solve_current()

    def _add_size(self) -> None:
        self._add_colour()
        # "At least one of the first n colours" is the only constraint
        # that shrinks colour sets, so each size gets its own group,
        # retracted on refutation so the stale block leaves the search.
        self._group = self.solver.new_group()
        for v in range(self._apt.size):
            self.solver.add_clause(self._x[v], group=self._group)

    def _solve_current(self) -> IdentifiedDfa | None:
        """Solve at the current size; retracts the group on refutation."""
        apt, solver, n = self._apt, self.solver, self._n
        assert self._group is not None
        result = solver.solve()
        if not result.satisfiable:
            solver.retract_group(self._group)
            self._group = None
            return None
        if self._canonical:
            colour = self._canonical_colours()
        else:
            colour = [
                next(i for i in range(n) if result.value(self._x[v][i]))
                for v in range(apt.size)
            ]
        transitions: dict[tuple[int, Event], int] = {}
        for v in range(1, apt.size):
            parent, event = apt.parent[v]
            transitions[(colour[parent], event)] = colour[v]
        accepting = frozenset(colour[v] for v in self._accepting)
        return IdentifiedDfa(
            num_states=n,
            initial=0,
            transitions=transitions,
            accepting=accepting or frozenset(range(n)),
        )

    def _canonical_colours(self) -> list[int]:
        """The lexicographically least feasible colouring along the
        canonical node order (see :meth:`_Apt.canonical_order`).

        Each node is pinned to its smallest jointly feasible colour by
        assumption solves on the persistent solver, so the witness DFA
        depends only on the word set -- not on insertion order or the
        solver's accumulated clause history.
        """
        solver, n = self.solver, self._n
        fixed: list[int] = []
        colour = [0] * self._apt.size
        for v in self._apt.canonical_order():
            for i in range(n):
                if solver.solve(fixed + [self._x[v][i]]).satisfiable:
                    fixed.append(self._x[v][i])
                    colour[v] = i
                    break
            else:  # pragma: no cover - the joint model guarantees a colour
                raise RuntimeError("no feasible colour for a SAT instance")
        return colour


class SatDfaLearner:
    """Pluggable learner built on :func:`identify_dfa`.

    Events are mode valuations; optional negative event sequences make
    the identification non-trivial.  See the module docstring for the
    positive-only degeneracy discussion.

    ``canonical`` pins the identified minimal DFA to the canonical
    witness (see :func:`identify_dfa`), making ``learn`` and a warmed
    :meth:`start_session` produce *identical* models for the same trace
    set -- the property the session differential suite asserts exactly.
    It is forced on whenever ``negative_sequences`` are supplied: with
    negatives the minimal consistent DFA is not unique, and a
    non-canonical witness depends on the solver's clause history, so a
    warm session and a fresh ``learn`` could legitimately return
    *different* (equally minimal) models -- violating the session
    contract.  Without negatives identification is deterministic (the
    single-state permissive automaton), so the flag is free to stay off.
    """

    def __init__(
        self,
        mode_vars: list[str] | None = None,
        variables: dict[str, Var] | None = None,
        negative_sequences: Sequence[Sequence[tuple[int, ...]]] = (),
        max_states: int = 12,
        max_distinct: int = 8,
        canonical: bool = False,
    ):
        self._mode_vars = list(mode_vars) if mode_vars else None
        self._variables = dict(variables) if variables else None
        self._negatives = [tuple(map(tuple, seq)) for seq in negative_sequences]
        self._max_states = max_states
        self._max_distinct = max_distinct
        # Canonical identification is what makes the learner a pure
        # function of the trace set; with negatives that is required for
        # the session contract (same rationale as PR 2 forcing canonical
        # counterexamples for worker pools).
        self._canonical = canonical or bool(self._negatives)

    # ------------------------------------------------------------------
    def _basis(self, traces: TraceSet) -> tuple[dict[str, Var], list[str]]:
        """(variables, mode names) for a trace set -- the event basis."""
        variables = self._variables or infer_variables(traces)
        mode_names = self._mode_vars or detect_mode_variables(
            traces, self._max_distinct
        )
        return variables, mode_names

    @staticmethod
    def _word(trace, mode_names: list[str]) -> tuple[tuple[int, ...], ...]:
        return tuple(
            tuple(observation[name] for name in mode_names)
            for observation in trace
        )

    def learn(self, traces: TraceSet) -> SymbolicNFA:
        from .base import LearningError

        variables, mode_names = self._basis(traces)
        words = [self._word(trace, mode_names) for trace in traces]
        dfa = identify_dfa(
            words,
            self._negatives,
            self._max_states,
            prefix_closed=True,
            canonical=self._canonical,
        )
        if dfa is None:
            raise LearningError(
                f"no consistent DFA with <= {self._max_states} states"
            )
        return self._to_nfa(dfa, mode_names, variables)

    def start_session(self, traces: TraceSet) -> "SatDfaSession":
        """Open an incremental session over a growing trace set."""
        return SatDfaSession(self, traces)

    def _to_nfa(
        self,
        dfa: IdentifiedDfa,
        mode_names: list[str],
        variables: dict[str, Var],
    ) -> SymbolicNFA:
        from .base import LearningError

        mode_vars = [variables[name] for name in mode_names]
        # SymbolicNFA semantics make every state accepting (rejection is
        # running into a dead end).  Prefix-closure guarantees rejecting
        # DFA states have no accepting descendants, so dropping them (and
        # their edges) preserves the identified language exactly.
        nfa = SymbolicNFA()
        ids: dict[int, int] = {}
        for state in sorted(dfa.accepting):
            ids[state] = nfa.add_state(f"q{state}")
        if dfa.initial not in ids:
            raise LearningError("identified DFA rejects the empty trace")
        nfa.mark_initial(ids[dfa.initial])
        for (src, event), dst in sorted(
            dfa.transitions.items(), key=lambda kv: (kv[0][0], repr(kv[0][1]))
        ):
            if src not in ids or dst not in ids:
                continue
            guard: Expr = land(
                *(eq(var, value) for var, value in zip(mode_vars, event, strict=True))
            )
            nfa.add_transition(ids[src], guard, ids[dst])
        return nfa


class SatDfaSession:
    """Incremental re-learning session for :class:`SatDfaLearner`.

    Owns a persistent APT and one persistent :class:`Solver` whose
    colour/transition variables and learned clauses survive loop
    iterations.  ``add_traces`` splices only the *delta* into the APT,
    extends the live encoding in place (new nodes, new events, label
    transitions), and resumes the minimal-size search at the previously
    found size -- sound because adding traces only adds constraints, so
    refuted sizes stay refuted.

    If the auto-detected mode-variable basis drifts (a delta changes
    which observables look mode-like), the session rebuilds cold; the
    returned model is always exactly what a fresh ``learn`` on the
    accumulated set would produce (bit-identical under ``canonical``).
    """

    def __init__(self, learner: SatDfaLearner, traces: TraceSet):
        self._learner = learner
        self._traces = traces.copy()
        self.warm = False
        self._rebuild()

    def _rebuild(self) -> None:
        learner = self._learner
        self._variables, self._mode_names = learner._basis(self._traces)
        self._apt = _Apt()
        for trace in self._traces:
            self._apt.insert(
                learner._word(trace, self._mode_names),
                positive=True,
                prefix_closed=True,
            )
        for word in learner._negatives:
            self._apt.insert(word, positive=False)
        self._search = _IncrementalDfaSearch(
            self._apt, canonical=learner._canonical
        )
        self._log_pos = len(self._apt.label_log)
        self._solve()
        self.warm = False
        registry = _tel_metrics()
        if registry is not None:
            registry.inc("learn.cold_learns")
            registry.gauge_max("learn.dfa_size", self._search._n)

    def _solve(self) -> None:
        from .base import LearningError

        dfa = self._search.search_up_to(self._learner._max_states)
        if dfa is None:
            raise LearningError(
                f"no consistent DFA with <= {self._learner._max_states} states"
            )
        self.model = self._learner._to_nfa(
            dfa, self._mode_names, self._variables
        )

    def add_traces(self, delta) -> SymbolicNFA:
        new = [trace for trace in delta if self._traces.add(trace)]
        if not new:
            return self.model
        learner = self._learner
        variables, mode_names = learner._basis(self._traces)
        if mode_names != self._mode_names:
            # The event basis drifted: the live encoding speaks the
            # wrong alphabet.  Fall back to a cold rebuild.
            self._rebuild()
            return self.model
        self._variables = variables
        for trace in new:
            self._apt.insert(
                learner._word(trace, self._mode_names),
                positive=True,
                prefix_closed=True,
            )
        self._search.extend(self._apt.label_log[self._log_pos:])
        self._log_pos = len(self._apt.label_log)
        self._search.solver.maintain()
        self._solve()
        self.warm = True
        registry = _tel_metrics()
        if registry is not None:
            registry.inc("learn.warm_learns")
            # The size the resumed search settled at: warm iterations
            # restart from here instead of size 1.
            registry.gauge_max("learn.dfa_size", self._search._n)
        return self.model

    def reset(self) -> None:
        """Drop all warm state; rebuild from the accumulated traces."""
        self._rebuild()
