"""The pluggable model-learning interface (paper §II-B).

The active-learning algorithm requires exactly one thing of its learning
component: *given a set of execution traces T, return an NFA that accepts
(at least) all traces in T*.  Anything satisfying :class:`ModelLearner`
can be plugged in; the reproduction ships three implementations with
different inductive biases (T2M-style symbolic, k-tails state-merging,
SAT-minimal DFA identification).

Because the active loop only ever *adds* traces (the trace set grows
monotonically across iterations), learners may additionally expose a
*session* API: ``start_session(traces)`` returns a
:class:`LearnerSession` owning long-lived state (a persistent prefix
tree and SAT solver, incremental merge structures, ...) that is extended
in place by ``add_traces(delta)`` instead of being rebuilt from scratch
every iteration.  Learners without a native session still work through
:class:`FreshLearnSession`, a stateless adapter that re-learns from the
accumulated set per delta -- exactly the pre-session behaviour.  See
``docs/learning_sessions.md``.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Protocol, runtime_checkable

from ..automata.nfa import SymbolicNFA
from ..expr.ast import Var
from ..expr.types import IntSort
from ..traces.trace import Trace, TraceSet


@runtime_checkable
class ModelLearner(Protocol):
    """Anything that learns an NFA accepting a trace set."""

    def learn(self, traces: TraceSet) -> SymbolicNFA:
        """Return an NFA admitting every trace in ``traces``."""
        ...


@runtime_checkable
class LearnerSession(Protocol):
    """Long-lived learning state over a monotonically growing trace set.

    Contract:

    * :attr:`model` is the NFA learned from every trace the session has
      seen; it is available immediately after ``start_session``.
    * :meth:`add_traces` extends the session with a *delta* of new
      traces (traces already seen are ignored) and returns the updated
      model.  The result must equal what ``learn`` would produce on the
      full accumulated set.
    * :attr:`warm` reports whether the most recent model reused state
      from earlier calls (``False`` for the initial build and after any
      internal cold rebuild, e.g. when mode-variable detection drifts).
    * :meth:`reset` drops all warm state and rebuilds from the
      accumulated traces -- the model itself must not change.
    """

    model: SymbolicNFA
    warm: bool

    def add_traces(self, delta: Iterable[Trace]) -> SymbolicNFA:
        ...

    def reset(self) -> None:
        ...


class FreshLearnSession:
    """Stateless adapter: a session that re-learns from scratch per delta.

    Wraps any plain :class:`ModelLearner` so session-driven callers (the
    active loop's default mode) keep working with one-shot learners.
    Every model is a cold build, so :attr:`warm` is always ``False``.
    """

    def __init__(self, learner: ModelLearner, traces: TraceSet):
        self._learner = learner
        self._traces = traces.copy()
        self.warm = False
        self.model = learner.learn(self._traces)

    def add_traces(self, delta: Iterable[Trace]) -> SymbolicNFA:
        if self._traces.update(delta):
            self.model = self._learner.learn(self._traces)
        return self.model

    def reset(self) -> None:
        self.model = self._learner.learn(self._traces)


def start_session(learner: ModelLearner, traces: TraceSet) -> LearnerSession:
    """Open a learning session, native where the learner supports it.

    Learners exposing ``start_session`` get their own incremental
    session; anything else is wrapped in :class:`FreshLearnSession`.
    """
    opener = getattr(learner, "start_session", None)
    if opener is not None:
        return opener(traces)
    return FreshLearnSession(learner, traces)


class LearningError(RuntimeError):
    """Raised when a learner cannot produce a model for the given traces."""


def infer_variables(traces: TraceSet) -> dict[str, Var]:
    """Infer variable declarations from trace data alone.

    Black-box fallback when no instrumentation metadata is available:
    every variable becomes a bounded int covering its observed range.
    (With metadata, pass the system's typed variables instead -- guards
    then render with enum member names.)
    """
    lows: dict[str, int] = {}
    highs: dict[str, int] = {}
    for observation in traces.observations():
        for name, value in observation.items():
            lows[name] = min(value, lows.get(name, value))
            highs[name] = max(value, highs.get(name, value))
    return {
        name: Var(name, IntSort(lows[name], highs[name])) for name in lows
    }


def detect_mode_variables(
    traces: TraceSet, max_distinct: int = 8
) -> list[str]:
    """Heuristic mode-variable detection for the black-box setting.

    Variables with at most ``max_distinct`` observed values are treated
    as mode-like (chart states, Boolean outputs); the rest as data.  If
    nothing qualifies, every variable is mode-like (tiny systems).
    """
    values: dict[str, set[int]] = {}
    for observation in traces.observations():
        for name, value in observation.items():
            values.setdefault(name, set()).add(value)
    modes = [
        name
        for name, seen in sorted(values.items())
        if len(seen) <= max_distinct
    ]
    return modes or sorted(values)
