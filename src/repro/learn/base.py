"""The pluggable model-learning interface (paper §II-B).

The active-learning algorithm requires exactly one thing of its learning
component: *given a set of execution traces T, return an NFA that accepts
(at least) all traces in T*.  Anything satisfying :class:`ModelLearner`
can be plugged in; the reproduction ships three implementations with
different inductive biases (T2M-style symbolic, k-tails state-merging,
SAT-minimal DFA identification).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from ..automata.nfa import SymbolicNFA
from ..expr.ast import Var
from ..expr.types import IntSort
from ..traces.trace import TraceSet


@runtime_checkable
class ModelLearner(Protocol):
    """Anything that learns an NFA accepting a trace set."""

    def learn(self, traces: TraceSet) -> SymbolicNFA:
        """Return an NFA admitting every trace in ``traces``."""
        ...


class LearningError(RuntimeError):
    """Raised when a learner cannot produce a model for the given traces."""


def infer_variables(traces: TraceSet) -> dict[str, Var]:
    """Infer variable declarations from trace data alone.

    Black-box fallback when no instrumentation metadata is available:
    every variable becomes a bounded int covering its observed range.
    (With metadata, pass the system's typed variables instead -- guards
    then render with enum member names.)
    """
    lows: dict[str, int] = {}
    highs: dict[str, int] = {}
    for observation in traces.observations():
        for name, value in observation.items():
            lows[name] = min(value, lows.get(name, value))
            highs[name] = max(value, highs.get(name, value))
    return {
        name: Var(name, IntSort(lows[name], highs[name])) for name in lows
    }


def detect_mode_variables(
    traces: TraceSet, max_distinct: int = 8
) -> list[str]:
    """Heuristic mode-variable detection for the black-box setting.

    Variables with at most ``max_distinct`` observed values are treated
    as mode-like (chart states, Boolean outputs); the rest as data.  If
    nothing qualifies, every variable is mode-like (tiny systems).
    """
    values: dict[str, set[int]] = {}
    for observation in traces.observations():
        for name, value in observation.items():
            values.setdefault(name, set()).add(value)
    modes = [
        name
        for name, seen in sorted(values.items())
        if len(seen) <= max_distinct
    ]
    return modes or sorted(values)
