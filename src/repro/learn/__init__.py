"""Model-learning substrate: pluggable trace-to-NFA components.

Each learner satisfies the one-shot :class:`ModelLearner` contract; the
shipped learners additionally support *sessions* (incremental
re-learning over a monotonically growing trace set) via
:func:`start_session` -- see ``docs/learning_sessions.md``.
"""

from .base import (
    FreshLearnSession,
    LearnerSession,
    LearningError,
    ModelLearner,
    detect_mode_variables,
    infer_variables,
    start_session,
)
from .ktails import KTailsLearner, KTailsSession
from .predicates import candidate_atoms, synthesize_separator
from .sat_dfa import IdentifiedDfa, SatDfaLearner, SatDfaSession, identify_dfa
from .segmented import SegmentedLearner, SegmentedStats, SegmentLearnSpec
from .t2m import T2MLearner, T2MSession

__all__ = [
    "FreshLearnSession",
    "IdentifiedDfa",
    "KTailsLearner",
    "KTailsSession",
    "LearnerSession",
    "LearningError",
    "ModelLearner",
    "SatDfaLearner",
    "SatDfaSession",
    "SegmentLearnSpec",
    "SegmentedLearner",
    "SegmentedStats",
    "T2MLearner",
    "T2MSession",
    "candidate_atoms",
    "detect_mode_variables",
    "identify_dfa",
    "infer_variables",
    "start_session",
    "synthesize_separator",
]
