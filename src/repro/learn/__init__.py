"""Model-learning substrate: pluggable trace-to-NFA components."""

from .base import (
    LearningError,
    ModelLearner,
    detect_mode_variables,
    infer_variables,
)
from .ktails import KTailsLearner
from .predicates import candidate_atoms, synthesize_separator
from .sat_dfa import IdentifiedDfa, SatDfaLearner, identify_dfa
from .t2m import T2MLearner

__all__ = [
    "IdentifiedDfa",
    "KTailsLearner",
    "LearningError",
    "ModelLearner",
    "SatDfaLearner",
    "T2MLearner",
    "candidate_atoms",
    "detect_mode_variables",
    "identify_dfa",
    "infer_variables",
    "synthesize_separator",
]
