"""T2M-style model learner (the paper's choice of pluggable component).

Reproduces the observable behaviour of Trace2Model [Jeppu et al., DAC'20]
on the paper's benchmarks: from execution traces alone it builds a
compact symbolic NFA whose states correspond to observed *modes* (the
valuations of the state-like observables) and whose edges carry

* a mode predicate ``⋀ (m = value)`` -- rendered primed, ``(s' = On)``,
  because observations record post-step state -- and,
* for mode-*changing* edges, a synthesised predicate over the data
  variables (``(inp.temp > T_thresh)``), obtained by enumerative
  synthesis from the edge's positive/negative example observations
  (:mod:`repro.learn.predicates`).

The initial automaton state is merged into an observed-mode state when
one subsumes its behaviour, which is how Fig. 2's two-state model arises
(the pre-step "Off" configuration and the observed Off mode coincide).

Guarantee required by the active loop (§II-B): the returned NFA admits
every input trace.  Mode states admit every observed consecutive pair by
construction; synthesised guards are only conjoined when they cover all
of the edge's examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..automata.nfa import SymbolicNFA
from ..expr.ast import Expr, Var, eq, land
from ..expr.types import EnumSort
from ..system.valuation import Valuation
from ..traces.trace import TraceSet
from .base import detect_mode_variables, infer_variables
from .predicates import synthesize_separator

_INIT = -1  # pseudo-source for first observations


@dataclass
class _EdgeData:
    """Collected examples for one (source state, target mode) edge."""

    examples: list[Valuation] = field(default_factory=list)
    seen: set[Valuation] = field(default_factory=set)

    def add(self, observation: Valuation) -> None:
        if observation not in self.seen:
            self.seen.add(observation)
            self.examples.append(observation)


class T2MLearner:
    """Learn a symbolic NFA from execution traces.

    Parameters
    ----------
    mode_vars:
        Names of the state-like observables whose valuations become
        automaton states.  Defaults to auto-detection
        (:func:`~repro.learn.base.detect_mode_variables`).
    variables:
        Typed declarations for the observables (enables enum rendering
        and tighter predicate pools).  Defaults to inference from data.
    synthesize_guards:
        Whether to run predicate synthesis on mode-changing edges.
    max_atoms:
        Size budget for synthesised predicates.
    merge_initial:
        Whether to merge the initial pseudo-state into a behaviourally
        subsuming mode state (Fig. 2's shape).  When off, the model keeps
        an explicit ``init`` state.
    prefer_vars:
        Variables to try first in guard synthesis -- typically the
        system's *inputs*.  The paper's models predicate mode switches on
        inputs (Fig. 2's ``inp.temp > T_thresh``); without the hint, any
        correlated output would serve as a separator just as well.
    """

    def __init__(
        self,
        mode_vars: list[str] | None = None,
        variables: dict[str, Var] | None = None,
        synthesize_guards: bool = True,
        max_atoms: int = 3,
        merge_initial: bool = True,
        max_distinct: int = 8,
        prefer_vars: list[str] | None = None,
    ):
        self._mode_vars = list(mode_vars) if mode_vars else None
        self._variables = dict(variables) if variables else None
        self._synthesize_guards = synthesize_guards
        self._max_atoms = max_atoms
        self._merge_initial = merge_initial
        self._max_distinct = max_distinct
        self._prefer_vars = list(prefer_vars) if prefer_vars else None

    # ------------------------------------------------------------------
    def learn(self, traces: TraceSet) -> SymbolicNFA:
        variables, mode_names = self._basis(traces)
        modes: dict[tuple[int, ...], int] = {}  # mode tuple -> dense id
        edges: dict[tuple[int, tuple[int, ...]], _EdgeData] = {}
        self._scan_into(traces, mode_names, modes, edges)
        return self._finish(modes, edges, variables, mode_names)

    def start_session(self, traces: TraceSet) -> "T2MSession":
        """Open an incremental session over a growing trace set."""
        return T2MSession(self, traces)

    # ------------------------------------------------------------------
    def _basis(self, traces: TraceSet) -> tuple[dict[str, Var], list[str]]:
        """(variables, mode names) for a trace set, with sanity checks."""
        variables = self._variables or infer_variables(traces)
        mode_names = self._mode_vars or detect_mode_variables(
            traces, self._max_distinct
        )
        missing = [name for name in mode_names if name not in variables]
        if missing:
            raise ValueError(f"mode variables not in data: {missing}")
        return variables, mode_names

    @staticmethod
    def _scan_into(
        traces,
        mode_names: list[str],
        modes: dict[tuple[int, ...], int],
        edges: dict[tuple[int, tuple[int, ...]], _EdgeData],
    ) -> None:
        """Fold traces into the mode/edge structures (incremental-safe:
        scanning a delta continues exactly where the full scan left off,
        so dense mode ids and example orders match a one-shot scan)."""
        for trace in traces:
            source = _INIT
            for observation in trace:
                mode = tuple(observation[name] for name in mode_names)
                if mode not in modes:
                    modes[mode] = len(modes)
                target = modes[mode]
                edges.setdefault((source, mode), _EdgeData()).add(observation)
                source = target

    def _finish(
        self,
        modes: dict[tuple[int, ...], int],
        edges: dict[tuple[int, tuple[int, ...]], _EdgeData],
        variables: dict[str, Var],
        mode_names: list[str],
    ) -> SymbolicNFA:
        """Build the NFA from (copies of) the merge structures."""
        if not modes:
            # No observations at all: the trivial accepting point.
            nfa = SymbolicNFA()
            nfa.add_state("init", initial=True)
            return nfa
        data_vars = [
            var for name, var in sorted(variables.items())
            if name not in mode_names
        ]
        if self._prefer_vars:
            preferred = [
                variables[name]
                for name in self._prefer_vars
                if name in variables and name not in mode_names
            ]
            rest = [var for var in data_vars if var not in preferred]
            data_pools = [preferred, rest] if preferred else [data_vars]
        else:
            data_pools = [data_vars]
        mode_vars = [variables[name] for name in mode_names]
        # _resolve_initial mutates the edge map (it folds _INIT edges
        # into the chosen state), so sessions hand over a copy and keep
        # their persistent structures pristine.
        edges = {
            key: _EdgeData(examples=list(data.examples), seen=set(data.seen))
            for key, data in edges.items()
        }
        initial_source = self._resolve_initial(modes, edges)
        return self._build_nfa(
            modes, edges, initial_source, mode_names, mode_vars, data_pools
        )

    # ------------------------------------------------------------------
    def _resolve_initial(
        self,
        modes: dict[tuple[int, ...], int],
        edges: dict[tuple[int, tuple[int, ...]], _EdgeData],
    ) -> int:
        """Merge the initial pseudo-state into a subsuming mode state.

        A mode state subsumes the initial state when its outgoing target
        modes include all the modes seen as first observations.  Among
        candidates, prefer the one reached by most first observations
        (ties: lowest id).  Returns the state id to use as initial, or
        ``_INIT`` if no merge happens.
        """
        init_targets = {
            mode for (source, mode) in edges if source == _INIT
        }
        if not self._merge_initial:
            return _INIT
        votes: dict[tuple[int, ...], int] = {}
        for (source, mode), data in edges.items():
            if source == _INIT:
                votes[mode] = votes.get(mode, 0) + len(data.examples)
        candidates = []
        for mode, state in modes.items():
            targets = {m for (src, m) in edges if src == state}
            if init_targets <= targets:
                candidates.append((-votes.get(mode, 0), state, mode))
        if not candidates:
            return _INIT
        _votes, state, mode = min(candidates)
        # Fold the initial examples into the chosen state's edges.
        for (source, target_mode) in list(edges):
            if source == _INIT:
                data = edges.pop((source, target_mode))
                merged = edges.setdefault((state, target_mode), _EdgeData())
                for example in data.examples:
                    merged.add(example)
        return state

    # ------------------------------------------------------------------
    def _build_nfa(
        self,
        modes: dict[tuple[int, ...], int],
        edges: dict[tuple[int, tuple[int, ...]], _EdgeData],
        initial_source: int,
        mode_names: list[str],
        mode_vars: list[Var],
        data_pools: list[list[Var]],
    ) -> SymbolicNFA:
        nfa = SymbolicNFA()
        state_ids: dict[int, int] = {}
        for mode, dense in sorted(modes.items(), key=lambda kv: kv[1]):
            state_ids[dense] = nfa.add_state(
                self._mode_name(mode, mode_names, mode_vars)
            )
        if initial_source == _INIT:
            init_id = nfa.add_state("init", initial=True)
            state_ids[_INIT] = init_id
        else:
            nfa.mark_initial(state_ids[initial_source])

        mode_by_state = {dense: mode for mode, dense in modes.items()}
        # Group edges by source for sibling-aware guard synthesis.
        by_source: dict[int, list[tuple[tuple[int, ...], _EdgeData]]] = {}
        for (source, mode), data in edges.items():
            by_source.setdefault(source, []).append((mode, data))

        for source, targets in sorted(by_source.items()):
            targets.sort(key=lambda item: modes[item[0]])
            for mode, data in targets:
                guard = self._mode_guard(mode, mode_names, mode_vars)
                if self._wants_synthesis(source, mode, mode_by_state, targets):
                    negatives = [
                        example
                        for other_mode, other in targets
                        if other_mode != mode
                        for example in other.examples
                    ]
                    for pool in data_pools:
                        separator = synthesize_separator(
                            data.examples,
                            negatives,
                            pool,
                            max_atoms=self._max_atoms,
                        )
                        if separator is not None:
                            guard = land(separator, guard)
                            break
                nfa.add_transition(state_ids[source], guard, state_ids[modes[mode]])
        return nfa

    def _wants_synthesis(
        self,
        source: int,
        target_mode: tuple[int, ...],
        mode_by_state: dict[int, tuple[int, ...]],
        siblings: list[tuple[tuple[int, ...], _EdgeData]],
    ) -> bool:
        """Synthesise only for mode-changing edges with competition."""
        if not self._synthesize_guards or len(siblings) < 2:
            return False
        if source == _INIT:
            return False
        return mode_by_state.get(source) != target_mode

    @staticmethod
    def _mode_guard(
        mode: tuple[int, ...], mode_names: list[str], mode_vars: list[Var]
    ) -> Expr:
        return land(
            *(
                eq(var, value)
                for var, value in zip(mode_vars, mode, strict=True)
            )
        )

    @staticmethod
    def _mode_name(
        mode: tuple[int, ...], mode_names: list[str], mode_vars: list[Var]
    ) -> str:
        if len(mode_vars) == 1 and isinstance(mode_vars[0].sort, EnumSort):
            return mode_vars[0].sort.member_name(mode[0])
        return ",".join(
            f"{name}={_render_value(var, value)}"
            for name, var, value in zip(mode_names, mode_vars, mode, strict=True)
        )


def _render_value(var: Var, value: int) -> str:
    if isinstance(var.sort, EnumSort):
        return var.sort.member_name(value)
    return str(value)


class T2MSession:
    """Incremental re-learning session for :class:`T2MLearner`.

    The mode table and edge/example structures -- the part of learning
    that scans every observation and deduplicates examples -- persist
    across iterations; ``add_traces`` folds only the delta in.  Initial-
    state resolution and guard synthesis still run per model (they are
    global decisions), but on copies, so the accumulated structures are
    never mutated.  Dense mode ids are assigned in first-seen order, so
    a warm model is identical to a fresh ``learn`` on the full set.

    If mode-variable auto-detection drifts under new data the session
    rebuilds cold (``warm`` reads ``False`` for that iteration).
    """

    def __init__(self, learner: T2MLearner, traces: TraceSet):
        self._learner = learner
        self._traces = traces.copy()
        self.warm = False
        self._rebuild()

    def _rebuild(self) -> None:
        learner = self._learner
        self._variables, self._mode_names = learner._basis(self._traces)
        self._modes: dict[tuple[int, ...], int] = {}
        self._edges: dict[tuple[int, tuple[int, ...]], _EdgeData] = {}
        learner._scan_into(
            self._traces, self._mode_names, self._modes, self._edges
        )
        self.model = learner._finish(
            self._modes, self._edges, self._variables, self._mode_names
        )
        self.warm = False

    def add_traces(self, delta) -> SymbolicNFA:
        new = [trace for trace in delta if self._traces.add(trace)]
        if not new:
            return self.model
        learner = self._learner
        variables, mode_names = learner._basis(self._traces)
        if mode_names != self._mode_names:
            self._rebuild()
            return self.model
        self._variables = variables
        learner._scan_into(new, mode_names, self._modes, self._edges)
        self.model = learner._finish(
            self._modes, self._edges, self._variables, self._mode_names
        )
        self.warm = True
        return self.model

    def reset(self) -> None:
        """Drop all warm state; rebuild from the accumulated traces."""
        self._rebuild()
