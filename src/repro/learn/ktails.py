"""k-tails state-merging learner (Biermann-Feldman lineage).

An alternative pluggable learning component: build the prefix tree
acceptor over *mode sequences* and quotient it by k-tail equivalence
(two states merge when the sets of event sequences of length ≤ k leaving
them coincide).  Merging only ever grows the language, so the result
admits every input trace -- the contract the active loop requires.

Compared to the T2M-style learner this component is purely syntactic: no
predicate synthesis, guards are mode equalities.  It exists to exercise
the paper's claim that the evaluation procedure is independent of the
learner (§II-B) and is swapped in by the learner-ablation benchmark.
"""

from __future__ import annotations

from ..automata.nfa import SymbolicNFA
from ..expr.ast import Expr, Var, eq, land
from ..expr.types import EnumSort
from ..traces.trace import TraceSet
from .base import detect_mode_variables, infer_variables


class _PtaNode:
    __slots__ = ("children",)

    def __init__(self) -> None:
        self.children: dict[tuple[int, ...], _PtaNode] = {}


def _embeds(small: tuple, big: tuple) -> bool:
    """Does signature ``small`` embed into ``big`` as a truncated view?

    Traces are finite, so a PTA node near a trace end has seen only a
    prefix of the behaviour a longer run would show.  ``small`` embeds in
    ``big`` when every event of ``small`` appears in ``big`` with a
    recursively embeddable sub-signature -- i.e. ``small`` could be
    ``big`` observed through a shorter window.
    """
    big_map = dict(big)
    for event, sub in small:
        if event not in big_map or not _embeds(sub, big_map[event]):
            return False
    return True


def _absorption_map(sig_of_class: dict[int, tuple]) -> dict[int, int]:
    """Map every class to a maximally general class absorbing it.

    Left unmerged, truncated-future classes are under-approximations whose
    completeness conditions (paper §III-A) can never hold -- every
    learning iteration would create fresh ones and the active loop could
    not converge.  Absorption only redirects edges toward more general
    classes, so the learned language grows and training traces stay
    admitted.
    """
    ids = sorted(sig_of_class)
    rep: dict[int, int] = {}
    for cls in ids:
        sig = sig_of_class[cls]
        absorbers = [
            other
            for other in ids
            if other != cls
            and _embeds(sig, sig_of_class[other])
            and not _embeds(sig_of_class[other], sig)
        ]
        # A maximal absorber: one that no other absorber strictly embeds in.
        maximal = [
            a
            for a in absorbers
            if not any(
                _embeds(sig_of_class[a], sig_of_class[b])
                and not _embeds(sig_of_class[b], sig_of_class[a])
                for b in absorbers
            )
        ]
        target = min(maximal) if maximal else cls
        rep[cls] = target
    return rep


class KTailsLearner:
    """Prefix-tree acceptor + k-tails merging over mode sequences."""

    def __init__(
        self,
        k: int = 2,
        mode_vars: list[str] | None = None,
        variables: dict[str, Var] | None = None,
        max_distinct: int = 8,
    ):
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        self._k = k
        self._mode_vars = list(mode_vars) if mode_vars else None
        self._variables = dict(variables) if variables else None
        self._max_distinct = max_distinct

    # ------------------------------------------------------------------
    def learn(self, traces: TraceSet) -> SymbolicNFA:
        variables, mode_names = self._basis(traces)
        root = _PtaNode()
        signatures: dict[tuple[int, int], tuple] = {}
        for trace in traces:
            self._insert_trace(root, trace, mode_names, signatures)
        return self._finish(
            root, [variables[name] for name in mode_names], signatures
        )

    def start_session(self, traces: TraceSet) -> "KTailsSession":
        """Open an incremental session over a growing trace set."""
        return KTailsSession(self, traces)

    # ------------------------------------------------------------------
    def _basis(self, traces: TraceSet) -> tuple[dict[str, Var], list[str]]:
        variables = self._variables or infer_variables(traces)
        mode_names = self._mode_vars or detect_mode_variables(
            traces, self._max_distinct
        )
        return variables, mode_names

    def _insert_trace(
        self,
        root: _PtaNode,
        trace,
        mode_names: list[str],
        signatures: dict[tuple[int, int], tuple],
    ) -> None:
        """Extend the PTA with one trace, invalidating memoised k-tail
        signatures along the insertion path (only those subtrees change,
        so the rest of the memo survives across session iterations)."""
        node = root
        path = [root]
        for observation in trace:
            event = tuple(observation[name] for name in mode_names)
            node = node.children.setdefault(event, _PtaNode())
            path.append(node)
        for visited in path:
            for depth in range(1, self._k + 1):
                signatures.pop((id(visited), depth), None)

    def _finish(
        self,
        root: _PtaNode,
        mode_vars: list[Var],
        signatures: dict[tuple[int, int], tuple],
    ) -> SymbolicNFA:
        def signature(node: _PtaNode, depth: int) -> tuple:
            if depth == 0:
                return ()
            key = (id(node), depth)
            if key not in signatures:
                signatures[key] = tuple(
                    sorted(
                        (event, signature(child, depth - 1))
                        for event, child in node.children.items()
                    )
                )
            return signatures[key]

        # Quotient the PTA by k-tail signature.
        classes: dict[tuple, int] = {}
        node_class: dict[int, int] = {}

        def class_of(node: _PtaNode) -> int:
            sig = signature(node, self._k)
            if sig not in classes:
                classes[sig] = len(classes)
            node_class[id(node)] = classes[sig]
            return classes[sig]

        edges: set[tuple[int, tuple[int, ...], int]] = set()
        stack = [root]
        visited: set[int] = set()
        root_class = class_of(root)
        while stack:
            node = stack.pop()
            if id(node) in visited:
                continue
            visited.add(id(node))
            src = class_of(node)
            for event, child in sorted(node.children.items()):
                edges.add((src, event, class_of(child)))
                stack.append(child)

        sig_of_class = {cls: sig for sig, cls in classes.items()}
        rep = _absorption_map(sig_of_class)
        edges = {
            (rep[src], event, rep[dst]) for src, event, dst in edges
        }
        return self._build_nfa(edges, rep[root_class], mode_vars)

    def _build_nfa(
        self,
        edges: set[tuple[int, tuple[int, ...], int]],
        root_class: int,
        mode_vars: list[Var],
    ) -> SymbolicNFA:
        nfa = SymbolicNFA()
        state_of_class: dict[int, int] = {}

        def state_for(cls: int) -> int:
            if cls not in state_of_class:
                state_of_class[cls] = nfa.add_state(f"c{cls}")
            return state_of_class[cls]

        nfa.mark_initial(state_for(root_class))
        for src, event, dst in sorted(edges):
            nfa.add_transition(
                state_for(src), self._guard(event, mode_vars), state_for(dst)
            )
        self._name_states(nfa, mode_vars)
        return nfa

    # ------------------------------------------------------------------
    @staticmethod
    def _guard(event: tuple[int, ...], mode_vars: list[Var]) -> Expr:
        return land(*(eq(var, value) for var, value in zip(mode_vars, event, strict=True)))

    @staticmethod
    def _name_states(nfa: SymbolicNFA, mode_vars: list[Var]) -> None:
        """Name each state by the (unique) mode of its incoming edges."""
        for state in nfa.states:
            incoming = nfa.incoming(state)
            guards = {t.guard for t in incoming}
            if len(guards) == 1:
                guard = next(iter(guards))
                label = _short_label(guard, mode_vars)
                if label:
                    nfa.set_state_name(state, label)


def _short_label(guard: Expr, mode_vars: list[Var]) -> str | None:
    from ..expr.ast import And, Const, Eq

    parts: list[str] = []
    conjuncts = guard.args if isinstance(guard, And) else (guard,)
    for conjunct in conjuncts:
        if not (
            isinstance(conjunct, Eq)
            and isinstance(conjunct.lhs, Var)
            and isinstance(conjunct.rhs, Const)
        ):
            return None
        var, value = conjunct.lhs, conjunct.rhs.value
        if isinstance(var.sort, EnumSort):
            parts.append(var.sort.member_name(value))
        else:
            parts.append(f"{var.name}={value}")
    return ",".join(parts) if parts else None


class KTailsSession:
    """Incremental re-learning session for :class:`KTailsLearner`.

    The prefix-tree acceptor and the k-tail signature memo persist
    across iterations: ``add_traces`` splices only the delta into the
    PTA and invalidates memo entries along the touched paths, so
    signatures for untouched subtrees -- the bulk of the tree in late
    iterations -- are never recomputed.  The quotient and absorption
    steps are global and re-run per model.  A drift in mode-variable
    auto-detection triggers a cold rebuild (``warm`` reads ``False``).
    """

    def __init__(self, learner: KTailsLearner, traces: TraceSet):
        self._learner = learner
        self._traces = traces.copy()
        self.warm = False
        self._rebuild()

    def _rebuild(self) -> None:
        learner = self._learner
        self._variables, self._mode_names = learner._basis(self._traces)
        self._root = _PtaNode()
        self._signatures: dict[tuple[int, int], tuple] = {}
        for trace in self._traces:
            learner._insert_trace(
                self._root, trace, self._mode_names, self._signatures
            )
        self._refresh_model()
        self.warm = False

    def _refresh_model(self) -> None:
        learner = self._learner
        self.model = learner._finish(
            self._root,
            [self._variables[name] for name in self._mode_names],
            self._signatures,
        )

    def add_traces(self, delta) -> SymbolicNFA:
        new = [trace for trace in delta if self._traces.add(trace)]
        if not new:
            return self.model
        learner = self._learner
        variables, mode_names = learner._basis(self._traces)
        if mode_names != self._mode_names:
            self._rebuild()
            return self.model
        self._variables = variables
        for trace in new:
            learner._insert_trace(
                self._root, trace, self._mode_names, self._signatures
            )
        self._refresh_model()
        self.warm = True
        return self.model

    def reset(self) -> None:
        """Drop all warm state; rebuild from the accumulated traces."""
        self._rebuild()
