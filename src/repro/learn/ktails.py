"""k-tails state-merging learner (Biermann-Feldman lineage).

An alternative pluggable learning component: build the prefix tree
acceptor over *mode sequences* and quotient it by k-tail equivalence
(two states merge when the sets of event sequences of length ≤ k leaving
them coincide).  Merging only ever grows the language, so the result
admits every input trace -- the contract the active loop requires.

Compared to the T2M-style learner this component is purely syntactic: no
predicate synthesis, guards are mode equalities.  It exists to exercise
the paper's claim that the evaluation procedure is independent of the
learner (§II-B) and is swapped in by the learner-ablation benchmark.
"""

from __future__ import annotations

from ..automata.nfa import SymbolicNFA
from ..expr.ast import Expr, Var, eq, land
from ..expr.types import EnumSort
from ..system.valuation import Valuation
from ..traces.trace import TraceSet
from .base import detect_mode_variables, infer_variables


class _PtaNode:
    __slots__ = ("children",)

    def __init__(self) -> None:
        self.children: dict[tuple[int, ...], _PtaNode] = {}


def _embeds(small: tuple, big: tuple) -> bool:
    """Does signature ``small`` embed into ``big`` as a truncated view?

    Traces are finite, so a PTA node near a trace end has seen only a
    prefix of the behaviour a longer run would show.  ``small`` embeds in
    ``big`` when every event of ``small`` appears in ``big`` with a
    recursively embeddable sub-signature -- i.e. ``small`` could be
    ``big`` observed through a shorter window.
    """
    big_map = dict(big)
    for event, sub in small:
        if event not in big_map or not _embeds(sub, big_map[event]):
            return False
    return True


def _absorption_map(sig_of_class: dict[int, tuple]) -> dict[int, int]:
    """Map every class to a maximally general class absorbing it.

    Left unmerged, truncated-future classes are under-approximations whose
    completeness conditions (paper §III-A) can never hold -- every
    learning iteration would create fresh ones and the active loop could
    not converge.  Absorption only redirects edges toward more general
    classes, so the learned language grows and training traces stay
    admitted.
    """
    ids = sorted(sig_of_class)
    rep: dict[int, int] = {}
    for cls in ids:
        sig = sig_of_class[cls]
        absorbers = [
            other
            for other in ids
            if other != cls
            and _embeds(sig, sig_of_class[other])
            and not _embeds(sig_of_class[other], sig)
        ]
        # A maximal absorber: one that no other absorber strictly embeds in.
        maximal = [
            a
            for a in absorbers
            if not any(
                _embeds(sig_of_class[a], sig_of_class[b])
                and not _embeds(sig_of_class[b], sig_of_class[a])
                for b in absorbers
            )
        ]
        target = min(maximal) if maximal else cls
        rep[cls] = target
    return rep


class KTailsLearner:
    """Prefix-tree acceptor + k-tails merging over mode sequences."""

    def __init__(
        self,
        k: int = 2,
        mode_vars: list[str] | None = None,
        variables: dict[str, Var] | None = None,
        max_distinct: int = 8,
    ):
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        self._k = k
        self._mode_vars = list(mode_vars) if mode_vars else None
        self._variables = dict(variables) if variables else None
        self._max_distinct = max_distinct

    # ------------------------------------------------------------------
    def learn(self, traces: TraceSet) -> SymbolicNFA:
        variables = self._variables or infer_variables(traces)
        mode_names = self._mode_vars or detect_mode_variables(
            traces, self._max_distinct
        )
        mode_vars = [variables[name] for name in mode_names]

        root = _PtaNode()
        for trace in traces:
            node = root
            for observation in trace:
                event = tuple(observation[name] for name in mode_names)
                node = node.children.setdefault(event, _PtaNode())

        signatures: dict[int, tuple] = {}

        def signature(node: _PtaNode, depth: int) -> tuple:
            if depth == 0:
                return ()
            key = (id(node), depth)
            if key not in signatures:
                signatures[key] = tuple(
                    sorted(
                        (event, signature(child, depth - 1))
                        for event, child in node.children.items()
                    )
                )
            return signatures[key]

        # Quotient the PTA by k-tail signature.
        classes: dict[tuple, int] = {}
        node_class: dict[int, int] = {}

        def class_of(node: _PtaNode) -> int:
            sig = signature(node, self._k)
            if sig not in classes:
                classes[sig] = len(classes)
            node_class[id(node)] = classes[sig]
            return classes[sig]

        edges: set[tuple[int, tuple[int, ...], int]] = set()
        stack = [root]
        visited: set[int] = set()
        root_class = class_of(root)
        while stack:
            node = stack.pop()
            if id(node) in visited:
                continue
            visited.add(id(node))
            src = class_of(node)
            for event, child in sorted(node.children.items()):
                edges.add((src, event, class_of(child)))
                stack.append(child)

        sig_of_class = {cls: sig for sig, cls in classes.items()}
        rep = _absorption_map(sig_of_class)
        edges = {
            (rep[src], event, rep[dst]) for src, event, dst in edges
        }
        return self._build_nfa(edges, rep[root_class], mode_vars)

    def _build_nfa(
        self,
        edges: set[tuple[int, tuple[int, ...], int]],
        root_class: int,
        mode_vars: list[Var],
    ) -> SymbolicNFA:
        nfa = SymbolicNFA()
        state_of_class: dict[int, int] = {}

        def state_for(cls: int) -> int:
            if cls not in state_of_class:
                state_of_class[cls] = nfa.add_state(f"c{cls}")
            return state_of_class[cls]

        nfa.mark_initial(state_for(root_class))
        for src, event, dst in sorted(edges):
            nfa.add_transition(
                state_for(src), self._guard(event, mode_vars), state_for(dst)
            )
        self._name_states(nfa, mode_vars)
        return nfa

    # ------------------------------------------------------------------
    @staticmethod
    def _guard(event: tuple[int, ...], mode_vars: list[Var]) -> Expr:
        return land(*(eq(var, value) for var, value in zip(mode_vars, event)))

    @staticmethod
    def _name_states(nfa: SymbolicNFA, mode_vars: list[Var]) -> None:
        """Name each state by the (unique) mode of its incoming edges."""
        for state in nfa.states:
            incoming = nfa.incoming(state)
            guards = {t.guard for t in incoming}
            if len(guards) == 1:
                guard = next(iter(guards))
                label = _short_label(guard, mode_vars)
                if label:
                    nfa.set_state_name(state, label)


def _short_label(guard: Expr, mode_vars: list[Var]) -> str | None:
    from ..expr.ast import And, Const, Eq

    parts: list[str] = []
    conjuncts = guard.args if isinstance(guard, And) else (guard,)
    for conjunct in conjuncts:
        if not (
            isinstance(conjunct, Eq)
            and isinstance(conjunct.lhs, Var)
            and isinstance(conjunct.rhs, Const)
        ):
            return None
        var, value = conjunct.lhs, conjunct.rhs.value
        if isinstance(var.sort, EnumSort):
            parts.append(var.sort.member_name(value))
        else:
            parts.append(f"{var.name}={value}")
    return ",".join(parts) if parts else None
