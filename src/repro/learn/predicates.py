"""Enumerative predicate synthesis for transition guards.

This is the reproduction's stand-in for T2M's program-synthesis
component: given positive and negative example observations for an edge,
find a small predicate over the data variables that covers every
positive and excludes every negative.

The grammar is deliberately the one the paper's models exhibit
(cf. Fig. 2): threshold atoms ``v > c`` and their negations, equalities
for small domains, Boolean literals, and conjunctions/disjunctions of at
most a few atoms.  Candidates are enumerated smallest-first and the
search is deterministic, so learned guards are stable across runs.
Thresholds come from the observed data, which is why guards sharpen as
the active loop feeds counterexample traces back in (boundary examples
move the learned cut points toward the true ones).

Implementation notes.  Atom semantics over the (deduplicated) example
set are precomputed as bitmasks -- one bit per example -- so testing a
conjunction or disjunction is two integer ops.  Integer variables only
contribute *boundary* cuts (values where the pos/neg label actually
changes along the sorted axis), which keeps the atom pool small even for
wide domains; this is the classic decision-tree reduction and loses no
separating power for single atoms.
"""

from __future__ import annotations

from itertools import combinations
from collections.abc import Iterable, Sequence

from ..expr.ast import Expr, Var, eq, gt, land, lnot, lor
from ..expr.eval import holds
from ..expr.types import BoolSort, EnumSort, IntSort
from ..system.valuation import Valuation

_MAX_EQ_DOMAIN = 6   # enumerate equality atoms only for small domains
_MAX_PAIR_ATOMS = 64  # cap for the 2-atom search
_MAX_TRIPLE_ATOMS = 28  # cap for the 3-atom search


def _int_cut_values(
    var: Var, pos: Sequence[Valuation], neg: Sequence[Valuation]
) -> list[int]:
    """Boundary cuts for an int variable: values where the label flips."""
    labelled = sorted(
        {(obs[var.name], True) for obs in pos}
        | {(obs[var.name], False) for obs in neg}
    )
    by_value: dict[int, set[bool]] = {}
    for value, label in labelled:
        by_value.setdefault(value, set()).add(label)
    values = sorted(by_value)
    cuts = []
    for left, right in zip(values, values[1:], strict=False):
        if by_value[left] != by_value[right] or len(by_value[left]) > 1:
            cuts.append(left)
    return cuts


def candidate_atoms(
    variables: Sequence[Var],
    pos: Sequence[Valuation],
    neg: Sequence[Valuation],
) -> list[Expr]:
    """Atomic predicates suggested by the data, in deterministic order."""
    atoms: list[Expr] = []
    for var in variables:
        if isinstance(var.sort, BoolSort):
            atoms.append(eq(var, True))
            atoms.append(eq(var, False))
            continue
        if isinstance(var.sort, EnumSort):
            observed = sorted(
                {obs[var.name] for obs in pos} | {obs[var.name] for obs in neg}
            )
            for value in observed:
                atoms.append(eq(var, value))
                atoms.append(lnot(eq(var, value)))
            continue
        if isinstance(var.sort, IntSort):
            # Threshold atoms at label boundaries, written with > so the
            # rendered guards match the paper's ``(inp.temp > T_thresh)``.
            cuts = _int_cut_values(var, pos, neg)
            for cut in cuts:
                atoms.append(gt(var, cut))
                atoms.append(lnot(gt(var, cut)))
            observed = {obs[var.name] for obs in pos} | {
                obs[var.name] for obs in neg
            }
            if len(observed) <= _MAX_EQ_DOMAIN:
                for value in sorted(observed):
                    atoms.append(eq(var, value))
                    atoms.append(lnot(eq(var, value)))
    # Atoms are interned, so duplicates across the cut/equality sections
    # (a boundary cut that is also an observed value, a re-suggested
    # literal) are the *same object*: identity dedup, keeping the
    # deterministic first-occurrence order the search relies on.
    return list(dict.fromkeys(atoms))


def synthesize_separator(
    pos: Iterable[Valuation],
    neg: Iterable[Valuation],
    variables: Sequence[Var],
    max_atoms: int = 3,
) -> Expr | None:
    """Smallest predicate true on all of ``pos`` and false on all of ``neg``.

    Searches single atoms, then conjunctions, then disjunctions of up to
    ``max_atoms`` atoms; returns ``None`` when the grammar cannot separate
    (the caller then falls back to an unconstrained guard, which keeps
    the learned model a sound over-approximation).
    """
    pos_list = list(dict.fromkeys(pos))
    neg_list = list(dict.fromkeys(neg))
    if not pos_list or not neg_list:
        # Nothing to separate from; the weakest guard is the right one.
        return None
    atoms = candidate_atoms(variables, pos_list, neg_list)
    if not atoms:
        return None

    # Bitmask semantics: bit i of pos_mask(atom) = atom holds on pos[i].
    pos_full = (1 << len(pos_list)) - 1
    neg_full = (1 << len(neg_list)) - 1
    evaluated: list[tuple[Expr, int, int]] = []
    for atom in atoms:
        pos_mask = 0
        for index, obs in enumerate(pos_list):
            if holds(atom, obs):
                pos_mask |= 1 << index
        neg_mask = 0
        for index, obs in enumerate(neg_list):
            if holds(atom, obs):
                neg_mask |= 1 << index
        evaluated.append((atom, pos_mask, neg_mask))

    # Single atoms.
    for atom, pos_mask, neg_mask in evaluated:
        if pos_mask == pos_full and neg_mask == 0:
            return atom

    # Conjunctions need atoms covering all positives; disjunctions need
    # atoms excluding all negatives.
    covers_pos = [e for e in evaluated if e[1] == pos_full]
    excludes_neg = [e for e in evaluated if e[2] == 0]

    def conj_search(size: int, pool: list[tuple[Expr, int, int]]) -> Expr | None:
        for combo in combinations(pool, size):
            neg_mask = neg_full
            for _atom, _pm, nm in combo:
                neg_mask &= nm
            if neg_mask == 0:
                return land(*(atom for atom, _pm, _nm in combo))
        return None

    def disj_search(size: int, pool: list[tuple[Expr, int, int]]) -> Expr | None:
        for combo in combinations(pool, size):
            pos_mask = 0
            for _atom, pm, _nm in combo:
                pos_mask |= pm
            if pos_mask == pos_full:
                return lor(*(atom for atom, _pm, _nm in combo))
        return None

    for size in range(2, max_atoms + 1):
        cap = _MAX_PAIR_ATOMS if size == 2 else _MAX_TRIPLE_ATOMS
        found = conj_search(size, covers_pos[:cap])
        if found is not None:
            return found
        found = disj_search(size, excludes_neg[:cap])
        if found is not None:
            return found
    return None
