"""Segmented learning for long traces (companion paper).

The SAT-DFA encoding — and every learner that walks a monolithic
prefix tree — is super-linear in trace length, so a 10⁵-event log is
hopeless as one giant word.  *Learning Concise Models from Long
Execution Traces* (PAPERS.md) slices the trace into overlapping
segments, learns a small model per segment, and unifies the segment
models.  :class:`SegmentedLearner` is that pipeline:

* **Segmentation** via :func:`repro.traces.segment.segment_trace` —
  consumes event *streams* (generators, JSONL readers) with memory
  bounded by the segment length plus the distinct-segment memo.
* **Dedup memo** — repetitive logs repeat segments; each distinct
  segment (a hashable :class:`Trace`) is learned exactly once, so an
  eventually-periodic million-event log costs a handful of learner
  calls.
* **Parallel fan-out** — with ``jobs > 1`` distinct segments are
  sharded round-robin across the PR 2 persistent worker pool
  (:mod:`repro.core.pool`).  Each worker returns the segment model
  plus its overlap run windows; the parent splices strictly in segment
  order, so the unified model is bit-for-bit identical for any job
  count and any completion order.  Workers that die are retried
  serially under a ``RuntimeWarning``, mirroring the oracle.
* **Unification** via :class:`repro.automata.splice.ModelSplicer`
  (overlap-window agreement + learned-name agreement + bisimulation
  minimisation).

Soundness holds for any wrapped learner: merging states only grows
the language, so the unified model admits every input trace.
Exactness (unified ≡ minimised monolithic) additionally needs
per-segment runs that agree deterministically on the overlap windows —
T2M with an explicit variable basis and ``synthesize_guards=False,
merge_initial=False`` has it; see ``docs/long_traces.md`` for the
precision-loss cases.
"""

from __future__ import annotations

import warnings
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from ..automata.nfa import SymbolicNFA
from ..automata.splice import ModelSplicer, run_windows
from ..core.pool import ItemRunner, PersistentWorkerPool
from ..system.valuation import Valuation
from ..traces.segment import segment_trace
from ..traces.trace import Trace, TraceSet
from .base import ModelLearner


def _telemetry():
    """The telemetry module (lazy import, see its docstring: modules
    outside ``repro.core`` must not import it at module level)."""
    from ..core import telemetry

    return telemetry

#: What one segment-learning task returns: the model plus the run
#: windows the splicer aligns (entry = positions 0..w, exit = last w+1).
SegmentResult = tuple[
    SymbolicNFA, tuple[frozenset[int], ...], tuple[frozenset[int], ...]
]


@dataclass(frozen=True)
class SegmentLearnSpec:
    """Picklable recipe for the worker pool: learner + overlap.

    The wrapped learner must itself be picklable (the shipped learners
    are: their configuration is plain data and interned ``Expr``s
    re-intern on unpickle, preserving identity-based guard equality
    across processes — which is what keeps parallel splicing
    bit-for-bit identical to serial).
    """

    learner: ModelLearner
    overlap: int
    #: Captured at pool creation: workers of a telemetry-enabled parent
    #: run metrics-only sessions and ship per-batch snapshot deltas back.
    telemetry: bool = False

    def make_runner(self, worker_index: int) -> ItemRunner:
        def run(segment: Trace, deadline: float | None):
            return _learn_segment(self.learner, segment, self.overlap), False

        return run


def _learn_segment(
    learner: ModelLearner, segment: Trace, overlap: int
) -> SegmentResult:
    model = learner.learn(TraceSet([segment]))
    entry, exit_ = run_windows(model, segment, overlap)
    return model, entry, exit_


@dataclass
class SegmentedStats:
    """Workload accounting for one ``learn`` call."""

    chains: int = 0
    segments: int = 0
    distinct_segments: int = 0

    @property
    def memo_hits(self) -> int:
        return self.segments - self.distinct_segments


class SegmentedLearner:
    """Learn long traces by overlapping segmentation + unification.

    Satisfies :class:`~repro.learn.base.ModelLearner`, so it drops into
    the active loop and the CLI anywhere a learner goes; for genuinely
    long inputs prefer :meth:`learn_events` / :meth:`learn_streams`,
    which never materialise a full trace.

    The learner is a context manager; :meth:`close` shuts down the
    worker pool (``jobs=1`` never creates one).
    """

    def __init__(
        self,
        base: ModelLearner,
        segment_length: int,
        overlap: int = 1,
        *,
        jobs: int = 1,
        merge_named: bool = True,
        minimize: bool = True,
        start_method: str = "spawn",
    ):
        if segment_length < 2:
            raise ValueError(
                f"segment length must be >= 2, got {segment_length}"
            )
        if not 1 <= overlap < segment_length:
            # overlap >= 1 is what guarantees every consecutive
            # observation pair lands inside some segment; without it the
            # unified model would invent transitions at segment seams.
            raise ValueError(
                f"segment overlap must be in [1, length), got {overlap}"
            )
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.base = base
        self.segment_length = segment_length
        self.overlap = overlap
        self.jobs = jobs
        self.merge_named = merge_named
        self.minimize = minimize
        self.stats = SegmentedStats()
        self._pool: PersistentWorkerPool | None = None
        self._start_method = start_method

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "SegmentedLearner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the ModelLearner contract ------------------------------------
    def learn(self, traces: TraceSet | Iterable[Trace]) -> SymbolicNFA:
        """Unified model admitting every trace (each trace = one chain)."""
        return self.learn_streams(iter(trace) for trace in traces)

    def learn_events(self, events: Iterable[Valuation]) -> SymbolicNFA:
        """Learn one long trace from a bounded-memory event stream."""
        return self.learn_streams([events])

    def learn_streams(
        self, streams: Iterable[Iterable[Valuation]]
    ) -> SymbolicNFA:
        """Learn many long traces, each given as an event stream.

        Single ingestion pass: each stream is segmented on the fly and
        only the distinct-segment memo plus one segment-key reference
        per occurrence is retained — never the streams themselves.
        """
        telemetry = _telemetry()
        with telemetry.span("learn.segmented", jobs=self.jobs):
            chains = self._ingest(streams)
            if not any(chains):
                raise ValueError("no events to learn from")
            order = self._distinct_in_order(chains)
            results = self._learn_distinct(order)
            registry = telemetry.metrics()
            if registry is not None:
                registry.inc("segment.chains", self.stats.chains)
                registry.inc("segment.segments", self.stats.segments)
                registry.inc(
                    "segment.distinct_segments", self.stats.distinct_segments
                )
                registry.inc("segment.memo_hits", self.stats.memo_hits)
            return self._splice(chains, results)

    # -- pipeline stages (separable for the reorder tests) -------------
    def _ingest(
        self, streams: Iterable[Iterable[Valuation]]
    ) -> list[list[Trace]]:
        """Segment every stream; returns chains of memo keys."""
        self.stats = SegmentedStats()
        seen: dict[Trace, Trace] = {}
        chains: list[list[Trace]] = []
        for stream in streams:
            chain: list[Trace] = []
            for segment in segment_trace(
                stream, self.segment_length, self.overlap
            ):
                chain.append(seen.setdefault(segment, segment))
            chains.append(chain)
        self.stats.chains = len(chains)
        self.stats.segments = sum(len(chain) for chain in chains)
        self.stats.distinct_segments = len(seen)
        return chains

    @staticmethod
    def _distinct_in_order(chains: list[list[Trace]]) -> list[Trace]:
        """Distinct segments in first-appearance order."""
        order: dict[Trace, None] = {}
        for chain in chains:
            for segment in chain:
                order.setdefault(segment)
        return list(order)

    def _learn_distinct(
        self, order: list[Trace]
    ) -> dict[Trace, SegmentResult]:
        """One learner call per distinct segment, serial or pooled."""
        if self.jobs == 1 or len(order) < 2:
            return {
                segment: _learn_segment(self.base, segment, self.overlap)
                for segment in order
            }
        if self._pool is None:
            self._pool = PersistentWorkerPool(
                SegmentLearnSpec(
                    self.base, self.overlap, telemetry=_telemetry().enabled()
                ),
                self.jobs,
                start_method=self._start_method,
                name="segment-learner",
            )
        batches: list[list[tuple[int, Trace]]] = [
            [] for _ in range(self.jobs)
        ]
        for index, segment in enumerate(order):
            batches[index % self.jobs].append((index, segment))
        run = self._pool.run_batches(batches)
        if run.failures:
            warnings.warn(
                f"{run.failures} segment-learner worker(s) died; "
                f"re-learning {len(run.retry)} segment(s) serially",
                RuntimeWarning,
                stacklevel=3,
            )
        results: dict[Trace, SegmentResult] = {}
        for index, segment in enumerate(order):
            result = run.results.get(index)
            if result is None:
                result = _learn_segment(self.base, segment, self.overlap)
            results[segment] = result
        return results

    def _splice(
        self,
        chains: list[list[Trace]],
        results: dict[Trace, SegmentResult],
    ) -> SymbolicNFA:
        """Unify per-segment models strictly in chain/segment order.

        Everything order-dependent happens here, on stored structures —
        worker completion order cannot influence the result.
        """
        splicer = ModelSplicer(self.overlap, merge_named=self.merge_named)
        for chain in chains:
            splicer.begin_chain()
            for segment in chain:
                model, entry, exit_ = results[segment]
                splicer.add_segment(model, entry, exit_)
        return splicer.finish(minimize=self.minimize)


def iter_chain_streams(
    traces: TraceSet,
) -> Iterator[Iterator[Valuation]]:
    """Adapter: a TraceSet as the stream-of-streams ``learn_streams`` takes."""
    for trace in traces:
        yield iter(trace)
