"""Explicit-state reachability engine.

The paper's spuriousness checks (Fig. 3b) run k-induction with ``k`` up to
the system diameter -- for benchmarks like FrameSyncController that means
``k = 530`` transition unrollings, which is far beyond what a pure-Python
SAT solver can absorb.  For the finite systems in this reproduction we
therefore also provide an *exact* reachability oracle: breadth-first
search over the (finite) state space, with inputs drawn from a
representative sample set covering every guard region (the code generator
emits guard-boundary samples; see ``repro.stateflow.codegen``).

The engine answers the same question k-induction answers -- "is this
counterexample state reachable?" -- with exact yes/no instead of
yes/no/inconclusive.  DESIGN.md discusses why this substitution preserves
the algorithm's behaviour; the SAT k-induction engine remains available
for small ``k`` and for the k-sensitivity ablation.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Mapping

from ..expr.ast import Expr, eq, land, lor
from ..system.transition_system import SymbolicSystem, shared_analysis
from ..system.valuation import Valuation


class StateSpaceLimitExceeded(RuntimeError):
    """Raised when BFS touches more states than the configured budget."""


def shared_reachability(system: SymbolicSystem) -> "ExplicitReachability":
    """Per-system cache of reachability engines, keyed by object identity.

    Active-learning runs, baselines and witness generation all need the
    same BFS; benchmark systems live for the whole process (the library
    caches them), so sharing the explored table avoids re-exploration.
    Lifetime and copied-instance semantics come from
    :func:`~repro.system.transition_system.shared_analysis`.
    """
    return shared_analysis(
        system, "_shared_reachability_engine", ExplicitReachability
    )


class ExplicitReachability:
    """Exact forward reachability over the state projection.

    The state space is explored once and cached; queries then run on the
    cached table.  Witness traces are reconstructed from BFS parents and
    include the inputs that drove each step, so they are valid system
    execution traces.
    """

    def __init__(self, system: SymbolicSystem, max_states: int = 500_000):
        self._system = system
        self._max_states = max_states
        self._state_names = system.state_names
        self._inputs = system.enumerate_inputs()
        # state key -> (depth, parent key | None, inputs used | None)
        self._table: dict[tuple[int, ...], tuple[int, tuple[int, ...] | None, Valuation | None]] = {}
        self._explored = False

    # ------------------------------------------------------------------
    def _key(self, state: Mapping[str, int]) -> tuple[int, ...]:
        return tuple(state[name] for name in self._state_names)

    def explore(self) -> None:
        """Run the BFS (idempotent)."""
        if self._explored:
            return
        system = self._system
        initial = system.init_state
        init_key = self._key(initial)
        self._table[init_key] = (0, None, None)
        frontier: deque[tuple[tuple[int, ...], Valuation]] = deque(
            [(init_key, initial)]
        )
        while frontier:
            key, state = frontier.popleft()
            depth = self._table[key][0]
            for inputs in self._inputs:
                next_state = system.step(state, inputs)
                next_key = self._key(next_state)
                if next_key in self._table:
                    continue
                if len(self._table) >= self._max_states:
                    raise StateSpaceLimitExceeded(
                        f"{system.name}: more than {self._max_states} states"
                    )
                self._table[next_key] = (depth + 1, key, inputs)
                frontier.append((next_key, next_state))
        self._explored = True

    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        self.explore()
        return len(self._table)

    @property
    def diameter(self) -> int:
        """Maximum BFS depth over reachable states."""
        self.explore()
        return max(depth for depth, _p, _i in self._table.values())

    def reachable_depth(self, state: Mapping[str, int]) -> int | None:
        """BFS depth of the state projection, or None if unreachable.

        ``state`` may be a full observation; only state variables are read.
        Depth 0 is the pre-first-observation initial state.
        """
        self.explore()
        entry = self._table.get(self._key(state))
        return entry[0] if entry is not None else None

    def is_state_reachable(self, state: Mapping[str, int]) -> bool:
        return self.reachable_depth(state) is not None

    def reachable_states(self) -> list[Valuation]:
        self.explore()
        return [
            Valuation(dict(zip(self._state_names, key, strict=True))) for key in self._table
        ]

    # ------------------------------------------------------------------
    def witness(self, state: Mapping[str, int]) -> list[Valuation] | None:
        """Observation sequence v_1..v_d reaching the given state part.

        Returns None if unreachable; the empty list if the target is the
        initial (depth-0) state.
        """
        self.explore()
        key = self._key(state)
        if key not in self._table:
            return None
        steps: list[tuple[tuple[int, ...], Valuation]] = []
        cursor = key
        while True:
            depth, parent, inputs = self._table[cursor]
            if parent is None:
                break
            steps.append((cursor, inputs))
            cursor = parent
        steps.reverse()
        observations = []
        for state_key, inputs in steps:
            state_vals = dict(zip(self._state_names, state_key, strict=True))
            observations.append(self._system.observe(state_vals, inputs))
        return observations

    def find_observation(
        self, predicate: Callable[[Valuation], bool]
    ) -> list[Valuation] | None:
        """Shortest observation sequence whose last element satisfies
        ``predicate``, scanning reachable states in BFS order with every
        representative input.

        Single pass over the BFS parents: each candidate state's final
        observation is rebuilt directly from its own table entry, and a
        full witness is reconstructed only for the first hit -- O(states
        + diameter) instead of reconstructing a witness per state.
        """
        self.explore()
        ordered = sorted(self._table.items(), key=lambda kv: kv[1][0])
        for key, (depth, _parent, inputs) in ordered:
            if depth == 0:
                # Initial state: observations start after the first step.
                continue
            state_vals = dict(zip(self._state_names, key, strict=True))
            observation = self._system.observe(state_vals, inputs)
            if predicate(observation):
                trace = self.witness(state_vals)
                assert trace is not None
                return trace
        return None


def reachable_formula(
    system: SymbolicSystem,
    reach: "ExplicitReachability | None" = None,
    max_disjuncts: int = 400,
) -> Expr:
    """Characteristic formula of the reachable state set.

    This is the "domain knowledge" the paper suggests for guiding the
    model checker towards valid counterexamples (§IV-B.1): assuming it
    in the Fig. 3a harness removes the unreachable-state churn entirely.
    Small sets are encoded exactly as a DNF over the state variables;
    larger ones fall back to a per-variable value-set over-approximation
    (sound for guidance: it still contains every reachable state).
    """
    if reach is None:
        reach = shared_reachability(system)
    states = reach.reachable_states()
    if len(states) <= max_disjuncts:
        return lor(
            *(
                land(
                    *(
                        eq(var, state[var.name])
                        for var in system.state_vars
                    )
                )
                for state in states
            )
        )
    observed: dict[str, set[int]] = {
        var.name: set() for var in system.state_vars
    }
    for state in states:
        for name in observed:
            observed[name].add(state[name])
    conjuncts = []
    for var in system.state_vars:
        values = sorted(observed[var.name])
        conjuncts.append(lor(*(eq(var, value) for value in values)))
    return land(*conjuncts)
