"""The paper's Fig. 3 check harnesses, assembled from the engines.

In the original tool chain these are generated C functions handed to
CBMC; here they are query builders over the symbolic system.  The shapes
are identical:

* :func:`condition_harness` -- Fig. 3a: ``assume(r); loop X'=f(X); assert(s)``
  checked with k-induction at ``k = 1`` (a single-transition query).
* :func:`spurious_harness` -- Fig. 3b: ``assume(Init); loop X'=f(X);
  assert(¬s')`` checked with k-induction at ``k > 1``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..expr.ast import Expr, land, lnot
from ..expr.printer import to_str
from ..system.transition_system import SymbolicSystem
from ..system.valuation import Valuation
from .condition_check import check_condition
from .kinduction import k_induction
from .spurious import state_equality_formula
from .verdicts import ConditionCheckResult, KInductionResult


@dataclass(frozen=True)
class Harness:
    """A rendered assume/assert harness (for logs and documentation)."""

    assume: Expr
    assert_: Expr
    kind: str

    def render(self) -> str:
        lines = [
            f"// {self.kind}",
            f"assume({to_str(self.assume)});",
            "while (true) {",
            "    X' = f(X);",
            "}",
            f"assert({to_str(self.assert_)});",
        ]
        return "\n".join(lines)


def condition_harness(assume: Expr, conclusion: Expr) -> Harness:
    """Fig. 3a harness for one extracted completeness condition."""
    return Harness(assume=assume, assert_=conclusion, kind="condition check (Fig. 3a)")


def run_condition_harness(
    system: SymbolicSystem, assume: Expr, conclusion: Expr
) -> ConditionCheckResult:
    """Model-check a Fig. 3a harness (k-induction with k = 1)."""
    return check_condition(system, assume, conclusion)


def spurious_harness(
    system: SymbolicSystem, v_t: Valuation, state_only: bool = True
) -> Harness:
    """Fig. 3b harness asserting the counterexample state never occurs."""
    pin = state_equality_formula(system, v_t, state_only)
    return Harness(
        assume=system.init,
        assert_=lnot(pin),
        kind="spurious counterexample check (Fig. 3b)",
    )


def run_spurious_harness(
    system: SymbolicSystem, v_t: Valuation, k: int, state_only: bool = True
) -> KInductionResult:
    """Model-check a Fig. 3b harness with the given ``k > 1``."""
    pin = state_equality_formula(system, v_t, state_only)
    return k_induction(system, lnot(pin), k)


def strengthened_assumption(
    assume: Expr, system: SymbolicSystem, v_t: Valuation, state_only: bool = True
) -> Expr:
    """``r ∧ ¬s'``: the assumption strengthening after a spurious verdict."""
    return land(assume, lnot(state_equality_formula(system, v_t, state_only)))
