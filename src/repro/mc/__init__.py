"""Model-checking substrate: the CBMC stand-in.

Engines: one-step condition checks (Fig. 3a), BMC, k-induction, exact
explicit-state reachability, and the spuriousness classifier (Fig. 3b).
"""

from .bmc import BoundedModelChecker, IncrementalUnroller, bmc, bmc_single_query
from .condition_check import (
    IncrementalConditionChecker,
    check_condition,
    check_init_condition,
)
from .explicit import (
    ExplicitReachability,
    StateSpaceLimitExceeded,
    reachable_formula,
    shared_reachability,
)
from .harness import (
    Harness,
    condition_harness,
    run_condition_harness,
    run_spurious_harness,
    spurious_harness,
    strengthened_assumption,
)
from .kinduction import (
    KInductionEngine,
    k_induction,
    prove_unreachable,
    step_case_holds,
)
from .symbolic import (
    BddCompiler,
    BddGateBuilder,
    SymbolicReachability,
    SymbolicSpuriousness,
)
from .spurious import (
    ExplicitSpuriousness,
    KInductionSpuriousness,
    SpuriousnessChecker,
    state_equality_formula,
)
from .verdicts import (
    BmcResult,
    ConditionCheckResult,
    InductionOutcome,
    KInductionResult,
    SpuriousVerdict,
)

__all__ = [
    "BddCompiler",
    "BddGateBuilder",
    "BmcResult",
    "BoundedModelChecker",
    "ConditionCheckResult",
    "IncrementalUnroller",
    "KInductionEngine",
    "ExplicitReachability",
    "ExplicitSpuriousness",
    "Harness",
    "IncrementalConditionChecker",
    "InductionOutcome",
    "KInductionResult",
    "KInductionSpuriousness",
    "SpuriousVerdict",
    "SpuriousnessChecker",
    "SymbolicReachability",
    "SymbolicSpuriousness",
    "StateSpaceLimitExceeded",
    "reachable_formula",
    "shared_reachability",
    "bmc",
    "bmc_single_query",
    "check_condition",
    "check_init_condition",
    "condition_harness",
    "k_induction",
    "prove_unreachable",
    "run_condition_harness",
    "run_spurious_harness",
    "spurious_harness",
    "state_equality_formula",
    "step_case_holds",
    "strengthened_assumption",
]
