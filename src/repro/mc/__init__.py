"""Model-checking substrate: the CBMC stand-in.

Engines: one-step condition checks (Fig. 3a), BMC, k-induction, exact
explicit-state reachability, and the spuriousness classifier (Fig. 3b).
"""

from .bmc import BoundedModelChecker, IncrementalUnroller, bmc, bmc_single_query
from .condition_check import (
    IncrementalConditionChecker,
    check_condition,
    check_init_condition,
)
from .explicit import (
    ExplicitReachability,
    StateSpaceLimitExceeded,
    reachable_formula,
    shared_reachability,
)
from .harness import (
    Harness,
    condition_harness,
    run_condition_harness,
    run_spurious_harness,
    spurious_harness,
    strengthened_assumption,
)
from .ic3 import (
    Ic3Engine,
    Ic3Result,
    Ic3Spuriousness,
    Ic3Stats,
    shared_ic3,
)
from .kinduction import (
    KInductionEngine,
    k_induction,
    prove_unreachable,
    shared_kinduction,
    step_case_holds,
)
from .symbolic import (
    BddCompiler,
    BddGateBuilder,
    SharedBddContext,
    SymbolicReachability,
    SymbolicSpuriousness,
    TransitionPartition,
    build_transition_partition,
    shared_bdd_context,
    shared_symbolic_reachability,
)
from .spurious import (
    SPURIOUS_ENGINES,
    ExplicitSpuriousness,
    KInductionSpuriousness,
    SpuriousnessChecker,
    build_spurious_checker,
    state_equality_formula,
)
from .verdicts import (
    BmcResult,
    ConditionCheckResult,
    InductionOutcome,
    KInductionResult,
    SpuriousVerdict,
)

__all__ = [
    "BddCompiler",
    "BddGateBuilder",
    "BmcResult",
    "BoundedModelChecker",
    "ConditionCheckResult",
    "Ic3Engine",
    "Ic3Result",
    "Ic3Spuriousness",
    "Ic3Stats",
    "IncrementalUnroller",
    "KInductionEngine",
    "ExplicitReachability",
    "ExplicitSpuriousness",
    "Harness",
    "IncrementalConditionChecker",
    "InductionOutcome",
    "KInductionResult",
    "KInductionSpuriousness",
    "SPURIOUS_ENGINES",
    "SharedBddContext",
    "SpuriousVerdict",
    "SpuriousnessChecker",
    "SymbolicReachability",
    "SymbolicSpuriousness",
    "StateSpaceLimitExceeded",
    "TransitionPartition",
    "build_spurious_checker",
    "build_transition_partition",
    "reachable_formula",
    "shared_bdd_context",
    "shared_ic3",
    "shared_kinduction",
    "shared_reachability",
    "shared_symbolic_reachability",
    "bmc",
    "bmc_single_query",
    "check_condition",
    "check_init_condition",
    "condition_harness",
    "k_induction",
    "prove_unreachable",
    "run_condition_harness",
    "run_spurious_harness",
    "spurious_harness",
    "state_equality_formula",
    "step_case_holds",
    "strengthened_assumption",
]
