"""Spurious-counterexample classification (paper §III-C, Fig. 3b).

A condition-check counterexample ``(v_t, v_t+1)`` starts from an
*arbitrary* state satisfying the assumption, so ``v_t`` may be
unreachable.  The paper encodes ``s' := ⋀ (x_i = v_t(x_i))`` and proves
``¬s'`` invariant by k-induction with ``k > 1``:

* proof succeeds            → counterexample is **spurious**;
* base case fails           → ``v_t`` is reachable, counterexample **valid**;
* only the step case fails  → **inconclusive** (treated as valid, recorded).

Two engines implement this interface:

:class:`KInductionSpuriousness`
    The literal Fig. 3b check on the SAT back-end.  Faithful including the
    weak-induction inconclusive outcomes; practical for small ``k``.

:class:`ExplicitSpuriousness`
    Exact reachability of the state projection of ``v_t`` (inputs are
    free, so an observation is reachable iff its state part is).  With
    ``respect_k=True`` it reports what a k-bounded analysis would see:
    reachable within ``k`` → valid, reachable only beyond ``k`` →
    inconclusive, unreachable → spurious.  With ``respect_k=False`` it is
    a strictly stronger oracle that never returns inconclusive.

Two more engines live in their own modules and register here by name:
:class:`~repro.mc.symbolic.SymbolicSpuriousness` (``"bdd"``, exact BDD
fixpoint) and :class:`~repro.mc.ic3.Ic3Spuriousness` (``"ic3"``,
unbounded IC3/PDR proofs -- never inconclusive, no ``k`` to choose, and
verdicts agree with ``"explicit"`` under ``respect_k=False``).
"""

from __future__ import annotations

from typing import Protocol

from ..expr.ast import Expr, eq, land
from ..system.transition_system import SymbolicSystem
from ..system.valuation import Valuation
from .explicit import ExplicitReachability
from .kinduction import KInductionEngine
from .verdicts import InductionOutcome, SpuriousVerdict


def state_equality_formula(
    system: SymbolicSystem, v_t: Valuation, state_only: bool = False
) -> Expr:
    """The paper's ``s' := ⋀ (x_i = v_t(x_i))`` over the observables.

    With ``state_only=True`` only state variables are pinned.  This is
    the "strengthen the assumption with domain knowledge" optimisation
    the paper suggests for runtime (§IV-B): since inputs are free, pinning
    them makes the checker enumerate astronomically many spurious
    counterexamples differing only in input values.
    """
    variables = system.state_vars if state_only else system.variables
    return land(*(eq(var, v_t[var.name]) for var in variables))


class SpuriousnessChecker(Protocol):
    """Classifies a counterexample's first observation ``v_t``."""

    def classify(self, v_t: Valuation, k: int) -> SpuriousVerdict:
        """Verdict for the counterexample (``k`` is the Fig. 3b bound)."""
        ...


class KInductionSpuriousness:
    """Fig. 3b verbatim: k-induction proof that ``s'`` never holds.

    Every classification pins a different counterexample state, but the
    unrollings underneath are identical, so one persistent
    :class:`~repro.mc.kinduction.KInductionEngine` serves all calls and
    only the tiny pinned-state assertions change per query.
    """

    def __init__(
        self,
        system: SymbolicSystem,
        state_only: bool = True,
        engine: KInductionEngine | None = None,
    ):
        self._system = system
        self._state_only = state_only
        self._engine = engine or KInductionEngine(system)

    def classify(self, v_t: Valuation, k: int) -> SpuriousVerdict:
        bad = state_equality_formula(self._system, v_t, self._state_only)
        result = self._engine.k_induction(~bad, k)
        if result.outcome is InductionOutcome.PROVED:
            return SpuriousVerdict.SPURIOUS
        if result.outcome is InductionOutcome.BASE_VIOLATED:
            return SpuriousVerdict.VALID
        return SpuriousVerdict.INCONCLUSIVE


#: Engine names accepted by :func:`build_spurious_checker` (and therefore
#: by every oracle/learner constructor that takes a ``spurious_engine``).
#: See ``docs/engines.md`` for when each wins.
SPURIOUS_ENGINES = ("explicit", "bdd", "kinduction", "ic3", "none")


def build_spurious_checker(
    system: SymbolicSystem,
    engine: str,
    respect_k: bool = True,
    state_only: bool = True,
) -> "SpuriousnessChecker | None":
    """Construct a spuriousness checker from an engine *name*.

    The name-based factory is what lets oracle configurations travel as
    picklable specs (worker processes rebuild their own checker from the
    name rather than receiving a live object; see
    :mod:`repro.core.parallel`).  Every stateful engine is shared
    per-system (``shared_reachability`` / ``shared_kinduction`` /
    ``shared_ic3`` / ``shared_symbolic_reachability``), so repeated
    construction over one system instance reuses the explored tables,
    unrollings, frames and learned clauses instead of rebuilding them.
    """
    if engine == "explicit":
        from .explicit import shared_reachability

        return ExplicitSpuriousness(
            system, respect_k=respect_k, reach=shared_reachability(system)
        )
    if engine == "bdd":
        from .symbolic import SymbolicSpuriousness

        return SymbolicSpuriousness(system, respect_k=respect_k)
    if engine == "kinduction":
        from .kinduction import shared_kinduction

        return KInductionSpuriousness(
            system, state_only=state_only, engine=shared_kinduction(system)
        )
    if engine == "ic3":
        from .ic3 import Ic3Spuriousness, shared_ic3

        return Ic3Spuriousness(system, engine=shared_ic3(system))
    if engine == "none":
        return None
    raise ValueError(unknown_engine_message(engine))


def unknown_engine_message(engine: str) -> str:
    expected = ", ".join(repr(name) for name in SPURIOUS_ENGINES[:-1])
    return (
        f"unknown spurious_engine {engine!r} "
        f"(expected {expected} or {SPURIOUS_ENGINES[-1]!r})"
    )


class ExplicitSpuriousness:
    """Exact reachability oracle (see module docstring)."""

    def __init__(
        self,
        system: SymbolicSystem,
        respect_k: bool = True,
        reach: ExplicitReachability | None = None,
    ):
        self._system = system
        self._respect_k = respect_k
        self._reach = reach or ExplicitReachability(system)

    @property
    def reachability(self) -> ExplicitReachability:
        return self._reach

    def classify(self, v_t: Valuation, k: int) -> SpuriousVerdict:
        depth = self._reach.reachable_depth(v_t)
        if depth is None:
            return SpuriousVerdict.SPURIOUS
        if self._respect_k and depth > k:
            return SpuriousVerdict.INCONCLUSIVE
        return SpuriousVerdict.VALID
