"""Verdict types shared by the model-checking engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..system.valuation import Valuation


class SpuriousVerdict(Enum):
    """Classification of a condition-check counterexample (paper §III-C).

    * ``SPURIOUS`` -- proved unreachable (base and step case of the Fig. 3b
      k-induction both hold); the condition check is re-run with a
      strengthened assumption.
    * ``VALID`` -- the base case is violated: the counterexample state is
      reachable, so the counterexample exposes genuinely missing behaviour.
    * ``INCONCLUSIVE`` -- only the step case fails; no conclusive evidence
      either way.  The paper treats these as valid but records them.
    """

    SPURIOUS = "spurious"
    VALID = "valid"
    INCONCLUSIVE = "inconclusive"


@dataclass
class ConditionCheckResult:
    """Outcome of a Fig. 3a condition check."""

    holds: bool
    counterexample: tuple[Valuation, Valuation] | None = None
    solver_checks: int = 0

    def __post_init__(self) -> None:
        if not self.holds and self.counterexample is None:
            raise ValueError("violated condition checks need a counterexample")


@dataclass
class BmcResult:
    """Outcome of a bounded reachability query."""

    reachable: bool
    depth: int | None = None
    trace: list[Valuation] = field(default_factory=list)


class InductionOutcome(Enum):
    """Outcome of a k-induction proof attempt."""

    PROVED = "proved"               # base and step case hold
    BASE_VIOLATED = "base-violated"  # bad state reachable within k steps
    STEP_VIOLATED = "step-violated"  # induction too weak (or bad reachable)


@dataclass
class KInductionResult:
    outcome: InductionOutcome
    bmc: BmcResult | None = None

    @property
    def proved(self) -> bool:
        return self.outcome is InductionOutcome.PROVED
