"""Bounded model checking by transition-relation unrolling.

States and inputs are replicated per time frame (``x@t``); the initial
state satisfies ``Init`` at frame 0 and each frame is linked by the
transition relation.  A ``bad`` predicate over observations is checked at
every frame ``1..k``.

This implements the *base case* of the Fig. 3b spuriousness check, and is
also exposed on its own (tests use it as a reference reachability oracle
for small bounds).
"""

from __future__ import annotations

from ..expr.ast import Expr, Var, lor
from ..expr.subst import rename_step
from ..smt.solver import SmtSolver
from ..system.transition_system import SymbolicSystem
from ..system.valuation import Valuation
from .verdicts import BmcResult


def _frame_var(system: SymbolicSystem, name: str, step: int) -> Var:
    return Var(f"{name}@{step}", system.var_by_name(name).sort)


def unroll(
    system: SymbolicSystem, solver: SmtSolver, k: int, assume_init: bool = True
) -> None:
    """Assert frames 0..k linked by R; optionally pin frame 0 to Init."""

    def namer(name: str, step: int) -> Var:
        return _frame_var(system, name, step)

    # Declare every frame variable up front: inputs the transition
    # relation ignores must still exist so decoded traces are total.
    for var in system.state_vars:
        solver.declare(_frame_var(system, var.name, 0))
    for step in range(1, k + 1):
        for var in system.variables:
            solver.declare(_frame_var(system, var.name, step))
    if assume_init:
        solver.add(rename_step(system.init, 0, namer))
    for step in range(1, k + 1):
        solver.add(rename_step(system.trans, step - 1, namer))


def observation_at(expr: Expr, system: SymbolicSystem, step: int) -> Expr:
    """Rewrite an observation predicate to frame ``step`` variables."""

    def namer(name: str, frame: int) -> Var:
        return _frame_var(system, name, frame)

    return rename_step(expr, step, namer)


def decode_trace(
    system: SymbolicSystem, model: dict[str, int], depth: int
) -> list[Valuation]:
    """Extract observations v_1..v_depth from an unrolled model."""
    observations = []
    for step in range(1, depth + 1):
        values = {
            var.name: model[f"{var.name}@{step}"] for var in system.variables
        }
        observations.append(Valuation(values))
    return observations


def bmc(system: SymbolicSystem, bad: Expr, k: int) -> BmcResult:
    """Is an observation satisfying ``bad`` reachable within ``k`` steps?

    Checks depths incrementally (1, 2, ..., k) so the returned trace is a
    shortest witness; returns the first hit.
    """
    if k < 1:
        return BmcResult(reachable=False)
    for depth in range(1, k + 1):
        solver = SmtSolver()
        unroll(system, solver, depth)
        solver.add(observation_at(bad, system, depth))
        if solver.check():
            model = solver.model()
            return BmcResult(
                reachable=True,
                depth=depth,
                trace=decode_trace(system, model, depth),
            )
    return BmcResult(reachable=False)


def bmc_single_query(system: SymbolicSystem, bad: Expr, k: int) -> BmcResult:
    """One-query variant: bad at *any* frame 1..k (no shortest guarantee).

    Used when only the yes/no answer matters; the disjunctive encoding is
    a single solver call instead of ``k``.
    """
    if k < 1:
        return BmcResult(reachable=False)
    solver = SmtSolver()
    unroll(system, solver, k)
    solver.add(
        lor(*(observation_at(bad, system, step) for step in range(1, k + 1)))
    )
    if not solver.check():
        return BmcResult(reachable=False)
    model = solver.model()
    # Find the first frame where bad actually holds in this model.
    from ..expr.eval import holds

    for step in range(1, k + 1):
        frame_env = {
            var.name: model[f"{var.name}@{step}"] for var in system.variables
        }
        if holds(bad, frame_env):
            return BmcResult(
                reachable=True,
                depth=step,
                trace=decode_trace(system, model, step),
            )
    raise AssertionError("model satisfied the disjunction but no frame hit")
