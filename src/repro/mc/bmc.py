"""Bounded model checking by transition-relation unrolling.

States and inputs are replicated per time frame (``x@t``); the initial
state satisfies ``Init`` at frame 0 and each frame is linked by the
transition relation.  A ``bad`` predicate over observations is checked at
every frame ``1..k``.

This implements the *base case* of the Fig. 3b spuriousness check, and is
also exposed on its own (tests use it as a reference reachability oracle
for small bounds).

The unrolling is *monotone*: :class:`IncrementalUnroller` owns one
persistent :class:`~repro.smt.solver.SmtSolver` and only ever appends
frames; per-depth ``bad`` probes run in push/pop scopes.  Growing the
bound from ``k`` to ``k+1`` therefore encodes exactly one new frame
instead of re-bit-blasting the whole prefix, and clauses the SAT core
learned about frames ``0..k`` keep working at ``k+1``.
"""

from __future__ import annotations

from ..expr.ast import Expr, Var, lor
from ..expr.subst import rename_step
from ..smt.solver import SmtSolver
from ..system.transition_system import SymbolicSystem
from ..system.valuation import Valuation
from .verdicts import BmcResult


def _frame_var(system: SymbolicSystem, name: str, step: int) -> Var:
    return Var(f"{name}@{step}", system.var_by_name(name).sort)


class IncrementalUnroller:
    """Grow-only frame unrolling over a persistent solver.

    Frames 0..depth are linked by ``R``; frame 0 is optionally pinned to
    ``Init``.  :meth:`extend_to` is monotone and idempotent -- it encodes
    only the frames not yet present, on the same backing solver.

    Each frame's transition constraint sits behind its own guard
    literal rather than being asserted outright: a probe at depth ``d``
    assumes only guards ``1..d`` (:meth:`frame_assumptions`), so frames
    unrolled for an earlier, deeper query do not over-constrain a
    shallower one.  This matters for *partial* transition relations (a
    state whose next-state expression leaves its sort range has no
    successor): a permanently asserted frame ``d+1`` would force every
    depth-``d`` model to be extendable, wrongly reporting dead-end
    states unreachable.
    """

    def __init__(self, system: SymbolicSystem, assume_init: bool = True):
        self._system = system
        self.solver = SmtSolver()
        self._depth = 0
        self._frame_guards: list[int] = []
        # Declare every frame variable up front: inputs the transition
        # relation ignores must still exist so decoded traces are total.
        for var in system.state_vars:
            self.solver.declare(_frame_var(system, var.name, 0))
        if assume_init:
            self.solver.add(rename_step(system.init, 0, self._namer))

    def _namer(self, name: str, step: int) -> Var:
        return _frame_var(self._system, name, step)

    @property
    def depth(self) -> int:
        return self._depth

    def extend_to(self, k: int) -> None:
        """Encode any missing frames up to ``k`` (monotone)."""
        if self.solver.scope_depth:
            raise RuntimeError("cannot extend the unrolling inside a scope")
        while self._depth < k:
            step = self._depth + 1
            for var in self._system.variables:
                self.solver.declare(_frame_var(self._system, var.name, step))
            self._frame_guards.append(
                self.solver.literal(
                    rename_step(self._system.trans, step - 1, self._namer)
                )
            )
            self._depth = step

    def frame_assumptions(self, k: int) -> list[int]:
        """Guard literals activating transition frames 1..k."""
        if k > self._depth:
            raise ValueError(f"unrolled to {self._depth}, asked for {k}")
        return self._frame_guards[:k]


def unroll(
    system: SymbolicSystem, solver: SmtSolver, k: int, assume_init: bool = True
) -> None:
    """Assert frames 0..k linked by R; optionally pin frame 0 to Init.

    One-shot variant kept for ad-hoc queries; the engines below use
    :class:`IncrementalUnroller` so the encoding is shared across bounds.
    """

    def namer(name: str, step: int) -> Var:
        return _frame_var(system, name, step)

    for var in system.state_vars:
        solver.declare(_frame_var(system, var.name, 0))
    for step in range(1, k + 1):
        for var in system.variables:
            solver.declare(_frame_var(system, var.name, step))
    if assume_init:
        solver.add(rename_step(system.init, 0, namer))
    for step in range(1, k + 1):
        solver.add(rename_step(system.trans, step - 1, namer))


def observation_at(expr: Expr, system: SymbolicSystem, step: int) -> Expr:
    """Rewrite an observation predicate to frame ``step`` variables."""

    def namer(name: str, frame: int) -> Var:
        return _frame_var(system, name, frame)

    return rename_step(expr, step, namer)


def decode_trace(
    system: SymbolicSystem, model: dict[str, int], depth: int
) -> list[Valuation]:
    """Extract observations v_1..v_depth from an unrolled model."""
    observations = []
    for step in range(1, depth + 1):
        values = {
            var.name: model[f"{var.name}@{step}"] for var in system.variables
        }
        observations.append(Valuation(values))
    return observations


class BoundedModelChecker:
    """Persistent BMC engine for one system.

    Keeps an init-pinned :class:`IncrementalUnroller` alive across
    queries, so checking many ``bad`` predicates (the spuriousness
    checker pins a different counterexample state each time) shares one
    unrolling and one learned-clause store.
    """

    def __init__(self, system: SymbolicSystem):
        self._system = system
        self._unroller = IncrementalUnroller(system, assume_init=True)

    def check(self, bad: Expr, k: int) -> BmcResult:
        """Is an observation satisfying ``bad`` reachable within ``k`` steps?

        Checks depths incrementally (1, 2, ..., k) so the returned trace
        is a shortest witness; returns the first hit.
        """
        if k < 1:
            return BmcResult(reachable=False)
        solver = self._unroller.solver
        for depth in range(1, k + 1):
            self._unroller.extend_to(depth)
            solver.push()
            try:
                solver.add(observation_at(bad, self._system, depth))
                if solver.check(
                    assuming=self._unroller.frame_assumptions(depth)
                ):
                    model = solver.model()
                    return BmcResult(
                        reachable=True,
                        depth=depth,
                        trace=decode_trace(self._system, model, depth),
                    )
            finally:
                solver.pop()
        return BmcResult(reachable=False)


def bmc(system: SymbolicSystem, bad: Expr, k: int) -> BmcResult:
    """One-shot convenience wrapper over :class:`BoundedModelChecker`."""
    return BoundedModelChecker(system).check(bad, k)


def bmc_single_query(system: SymbolicSystem, bad: Expr, k: int) -> BmcResult:
    """One-query variant: bad at *any* frame 1..k (no shortest guarantee).

    Used when only the yes/no answer matters; the disjunctive encoding is
    a single solver call instead of ``k``.
    """
    if k < 1:
        return BmcResult(reachable=False)
    unroller = IncrementalUnroller(system, assume_init=True)
    unroller.extend_to(k)
    solver = unroller.solver
    solver.add(
        lor(*(observation_at(bad, system, step) for step in range(1, k + 1)))
    )
    if not solver.check(assuming=unroller.frame_assumptions(k)):
        return BmcResult(reachable=False)
    model = solver.model()
    # Find the first frame where bad actually holds in this model.
    from ..expr.eval import holds

    for step in range(1, k + 1):
        frame_env = {
            var.name: model[f"{var.name}@{step}"] for var in system.variables
        }
        if holds(bad, frame_env):
            return BmcResult(
                reachable=True,
                depth=step,
                trace=decode_trace(system, model, step),
            )
    raise AssertionError("model satisfied the disjunction but no frame hit")
