"""The Fig. 3a condition check: ``assume(r); X' = f(X); assert(s)``.

Each extracted completeness condition describes a *single* system
transition, so (as the paper observes) k-induction with ``k = 1`` --
i.e. one symbolic step from an arbitrary ``r``-state -- suffices: if the
one-step query is unsatisfiable, the condition holds for any number of
transitions from anywhere in the state space.

The query posed to the SAT back-end is::

    sorts(X) ∧ sorts(X') ∧ r(X) ∧ R(X, X') ∧ ¬s(X')

A model is a counterexample pair ``(v_t, v_t+1)``; unsatisfiability means
the condition is an invariant of the implementation.
"""

from __future__ import annotations

from ..expr.ast import Expr, lnot
from ..expr.subst import to_primed
from ..smt.encoder import Encoder
from ..smt.solver import SmtSolver
from ..system.transition_system import SymbolicSystem
from ..system.valuation import Valuation
from .verdicts import ConditionCheckResult


class IncrementalConditionChecker:
    """Condition checker that encodes the transition relation once.

    The active loop checks tens of conditions per iteration over the
    same system, and spurious-counterexample strengthening re-checks the
    same condition with a growing assumption.  Re-bit-blasting ``R``
    every time dominates runtime on the larger benchmarks, so this
    checker keeps one encoder with ``sorts(X, X') ∧ R(X, X')`` (plus any
    base constraints) asserted and rolls each query back afterwards.
    """

    def __init__(self, system: SymbolicSystem):
        self._system = system
        self._encoder = Encoder()
        for var in system.variables:
            self._encoder.declare(var)
            self._encoder.declare(var.prime())
        self._encoder.assert_expr(system.trans)
        self._sealed = False
        self._mark = self._encoder.checkpoint()

    def add_base_constraint(self, expr: Expr) -> None:
        """Permanently assert ``expr`` (over the declared variables).

        Used for domain-knowledge guidance (paper §IV-B.1): e.g. "v_t is
        a reachable state", which steers the checker away from spurious
        counterexamples.  Must be called before the first query.
        """
        if self._sealed:
            raise RuntimeError("base constraints must precede queries")
        self._encoder.assert_expr(expr)
        self._mark = self._encoder.checkpoint()

    def check(self, assume: Expr, conclusion: Expr) -> ConditionCheckResult:
        """Same query as :func:`check_condition`, on the shared prefix."""
        from ..sat.solver import Solver

        self._sealed = True
        encoder = self._encoder
        try:
            encoder.assert_expr(assume)
            encoder.assert_expr(lnot(to_primed(conclusion)))
            solver = Solver(encoder.cnf)
            result = solver.solve()
            if not result.satisfiable:
                return ConditionCheckResult(holds=True, solver_checks=1)
            model = encoder.decode_model(result.model)
            v_t = Valuation(
                {var.name: model[var.name] for var in self._system.variables}
            )
            v_t1 = Valuation(
                {
                    var.name: model[f"{var.name}'"]
                    for var in self._system.variables
                }
            )
            return ConditionCheckResult(
                holds=False, counterexample=(v_t, v_t1), solver_checks=1
            )
        finally:
            encoder.rollback(self._mark)


def check_condition(
    system: SymbolicSystem, assume: Expr, conclusion: Expr
) -> ConditionCheckResult:
    """Check ``v_t |= assume ∧ (v_t, v_t+1) |= R  ⟹  v_t+1 |= conclusion``.

    ``assume`` and ``conclusion`` are predicates over the observables
    ``X``; the conclusion is evaluated at the next observation by priming.
    """
    solver = SmtSolver()
    # Declare all observables in both time frames so counterexample
    # valuations are total.
    for var in system.variables:
        solver.declare(var)
        solver.declare(var.prime())
    solver.add(assume)
    solver.add(system.trans)
    solver.add(lnot(to_primed(conclusion)))
    if not solver.check():
        return ConditionCheckResult(holds=True, solver_checks=1)
    model = solver.model()
    v_t = Valuation(
        {var.name: model[var.name] for var in system.variables}
    )
    v_t1 = Valuation(
        {var.name: model[f"{var.name}'"] for var in system.variables}
    )
    return ConditionCheckResult(
        holds=False, counterexample=(v_t, v_t1), solver_checks=1
    )


def check_init_condition(
    system: SymbolicSystem, conclusion: Expr
) -> ConditionCheckResult:
    """Condition (1): from any initial state, one step satisfies the
    disjunction of the initial automaton state's outgoing predicates.

    The counterexample's first element ``v_0`` satisfies ``Init``; it is a
    genuine pre-first-observation state, so these counterexamples are
    never spurious (paper §III-B).
    """
    return check_condition(system, system.init, conclusion)
