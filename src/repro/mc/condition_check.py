"""The Fig. 3a condition check: ``assume(r); X' = f(X); assert(s)``.

Each extracted completeness condition describes a *single* system
transition, so (as the paper observes) k-induction with ``k = 1`` --
i.e. one symbolic step from an arbitrary ``r``-state -- suffices: if the
one-step query is unsatisfiable, the condition holds for any number of
transitions from anywhere in the state space.

The query posed to the SAT back-end is::

    sorts(X) ∧ sorts(X') ∧ r(X) ∧ R(X, X') ∧ ¬s(X')

A model is a counterexample pair ``(v_t, v_t+1)``; unsatisfiability means
the condition is an invariant of the implementation.
"""

from __future__ import annotations

from ..expr.ast import Const, Expr, eq, lnot
from ..expr.subst import to_primed
from ..expr.types import sort_values
from ..smt.solver import SmtSolver
from ..system.transition_system import SymbolicSystem
from ..system.valuation import Valuation
from .verdicts import ConditionCheckResult


def _tel_metrics():
    """Live metrics registry, or ``None`` (lazy import: this module is
    inside the core package's import closure, see telemetry docstring)."""
    from ..core.telemetry import active

    session = active()
    return None if session is None else session.metrics


class IncrementalConditionChecker:
    """Condition checker over one persistent incremental solver.

    The active loop checks tens of conditions per iteration over the
    same system, and spurious-counterexample strengthening re-checks the
    same condition with a growing assumption ``r ← r ∧ ¬s'``.  This
    checker asserts ``sorts(X, X') ∧ R(X, X')`` (plus any base
    constraints) once on a single :class:`~repro.smt.solver.SmtSolver`
    and poses each query in a push/pop scope: the query's ``assume`` and
    ``¬s'`` become assumption literals on the *same* backing CDCL
    instance, so watch lists, saved phases, variable activity and --
    crucially -- every clause learned about ``R`` in earlier queries and
    earlier strengthening rounds carry over.  Because the encoder
    memoises by expression node, a strengthened assumption re-uses the
    literals of all its earlier conjuncts, and lemmas mentioning them
    re-apply immediately.
    """

    def __init__(self, system: SymbolicSystem):
        self._system = system
        self._solver = SmtSolver()
        for var in system.variables:
            self._solver.declare(var)
            self._solver.declare(var.prime())
        self._solver.add(system.trans)
        self._sealed = False

    @property
    def backing_solver(self):
        """The persistent CDCL solver (identity is stable across checks)."""
        return self._solver.solver

    def add_base_constraint(self, expr: Expr) -> None:
        """Permanently assert ``expr`` (over the declared variables).

        Used for domain-knowledge guidance (paper §IV-B.1): e.g. "v_t is
        a reachable state", which steers the checker away from spurious
        counterexamples.  Must be called before the first query.
        """
        if self._sealed:
            raise RuntimeError("base constraints must precede queries")
        self._solver.add(expr)

    def check(
        self, assume: Expr, conclusion: Expr, canonical: bool = False
    ) -> ConditionCheckResult:
        """Same query as :func:`check_condition`, on the shared solver.

        With ``canonical=True`` a satisfiable query returns the
        *lexicographically minimal* counterexample (see
        :meth:`_minimise_model`) instead of whichever model the CDCL
        search happened to land on.  The verdict is unaffected.
        """
        self._sealed = True
        solver = self._solver
        solver.push()
        try:
            solver.add(assume)
            solver.add(lnot(to_primed(conclusion)))
            if not solver.check():
                return ConditionCheckResult(holds=True, solver_checks=1)
            model = solver.model()
            if canonical:
                # Deliberately NOT added to solver_checks: the probe
                # count depends on the arbitrary model the CDCL search
                # started from, so including it would make outcomes
                # history-dependent again.  solver_checks counts logical
                # queries; raw solve effort is in SmtSolver.stats.
                model, probes = self._minimise_model(model)
                registry = _tel_metrics()
                if registry is not None:
                    registry.inc("oracle.canonical_probes", probes)
                    registry.observe("oracle.canonical_probes_per_cex", probes)
            v_t = Valuation(
                {var.name: model[var.name] for var in self._system.variables}
            )
            v_t1 = Valuation(
                {
                    var.name: model[f"{var.name}'"]
                    for var in self._system.variables
                }
            )
            return ConditionCheckResult(
                holds=False, counterexample=(v_t, v_t1), solver_checks=1
            )
        finally:
            solver.pop()

    def _minimise_model(
        self, model: dict[str, int]
    ) -> tuple[dict[str, int], int]:
        """Lexicographically minimal model of the current query scope.

        The counterexample a CDCL search returns depends on its clause
        database, saved phases and even the (hash-salted) order in which
        the encoder first met the variables -- so it differs between
        solver histories and between worker processes.  The *minimal*
        model under a fixed variable order is a pure function of the
        query, which is what lets a sharded oracle reproduce the serial
        report bit for bit (see :mod:`repro.core.parallel`).

        Order: the system's observables as declared (inputs, then state),
        current frame before primed frame; values ascending.  Each
        variable is driven to its smallest satisfiable value by binary
        search over its (contiguous) sort range -- O(log |domain|) solver
        probes instead of one per rejected value -- then pinned in a
        retractable scope before the next variable is minimised.

        Returns the minimal model and the number of solver probes spent.
        """
        solver = self._solver
        pinned = 0
        probes = 0
        try:
            variables = list(self._system.variables)
            for var in variables + [v.prime() for v in variables]:
                name = var.qualified_name
                floor = sort_values(var.sort)[0]
                while model[name] > floor:
                    if var.sort.is_bool():
                        probe: Expr = eq(var, Const(0, var.sort))
                        midpoint = 0
                    else:
                        midpoint = (floor + model[name] - 1) // 2
                        probe = var <= midpoint
                    solver.push()
                    pinned += 1
                    solver.add(probe)
                    probes += 1
                    if solver.check():
                        model = solver.model()
                    else:
                        solver.pop()
                        pinned -= 1
                        floor = midpoint + 1
                # Fix the chosen value before minimising later variables.
                solver.push()
                pinned += 1
                solver.add(eq(var, Const(model[name], var.sort)))
            return model, probes
        finally:
            for _ in range(pinned):
                solver.pop()


def check_condition(
    system: SymbolicSystem, assume: Expr, conclusion: Expr
) -> ConditionCheckResult:
    """Check ``v_t |= assume ∧ (v_t, v_t+1) |= R  ⟹  v_t+1 |= conclusion``.

    ``assume`` and ``conclusion`` are predicates over the observables
    ``X``; the conclusion is evaluated at the next observation by priming.
    """
    solver = SmtSolver()
    # Declare all observables in both time frames so counterexample
    # valuations are total.
    for var in system.variables:
        solver.declare(var)
        solver.declare(var.prime())
    solver.add(assume)
    solver.add(system.trans)
    solver.add(lnot(to_primed(conclusion)))
    if not solver.check():
        return ConditionCheckResult(holds=True, solver_checks=1)
    model = solver.model()
    v_t = Valuation(
        {var.name: model[var.name] for var in system.variables}
    )
    v_t1 = Valuation(
        {var.name: model[f"{var.name}'"] for var in system.variables}
    )
    return ConditionCheckResult(
        holds=False, counterexample=(v_t, v_t1), solver_checks=1
    )


def check_init_condition(
    system: SymbolicSystem, conclusion: Expr
) -> ConditionCheckResult:
    """Condition (1): from any initial state, one step satisfies the
    disjunction of the initial automaton state's outgoing predicates.

    The counterexample's first element ``v_0`` satisfies ``Init``; it is a
    genuine pre-first-observation state, so these counterexamples are
    never spurious (paper §III-B).
    """
    return check_condition(system, system.init, conclusion)
