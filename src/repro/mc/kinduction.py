"""k-induction (paper §III-B/C, following Sheeran-Singh-Stålmarck).

To prove an observation property ``safe`` invariant:

* **base case** -- no observation violating ``safe`` is reachable within
  ``k`` steps of an initial state (a BMC query);
* **step case** -- along *any* path of ``k`` consecutive observations
  satisfying ``safe`` (starting from an arbitrary, range-constrained
  state), the next observation also satisfies ``safe``.

If both hold, ``safe`` holds in every reachable observation.  A failing
step case alone is inconclusive: the induction may simply be too weak for
the chosen ``k``.  This weakness is precisely what the paper's §III-C
handles by recording inconclusive counterexamples, and what makes a poor
choice of ``k`` add spurious behaviours to the learned model (§IV-B).
"""

from __future__ import annotations

from ..expr.ast import Expr, lnot
from ..smt.solver import SmtSolver
from ..system.transition_system import SymbolicSystem
from .bmc import bmc, observation_at, unroll
from .verdicts import BmcResult, InductionOutcome, KInductionResult


def step_case_holds(system: SymbolicSystem, safe: Expr, k: int) -> bool:
    """The inductive step of k-induction.

    Query: frames 0..k+1 from an *arbitrary* frame-0 state, assuming
    ``safe`` at observations 1..k and ``¬safe`` at observation k+1.
    Unsatisfiable means the step case holds.
    """
    solver = SmtSolver()
    unroll(system, solver, k + 1, assume_init=False)
    for step in range(1, k + 1):
        solver.add(observation_at(safe, system, step))
    solver.add(observation_at(lnot(safe), system, k + 1))
    return not solver.check()


def k_induction(system: SymbolicSystem, safe: Expr, k: int) -> KInductionResult:
    """Attempt to prove ``safe`` invariant with bound ``k``."""
    if k < 1:
        raise ValueError(f"k-induction needs k >= 1, got {k}")
    base = bmc(system, lnot(safe), k)
    if base.reachable:
        return KInductionResult(InductionOutcome.BASE_VIOLATED, bmc=base)
    if step_case_holds(system, safe, k):
        return KInductionResult(InductionOutcome.PROVED)
    return KInductionResult(InductionOutcome.STEP_VIOLATED)


def prove_unreachable(
    system: SymbolicSystem, bad: Expr, k: int
) -> KInductionResult:
    """Convenience wrapper: prove that ``bad`` never holds (Fig. 3b shape)."""
    return k_induction(system, lnot(bad), k)
