"""k-induction (paper §III-B/C, following Sheeran-Singh-Stålmarck).

To prove an observation property ``safe`` invariant:

* **base case** -- no observation violating ``safe`` is reachable within
  ``k`` steps of an initial state (a BMC query);
* **step case** -- along *any* path of ``k`` consecutive observations
  satisfying ``safe`` (starting from an arbitrary, range-constrained
  state), the next observation also satisfies ``safe``.

If both hold, ``safe`` holds in every reachable observation.  A failing
step case alone is inconclusive: the induction may simply be too weak for
the chosen ``k``.  This weakness is precisely what the paper's §III-C
handles by recording inconclusive counterexamples, and what makes a poor
choice of ``k`` add spurious behaviours to the learned model (§IV-B).

:class:`KInductionEngine` is the incremental form: one base-case and one
step-case unrolling per system, both grow-only, with per-property
assertions posed in push/pop scopes.  The spuriousness checker proves a
different pinned state unreachable on every call, so sharing the
unrollings (and the SAT core's learned clauses) across those calls
removes the dominant re-encoding cost.
"""

from __future__ import annotations

from ..expr.ast import Expr, lnot
from ..system.transition_system import SymbolicSystem, shared_analysis
from .bmc import BoundedModelChecker, IncrementalUnroller, observation_at
from .verdicts import InductionOutcome, KInductionResult


class KInductionEngine:
    """Persistent k-induction engine for one system."""

    def __init__(self, system: SymbolicSystem):
        self._system = system
        self._bmc = BoundedModelChecker(system)
        self._step = IncrementalUnroller(system, assume_init=False)

    @property
    def bmc_engine(self) -> BoundedModelChecker:
        return self._bmc

    def step_case_holds(self, safe: Expr, k: int) -> bool:
        """The inductive step of k-induction.

        Query: frames 0..k+1 from an *arbitrary* frame-0 state, assuming
        ``safe`` at observations 1..k and ``¬safe`` at observation k+1.
        Unsatisfiable means the step case holds.
        """
        self._step.extend_to(k + 1)
        solver = self._step.solver
        solver.push()
        try:
            for step in range(1, k + 1):
                solver.add(observation_at(safe, self._system, step))
            solver.add(observation_at(lnot(safe), self._system, k + 1))
            return not solver.check(
                assuming=self._step.frame_assumptions(k + 1)
            )
        finally:
            solver.pop()

    def k_induction(self, safe: Expr, k: int) -> KInductionResult:
        """Attempt to prove ``safe`` invariant with bound ``k``."""
        if k < 1:
            raise ValueError(f"k-induction needs k >= 1, got {k}")
        base = self._bmc.check(lnot(safe), k)
        if base.reachable:
            return KInductionResult(InductionOutcome.BASE_VIOLATED, bmc=base)
        if self.step_case_holds(safe, k):
            return KInductionResult(InductionOutcome.PROVED)
        return KInductionResult(InductionOutcome.STEP_VIOLATED)


def shared_kinduction(system: SymbolicSystem) -> KInductionEngine:
    """Per-system k-induction engine memo (cf. ``shared_reachability``).

    Both unrollings (and the SAT core's learned clauses) are expensive
    to rebuild, yet every :func:`~repro.mc.spurious.build_spurious_checker`
    call used to construct fresh ones; the
    :func:`~repro.system.transition_system.shared_analysis` memo ties
    one engine to the system's own lifetime.
    """
    return shared_analysis(
        system, "_shared_kinduction_engine", KInductionEngine
    )


def step_case_holds(system: SymbolicSystem, safe: Expr, k: int) -> bool:
    """One-shot convenience wrapper; see :class:`KInductionEngine`."""
    engine = KInductionEngine(system)
    return engine.step_case_holds(safe, k)


def k_induction(system: SymbolicSystem, safe: Expr, k: int) -> KInductionResult:
    """One-shot convenience wrapper; see :class:`KInductionEngine`."""
    return KInductionEngine(system).k_induction(safe, k)


def prove_unreachable(
    system: SymbolicSystem, bad: Expr, k: int
) -> KInductionResult:
    """Convenience wrapper: prove that ``bad`` never holds (Fig. 3b shape)."""
    return k_induction(system, lnot(bad), k)
