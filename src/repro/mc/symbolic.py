"""BDD-based symbolic reachability: the third model-checking engine.

Complements the SAT-based BMC/k-induction stack and the explicit-state
BFS with classic symbolic image computation:

    Reached_0 = Init
    Reached_{n+1} = Reached_n ∨ (∃ current, inputs: R ∧ Reached_n)[next→current]

State variables are bit-blasted onto BDD variables with the standard
interleaved current/next ordering (next bit = current bit + 1, so the
post-image rename is order-preserving); input bits sit after the state
bits and are quantified out during the image.

The engine records the onion layers of the fixpoint, so it can answer
the same depth-bounded questions the Fig. 3b spuriousness check needs --
:class:`SymbolicSpuriousness` is a drop-in third implementation of the
``SpuriousnessChecker`` protocol, cross-checked against the explicit
engine in the test suite.

The transition relation is **partitioned**: instead of one monolithic
compiled ``R``, the context keeps a conjunctive partition -- one cluster
per state variable's next-state constraint plus the domain constraints,
small clusters merged up to a node-count threshold
(:func:`build_transition_partition`) -- and the image step conjoins the
clusters in a greedy IWLS95-style order, quantifying each current/input
bit out as soon as no remaining cluster's support mentions it.  The
monolithic path is retained (``image_once(..., partitioned=False)``)
and the test suite proves both produce bit-identical reachable sets.

The arithmetic reuses the *same* word-level algorithms as the CNF
bit-blaster (:mod:`repro.smt.bitvec`): those functions are generic over
a gate-builder interface, and :class:`BddGateBuilder` implements it over
BDD nodes.  One implementation of ripple-carry addition, signed
comparison etc. therefore serves both engines.

Caching mirrors the SAT side's clause reuse: every engine instance over
one system shares a :class:`SharedBddContext` (transition partition
plus per-frontier image memo, see :func:`shared_bdd_context`),
exploration is lazy (queries peel only the onion layers they need), and
variable orderings are registered per observable *signature* so
same-shaped systems agree on their bit layout
(:func:`observable_signature`).  Long-lived BDDs (compiler memos,
clusters, cached images, onion layers) are pinned with the manager's
``protect`` so dynamic reordering (Rudell sifting, armed by the
context's ``reorder_threshold``) can fire between image steps without
invalidating them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bdd.manager import BddManager
from ..expr.ast import (
    Add,
    And,
    Const,
    Eq,
    Expr,
    Iff,
    Implies,
    Ite,
    Le,
    Lt,
    Mul,
    Neg,
    Not,
    Or,
    Sub,
    Var,
    eq,
    interval,
)
from ..expr.types import BoolSort, EnumSort, IntSort
from ..smt.bitvec import (
    BitVec,
    add_bitvec,
    const_bitvec,
    eq_bitvec,
    ite_bitvec,
    mul_bitvec,
    negate_bitvec,
    signed_leq,
    signed_less,
    sub_bitvec,
    width_for_range,
)
from ..system.transition_system import SymbolicSystem, shared_analysis
from ..system.valuation import Valuation
from .verdicts import SpuriousVerdict


def _tel_metrics():
    """Live metrics registry, or ``None`` (lazy import: this module is
    inside the core package's import closure, see telemetry docstring)."""
    from ..core.telemetry import active

    session = active()
    return None if session is None else session.metrics


class BddGateBuilder:
    """The gate-builder interface of :mod:`repro.smt.bitvec`, over BDDs.

    "Literals" are BDD node ids; negation goes through the manager
    (there is no sign-flip trick as in CNF).
    """

    def __init__(self, manager: BddManager):
        self.manager = manager

    @property
    def true_lit(self) -> int:
        return self.manager.TRUE

    @property
    def false_lit(self) -> int:
        return self.manager.FALSE

    def const(self, value: bool) -> int:
        return self.manager.TRUE if value else self.manager.FALSE

    def and_gate(self, *nodes: int) -> int:
        return self.manager.conjoin(nodes)

    def or_gate(self, *nodes: int) -> int:
        return self.manager.disjoin(nodes)

    def not_gate(self, node: int) -> int:
        return self.manager.apply_not(node)

    def xor_gate(self, a: int, b: int) -> int:
        return self.manager.apply_xor(a, b)

    def xnor_gate(self, a: int, b: int) -> int:
        return self.manager.apply_xnor(a, b)

    def ite_gate(self, cond: int, then: int, other: int) -> int:
        return self.manager.ite(cond, then, other)

    def implies_gate(self, a: int, b: int) -> int:
        return self.manager.apply_implies(a, b)

    def full_adder(self, a: int, b: int, carry_in: int) -> tuple[int, int]:
        axb = self.xor_gate(a, b)
        total = self.xor_gate(axb, carry_in)
        carry = self.or_gate(self.and_gate(a, b), self.and_gate(axb, carry_in))
        return total, carry


@dataclass
class _VarBits:
    """Bit allocation of one system variable."""

    current: list[int]  # BDD variable indices, LSB first
    next: list[int] | None  # None for inputs (they only occur primed)
    lo: int
    hi: int

    @property
    def width(self) -> int:
        return len(self.current)


def observable_signature(system: SymbolicSystem) -> tuple:
    """Hashable shape of a system's observables (names, sorts, roles).

    Two systems with the same signature get the same BDD variable
    ordering from the registry below, regardless of their transition
    relations -- orderings (and therefore shapes of characteristic
    BDDs) transfer across systems the way learned clauses transfer
    across queries on the SAT side.
    """

    def one(var: Var, is_state: bool) -> tuple:
        lo, hi = _sort_range(var)
        return (var.name, type(var.sort).__name__, lo, hi, is_state)

    return tuple(
        [one(v, True) for v in system.state_vars]
        + [one(v, False) for v in system.input_vars]
    )


# Variable-ordering registry: observable signature -> computed layout.
# Bounded (oldest-first eviction) so long-lived processes that stream
# many distinct systems through cannot leak layouts.
_ORDER_REGISTRY: dict[tuple, tuple[dict[str, _VarBits], int, int]] = {}
_ORDER_REGISTRY_CAP = 256


class BddCompiler:
    """Compiles expressions over a system's observables into BDDs.

    The bit layout (interleaved current/next state bits, inputs last)
    comes from the module's ordering registry keyed on the observable
    signature, so same-shaped systems share one ordering decision.
    """

    def __init__(self, system: SymbolicSystem, *, presimplify=None):
        self.manager = BddManager()
        self.gates = BddGateBuilder(self.manager)
        # Optional Expr -> Expr hook (e.g. ``expr.deep_simplify``)
        # applied at the compile_bool entry: a smaller input DAG means
        # fewer intermediate BDD nodes for R and the partition clusters.
        self._presimplify = presimplify
        # Subformula compilation memos, keyed on the interned node's eid
        # (identity == structural equality in the hash-consed core): a
        # subformula shared between R, guards and queries is translated
        # to a BDD exactly once per compiler.
        self._bool_memo: dict[int, int] = {}
        self._int_memo: dict[int, BitVec] = {}
        signature = observable_signature(system)
        layout = _ORDER_REGISTRY.get(signature)
        if layout is None:
            layout = self._compute_layout(system)
            _ORDER_REGISTRY[signature] = layout
            while len(_ORDER_REGISTRY) > _ORDER_REGISTRY_CAP:
                _ORDER_REGISTRY.pop(next(iter(_ORDER_REGISTRY)))
        bits, state_bits_end, total_bits = layout
        self._bits = dict(bits)
        self._state_bits_end = state_bits_end
        self.total_bits = total_bits

    @staticmethod
    def _compute_layout(
        system: SymbolicSystem,
    ) -> tuple[dict[str, _VarBits], int, int]:
        bits: dict[str, _VarBits] = {}
        index = 0
        for var in system.state_vars:
            lo, hi = _sort_range(var)
            width = _width_for(var, lo, hi)
            current = [index + 2 * bit for bit in range(width)]
            nxt = [index + 2 * bit + 1 for bit in range(width)]
            index += 2 * width
            bits[var.name] = _VarBits(current, nxt, lo, hi)
        state_bits_end = index
        for var in system.input_vars:
            lo, hi = _sort_range(var)
            width = _width_for(var, lo, hi)
            bits[var.name] = _VarBits(
                [index + bit for bit in range(width)], None, lo, hi
            )
            index += width
        return bits, state_bits_end, index

    # ------------------------------------------------------------------
    @property
    def current_and_input_indices(self) -> list[int]:
        """Indices quantified out by the image computation."""
        out: list[int] = []
        for bits in self._bits.values():
            out.extend(bits.current)
        return out

    @property
    def rename_next_to_current(self) -> dict[int, int]:
        mapping: dict[int, int] = {}
        for bits in self._bits.values():
            if bits.next is not None:
                for nxt, cur in zip(bits.next, bits.current, strict=True):
                    mapping[nxt] = cur
        return mapping

    def var_indices(self, name: str, primed: bool) -> list[int]:
        bits = self._bits[name]
        if primed:
            if bits.next is None:  # input: primed occurrence uses its bits
                return bits.current
            return bits.next
        if bits.next is None:
            raise ValueError(f"input {name!r} only occurs primed in R")
        return bits.current

    # ------------------------------------------------------------------
    def domain_conjuncts(self) -> list[int]:
        """Range constraints, one conjunct per constrained variable copy.

        Kept separate (rather than pre-conjoined) so the partitioned
        transition relation can treat each as its own cluster; the
        monolithic path conjoins them via :meth:`domain_bdd`.
        """
        gates = self.gates
        conjuncts: list[int] = []
        for bits in self._bits.values():
            for indices in (bits.current, bits.next):
                if indices is None:
                    continue
                # Skip exact power-of-two domains: no constraint needed.
                if bits.hi - bits.lo + 1 == 1 << bits.width and bits.lo in (
                    0,
                    -(1 << (bits.width - 1)),
                ):
                    continue
                vec = BitVec([self.manager.var(i) for i in indices])
                lo_vec = const_bitvec(bits.lo, bits.width, gates)
                hi_vec = const_bitvec(bits.hi, bits.width, gates)
                conjuncts.append(
                    gates.and_gate(
                        signed_leq(lo_vec, vec, gates),
                        signed_leq(vec, hi_vec, gates),
                    )
                )
        return conjuncts

    def domain_bdd(self) -> int:
        """Range constraints for every variable copy used in R."""
        return self.manager.conjoin(self.domain_conjuncts())

    def state_domain_current(self) -> int:
        gates = self.gates
        constraints: list[int] = []
        for bits in self._bits.values():
            if bits.next is None:
                continue
            vec = BitVec([self.manager.var(i) for i in bits.current])
            constraints.append(
                signed_leq(const_bitvec(bits.lo, bits.width, gates), vec, gates)
            )
            constraints.append(
                signed_leq(vec, const_bitvec(bits.hi, bits.width, gates), gates)
            )
        return self.manager.conjoin(constraints)

    # ------------------------------------------------------------------
    def compile_bool(self, expr: Expr) -> int:
        if not expr.sort.is_bool():
            raise TypeError(f"expected bool expression, got {expr.sort}")
        if self._presimplify is not None:
            expr = self._presimplify(expr)
        cached = self._bool_memo.get(expr.eid)
        if cached is not None:
            return cached
        node = self._compile_bool(expr)
        # Pin: memo entries must survive dynamic reordering.
        self._bool_memo[expr.eid] = self.manager.protect(node)
        return node

    def _compile_bool(self, expr: Expr) -> int:
        gates = self.gates
        if isinstance(expr, Const):
            return gates.const(bool(expr.value))
        if isinstance(expr, Var):
            (index,) = self.var_indices(expr.name, expr.primed)
            return self.manager.var(index)
        if isinstance(expr, Not):
            return gates.not_gate(self.compile_bool(expr.arg))
        if isinstance(expr, And):
            return gates.and_gate(*(self.compile_bool(a) for a in expr.args))
        if isinstance(expr, Or):
            return gates.or_gate(*(self.compile_bool(a) for a in expr.args))
        if isinstance(expr, Implies):
            return gates.implies_gate(
                self.compile_bool(expr.lhs), self.compile_bool(expr.rhs)
            )
        if isinstance(expr, Iff):
            return gates.xnor_gate(
                self.compile_bool(expr.lhs), self.compile_bool(expr.rhs)
            )
        if isinstance(expr, Eq):
            if expr.lhs.sort.is_bool():
                return gates.xnor_gate(
                    self.compile_bool(expr.lhs), self.compile_bool(expr.rhs)
                )
            return eq_bitvec(
                self.compile_int(expr.lhs), self.compile_int(expr.rhs), gates
            )
        if isinstance(expr, Lt):
            return signed_less(
                self.compile_int(expr.lhs), self.compile_int(expr.rhs), gates
            )
        if isinstance(expr, Le):
            return signed_leq(
                self.compile_int(expr.lhs), self.compile_int(expr.rhs), gates
            )
        if isinstance(expr, Ite):
            return gates.ite_gate(
                self.compile_bool(expr.cond),
                self.compile_bool(expr.then),
                self.compile_bool(expr.other),
            )
        raise TypeError(f"cannot compile boolean node {type(expr).__name__}")

    def compile_int(self, expr: Expr) -> BitVec:
        cached = self._int_memo.get(expr.eid)
        if cached is not None:
            return cached
        vec = self._compile_int(expr)
        for bit in vec.bits:
            self.manager.protect(bit)
        self._int_memo[expr.eid] = vec
        return vec

    def _compile_int(self, expr: Expr) -> BitVec:
        gates = self.gates
        if isinstance(expr, Const):
            lo, hi = interval(expr)
            width = width_for_range(min(lo, expr.value), max(hi, expr.value))
            return const_bitvec(expr.value, width, gates)
        if isinstance(expr, Var):
            indices = self.var_indices(expr.name, expr.primed)
            return BitVec([self.manager.var(i) for i in indices])
        lo, hi = interval(expr)
        width = width_for_range(lo, hi)
        if isinstance(expr, Add):
            accum = self.compile_int(expr.args[0])
            for arg in expr.args[1:]:
                accum = add_bitvec(accum, self.compile_int(arg), width, gates)
            return accum
        if isinstance(expr, Sub):
            return sub_bitvec(
                self.compile_int(expr.lhs), self.compile_int(expr.rhs), width, gates
            )
        if isinstance(expr, Neg):
            return negate_bitvec(self.compile_int(expr.arg), width, gates)
        if isinstance(expr, Mul):
            return mul_bitvec(
                self.compile_int(expr.lhs), self.compile_int(expr.rhs), width, gates
            )
        if isinstance(expr, Ite):
            return ite_bitvec(
                self.compile_bool(expr.cond),
                self.compile_int(expr.then),
                self.compile_int(expr.other),
                width,
                gates,
            )
        raise TypeError(f"cannot compile integer node {type(expr).__name__}")

    # ------------------------------------------------------------------
    def state_bdd(self, state: dict[str, int] | Valuation) -> int:
        """Characteristic BDD (over current bits) of a concrete state."""
        terms: list[int] = []
        for name, bits in self._bits.items():
            if bits.next is None:
                continue
            value = state[name]
            masked = value & ((1 << bits.width) - 1)
            for position, index in enumerate(bits.current):
                node = self.manager.var(index)
                if not (masked >> position) & 1:
                    node = self.manager.apply_not(node)
                terms.append(node)
        return self.manager.conjoin(terms)

    def assignment_for(self, state: dict[str, int] | Valuation):
        """Assignment function over current bits for membership tests."""
        values: dict[int, bool] = {}
        for name, bits in self._bits.items():
            if bits.next is None:
                continue
            masked = state[name] & ((1 << bits.width) - 1)
            for position, index in enumerate(bits.current):
                values[index] = bool((masked >> position) & 1)
        return lambda index: values.get(index, False)


def _sort_range(var: Var) -> tuple[int, int]:
    sort = var.sort
    if isinstance(sort, BoolSort):
        return 0, 1
    if isinstance(sort, IntSort):
        return sort.lo, sort.hi
    if isinstance(sort, EnumSort):
        return 0, sort.cardinality - 1
    raise TypeError(f"unsupported sort {sort}")


def _width_for(var: Var, lo: int, hi: int) -> int:
    # Booleans never participate in arithmetic, so one bit suffices;
    # numeric sorts take the two's complement width of their range.
    if isinstance(var.sort, BoolSort):
        return 1
    return width_for_range(lo, hi)


@dataclass(frozen=True)
class TransitionPartition:
    """An ordered conjunctive partition of R with a quantification schedule.

    ``clusters[i]`` is conjoined at step ``i`` of the image computation
    and ``schedule[i]`` is the set of quantifiable variables eliminated
    *fused into that very conjunction* (their last use is cluster ``i``);
    ``immediate`` holds the quantifiable variables no cluster mentions,
    eliminated from the frontier before any cluster is touched.
    """

    clusters: tuple[int, ...]
    schedule: tuple[frozenset[int], ...]
    immediate: frozenset[int]
    cluster_sizes: tuple[int, ...]

    @property
    def num_clusters(self) -> int:
        return len(self.clusters)


def build_transition_partition(
    compiler: BddCompiler,
    system: SymbolicSystem,
    cluster_threshold: int = 400,
) -> TransitionPartition:
    """Compile R as merged conjunctive clusters plus an IWLS95-style order.

    One conjunct per state variable's next-state constraint
    (``x' = f(X, inputs')``) plus one per domain range constraint;
    adjacent small conjuncts are merged while the merged BDD stays under
    ``cluster_threshold`` nodes.  Clusters are then ordered greedily:
    repeatedly pick the cluster releasing the most quantifiable
    variables (variables no *remaining* cluster mentions), tie-breaking
    towards small supports, and derive the last-use quantification
    schedule from that order.
    """
    manager = compiler.manager
    conjuncts: list[int] = [
        compiler.compile_bool(eq(var.prime(), expr))
        for var, expr in sorted(
            system.next_exprs.items(), key=lambda kv: kv[0].name
        )
    ]
    conjuncts.extend(compiler.domain_conjuncts())
    conjuncts = [c for c in conjuncts if c != manager.TRUE]

    # Greedy adjacent merge under the node-count threshold.
    clusters: list[int] = []
    accum: int | None = None
    for conjunct in conjuncts:
        if accum is None:
            accum = conjunct
            continue
        merged = manager.apply_and(accum, conjunct)
        if manager.size(merged) <= cluster_threshold:
            accum = merged
        else:
            clusters.append(accum)
            accum = conjunct
    if accum is not None:
        clusters.append(accum)

    quantifiable = frozenset(compiler.current_and_input_indices)
    supports = [manager.support(c) & quantifiable for c in clusters]
    immediate = quantifiable - frozenset().union(*supports, frozenset())

    # Greedy ordering: maximise variables released per step.
    order: list[int] = []
    remaining = set(range(len(clusters)))
    placed_vars: set[int] = set()
    while remaining:

        def released(i: int) -> int:
            others: set[int] = set()
            for j in remaining:
                if j != i:
                    others |= supports[j]
            return len((supports[i] | placed_vars) - others)

        best = min(remaining, key=lambda i: (-released(i), len(supports[i]), i))
        order.append(best)
        placed_vars |= supports[best]
        remaining.discard(best)

    ordered = [clusters[i] for i in order]
    ordered_supports = [supports[i] for i in order]
    # Last-use schedule: quantify a variable with the final cluster
    # whose support mentions it.
    last_use = {
        v: max(i for i, sup in enumerate(ordered_supports) if v in sup)
        for v in quantifiable - immediate
    }
    schedule = tuple(
        frozenset(v for v, last in last_use.items() if last == i)
        for i in range(len(ordered))
    )
    return TransitionPartition(
        clusters=tuple(ordered),
        schedule=schedule,
        immediate=immediate,
        cluster_sizes=tuple(manager.size(c) for c in ordered),
    )


class SharedBddContext:
    """Per-system BDD state shared by every reachability engine over it.

    Owns the compiler/manager, the partitioned transition relation and a
    per-step **image cache** keyed on the frontier BDD's node id: the
    relational product ``∃ current, inputs: R ∧ frontier`` (renamed back
    to current bits) is computed once per distinct frontier and replayed
    for free afterwards.  A second engine instance -- or a re-exploration
    after the first -- walks the whole onion at dictionary-lookup cost,
    mirroring how the SAT engines replay learned clauses.

    The image step conjoins the partition's clusters in scheduled order,
    quantifying variables at their last use (``partitioned=True``, the
    default); ``partitioned=False`` restores the monolithic relational
    product.  Every long-lived node (clusters, monolithic R, cached
    frontiers/images) is pinned with ``manager.protect`` so sifting --
    armed via ``reorder_threshold`` and triggered at the safe point
    after each image -- cannot invalidate it; the manager clears its
    operation caches on every reorder.
    """

    def __init__(
        self,
        system: SymbolicSystem,
        *,
        partitioned: bool = True,
        cluster_threshold: int = 400,
        reorder_threshold: int | None = 150_000,
        presimplify=None,
    ):
        self._system = system
        self.compiler = BddCompiler(system, presimplify=presimplify)
        self.manager = self.compiler.manager
        self.partitioned = partitioned
        self.cluster_threshold = cluster_threshold
        if reorder_threshold is not None:
            self.manager.enable_auto_reorder(reorder_threshold)
        self._trans: int | None = None
        self._partition: TransitionPartition | None = None
        self._image_cache: dict[int, int] = {}
        self.image_computations = 0
        self.image_hits = 0

    def trans_bdd(self) -> int:
        """The monolithic compiled ``R`` (kept for the reference path)."""
        if self._trans is None:
            self._trans = self.manager.protect(
                self.manager.apply_and(
                    self.compiler.compile_bool(self._system.trans),
                    self.compiler.domain_bdd(),
                )
            )
        return self._trans

    def partition(self) -> TransitionPartition:
        if self._partition is None:
            self._partition = build_transition_partition(
                self.compiler, self._system, self.cluster_threshold
            )
            for cluster in self._partition.clusters:
                self.manager.protect(cluster)
        return self._partition

    def image(self, frontier: int) -> int:
        """Post-image of ``frontier`` over current bits (memoised)."""
        registry = _tel_metrics()
        cached = self._image_cache.get(frontier)
        if cached is not None:
            self.image_hits += 1
            if registry is not None:
                registry.inc("bdd.image_memo_hits")
            return cached
        image = self.image_once(frontier, partitioned=self.partitioned)
        manager = self.manager
        manager.protect(frontier)
        manager.protect(image)
        self._image_cache[frontier] = image
        self.image_computations += 1
        if registry is not None:
            registry.inc("bdd.image_steps")
            if self._partition is not None:
                part = self._partition
                registry.gauge_max("bdd.clusters", len(part.clusters))
                registry.gauge_max(
                    "bdd.cluster_size_peak", max(part.cluster_sizes, default=0)
                )
                registry.gauge_max(
                    "bdd.schedule_immediate", len(part.immediate)
                )
            manager.publish_metrics(registry)
        # Safe point: no structural recursion in flight, everything
        # long-lived is pinned.
        manager.maybe_reorder()
        return image

    def image_once(self, frontier: int, *, partitioned: bool) -> int:
        """One uncached image computation via either pipeline.

        Both paths compute ``∃ current, inputs: R ∧ frontier`` renamed
        to current bits; canonicity makes their results bit-identical,
        which the differential tests assert on every library system.
        """
        compiler, manager = self.compiler, self.manager
        if partitioned:
            part = self.partition()
            current = frontier
            if part.immediate:
                current = manager.exists(current, part.immediate)
            for cluster, release in zip(
                part.clusters, part.schedule, strict=True
            ):
                if release:
                    current = manager.and_exists(current, cluster, release)
                else:
                    current = manager.apply_and(current, cluster)
            image_next = current
        else:
            image_next = manager.and_exists(
                self.trans_bdd(), frontier, compiler.current_and_input_indices
            )
        return manager.rename(image_next, compiler.rename_next_to_current)


def shared_bdd_context(system: SymbolicSystem) -> SharedBddContext:
    """Per-system :class:`SharedBddContext` memo (cf. ``shared_reachability``)."""
    return shared_analysis(system, "_shared_bdd_context", SharedBddContext)


class SymbolicReachability:
    """Fixpoint reachability with per-depth onion layers.

    Exploration is *lazy*: :meth:`reachable_depth` peels only as many
    onion layers as the query needs (a depth-2 state never forces the
    full fixpoint), while :attr:`reached_bdd` / :attr:`diameter` /
    :meth:`num_reachable_states` drive it to completion.  All image
    steps go through the system's :class:`SharedBddContext`, so layers
    computed by any engine instance are reused by every other.
    """

    def __init__(
        self, system: SymbolicSystem, context: SharedBddContext | None = None
    ):
        self._system = system
        self._ctx = context or shared_bdd_context(system)
        self._compiler = self._ctx.compiler
        self._manager = self._ctx.manager
        self._layers: list[int] = []
        self._partial: int | None = None  # union of layers so far
        self._reached: int | None = None  # set once the fixpoint closed

    # ------------------------------------------------------------------
    def _start(self) -> None:
        if not self._layers:
            init = self._compiler.state_bdd(self._system.init_state)
            # Layers and the partial union are pinned so dynamic
            # reordering between image steps cannot invalidate them.
            self._manager.protect(init)
            self._manager.protect(init)  # one pin as layer, one as partial
            self._layers = [init]
            self._partial = init

    def _expand_one(self) -> bool:
        """Peel one more onion layer; False once the fixpoint closed."""
        if self._reached is not None:
            return False
        self._start()
        manager = self._manager
        image = self._ctx.image(self._layers[-1])
        fresh = manager.apply_and(image, manager.apply_not(self._partial))
        partial = manager.apply_or(self._partial, image)
        if partial != self._partial:
            manager.protect(partial)
            manager.unprotect(self._partial)
            self._partial = partial
        if fresh == manager.FALSE:
            self._reached = self._partial
            return False
        self._layers.append(manager.protect(fresh))
        return True

    def explore(self) -> None:
        """Run the fixpoint to completion (idempotent)."""
        while self._expand_one():
            pass

    # ------------------------------------------------------------------
    @property
    def reached_bdd(self) -> int:
        self.explore()
        return self._reached

    @property
    def diameter(self) -> int:
        self.explore()
        return len(self._layers) - 1

    def is_state_reachable(self, state) -> bool:
        return self.reachable_depth(state) is not None

    def reachable_depth(self, state) -> int | None:
        """BFS depth of the state (None if unreachable).

        Scans the layers already peeled first, then extends the
        fixpoint only as far as the answer requires.
        """
        self._start()
        assignment = self._compiler.assignment_for(state)
        for depth, layer in enumerate(self._layers):
            if self._manager.evaluate(layer, assignment):
                return depth
        depth = len(self._layers) - 1
        while self._expand_one():
            depth += 1
            if self._manager.evaluate(self._layers[-1], assignment):
                return depth
        return None

    def num_reachable_states(self) -> int:
        self.explore()
        total = self._manager.count_models(
            self._reached, self._compiler.total_bits
        )
        # The reached set only constrains current state bits; every other
        # bit (next copies, inputs) is free in the count.
        state_bits = sum(
            bits.width
            for bits in self._compiler._bits.values()
            if bits.next is not None
        )
        return total >> (self._compiler.total_bits - state_bits)


def shared_symbolic_reachability(system: SymbolicSystem) -> SymbolicReachability:
    """Per-system symbolic engine memo (cf. ``shared_reachability``).

    On top of the shared context (which already makes fresh instances
    cheap), sharing the engine itself also reuses the peeled layer list
    across every consumer of one system instance.
    """
    return shared_analysis(
        system, "_shared_symbolic_engine", SymbolicReachability
    )


class SymbolicSpuriousness:
    """Fig. 3b verdicts from the BDD engine (third implementation)."""

    def __init__(
        self,
        system: SymbolicSystem,
        respect_k: bool = True,
        reach: SymbolicReachability | None = None,
    ):
        self._reach = reach or shared_symbolic_reachability(system)
        self._respect_k = respect_k

    @property
    def reachability(self) -> SymbolicReachability:
        return self._reach

    def classify(self, v_t: Valuation, k: int) -> SpuriousVerdict:
        depth = self._reach.reachable_depth(v_t)
        if depth is None:
            return SpuriousVerdict.SPURIOUS
        if self._respect_k and depth > k:
            return SpuriousVerdict.INCONCLUSIVE
        return SpuriousVerdict.VALID
