"""IC3/PDR: unbounded reachability proofs by property-directed frames.

The Fig. 3b spuriousness check asks one question per counterexample:
*is this state reachable?*  k-induction answers it only up to the
user-chosen bound ``k`` -- weak-induction failures come back
inconclusive and get recorded as valid counterexamples, injecting
spurious behaviour into the learned model (paper §IV-B).  This module
answers the same question *unboundedly*: :class:`Ic3Engine` implements
property-directed reachability (Bradley's IC3 / Een-Mishchenko-Brayton
PDR) over the incremental SAT stack, so every verdict is either a
concrete reachability witness chain or an inductive invariant -- never
"the induction was too weak".

How it maps onto the existing substrate
---------------------------------------

*One persistent* :class:`~repro.smt.solver.SmtSolver` holds the
transition relation ``R(X, X')`` exactly like the condition checker
does.  Frames are **not** re-encoded per query:

* frame ``i`` owns a Boolean activation variable; every clause blocked
  at frame ``i`` is asserted permanently as ``act_i -> clause``, and a
  query against ``F_i`` simply *assumes* the activation literals of
  frames ``i..top`` (the standard delta encoding
  ``F_i = /\\_{j>=i} frames[j]``);
* a relative-induction query ``SAT(F_{i-1} /\\ ¬c /\\ R /\\ c')``
  assumes one literal per conjunct of the primed cube ``c'``, so an
  UNSAT answer's :attr:`~repro.sat.solver.SolveResult.unsat_core`
  (final-conflict analysis, new in this PR) immediately yields the
  subcube that was actually blocked -- IC3's cube generalization for
  free, no auxiliary solving;
* frames, clauses and the SAT core's learned lemmas persist across
  *queries*: blocked clauses only depend on ``Init`` and ``R``, never on
  the property, so everything proved while classifying one
  counterexample keeps working for the next.  Once any frame closes
  (``F_i = F_{i+1}``), its clauses form a global inductive invariant;
  later states it refutes are classified without touching the solver.

:class:`Ic3Spuriousness` packages the engine as a drop-in
``SpuriousnessChecker`` registered as ``"ic3"``: verdicts are only ever
SPURIOUS or VALID, there is no bound to choose (the Fig. 3b ``k`` is
ignored), and each SPURIOUS verdict exposes the *generalized* refuting
clause so the oracle can strengthen assumptions with a whole blocked
region instead of the paper's blind single-state ``r ∧ ¬s'``.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from collections.abc import Mapping

from ..expr.ast import Expr, Var, eq, implies, land, lnot, lor
from ..expr.types import BOOL
from ..smt.solver import SmtSolver
from ..system.transition_system import SymbolicSystem, shared_analysis
from ..system.valuation import Valuation
from .verdicts import SpuriousVerdict


def _tel_metrics():
    """Live metrics registry, or ``None`` (lazy import: this module is
    inside the core package's import closure, see telemetry docstring)."""
    from ..core.telemetry import active

    session = active()
    return None if session is None else session.metrics


#: A (partial) assignment of state variables, as ordered (name, value)
#: pairs following the system's state-variable declaration order.  Full
#: cubes pin every state variable; generalization produces subcubes.
Cube = tuple[tuple[str, int], ...]


@dataclass
class Ic3Result:
    """Outcome of one :meth:`Ic3Engine.prove_unreachable` query.

    Exactly two outcomes exist -- a concrete reachability witness chain
    was found (``reachable``) or an inductive argument excludes the
    state forever.  On unreachability, ``refuting_cube`` is a subcube of
    the query that the proof's invariant blocks *as a region*: every
    state matching it is unreachable, which is strictly more information
    than the single queried state.
    """

    reachable: bool
    refuting_cube: Cube | None = None
    invariant_frame: int | None = None
    from_cache: bool = False
    solver_checks: int = 0

    @property
    def proved(self) -> bool:
        return not self.reachable


@dataclass
class Ic3Stats:
    """Counters across the engine's lifetime (one system, many queries)."""

    queries: int = 0
    solver_checks: int = 0
    clauses_added: int = 0
    clauses_propagated: int = 0
    invariant_hits: int = 0
    generalization_drops: int = 0
    obligations: int = 0


class Ic3Engine:
    """Persistent property-directed reachability for one system.

    The engine proves concrete states (un)reachable.  Frames strengthen
    monotonically across queries; see the module docstring for the
    encoding.  All queries are exact: ``prove_unreachable`` never
    returns an "inconclusive" and needs no bound.

    ``input_space`` selects which machine is analysed:

    * ``"samples"`` (default) -- steps draw inputs from the system's
      declared representative sample set, exactly like the explicit BFS
      engine (and the trace generator's guard-boundary coverage), so
      verdicts agree with :class:`~repro.mc.explicit.ExplicitReachability`
      bit for bit.  Systems without declared samples are unconstrained
      (there the sampled and free semantics coincide).
    * ``"free"`` -- inputs are fully unconstrained at every step, the
      literal Fig. 3b machine that BMC/k-induction analyse.
    """

    def __init__(self, system: SymbolicSystem, input_space: str = "samples"):
        if input_space not in ("samples", "free"):
            raise ValueError(
                f"input_space must be 'samples' or 'free', got {input_space!r}"
            )
        self._system = system
        self._input_space = input_space
        self._state_names = list(system.state_names)
        self._init_state = {
            name: system.init_state[name] for name in self._state_names
        }
        self._vars = {name: system.var_by_name(name) for name in self._state_names}
        self._solver = SmtSolver()
        for var in system.variables:
            self._solver.declare(var)
            self._solver.declare(var.prime())
        self._solver.add(system.trans)
        if input_space == "samples" and system.input_samples and system.input_vars:
            self._solver.add(
                lor(
                    *(
                        land(
                            *(
                                eq(var.prime(), sample[var.name])
                                for var in system.input_vars
                            )
                        )
                        for sample in system.input_samples
                    )
                )
            )
        self._init_lit = self._solver.literal(system.init)
        # frames[0] stands for Init and stays empty; frames[i>=1] hold the
        # delta clauses of F_i.  acts[i] guards frame i's clauses.
        self._frames: list[list[Cube]] = [[]]
        self._acts: list[int] = [self._init_lit]
        # Cubes refuted by some converged (hence globally inductive)
        # frame; once here, refutation is a dictionary lookup.
        self._invariant_cubes: list[Cube] = []
        self._invariant_seen: set[Cube] = set()
        self._converged_frame: int | None = None
        self.stats = Ic3Stats()

    # ------------------------------------------------------------------
    # cube plumbing
    # ------------------------------------------------------------------
    def cube_of(self, state: Mapping[str, int]) -> Cube:
        """The full state cube of an observation/valuation."""
        return tuple((name, state[name]) for name in self._state_names)

    def cube_expr(self, cube: Cube, primed: bool = False) -> Expr:
        terms = []
        for name, value in cube:
            var = self._vars[name]
            terms.append(eq(var.prime() if primed else var, value))
        return land(*terms)

    def clause_expr(self, cube: Cube) -> Expr:
        """``¬cube``: the blocking clause of a (sub)cube."""
        return lnot(self.cube_expr(cube))

    def _init_satisfies(self, cube: Cube) -> bool:
        return all(self._init_state[name] == value for name, value in cube)

    # ------------------------------------------------------------------
    # frames
    # ------------------------------------------------------------------
    @property
    def num_frames(self) -> int:
        """Frames unrolled so far (excluding the Init pseudo-frame)."""
        return len(self._frames) - 1

    def _new_frame(self) -> None:
        index = len(self._frames)
        act = Var(f"__ic3_act_{index}", BOOL)
        self._frames.append([])
        self._acts.append(self._solver.literal(act))

    def _frame_assumptions(self, j: int) -> list[int]:
        """Activation literals selecting ``F_j`` (``F_0`` is Init)."""
        if j == 0:
            return [self._init_lit]
        return self._acts[j:]

    def _add_blocking_clause(self, j: int, cube: Cube) -> bool:
        """Block ``cube`` at frame ``j``; False if it already is.

        The same generalized subcube can be blocked independently at
        different frames (obligations at a *lower* frame never see the
        higher copy), so propagation could otherwise duplicate frame
        entries -- each duplicate re-asserted permanently and re-probed
        by every later propagation pass over the engine's lifetime.
        """
        if cube in self._frames[j]:
            return False
        self._frames[j].append(cube)
        act = Var(f"__ic3_act_{j}", BOOL)
        self._solver.add(implies(act, self.clause_expr(cube)))
        self.stats.clauses_added += 1
        registry = _tel_metrics()
        if registry is not None:
            registry.observe("ic3.blocked_cube_size", len(cube))
        return True

    def _syntactically_blocked(self, i: int, cube: Cube) -> bool:
        """Is ``cube`` already refuted by a clause of ``F_i``?

        Obligation cubes are full states, so subsumption is a pure
        dictionary check -- no solver call.
        """
        values = dict(cube)
        for j in range(i, len(self._frames)):
            for d in self._frames[j]:
                if all(values.get(name) == value for name, value in d):
                    return True
        return False

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _check(self, assumptions: list[int]) -> bool:
        self.stats.solver_checks += 1
        return self._solver.check(assuming=assumptions)

    def _cube_sat_at(self, i: int, cube: Cube) -> bool:
        """SAT(F_i ∧ cube)?"""
        lit = self._solver.literal(self.cube_expr(cube))
        return self._check(self._frame_assumptions(i) + [lit])

    def _relative_query(
        self, i: int, cube: Cube
    ) -> tuple[bool, Cube | None, Cube | None]:
        """``SAT(F_{i-1} ∧ ¬cube ∧ R ∧ cube')``.

        Returns ``(sat, predecessor, core_subcube)``: a satisfiable
        query yields the full predecessor state from the model; an
        unsatisfiable one yields the subcube of ``cube`` whose primed
        conjuncts appear in the solver's unsat core -- the generalized
        cube that is still blocked relative to ``F_{i-1}``.
        """
        solver = self._solver
        assumptions = list(self._frame_assumptions(i - 1))
        assumptions.append(solver.literal(self.clause_expr(cube)))
        lit_of: dict[int, tuple[str, int]] = {}
        for name, value in cube:
            lit = solver.literal(eq(self._vars[name].prime(), value))
            lit_of.setdefault(lit, (name, value))
            assumptions.append(lit)
        self.stats.solver_checks += 1
        if solver.check(assuming=assumptions):
            model = solver.model()
            pred = tuple((name, model[name]) for name in self._state_names)
            return True, pred, None
        core = solver.unsat_core or ()
        needed = {lit_of[lit] for lit in core if lit in lit_of}
        subcube = tuple(pair for pair in cube if pair in needed)
        return False, None, subcube

    # ------------------------------------------------------------------
    # generalization (unsat-core driven)
    # ------------------------------------------------------------------
    def _generalize(self, cube: Cube, core_subcube: Cube) -> Cube:
        """Largest-region subcube of ``cube`` we may block.

        The core subcube already satisfies relative induction (dropping
        conjuncts of ``c'`` only weakens the UNSAT query's right side,
        and ``¬d ⟹ ¬c`` strengthens its left side).  The remaining
        requirement is ``Init ⟹ ¬d``: if the initial state matches the
        subcube, a conjunct separating them is restored -- one must
        exist, because obligations matching Init are answered REACHABLE
        before blocking ever starts.
        """
        kept = core_subcube
        self.stats.generalization_drops += len(cube) - len(kept)
        if not self._init_satisfies(kept):
            return kept
        values = dict(kept)
        for name, value in cube:
            if name not in values and self._init_state[name] != value:
                self.stats.generalization_drops -= 1
                restored = dict(cube)
                return tuple(
                    (n, restored[n])
                    for n in self._state_names
                    if n in values or n == name
                )
        raise AssertionError("obligation cube matches Init but was blocked")

    def _push_forward(self, i: int, cube: Cube) -> int:
        """Highest frame ``j >= i`` at which ``cube`` stays blocked."""
        j = i
        top = len(self._frames) - 1
        while j < top:
            sat, _pred, _core = self._relative_query(j + 1, cube)
            if sat:
                break
            j += 1
        return j

    # ------------------------------------------------------------------
    # the obligation loop
    # ------------------------------------------------------------------
    def _block(self, frame: int, cube: Cube) -> bool:
        """Discharge the obligation that ``cube`` is excluded at ``frame``.

        Returns False when a concrete predecessor chain reaches the
        initial state (the target is reachable); True when the target is
        blocked at ``F_frame``.
        """
        tie = itertools.count()
        queue: list[tuple[int, int, Cube]] = [(frame, next(tie), cube)]
        while queue:
            i, _seq, c = heapq.heappop(queue)
            self.stats.obligations += 1
            if i == 0 or self._init_satisfies(c):
                return False
            if self._syntactically_blocked(i, c):
                continue
            sat, pred, core = self._relative_query(i, c)
            if sat:
                assert pred is not None
                heapq.heappush(queue, (i - 1, next(tie), pred))
                heapq.heappush(queue, (i, next(tie), c))
                continue
            assert core is not None
            d = self._generalize(c, core)
            j = self._push_forward(i, d)
            self._add_blocking_clause(j, d)
            if j < len(self._frames) - 1:
                heapq.heappush(queue, (j + 1, next(tie), c))
        return True

    # ------------------------------------------------------------------
    # propagation and convergence
    # ------------------------------------------------------------------
    def _propagate_clauses(self) -> int | None:
        """Push clauses forward; returns a converged frame index or None.

        A clause ``¬d`` of frame ``i`` moves to ``i+1`` when
        ``F_i ∧ R ∧ d'`` is unsatisfiable (``F_i`` already contains
        ``¬d``, so no explicit left-side cube is needed).  An emptied
        delta means ``F_i = F_{i+1}``: together with the frame invariant
        ``F_i ∧ R ⟹ F_{i+1}'`` that makes ``F_i`` inductive.
        """
        solver = self._solver
        top = len(self._frames) - 1
        for i in range(1, top):
            for d in list(self._frames[i]):
                assumptions = list(self._frame_assumptions(i))
                for name, value in d:
                    assumptions.append(
                        solver.literal(eq(self._vars[name].prime(), value))
                    )
                if not self._check(assumptions):
                    self._frames[i].remove(d)
                    if self._add_blocking_clause(i + 1, d):
                        self.stats.clauses_added -= 1  # moved, not new
                    self.stats.clauses_propagated += 1
        for i in range(1, top):
            if not self._frames[i]:
                return i
        return None

    def _record_invariant(self, frame: int) -> None:
        self._converged_frame = frame
        for j in range(frame, len(self._frames)):
            for d in self._frames[j]:
                if d not in self._invariant_seen:
                    self._invariant_seen.add(d)
                    self._invariant_cubes.append(d)

    def _invariant_refutation(self, cube: Cube) -> Cube | None:
        """A globally-invariant clause refuting ``cube``, if one exists."""
        values = dict(cube)
        for d in self._invariant_cubes:
            if all(values.get(name) == value for name, value in d):
                return d
        return None

    def invariant(self) -> Expr | None:
        """The strongest inductive invariant proved so far (or None).

        Available once any query converged; the conjunction of every
        clause that ever belonged to a converged frame.  Satisfies
        ``Init ⟹ INV`` and ``INV ∧ R ⟹ INV'`` and refutes every state
        proved unreachable.
        """
        if self._converged_frame is None:
            return None
        return land(*(self.clause_expr(d) for d in self._invariant_cubes))

    # ------------------------------------------------------------------
    # the public query
    # ------------------------------------------------------------------
    def prove_unreachable(self, state: Mapping[str, int]) -> Ic3Result:
        """Decide reachability of ``state``'s state-variable projection.

        ``state`` may be a full observation (inputs are ignored: an
        observation is reachable iff its state part is, because inputs
        are free).  Always returns a definite answer.
        """
        registry = _tel_metrics()
        if registry is None:
            return self._prove_unreachable(state)
        stats = self.stats
        before = (
            stats.solver_checks,
            stats.clauses_added,
            stats.clauses_propagated,
            stats.invariant_hits,
            stats.generalization_drops,
            stats.obligations,
        )
        result = self._prove_unreachable(state)
        registry.inc("ic3.queries")
        registry.inc("ic3.solver_checks", stats.solver_checks - before[0])
        registry.inc("ic3.clauses_added", stats.clauses_added - before[1])
        registry.inc(
            "ic3.clauses_propagated", stats.clauses_propagated - before[2]
        )
        registry.inc("ic3.invariant_hits", stats.invariant_hits - before[3])
        registry.inc(
            "ic3.generalization_drops", stats.generalization_drops - before[4]
        )
        registry.inc("ic3.obligations", stats.obligations - before[5])
        registry.gauge_max("ic3.frames", self.num_frames)
        if result.refuting_cube is not None:
            registry.observe("ic3.refuting_core_size", len(result.refuting_cube))
        return result

    def _prove_unreachable(self, state: Mapping[str, int]) -> Ic3Result:
        cube = self.cube_of(state)
        self.stats.queries += 1
        checks_before = self.stats.solver_checks
        if self._init_satisfies(cube):
            return Ic3Result(reachable=True)
        refuting = self._invariant_refutation(cube)
        if refuting is not None:
            self.stats.invariant_hits += 1
            return Ic3Result(
                reachable=False,
                refuting_cube=refuting,
                invariant_frame=self._converged_frame,
                from_cache=True,
            )
        if len(self._frames) == 1:
            self._new_frame()
        while True:
            top = len(self._frames) - 1
            while self._cube_sat_at(top, cube):
                if not self._block(top, cube):
                    return Ic3Result(
                        reachable=True,
                        solver_checks=self.stats.solver_checks - checks_before,
                    )
            self._new_frame()
            converged = self._propagate_clauses()
            if converged is not None:
                self._record_invariant(converged)
                refuting = self._invariant_refutation(cube)
                assert refuting is not None, (
                    "converged invariant must refute the blocked cube"
                )
                return Ic3Result(
                    reachable=False,
                    refuting_cube=refuting,
                    invariant_frame=converged,
                    solver_checks=self.stats.solver_checks - checks_before,
                )


class Ic3Spuriousness:
    """Fig. 3b verdicts from unbounded IC3 proofs (the ``"ic3"`` engine).

    Unlike the literal k-induction check this classifier never returns
    INCONCLUSIVE and ignores the Fig. 3b bound entirely: a
    counterexample state is either proved reachable (VALID, by a
    concrete predecessor chain) or proved unreachable (SPURIOUS, by an
    inductive invariant).  After a SPURIOUS verdict,
    :meth:`spurious_exclusion` exposes the generalized blocking clause
    -- the unsat-core-driven subcube region the proof excluded -- which
    the completeness oracle can conjoin onto the assumption to rule out
    *every* state of the region in one strengthening round instead of
    the paper's one-state-at-a-time ``r ∧ ¬s'``.
    """

    def __init__(
        self,
        system: SymbolicSystem,
        engine: Ic3Engine | None = None,
        input_space: str = "samples",
    ):
        self._system = system
        self._engine = engine or Ic3Engine(system, input_space=input_space)
        self._last_exclusion: Expr | None = None

    @property
    def engine(self) -> Ic3Engine:
        return self._engine

    @property
    def proved_invariant(self) -> Expr | None:
        """Inductive invariant accumulated by the proofs so far."""
        return self._engine.invariant()

    def classify(self, v_t: Valuation, k: int) -> SpuriousVerdict:
        """SPURIOUS or VALID -- never INCONCLUSIVE; ``k`` is ignored."""
        result = self._engine.prove_unreachable(v_t)
        if result.reachable:
            self._last_exclusion = None
            return SpuriousVerdict.VALID
        assert result.refuting_cube is not None
        self._last_exclusion = self._engine.clause_expr(result.refuting_cube)
        return SpuriousVerdict.SPURIOUS

    def spurious_exclusion(self) -> Expr | None:
        """Blocking clause behind the last SPURIOUS verdict (else None).

        The clause holds on every reachable state (it belongs to an
        inductive invariant) and is falsified by the classified state,
        so ``assumption ∧ clause`` is a sound, strictly-more-effective
        strengthening than excluding the single state.
        """
        return self._last_exclusion


def shared_ic3(system: SymbolicSystem, input_space: str = "samples") -> Ic3Engine:
    """Per-system IC3 engine memo (same pattern as ``shared_reachability``).

    Frames and the converged invariant strengthen monotonically across
    queries, so every oracle/checker built over one system instance
    should share a single engine; the
    :func:`~repro.system.transition_system.shared_analysis` memo gives
    the cache exactly the system's lifetime.  The two input-space
    semantics are cached independently (their frames are not
    interchangeable).
    """
    attr = (
        "_shared_ic3_engine"
        if input_space == "samples"
        else "_shared_ic3_engine_free"
    )
    return shared_analysis(
        system, attr, lambda s: Ic3Engine(s, input_space=input_space)
    )
