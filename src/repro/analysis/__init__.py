"""Static analysis for the system DSL and the repo's own contracts.

Two coordinated passes:

* the **DSL analyzer** (:mod:`~repro.analysis.sortcheck`,
  :mod:`~repro.analysis.system_check`) — eid-memoised sort inference and
  well-formedness checking over the hash-consed Expr DAG plus structural
  checks on systems, benchmarks, conditions and traces, each finding a
  stable-coded :class:`~repro.analysis.diagnostics.Diagnostic`;
* the **contract linter** (:mod:`~repro.analysis.contracts`) — a
  Python-``ast`` pass enforcing the hash-consing and spawn-safety
  invariants (run via ``tools/check_contracts.py``).

See ``docs/static_analysis.md`` for the diagnostic-code catalogue.
"""

from .contracts import ContractFinding, lint_file, lint_paths, lint_source
from .diagnostics import (
    AnalysisError,
    AnalysisReport,
    Diagnostic,
    Severity,
)
from .sortcheck import SortChecker, check_expr, expr_bounds
from .system_check import (
    check_benchmark,
    check_conditions,
    check_system,
    check_traces,
    validate_conditions,
    validate_system,
)

__all__ = [
    "AnalysisError",
    "AnalysisReport",
    "ContractFinding",
    "Diagnostic",
    "Severity",
    "SortChecker",
    "check_benchmark",
    "check_conditions",
    "check_expr",
    "check_system",
    "check_traces",
    "expr_bounds",
    "lint_file",
    "lint_paths",
    "lint_source",
    "validate_conditions",
    "validate_system",
]
