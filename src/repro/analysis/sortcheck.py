"""Sort inference and well-formedness checking over the hash-consed DAG.

The smart constructors in :mod:`repro.expr.ast` enforce sort discipline
*at construction time* for the paths they cover, but nothing stops a
user-authored system (or a raw node constructor, or a future
deserializer) from assembling a tree whose stored sorts disagree with
its structure — and such a tree only fails deep inside the Tseitin
encoder or as a wrong-width bitvector model.  :class:`SortChecker`
re-derives every node's expected sort bottom-up and reports each
disagreement as a structured :class:`~repro.analysis.diagnostics.
Diagnostic` instead.

The walk is **eid-memoised**: every distinct DAG node is checked once
per checker instance (the hash-consed core guarantees ``eid`` *is* the
structural identity), so checking a whole system is linear in the DAG
even when the tree unfolding is exponential.  Scope checking
(undeclared variables) is part of the same walk; primed-ness
restrictions (init predicates and condition bodies must be unprimed)
are a separate O(free-vars) pass because they vary per context while
the memo must not.

Range analysis (:func:`expr_bounds`) is deliberately sharper than the
sorts stored on the nodes: the stored sorts are the smart constructors'
per-operator intervals, which lose correlations.  The chart compiler's
two standard idioms — saturating counters ``min(x + 1, cap)`` and
guarded increments ``ite(x < cap, x + 1, x)`` — both carry stored
branch-union sorts one wider than the values they can actually take, so
:func:`expr_bounds` propagates simple comparison constraints from ITE
conditions into the branches (and recognises the ``minimum``/
``maximum`` comparison patterns) before unioning.  Without this, every
dwell counter in the benchmark library would be a false R101.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..expr.ast import (
    Add,
    And,
    Const,
    Eq,
    Expr,
    Iff,
    Implies,
    Ite,
    Le,
    Lt,
    Mul,
    Neg,
    Not,
    Or,
    Sub,
    Var,
    children,
    free_vars,
    has_primed_vars,
)
from ..expr.printer import to_str
from ..expr.types import EnumSort, IntSort, Sort
from .diagnostics import Diagnostic, Severity


def _numeric(sort: Sort) -> bool:
    return sort.is_int() or sort.is_enum()


def _range_of(sort: Sort) -> tuple[int, int] | None:
    if isinstance(sort, IntSort):
        return (sort.lo, sort.hi)
    if isinstance(sort, EnumSort):
        return (0, sort.cardinality - 1)
    return None


def _intersect(
    a: tuple[int, int], b: tuple[int, int]
) -> tuple[int, int] | None:
    lo, hi = max(a[0], b[0]), min(a[1], b[1])
    if lo > hi:
        return None
    return (lo, hi)


# ---------------------------------------------------------------------------
# constraint-aware range analysis
# ---------------------------------------------------------------------------

# Environments map variables to known value bounds (always within the
# variable's sort); they are function-local and short-lived, so keying
# them on the interned Var nodes themselves is fine.


def _linear(expr: Expr) -> tuple[Var | None, int] | None:
    """Decompose ``expr`` as ``var + offset`` (var may be None).

    Only the shapes the chart compiler emits in guards are recognised;
    anything else returns None and contributes no narrowing.
    """
    if isinstance(expr, Const) and _numeric(expr.sort):
        return (None, expr.value)
    if isinstance(expr, Var) and _numeric(expr.sort):
        return (expr, 0)
    if isinstance(expr, Add):
        var: Var | None = None
        offset = 0
        for arg in expr.args:
            if isinstance(arg, Const):
                offset += arg.value
            elif isinstance(arg, Var) and var is None:
                var = arg
            else:
                return None
        return (var, offset)
    if isinstance(expr, Sub) and isinstance(expr.rhs, Const):
        head = _linear(expr.lhs)
        if head is None:
            return None
        return (head[0], head[1] - expr.rhs.value)
    return None


def _bound_var(env: dict, var: Var, lo: int, hi: int) -> dict | None:
    base = _range_of(var.sort)
    if base is None:
        return env
    current = env.get(var, base)
    refined = _intersect(current, (max(lo, base[0]), min(hi, base[1])))
    if refined is None:
        return None  # infeasible branch
    out = dict(env)
    out[var] = refined
    return out


_BIG = 1 << 62


def _narrow(env: dict, cond: Expr, positive: bool) -> dict | None:
    """Refine ``env`` under ``cond`` (or its negation); None = infeasible."""
    if isinstance(cond, Not):
        return _narrow(env, cond.arg, not positive)
    if (positive and isinstance(cond, And)) or (
        not positive and isinstance(cond, Or)
    ):
        for arg in cond.args:
            env = _narrow(env, arg, positive)
            if env is None:
                return None
        return env
    if isinstance(cond, (Lt, Le)):
        lhs, rhs = _linear(cond.lhs), _linear(cond.rhs)
        if lhs is None or rhs is None:
            return env
        strict = isinstance(cond, Lt)
        if not positive:
            # not(a < b) is b <= a; not(a <= b) is b < a.
            lhs, rhs = rhs, lhs
            strict = not strict
        (lvar, loff), (rvar, roff) = lhs, rhs
        adjust = 1 if strict else 0
        if lvar is not None and rvar is None:
            # lvar + loff (<|<=) roff
            return _bound_var(env, lvar, -_BIG, roff - loff - adjust)
        if lvar is None and rvar is not None:
            # loff (<|<=) rvar + roff
            return _bound_var(env, rvar, loff - roff + adjust, _BIG)
        return env
    if isinstance(cond, Eq) and positive:
        for side, other in ((cond.lhs, cond.rhs), (cond.rhs, cond.lhs)):
            if isinstance(side, Var) and isinstance(other, Const) and _numeric(
                side.sort
            ):
                return _bound_var(env, side, other.value, other.value)
        return env
    return env


def narrow_env(
    env: Mapping[Var, tuple[int, int]], cond: Expr, positive: bool = True
) -> dict | None:
    """Refine a bounds environment under ``cond`` (or its negation).

    Public entry over :func:`_narrow` for the rewrite engine's context
    threading (``expr/rewrite.py``): returns a refined copy of ``env``,
    ``env``-equivalent when ``cond`` contributes nothing, or ``None``
    when the condition is infeasible under ``env``.
    """
    return _narrow(dict(env), cond, positive)


def expr_bounds(
    expr: Expr, env: dict | None = None
) -> tuple[int, int]:
    """Value bounds of a numeric expression, constraint-refined.

    Inner nodes are trusted up to their declared sorts (each node's own
    declared-vs-derived consistency is checked separately by
    :class:`SortChecker`); ITE conditions narrow the environment seen by
    each branch, and the ``minimum``/``maximum`` identity patterns clamp
    the union.
    """
    declared = _range_of(expr.sort)
    if declared is None:
        raise TypeError(f"no interval for sort {expr.sort}")
    if env is None:
        env = {}
    if isinstance(expr, Const):
        return (expr.value, expr.value)
    if isinstance(expr, Var):
        bounded = env.get(expr)
        if bounded is None:
            return declared
        return _intersect(bounded, declared) or declared
    if isinstance(expr, (Add, Sub, Neg, Mul)):
        derived = _derived_bounds(expr, env)
        if derived is None:
            return declared
        return _intersect(derived, declared) or declared
    if isinstance(expr, Ite):
        derived = _ite_bounds(expr, env)
        if derived is None:
            return declared
        return _intersect(derived, declared) or declared
    return declared


def _ite_bounds(expr: Ite, env: dict) -> tuple[int, int] | None:
    then, other = expr.then, expr.other
    if _range_of(then.sort) is None or _range_of(other.sort) is None:
        return None
    env_then = _narrow(env, expr.cond, True)
    env_other = _narrow(env, expr.cond, False)
    if env_then is None and env_other is None:
        return None
    branches = []
    if env_then is not None:
        branches.append(expr_bounds(then, env_then))
    if env_other is not None:
        branches.append(expr_bounds(other, env_other))
    lo = min(b[0] for b in branches)
    hi = max(b[1] for b in branches)
    cond = expr.cond
    if (
        isinstance(cond, (Lt, Le))
        and env_then is not None
        and env_other is not None
    ):
        lo_t, hi_t = branches[0]
        lo_e, hi_e = branches[1]
        # ite(a <= b, a, b) is min(a, b); ite(a >= b, a, b) is
        # max(a, b) and reaches here as ite(b <= a, a, b).
        if cond.lhs is then and cond.rhs is other:
            lo, hi = min(lo_t, lo_e), min(hi_t, hi_e)
        elif cond.rhs is then and cond.lhs is other:
            lo, hi = max(lo_t, lo_e), max(hi_t, hi_e)
    return (lo, hi)


def _derived_bounds(expr: Expr, env: dict) -> tuple[int, int] | None:
    """Result interval implied by the children (no declared-sort clamp),
    or None if a child is non-numeric (reported as a kind mismatch)."""
    if isinstance(expr, Ite):
        return _ite_bounds(expr, env)
    ranges = []
    for kid in children(expr):
        if _range_of(kid.sort) is None:
            return None
        ranges.append(expr_bounds(kid, env))
    if isinstance(expr, Add):
        return (sum(r[0] for r in ranges), sum(r[1] for r in ranges))
    if isinstance(expr, Sub):
        (lo1, hi1), (lo2, hi2) = ranges
        return (lo1 - hi2, hi1 - lo2)
    if isinstance(expr, Neg):
        ((lo, hi),) = ranges
        return (-hi, -lo)
    if isinstance(expr, Mul):
        (lo1, hi1), (lo2, hi2) = ranges
        corners = (lo1 * lo2, lo1 * hi2, hi1 * lo2, hi1 * hi2)
        return (min(corners), max(corners))
    return None


# ---------------------------------------------------------------------------
# the checker
# ---------------------------------------------------------------------------


class SortChecker:
    """Diagnostics-grade sort/well-formedness checking of expressions.

    Parameters
    ----------
    scope:
        Declared variables by *name* (``None`` disables scope checking).
        A variable node is in scope iff its name is declared **and** its
        sort equals the declaration — same name at a different sort is
        the classic copy-paste error the encoder turns into a wrong
        width, so it is R001 here.
    """

    def __init__(self, scope: Mapping[str, Var] | None = None):
        self._scope = dict(scope) if scope is not None else None
        # Context-free findings per distinct DAG node, keyed on eid.
        self._memo: dict[int, tuple[Diagnostic, ...]] = {}

    # ------------------------------------------------------------------
    def check(
        self, expr: Expr, context: str = "", allow_primed: bool = True
    ) -> list[Diagnostic]:
        """All findings for ``expr``, tagged with ``context``."""
        out: list[Diagnostic] = []
        stack = [expr]
        seen: set[int] = set()
        while stack:
            node = stack.pop()
            if node.eid in seen:
                continue
            seen.add(node.eid)
            cached = self._memo.get(node.eid)
            if cached is None:
                cached = tuple(self._node_diags(node))
                self._memo[node.eid] = cached
            out.extend(cached)
            stack.extend(children(node))
        if not allow_primed and has_primed_vars(expr):
            for var in sorted(free_vars(expr), key=lambda v: v.qualified_name):
                if var.primed:
                    out.append(
                        Diagnostic(
                            code="R004",
                            severity=Severity.ERROR,
                            message=(
                                "primed variable "
                                f"{var.qualified_name!r} is not allowed here "
                                "(this position is evaluated at a single "
                                "observation)"
                            ),
                            subject=to_str(expr),
                        )
                    )
        return [d.with_context(context) for d in out]

    # ------------------------------------------------------------------
    def _node_diags(self, node: Expr) -> list[Diagnostic]:
        diags: list[Diagnostic] = []

        def report(code: str, message: str) -> None:
            diags.append(
                Diagnostic(
                    code=code,
                    severity=Severity.ERROR,
                    message=message,
                    subject=to_str(node),
                )
            )

        if isinstance(node, Var):
            if self._scope is not None:
                declared = self._scope.get(node.name)
                if declared is None:
                    report(
                        "R001",
                        f"undeclared variable {node.qualified_name!r}",
                    )
                elif declared.sort != node.sort:
                    report(
                        "R001",
                        f"variable {node.qualified_name!r} used at sort "
                        f"{node.sort}, declared at sort {declared.sort}",
                    )
            return diags
        if isinstance(node, Const):
            # Value/sort agreement is enforced by the constructor (and
            # interning makes it impossible to bypass); nothing to do.
            return diags

        if isinstance(node, (Not, And, Or, Implies, Iff)):
            for kid in children(node):
                if not kid.sort.is_bool():
                    report(
                        "R002",
                        "boolean connective applied to operand of sort "
                        f"{kid.sort}: {to_str(kid)}",
                    )
            return diags

        if isinstance(node, Eq):
            lhs, rhs = node.lhs, node.rhs
            if lhs.sort.is_bool() != rhs.sort.is_bool():
                report(
                    "R002",
                    f"equality mixes sorts {lhs.sort} and {rhs.sort}",
                )
            elif (
                isinstance(lhs.sort, EnumSort)
                and isinstance(rhs.sort, EnumSort)
                and lhs.sort != rhs.sort
            ):
                report(
                    "R006",
                    "equality compares distinct enum sorts "
                    f"{lhs.sort} and {rhs.sort}",
                )
            else:
                for enum_side, other in ((lhs, rhs), (rhs, lhs)):
                    if (
                        isinstance(enum_side.sort, EnumSort)
                        and isinstance(other, Const)
                        and isinstance(other.sort, IntSort)
                    ):
                        hi = enum_side.sort.cardinality - 1
                        if other.value < 0 or other.value > hi:
                            report(
                                "R006",
                                f"enum {enum_side.sort} compared against "
                                f"out-of-range index {other.value}",
                            )
            return diags

        if isinstance(node, (Lt, Le)):
            for kid in (node.lhs, node.rhs):
                if not _numeric(kid.sort):
                    report(
                        "R002",
                        "integer comparison applied to operand of sort "
                        f"{kid.sort}: {to_str(kid)}",
                    )
            return diags

        if isinstance(node, (Add, Sub, Neg, Mul)):
            bad_kind = False
            for kid in children(node):
                if not _numeric(kid.sort):
                    bad_kind = True
                    report(
                        "R002",
                        "arithmetic applied to operand of sort "
                        f"{kid.sort}: {to_str(kid)}",
                    )
            if not isinstance(node.sort, IntSort):
                report(
                    "R002",
                    f"arithmetic node carries non-integer sort {node.sort}",
                )
            elif not bad_kind:
                derived = _derived_bounds(node, {})
                declared = _range_of(node.sort)
                if derived is not None and (
                    derived[0] < declared[0] or derived[1] > declared[1]
                ):
                    report(
                        "R003",
                        f"declared sort {node.sort} cannot represent the "
                        f"operand range [{derived[0]},{derived[1]}] "
                        "(arithmetic would wrap)",
                    )
            return diags

        if isinstance(node, Ite):
            if not node.cond.sort.is_bool():
                report(
                    "R002",
                    f"ite condition has sort {node.cond.sort}: "
                    f"{to_str(node.cond)}",
                )
            then, other = node.then, node.other
            if then.sort.is_bool() != other.sort.is_bool():
                report(
                    "R005",
                    f"ite branches disagree: {to_str(then)} has sort "
                    f"{then.sort}, {to_str(other)} has sort {other.sort}",
                )
                return diags
            if then.sort.is_bool():
                if not node.sort.is_bool():
                    report(
                        "R005",
                        "ite over boolean branches carries sort "
                        f"{node.sort}",
                    )
                return diags
            declared = _range_of(node.sort)
            if declared is None:
                report(
                    "R005",
                    f"ite over numeric branches carries sort {node.sort}",
                )
                return diags
            derived = _ite_bounds(node, {})
            if derived is not None and (
                derived[0] < declared[0] or derived[1] > declared[1]
            ):
                report(
                    "R003",
                    f"declared sort {node.sort} cannot represent the "
                    f"branch range [{derived[0]},{derived[1]}]",
                )
            return diags

        report(  # pragma: no cover - future node types
            "R002", f"unknown expression node {type(node).__name__}"
        )
        return diags


def check_expr(
    expr: Expr,
    scope: Mapping[str, Var] | None = None,
    context: str = "",
    allow_primed: bool = True,
) -> list[Diagnostic]:
    """One-shot expression check (fresh memo); see :class:`SortChecker`."""
    return SortChecker(scope).check(
        expr, context=context, allow_primed=allow_primed
    )
