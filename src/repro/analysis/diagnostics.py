"""Structured diagnostics for the static-analysis layer.

Every finding of the DSL analyzer (:mod:`repro.analysis.sortcheck`,
:mod:`repro.analysis.system_check`) is a :class:`Diagnostic`: a stable
error code (the ``R0xx``/``R1xx``/... catalogue in
``docs/static_analysis.md``), a severity, a human-readable message, the
*printed form* of the offending subexpression (or the offending name),
and the context it was found in (``next(mode)``, ``init``, ``condition
assumption``, ...).  Reports are deterministic: the analyzer walks
expression DAGs in structural order and the report sorts findings by
``(code, context, subject)``, so two runs — under any
``PYTHONHASHSEED`` — produce identical output.

The contract linter (:mod:`repro.analysis.contracts`) has its own
``C0xx`` finding type because its subjects are source locations, not
expressions.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import IntEnum


class Severity(IntEnum):
    """Diagnostic severity; comparisons follow ``INFO < WARNING < ERROR``."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding.

    ``subject`` is the printed form of the offending subexpression (via
    :func:`repro.expr.printer.to_str`) or, for non-expression findings,
    the offending name; ``context`` names where it was found.
    """

    code: str
    severity: Severity
    message: str
    subject: str = ""
    context: str = ""

    def format(self) -> str:
        where = f" [{self.context}]" if self.context else ""
        what = f": {self.subject}" if self.subject else ""
        return f"{self.code} {self.severity}{where} {self.message}{what}"

    def with_context(self, context: str) -> "Diagnostic":
        if self.context:
            return self
        return replace(self, context=context)


def _sort_key(diag: Diagnostic) -> tuple:
    return (diag.code, diag.context, diag.subject, diag.message)


@dataclass
class AnalysisReport:
    """An ordered collection of diagnostics for one analyzed artefact.

    ``subject`` names the artefact (system, benchmark, trace file).
    Diagnostics are kept sorted by ``(code, context, subject)`` so the
    report is a pure function of the analyzed structure — independent of
    traversal incidentals and hash seeding.
    """

    subject: str = ""
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def extend(self, diags: "list[Diagnostic] | AnalysisReport") -> None:
        if isinstance(diags, AnalysisReport):
            diags = diags.diagnostics
        self.diagnostics.extend(diags)

    def finalize(self) -> "AnalysisReport":
        """Sort and dedup; call once after all passes ran."""
        self.diagnostics = sorted(set(self.diagnostics), key=_sort_key)
        return self

    # ------------------------------------------------------------------
    def at_least(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.at_least(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True iff the report has no diagnostics at all."""
        return not self.diagnostics

    def codes(self) -> list[str]:
        return [d.code for d in self.diagnostics]

    def format(self) -> str:
        name = self.subject or "<unnamed>"
        if not self.diagnostics:
            return f"{name}: OK (0 diagnostics)"
        lines = [f"{name}: {len(self.diagnostics)} diagnostic(s)"]
        lines.extend(f"  {d.format()}" for d in self.diagnostics)
        return "\n".join(lines)


class AnalysisError(ValueError):
    """Raised by the opt-in ``validate=`` boundaries on ERROR findings.

    Carries the full report so callers (and the future job server's
    error responses) can surface every named diagnostic, not just the
    first.
    """

    def __init__(self, report: AnalysisReport):
        self.report = report
        super().__init__(report.format())
