"""AST contract linter for the hash-consing and spawn-safety invariants.

PR 5's interned expression core and the spawn-safe worker specs created
repo-wide contracts that ``docs/expr_core.md`` used to describe as
conventions.  This linter makes them enforced:

* **C001** — composite Expr node classes (``And``, ``Ite``, ...) called
  directly outside ``expr/ast.py``.  Raw constructors intern correctly
  but skip the smart constructors' normalisation and sort inference;
  everything outside the defining module must build through
  ``land``/``ite``/... (``Var`` and ``Const`` are legitimate leaves and
  stay allowed).
* **C002** — ``copy.deepcopy`` calls.  Interned nodes define
  ``__deepcopy__`` to return ``self``, so deepcopying an expression is
  at best a no-op and at worst (for containers of systems/engines) a
  way to duplicate engines that must stay per-instance.
* **C003** — module- or class-level caches annotated ``dict[Expr, ...]``
  or ``set[Expr]``.  Long-lived tables must key on ``eid`` (a stable
  ``int``) so entries do not pin the interned nodes alive and survive
  pickling boundaries; function-local identity sets remain fine.
* **C004** — mutable default arguments (the classic shared-state trap;
  also a spawn hazard, since a default mutated in a worker diverges
  from the parent).
* **C005** — ``time.time()`` calls.  Measured paths standardise on
  ``time.perf_counter()``; wall-clock time regresses under NTP slew.
* **C006** — telemetry span names off the documented scheme.  A string
  literal passed as the first argument of a ``span(...)``/``x.span(...)``
  call must be dotted lowercase ``component.phase`` (e.g.
  ``"oracle.check"``, ``"loop.learn"``; see ``docs/observability.md``) so
  profiles group consistently and exported logs stay greppable.
* **C007** — ad-hoc algebraic rewriting outside the rule table.  A
  function that both dispatches on several composite Expr classes
  (``isinstance``/``type(..) is``) *and* rebuilds expressions through
  the smart constructors is doing what ``expr/rewrite.py`` does — as an
  untested one-off.  Algebraic rewrites belong in the rule table
  (``expr/rules.py``), where the discrimination net matches them, the
  telemetry counts them and the property suite checks them.  Pure
  dispatchers (evaluators, encoders, printers: no smart-constructor
  calls) and pure builders (no class dispatch) stay allowed;
  ``expr/ast.py``, ``expr/rewrite.py`` and ``expr/rules.py`` are exempt
  because they *are* the sanctioned home of such code.
* **C000** — a suppression comment without a reason.

Suppression syntax::

    raw = And((a, a, b))  # contract: ignore[C001] exercising raw interning

The comment may sit on the offending line or on the line directly above
it.  A reason is mandatory — ``ignore[C001]`` alone yields C000.

The linter is pure ``ast`` + source text: no imports of the linted
modules, so it runs in milliseconds over the whole repo and cannot be
confused by import-time side effects.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path

#: Composite node classes whose direct call sites C001 flags.  ``Var``
#: and ``Const`` are deliberately absent: they are the leaves user code
#: legitimately constructs.
COMPOSITE_NODES = frozenset(
    {
        "Not",
        "And",
        "Or",
        "Implies",
        "Iff",
        "Eq",
        "Lt",
        "Le",
        "Add",
        "Sub",
        "Neg",
        "Mul",
        "Ite",
    }
)

#: Smart constructors whose calls mark a function as *building*
#: expressions (one half of the C007 heuristic; the other half is
#: dispatching on several composite node classes).
SMART_CONSTRUCTORS = frozenset(
    {
        "land", "lor", "lnot", "implies", "iff", "eq", "ne", "lt", "le",
        "gt", "ge", "add", "sub", "neg", "mul", "ite", "minimum",
        "maximum",
    }
)

#: How many distinct composite classes a function must dispatch on
#: before C007 considers it a rewrite pass rather than a special case.
_C007_MIN_CLASSES = 3

_EXPR_MODULE = re.compile(r"(^|\.)expr(\.ast|\.rewrite|\.rules)?$|^ast$")
_EXPR_KEYED = re.compile(
    r"\b(dict|Dict|set|Set|frozenset|defaultdict|OrderedDict|"
    r"WeakKeyDictionary|WeakValueDictionary)\s*\[\s*['\"]?Expr\b"
)
_SUPPRESS = re.compile(
    r"#\s*contract:\s*ignore\[([A-Z0-9,\s]+)\]\s*(.*)$"
)

CODE_MESSAGES = {
    "C000": "suppression without a reason",
    "C001": "raw composite Expr constructor outside expr/ast.py",
    "C002": "copy.deepcopy on interned/engine-bearing objects",
    "C003": "module/class-level cache keyed on Expr (key on eid)",
    "C004": "mutable default argument",
    "C005": "time.time() in a measured path (use perf_counter)",
    "C006": "span name must be dotted lowercase component.phase",
    "C007": (
        "ad-hoc algebraic rewrite outside the rule table "
        "(add a Rule in expr/rules.py)"
    ),
}

#: The documented span-name shape: at least one dot, every segment
#: lowercase ``[a-z0-9_]+`` (C006).
_SPAN_NAME = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")


@dataclass(frozen=True)
class ContractFinding:
    """One linter finding, anchored to a source location."""

    code: str
    path: str
    line: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


class _Suppressions:
    """Per-file suppression comments, by line number."""

    def __init__(self, source: str):
        self.by_line: dict[int, set[str]] = {}
        self.missing_reason: list[int] = []
        for number, text in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS.search(text)
            if not match:
                continue
            codes = {c.strip() for c in match.group(1).split(",") if c.strip()}
            if not match.group(2).strip():
                self.missing_reason.append(number)
            self.by_line[number] = codes

    def covers(self, line: int, code: str) -> bool:
        for candidate in (line, line - 1):
            if code in self.by_line.get(candidate, set()):
                return True
        return False


class _ContractVisitor(ast.NodeVisitor):
    def __init__(self, path: str, in_expr_ast: bool, c007_exempt: bool):
        self.path = path
        self.in_expr_ast = in_expr_ast
        self.c007_exempt = c007_exempt
        self.findings: list[ContractFinding] = []
        # Local names bound by imports, so bare-name calls resolve.
        self.expr_node_names: set[str] = set()
        self.smart_ctor_names: set[str] = set()
        self.deepcopy_names: set[str] = set()
        self.copy_modules: set[str] = set()
        self.time_fn_names: set[str] = set()
        self.time_modules: set[str] = set()
        self.scope_depth = 0  # >0 inside a function body
        # C007: per-function frames of (dispatched classes, builder calls).
        self._rewrite_frames: list[dict] = []

    # ------------------------------------------------------------------
    def _report(self, code: str, node: ast.AST, detail: str = "") -> None:
        message = CODE_MESSAGES[code]
        if detail:
            message = f"{message}: {detail}"
        self.findings.append(
            ContractFinding(
                code=code, path=self.path, line=node.lineno, message=message
            )
        )

    # ------------------------------------------------------------------
    # imports
    # ------------------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            if alias.name == "copy":
                self.copy_modules.add(local)
            if alias.name == "time":
                self.time_modules.add(local)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if node.module == "copy":
            for alias in node.names:
                if alias.name == "deepcopy":
                    self.deepcopy_names.add(alias.asname or alias.name)
        if node.module == "time":
            for alias in node.names:
                if alias.name == "time":
                    self.time_fn_names.add(alias.asname or alias.name)
        if _EXPR_MODULE.search(module) and (node.level > 0 or "repro" in module or module.startswith("expr")):
            for alias in node.names:
                if alias.name in COMPOSITE_NODES:
                    self.expr_node_names.add(alias.asname or alias.name)
                if alias.name in SMART_CONSTRUCTORS:
                    self.smart_ctor_names.add(alias.asname or alias.name)
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in self.expr_node_names and not self.in_expr_ast:
                self._report("C001", node, f"{func.id}(...)")
            if func.id in self.deepcopy_names:
                self._report("C002", node, "deepcopy(...)")
            if func.id in self.time_fn_names:
                self._report("C005", node, "time(...)")
            if func.id == "isinstance" and len(node.args) == 2:
                self._note_dispatch(node.args[1])
            if func.id in self.smart_ctor_names and self._rewrite_frames:
                self._rewrite_frames[-1]["builds"] += 1
        elif isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            if func.value.id in self.copy_modules and func.attr == "deepcopy":
                self._report("C002", node, "copy.deepcopy(...)")
            if func.value.id in self.time_modules and func.attr == "time":
                self._report("C005", node, "time.time()")
        self._check_span_name(node)
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # C007: class dispatch + smart-constructor rebuild in one function
    # ------------------------------------------------------------------
    def _note_dispatch(self, classinfo: ast.AST) -> None:
        """Record composite node classes named in an ``isinstance`` second
        argument (a bare name or a tuple of names)."""
        if not self._rewrite_frames:
            return
        names = (
            list(classinfo.elts)
            if isinstance(classinfo, ast.Tuple)
            else [classinfo]
        )
        for item in names:
            if isinstance(item, ast.Name) and item.id in self.expr_node_names:
                self._rewrite_frames[-1]["classes"].add(item.id)

    def visit_Compare(self, node: ast.Compare) -> None:
        # ``type(x) is Cls`` counts as dispatch too.
        if (
            self._rewrite_frames
            and len(node.ops) == 1
            and isinstance(node.ops[0], (ast.Is, ast.IsNot))
            and isinstance(node.left, ast.Call)
            and isinstance(node.left.func, ast.Name)
            and node.left.func.id == "type"
        ):
            comparator = node.comparators[0]
            if (
                isinstance(comparator, ast.Name)
                and comparator.id in self.expr_node_names
            ):
                self._rewrite_frames[-1]["classes"].add(comparator.id)
        self.generic_visit(node)

    def _check_span_name(self, node: ast.Call) -> None:
        """C006: literal first argument of a span(...) call must be a
        dotted lowercase name.  Only string literals are judged — a
        variable name is the caller's responsibility — and calls like
        ``match.span(1)`` fall through on the non-string argument."""
        func = node.func
        is_span_call = (
            isinstance(func, ast.Name) and func.id == "span"
        ) or (isinstance(func, ast.Attribute) and func.attr == "span")
        if not is_span_call or not node.args:
            return
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            if not _SPAN_NAME.match(first.value):
                self._report("C006", node, repr(first.value))

    # ------------------------------------------------------------------
    # scopes: C003 only at module/class level, C004 on any function
    # ------------------------------------------------------------------
    def _visit_function(self, node) -> None:
        for default in list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]:
            if self._is_mutable_literal(default):
                self._report("C004", default, ast.unparse(default))
        self.scope_depth += 1
        self._rewrite_frames.append({"classes": set(), "builds": 0})
        self.generic_visit(node)
        frame = self._rewrite_frames.pop()
        self.scope_depth -= 1
        if (
            not self.c007_exempt
            and not isinstance(node, ast.Lambda)
            and len(frame["classes"]) >= _C007_MIN_CLASSES
            and frame["builds"] > 0
        ):
            self._report(
                "C007",
                node,
                f"{node.name}() dispatches on "
                f"{len(frame['classes'])} Expr classes and rebuilds via "
                f"{frame['builds']} smart-constructor call(s)",
            )

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function
    visit_Lambda = _visit_function

    @staticmethod
    def _is_mutable_literal(node: ast.AST) -> bool:
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
             ast.SetComp),
        ):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in {"list", "dict", "set", "bytearray"}
            and not node.args
            and not node.keywords
        )

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if self.scope_depth == 0:
            annotation = ast.unparse(node.annotation)
            if _EXPR_KEYED.search(annotation):
                self._report("C003", node, annotation)
        self.generic_visit(node)


def lint_source(source: str, path: str) -> list[ContractFinding]:
    """Lint one module's source; ``path`` is used for reporting and for
    the ``expr/ast.py`` exemption."""
    normalized = path.replace("\\", "/")
    in_expr_ast = normalized.endswith("expr/ast.py")
    c007_exempt = normalized.endswith(
        ("expr/ast.py", "expr/rewrite.py", "expr/rules.py")
    )
    tree = ast.parse(source, filename=path)
    visitor = _ContractVisitor(path, in_expr_ast, c007_exempt)
    visitor.visit(tree)
    suppressions = _Suppressions(source)
    kept = [
        finding
        for finding in visitor.findings
        if not suppressions.covers(finding.line, finding.code)
    ]
    for line in suppressions.missing_reason:
        kept.append(
            ContractFinding(
                code="C000",
                path=path,
                line=line,
                message=CODE_MESSAGES["C000"],
            )
        )
    return sorted(kept, key=lambda f: (f.path, f.line, f.code, f.message))


def lint_file(path: "str | Path") -> list[ContractFinding]:
    text = Path(path).read_text(encoding="utf-8")
    return lint_source(text, str(path))


def lint_paths(paths: "list[str | Path]") -> list[ContractFinding]:
    """Lint every ``*.py`` file under the given files/directories."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    findings: list[ContractFinding] = []
    for file in files:
        findings.extend(lint_file(file))
    return sorted(findings, key=lambda f: (f.path, f.line, f.code, f.message))
