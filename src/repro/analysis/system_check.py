"""System-, benchmark-, condition- and trace-level well-formedness checks.

This is the front door the engines never had: every check here names a
failure that previously surfaced as a deep ``KeyError`` in the Tseitin
encoder, a wrong-width bitvector model, or a silently-wrong simulation.
Expression-level findings (R001–R006) come from
:class:`~repro.analysis.sortcheck.SortChecker`; this module adds the
structural rules of :class:`~repro.system.transition_system.
SymbolicSystem` itself (R101–R107), of extracted completeness conditions
(R201), and of observation traces (R301–R303).

The optional **semantic tier** (``semantic=True``) reuses the
:class:`~repro.smt.solver.SmtSolver` bit-blaster to decide guard
properties no structural walk can see: transitions that can never fire
(R401), same-state guards that overlap and are disambiguated only by
priority (R402), and states whose outgoing guards are non-exhaustive
(R403).  It is opt-in because its findings are stylistic for many charts
(a state that parks on no-fire ticks is ordinary Stateflow), and because
it costs SAT calls rather than a DAG walk.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from ..expr.ast import FALSE, Expr, Var, land
from ..expr.printer import to_str
from ..expr.simplify import simplify
from ..expr.types import sort_values
from ..system.transition_system import SymbolicSystem
from .diagnostics import (
    AnalysisError,
    AnalysisReport,
    Diagnostic,
    Severity,
)
from .sortcheck import SortChecker, _range_of, expr_bounds


def _diag(
    code: str,
    message: str,
    subject: str = "",
    context: str = "",
    severity: Severity = Severity.ERROR,
) -> Diagnostic:
    return Diagnostic(
        code=code,
        severity=severity,
        message=message,
        subject=subject,
        context=context,
    )


def _in_sort(value: int, sort) -> bool:
    bounds = _range_of(sort)
    if bounds is None:
        return value in (0, 1)
    return bounds[0] <= value <= bounds[1]


# ---------------------------------------------------------------------------
# SymbolicSystem
# ---------------------------------------------------------------------------


def check_system(system: SymbolicSystem) -> AnalysisReport:
    """Structural analysis of a symbolic system (R001–R107)."""
    report = AnalysisReport(subject=system.name)
    scope = {v.name: v for v in system.variables}
    state_vars = {v.name: v for v in system.state_vars}
    input_names = {v.name for v in system.input_vars}
    checker = SortChecker(scope)

    # R108: state and input namespaces must be disjoint (an overlap
    # makes ``observe`` silently shadow the input with the state).
    overlap = sorted(
        {v.name for v in system.state_vars}
        & {v.name for v in system.input_vars}
    )
    for name in overlap:
        report.add(
            _diag(
                "R108",
                f"{name!r} is declared both as a state and as an input "
                "variable",
                subject=name,
            )
        )

    # R102: the state vars and the next-state table must coincide.
    next_by_name = {}
    for var in system.next_exprs:
        next_by_name[var.name] = var
        if var.name not in state_vars or state_vars[var.name] != var:
            report.add(
                _diag(
                    "R102",
                    "next-state expression for a variable that is not a "
                    "declared state variable",
                    subject=var.qualified_name,
                    context=f"next({var.name})",
                )
            )
    for name in state_vars:
        if name not in next_by_name:
            report.add(
                _diag(
                    "R102",
                    f"state variable {name!r} has no next-state expression",
                    subject=name,
                )
            )

    for var, expr in sorted(
        system.next_exprs.items(), key=lambda kv: kv[0].name
    ):
        context = f"next({var.name})"
        report.extend(checker.check(expr, context=context))
        report.extend(_check_next_scoping(var, expr, state_vars, input_names))
        report.extend(_check_next_sort(var, expr, context))

    # R103: the initial valuation must cover exactly the state variables,
    # with in-sort values.
    for name, var in sorted(state_vars.items()):
        if name not in system.init_state:
            report.add(
                _diag(
                    "R103",
                    f"init_state is missing state variable {name!r}",
                    subject=name,
                    context="init",
                )
            )
        elif not _in_sort(system.init_state[name], var.sort):
            report.add(
                _diag(
                    "R103",
                    f"initial value {system.init_state[name]} is outside "
                    f"sort {var.sort}",
                    subject=name,
                    context="init",
                )
            )
    for name in sorted(system.init_state):
        if name not in state_vars:
            report.add(
                _diag(
                    "R103",
                    f"init_state binds {name!r}, which is not a state "
                    "variable",
                    subject=name,
                    context="init",
                    severity=Severity.WARNING,
                )
            )

    # R107: declared input samples must be total, in-sort input valuations.
    for index, sample in enumerate(system.input_samples):
        context = f"input_samples[{index}]"
        for var in system.input_vars:
            if var.name not in sample:
                report.add(
                    _diag(
                        "R107",
                        f"sample is missing input {var.name!r}",
                        subject=var.name,
                        context=context,
                    )
                )
            elif not _in_sort(sample[var.name], var.sort):
                report.add(
                    _diag(
                        "R107",
                        f"sample value {sample[var.name]} for {var.name!r} "
                        f"is outside sort {var.sort}",
                        subject=var.name,
                        context=context,
                    )
                )
        for name in sorted(sample.as_dict()):
            if name not in input_names:
                report.add(
                    _diag(
                        "R107",
                        f"sample binds {name!r}, which is not an input "
                        "variable",
                        subject=name,
                        context=context,
                        severity=Severity.WARNING,
                    )
                )

    return report.finalize()


def _check_next_scoping(
    var: Var,
    expr: Expr,
    state_vars: Mapping[str, Var],
    input_names: "set[str]",
) -> list[Diagnostic]:
    """R104: next-state expressions range over unprimed state variables
    and *primed* input variables, nothing else (paper §II-A: ``X' =
    f(X, inputs')``)."""
    from ..expr.ast import free_vars

    diags = []
    context = f"next({var.name})"
    for ref in sorted(free_vars(expr), key=lambda v: v.qualified_name):
        if ref.primed and ref.name not in input_names:
            diags.append(
                _diag(
                    "R104",
                    f"references primed non-input {ref.qualified_name!r}",
                    subject=ref.qualified_name,
                    context=context,
                )
            )
        elif not ref.primed and ref.name not in state_vars:
            diags.append(
                _diag(
                    "R104",
                    f"references {ref.name!r}, which is not a state "
                    "variable (inputs must appear primed)",
                    subject=ref.qualified_name,
                    context=context,
                )
            )
    return diags


def _check_next_sort(var: Var, expr: Expr, context: str) -> list[Diagnostic]:
    """R101: the next-state expression must produce values of the state
    variable's sort.  Kinds must match exactly; for numeric sorts the
    constraint-refined value bounds must fit the variable's range (the
    stored expression sort may be wider — see
    :func:`~repro.analysis.sortcheck.expr_bounds`)."""
    if var.sort.is_bool():
        if expr.sort.is_bool():
            return []
        return [
            _diag(
                "R101",
                f"next-state expression has sort {expr.sort}, state "
                f"variable {var.name!r} is boolean",
                subject=to_str(expr),
                context=context,
            )
        ]
    if expr.sort.is_bool():
        return [
            _diag(
                "R101",
                "next-state expression is boolean, state variable "
                f"{var.name!r} has sort {var.sort}",
                subject=to_str(expr),
                context=context,
            )
        ]
    if expr.sort.is_enum() and expr.sort != var.sort:
        return [
            _diag(
                "R101",
                f"next-state expression has enum sort {expr.sort}, state "
                f"variable {var.name!r} has sort {var.sort}",
                subject=to_str(expr),
                context=context,
            )
        ]
    lo, hi = expr_bounds(expr)
    var_lo, var_hi = _range_of(var.sort)
    if (lo < var_lo or hi > var_hi) and _can_escape_range(
        expr, var_lo, var_hi
    ):
        return [
            _diag(
                "R101",
                f"next-state values can leave sort {var.sort} of state "
                f"variable {var.name!r} (interval [{lo},{hi}])",
                subject=to_str(expr),
                context=context,
            )
        ]
    return []


def _can_escape_range(expr: Expr, lo: int, hi: int) -> bool:
    """Bit-precise confirmation that ``expr`` can take a value outside
    ``[lo, hi]``.

    Interval analysis (:func:`expr_bounds`) over-approximates: guards
    like ``¬(... ∨ x ≥ cap ∨ ...)`` bound a branch relationally, which
    no environment of per-variable ranges can see.  An interval-level
    suspicion is therefore *confirmed* by one satisfiability query over
    the variables' sorts before R101 is reported — findings are exact,
    at the price of a SAT call only on the rare suspicious expression.
    """
    from ..expr.ast import gt, lor, lt
    from ..smt.solver import is_satisfiable

    return is_satisfiable(lor(lt(expr, lo), gt(expr, hi)))


def validate_system(system: SymbolicSystem) -> SymbolicSystem:
    """Raise :class:`AnalysisError` if the system has ERROR findings."""
    report = check_system(system)
    if report.errors:
        raise AnalysisError(report)
    return system


# ---------------------------------------------------------------------------
# benchmarks (chart-aware checks)
# ---------------------------------------------------------------------------


def check_benchmark(benchmark, semantic: bool = False) -> AnalysisReport:
    """System checks plus FSA-spec (R105), chart reachability (R106) and
    — with ``semantic=True`` — solver-backed guard checks (R401–R403)."""
    report = AnalysisReport(subject=benchmark.name)
    report.extend(check_system(benchmark.system))

    machine_names = {m.name for m in benchmark.chart.machines}
    observable_names = {v.name for v in benchmark.system.variables}
    for spec in benchmark.fsas:
        context = f"fsa({spec.name})"
        for machine in spec.machines:
            if machine not in machine_names:
                report.add(
                    _diag(
                        "R105",
                        f"FSA references unknown machine {machine!r}",
                        subject=machine,
                        context=context,
                    )
                )
        for name in spec.resolved_mode_vars():
            if name not in observable_names:
                report.add(
                    _diag(
                        "R105",
                        f"mode variable {name!r} is not a declared "
                        "observable of the system",
                        subject=name,
                        context=context,
                    )
                )

    for machine in benchmark.chart.machines:
        report.extend(_check_machine_reachability(machine))

    if semantic:
        report.extend(_semantic_guard_checks(benchmark))

    return report.finalize()


def _check_machine_reachability(machine) -> list[Diagnostic]:
    """R106: states unreachable from the initial state over transitions
    whose guard does not simplify to false."""
    edges: dict[str, set[str]] = {state: set() for state in machine.states}
    for transition in machine.transitions:
        if simplify(transition.guard) is FALSE:
            continue
        edges[transition.src].add(transition.dst)
    reached = {machine.initial}
    frontier = [machine.initial]
    while frontier:
        here = frontier.pop()
        for there in edges[here]:
            if there not in reached:
                reached.add(there)
                frontier.append(there)
    return [
        _diag(
            "R106",
            f"state {state!r} of machine {machine.name!r} is unreachable "
            "from the initial state by static guard analysis",
            subject=f"{machine.name}.{state}",
            context=f"machine({machine.name})",
            severity=Severity.WARNING,
        )
        for state in machine.states
        if state not in reached
    ]


def _semantic_guard_checks(benchmark) -> list[Diagnostic]:
    """R401–R403: solver-backed guard analysis on the compiled chart."""
    from ..smt.solver import is_satisfiable, is_valid
    from ..expr.ast import lnot, lor

    diags: list[Diagnostic] = []
    for machine in benchmark.chart.machines:
        context = f"machine({machine.name})"
        compiled = benchmark.info.compiled.get(machine.name, [])
        for item in compiled:
            if not is_satisfiable(item.condition):
                diags.append(
                    _diag(
                        "R401",
                        f"transition {item.transition.label!r} can never "
                        "fire (its compiled condition, including priority "
                        "blocking, is unsatisfiable)",
                        subject=to_str(item.transition.guard),
                        context=context,
                        severity=Severity.WARNING,
                    )
                )
        by_src: dict[str, list] = {}
        for transition in machine.transitions:
            by_src.setdefault(transition.src, []).append(transition)
        for src in sorted(by_src):
            group = by_src[src]
            for i, first in enumerate(group):
                for second in group[i + 1 :]:
                    if is_satisfiable(land(first.guard, second.guard)):
                        diags.append(
                            _diag(
                                "R402",
                                f"guards of {first.label!r} and "
                                f"{second.label!r} overlap; the conflict "
                                "is resolved only by declaration order",
                                subject=to_str(
                                    land(first.guard, second.guard)
                                ),
                                context=context,
                                severity=Severity.WARNING,
                            )
                        )
            disjunction = lor(*(t.guard for t in group))
            if not is_valid(disjunction):
                diags.append(
                    _diag(
                        "R403",
                        f"outgoing guards of state {src!r} are "
                        "non-exhaustive (the machine parks when none "
                        "holds)",
                        subject=to_str(simplify(lnot(disjunction))),
                        context=context,
                        severity=Severity.INFO,
                    )
                )
    return diags


# ---------------------------------------------------------------------------
# conditions (the oracle boundary)
# ---------------------------------------------------------------------------


def check_conditions(
    conditions: Iterable, system: SymbolicSystem
) -> AnalysisReport:
    """R201 plus expression checks over extracted completeness conditions.

    Condition bodies are predicates over a *single* observation, so they
    must be Boolean, unprimed, and scoped to the system's observables.
    """
    report = AnalysisReport(subject=f"conditions({system.name})")
    scope = {v.name: v for v in system.variables}
    checker = SortChecker(scope)
    for index, condition in enumerate(conditions):
        context = f"condition[{index}]({condition.state_name})"
        bodies = []
        if condition.assumption is not None:
            bodies.append(("assumption", condition.assumption))
        bodies.append(("conclusion", condition.conclusion))
        for role, body in bodies:
            if not body.sort.is_bool():
                report.add(
                    _diag(
                        "R201",
                        f"{role} has sort {body.sort}, expected a Boolean "
                        "predicate over one observation",
                        subject=to_str(body),
                        context=context,
                    )
                )
            report.extend(
                checker.check(body, context=context, allow_primed=False)
            )
    return report.finalize()


def validate_conditions(
    conditions: Sequence, system: SymbolicSystem
) -> Sequence:
    """Raise :class:`AnalysisError` on ERROR findings; returns the input."""
    report = check_conditions(conditions, system)
    if report.errors:
        raise AnalysisError(report)
    return conditions


# ---------------------------------------------------------------------------
# traces
# ---------------------------------------------------------------------------


def check_traces(traces: Iterable, system: SymbolicSystem) -> AnalysisReport:
    """R301–R303: observation traces against the system's observables.

    * R301 — an observation is missing a declared observable;
    * R302 — an observation binds an unknown variable name;
    * R303 — a value lies outside the observable's sort.
    """
    report = AnalysisReport(subject=f"traces({system.name})")
    declared = {v.name: v for v in system.variables}
    for t_index, trace in enumerate(traces):
        for o_index, obs in enumerate(trace):
            context = f"trace[{t_index}][{o_index}]"
            obs_map = obs.as_dict()
            for name, var in declared.items():
                if name not in obs_map:
                    report.add(
                        _diag(
                            "R301",
                            f"observation is missing observable {name!r}",
                            subject=name,
                            context=context,
                        )
                    )
                elif not _in_sort(obs_map[name], var.sort):
                    values = list(sort_values(var.sort))
                    report.add(
                        _diag(
                            "R303",
                            f"value {obs_map[name]} of {name!r} is outside "
                            f"sort {var.sort} "
                            f"(expected {values[0]}..{values[-1]})",
                            subject=name,
                            context=context,
                        )
                    )
            for name in sorted(obs_map):
                if name not in declared:
                    report.add(
                        _diag(
                            "R302",
                            f"observation binds unknown variable {name!r}",
                            subject=name,
                            context=context,
                        )
                    )
    return report.finalize()
