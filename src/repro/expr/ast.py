"""Expression AST (hash-consed).

Expressions are immutable, **interned** (hash-consed) nodes: every
constructor -- the node classes themselves as well as the smart
constructors (:func:`land`, :func:`lor`, :func:`lnot`, ...) -- returns
the canonical shared instance for its structure, so two structurally
equal expressions are always the *same object*.  Equality and hashing
are therefore identity-based and O(1) (``object.__eq__`` /
``object.__hash__`` are deliberately not overridden), which the rest of
the code relies on: every ``dict``/``set`` keyed on expressions
(memoisation tables, predicate deduplication, encoder caches, ...) is
an identity table that behaves exactly like the old deep-structural one
at pointer-comparison cost.  ``__eq__`` is *not* overloaded to build
equality expressions; use :func:`eq` / :func:`ne` or the ``.eq()`` /
``.ne()`` methods instead.  Arithmetic and ordering operators *are*
overloaded, so chart guards read naturally, e.g.
``(temp > 30) & coil.eq(ON)``.

Every interned node carries metadata computed once at intern time:

* ``eid`` -- a small process-unique integer, stable for the node's
  lifetime; caches that outlive an expression graph (SAT/BDD encoders)
  key on it instead of on the node object;
* ``sort`` -- the node's sort, as before;
* its free-variable set (:func:`free_vars` is now O(1)) and whether any
  free variable is primed (:func:`has_primed_vars`).

Interning is pickle-safe: ``__reduce__`` rebuilds through the
constructors, so unpickled expressions re-intern into the receiving
process's table and identity semantics survive process boundaries (the
sharded parallel oracle depends on this).  ``copy``/``deepcopy`` return
the node itself for the same reason.  The intern table is append-only
for the life of the process; see ``docs/expr_core.md`` for the
lifecycle discussion.

Smart constructors perform light normalisation -- flattening nested
conjunctions, folding constants -- so that predicates extracted from
learned automata stay readable.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable
from typing import Union

from .types import BOOL, BoolSort, EnumSort, IntSort, Sort

ExprLike = Union["Expr", int, bool]

# The intern (hash-consing) table: structural key -> canonical node.
# Composite keys reference children by eid, so a key is a flat tuple of
# small ints/strings/sorts and never recurses into subtrees.
_INTERN: dict[tuple, "Expr"] = {}
_EIDS = itertools.count()
_NO_VARS: frozenset = frozenset()


def intern_table_size() -> int:
    """Number of canonical expression nodes interned in this process."""
    return len(_INTERN)


class Expr:
    """Base class for expression nodes (interned; see module docstring)."""

    __slots__ = ("eid", "sort", "_free", "_has_primed")

    eid: int
    sort: Sort
    _free: frozenset
    _has_primed: bool

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(
            f"{type(self).__name__} is immutable (hash-consed); "
            "build a new expression instead"
        )

    def __delattr__(self, name: str) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    # Interning guarantees canonical instances, so copies must be the
    # object itself -- a structural copy with identity equality would
    # silently break every memo table keyed on expressions.
    def __copy__(self) -> "Expr":
        return self

    def __deepcopy__(self, memo: dict) -> "Expr":
        return self

    # -- boolean connectives -------------------------------------------------
    def __and__(self, other: ExprLike) -> "Expr":
        return land(self, coerce_bool(other))

    def __rand__(self, other: ExprLike) -> "Expr":
        return land(coerce_bool(other), self)

    def __or__(self, other: ExprLike) -> "Expr":
        return lor(self, coerce_bool(other))

    def __ror__(self, other: ExprLike) -> "Expr":
        return lor(coerce_bool(other), self)

    def __invert__(self) -> "Expr":
        return lnot(self)

    # -- arithmetic ----------------------------------------------------------
    def __add__(self, other: ExprLike) -> "Expr":
        return add(self, coerce(other))

    def __radd__(self, other: ExprLike) -> "Expr":
        return add(coerce(other), self)

    def __sub__(self, other: ExprLike) -> "Expr":
        return sub(self, coerce(other))

    def __rsub__(self, other: ExprLike) -> "Expr":
        return sub(coerce(other), self)

    def __mul__(self, other: ExprLike) -> "Expr":
        return mul(self, coerce(other))

    def __rmul__(self, other: ExprLike) -> "Expr":
        return mul(coerce(other), self)

    def __neg__(self) -> "Expr":
        return neg(self)

    # -- comparisons (NOT __eq__/__ne__: those stay identity) ------------------
    def __lt__(self, other: ExprLike) -> "Expr":
        return lt(self, coerce(other))

    def __le__(self, other: ExprLike) -> "Expr":
        return le(self, coerce(other))

    def __gt__(self, other: ExprLike) -> "Expr":
        return gt(self, coerce(other))

    def __ge__(self, other: ExprLike) -> "Expr":
        return ge(self, coerce(other))

    def eq(self, other: ExprLike) -> "Expr":
        """Equality *expression* (identity ``==`` is left untouched)."""
        return eq(self, coerce_like(other, self))

    def ne(self, other: ExprLike) -> "Expr":
        return ne(self, coerce_like(other, self))

    def __str__(self) -> str:  # pragma: no cover - convenience
        from .printer import to_str

        return to_str(self)

    # Subclasses define ``_repr_fields`` naming their fields in the old
    # dataclass order; __repr__ reproduces the frozen-dataclass format
    # exactly.  That is load-bearing, not cosmetic: several components
    # (APT canonical orders, NFA isomorphism signatures, minimisation
    # block splitting) sort by ``repr`` to get an insertion-order-free
    # deterministic ordering, and the hash-consing refactor must not
    # perturb those orders.
    _repr_fields: tuple[str, ...] = ()

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}={getattr(self, name)!r}" for name in self._repr_fields
        )
        return f"{type(self).__name__}({inner})"


def _intern(
    cls: type,
    key: tuple,
    fields: tuple[tuple[str, object], ...],
    sort: Sort,
    children: tuple["Expr", ...],
) -> "Expr":
    """Return the canonical node for ``key``, creating it on first use."""
    node = _INTERN.get(key)
    if node is not None:
        return node
    node = object.__new__(cls)
    _set = object.__setattr__
    for name, value in fields:
        _set(node, name, value)
    var_sets = [child._free for child in children if child._free]
    if not var_sets:
        free = _NO_VARS
    elif len(var_sets) == 1:
        free = var_sets[0]
    else:
        free = frozenset().union(*var_sets)
    _set(node, "sort", sort)
    _set(node, "_free", free)
    _set(node, "_has_primed", any(child._has_primed for child in children))
    _set(node, "eid", next(_EIDS))
    _INTERN[key] = node
    return node


class Var(Expr):
    """A named variable.  ``primed`` marks the next-state copy ``x'``."""

    __slots__ = ("name", "primed")
    _repr_fields = ('name', 'sort', 'primed')

    def __new__(cls, name: str, sort: Sort, primed: bool = False):
        primed = bool(primed)
        key = ("var", name, sort, primed)
        node = _INTERN.get(key)
        if node is not None:
            return node
        node = object.__new__(cls)
        _set = object.__setattr__
        _set(node, "name", name)
        _set(node, "sort", sort)
        _set(node, "primed", primed)
        _set(node, "_free", frozenset((node,)))
        _set(node, "_has_primed", primed)
        _set(node, "eid", next(_EIDS))
        _INTERN[key] = node
        return node

    def __reduce__(self):
        return (Var, (self.name, self.sort, self.primed))

    @property
    def qualified_name(self) -> str:
        """Name used in valuations/environments (``x`` or ``x'``)."""
        return self.name + "'" if self.primed else self.name

    def prime(self) -> "Var":
        if self.primed:
            raise ValueError(f"variable {self.name!r} is already primed")
        return Var(self.name, self.sort, primed=True)

    def unprime(self) -> "Var":
        if not self.primed:
            raise ValueError(f"variable {self.name!r} is not primed")
        return Var(self.name, self.sort, primed=False)


class Const(Expr):
    """A constant.  Booleans use ``value in (0, 1)`` with :data:`BOOL` sort;
    enum constants store the member index."""

    __slots__ = ("value",)
    _repr_fields = ('value', 'sort')

    def __new__(cls, value: int, sort: Sort):
        if isinstance(sort, BoolSort) and value not in (0, 1):
            raise ValueError(f"boolean constant must be 0/1, got {value}")
        if isinstance(sort, EnumSort) and not (0 <= value < sort.cardinality):
            raise ValueError(
                f"enum constant index {value} out of range for {sort}"
            )
        return _intern(
            cls, ("const", value, sort), (("value", value),), sort, ()
        )

    def __reduce__(self):
        return (Const, (self.value, self.sort))


class Not(Expr):
    __slots__ = ("arg",)
    _repr_fields = ('arg', 'sort')

    def __new__(cls, arg: Expr):
        return _intern(cls, ("not", arg.eid), (("arg", arg),), BOOL, (arg,))

    def __reduce__(self):
        return (Not, (self.arg,))


class And(Expr):
    __slots__ = ("args",)
    _repr_fields = ('args', 'sort')

    def __new__(cls, args: tuple[Expr, ...]):
        args = tuple(args)
        key = ("and",) + tuple(a.eid for a in args)
        return _intern(cls, key, (("args", args),), BOOL, args)

    def __reduce__(self):
        return (And, (self.args,))


class Or(Expr):
    __slots__ = ("args",)
    _repr_fields = ('args', 'sort')

    def __new__(cls, args: tuple[Expr, ...]):
        args = tuple(args)
        key = ("or",) + tuple(a.eid for a in args)
        return _intern(cls, key, (("args", args),), BOOL, args)

    def __reduce__(self):
        return (Or, (self.args,))


class _BoolBinary(Expr):
    """Shared shape of the Boolean binary connectives."""

    __slots__ = ("lhs", "rhs")
    _repr_fields = ('lhs', 'rhs', 'sort')

    _tag: str

    def __new__(cls, lhs: Expr, rhs: Expr):
        key = (cls._tag, lhs.eid, rhs.eid)
        return _intern(
            cls, key, (("lhs", lhs), ("rhs", rhs)), BOOL, (lhs, rhs)
        )

    def __reduce__(self):
        return (type(self), (self.lhs, self.rhs))


class Implies(_BoolBinary):
    __slots__ = ()
    _tag = "=>"


class Iff(_BoolBinary):
    __slots__ = ()
    _tag = "<=>"


class Eq(_BoolBinary):
    __slots__ = ()
    _tag = "="


class Lt(_BoolBinary):
    __slots__ = ()
    _tag = "<"


class Le(_BoolBinary):
    __slots__ = ()
    _tag = "<="


class Add(Expr):
    __slots__ = ("args",)
    _repr_fields = ('args', 'sort')

    def __new__(cls, args: tuple[Expr, ...], sort: Sort):
        args = tuple(args)
        key = ("+", sort) + tuple(a.eid for a in args)
        return _intern(cls, key, (("args", args),), sort, args)

    def __reduce__(self):
        return (Add, (self.args, self.sort))


class Sub(Expr):
    __slots__ = ("lhs", "rhs")
    _repr_fields = ('lhs', 'rhs', 'sort')

    def __new__(cls, lhs: Expr, rhs: Expr, sort: Sort):
        key = ("-", lhs.eid, rhs.eid, sort)
        return _intern(
            cls, key, (("lhs", lhs), ("rhs", rhs)), sort, (lhs, rhs)
        )

    def __reduce__(self):
        return (Sub, (self.lhs, self.rhs, self.sort))


class Neg(Expr):
    __slots__ = ("arg",)
    _repr_fields = ('arg', 'sort')

    def __new__(cls, arg: Expr, sort: Sort):
        key = ("neg", arg.eid, sort)
        return _intern(cls, key, (("arg", arg),), sort, (arg,))

    def __reduce__(self):
        return (Neg, (self.arg, self.sort))


class Mul(Expr):
    __slots__ = ("lhs", "rhs")
    _repr_fields = ('lhs', 'rhs', 'sort')

    def __new__(cls, lhs: Expr, rhs: Expr, sort: Sort):
        key = ("*", lhs.eid, rhs.eid, sort)
        return _intern(
            cls, key, (("lhs", lhs), ("rhs", rhs)), sort, (lhs, rhs)
        )

    def __reduce__(self):
        return (Mul, (self.lhs, self.rhs, self.sort))


class Ite(Expr):
    """If-then-else; branches must share a compatible sort kind."""

    __slots__ = ("cond", "then", "other")
    _repr_fields = ('cond', 'then', 'other', 'sort')

    def __new__(cls, cond: Expr, then: Expr, other: Expr, sort: Sort):
        key = ("ite", cond.eid, then.eid, other.eid, sort)
        return _intern(
            cls,
            key,
            (("cond", cond), ("then", then), ("other", other)),
            sort,
            (cond, then, other),
        )

    def __reduce__(self):
        return (Ite, (self.cond, self.then, self.other, self.sort))


TRUE = Const(1, BOOL)
FALSE = Const(0, BOOL)


# ---------------------------------------------------------------------------
# coercion helpers
# ---------------------------------------------------------------------------


def coerce(value: ExprLike) -> Expr:
    """Coerce a Python value to an expression (ints get a singleton range)."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return TRUE if value else FALSE
    if isinstance(value, int):
        return Const(value, IntSort(value, value))
    raise TypeError(f"cannot coerce {value!r} to an expression")


def coerce_bool(value: ExprLike) -> Expr:
    expr = coerce(value)
    if not expr.sort.is_bool():
        raise TypeError(f"expected boolean expression, got sort {expr.sort}")
    return expr


def coerce_like(value: ExprLike, template: Expr) -> Expr:
    """Coerce ``value`` using ``template``'s sort for bare ints/strs.

    This is what lets ``mode.eq("On")`` work for enum variables and
    ``flag.eq(True)`` for Boolean ones.
    """
    if isinstance(value, Expr):
        return value
    sort = template.sort
    if isinstance(sort, EnumSort):
        if isinstance(value, str):
            return Const(sort.index_of(value), sort)
        if isinstance(value, int):
            return Const(value, sort)
    if isinstance(sort, BoolSort):
        if isinstance(value, (bool, int)):
            return TRUE if value else FALSE
    return coerce(value)


def enum_const(sort: EnumSort, member: str) -> Const:
    """Constant for an enum member by name."""
    return Const(sort.index_of(member), sort)


def bool_const(value: bool) -> Const:
    return TRUE if value else FALSE


# ---------------------------------------------------------------------------
# interval analysis (exact ranges; drives bit widths in the bit-blaster)
# ---------------------------------------------------------------------------


def interval(expr: Expr) -> tuple[int, int]:
    """Exact value interval of an int/enum-sorted expression."""
    sort = expr.sort
    if isinstance(sort, IntSort):
        return (sort.lo, sort.hi)
    if isinstance(sort, EnumSort):
        return (0, sort.cardinality - 1)
    raise TypeError(f"no interval for sort {sort}")


def _int_sort_for(lo: int, hi: int) -> IntSort:
    return IntSort(lo, hi)


# ---------------------------------------------------------------------------
# smart constructors
# ---------------------------------------------------------------------------


def land(*args: ExprLike) -> Expr:
    """Conjunction; flattens, drops ``true``, short-circuits on ``false``."""
    flat: list[Expr] = []
    for raw in args:
        arg = coerce_bool(raw)
        if isinstance(arg, Const):
            if arg.value == 0:
                return FALSE
            continue
        if isinstance(arg, And):
            flat.extend(arg.args)
        else:
            flat.append(arg)
    # Order-preserving identity dedup (nodes are interned).
    deduped = list(dict.fromkeys(flat))
    if not deduped:
        return TRUE
    if len(deduped) == 1:
        return deduped[0]
    return And(tuple(deduped))


def lor(*args: ExprLike) -> Expr:
    """Disjunction; flattens, drops ``false``, short-circuits on ``true``."""
    flat: list[Expr] = []
    for raw in args:
        arg = coerce_bool(raw)
        if isinstance(arg, Const):
            if arg.value == 1:
                return TRUE
            continue
        if isinstance(arg, Or):
            flat.extend(arg.args)
        else:
            flat.append(arg)
    # Order-preserving identity dedup (nodes are interned).
    deduped = list(dict.fromkeys(flat))
    if not deduped:
        return FALSE
    if len(deduped) == 1:
        return deduped[0]
    return Or(tuple(deduped))


def lnot(arg: ExprLike) -> Expr:
    expr = coerce_bool(arg)
    if isinstance(expr, Const):
        return FALSE if expr.value else TRUE
    if isinstance(expr, Not):
        return expr.arg
    return Not(expr)


def implies(lhs: ExprLike, rhs: ExprLike) -> Expr:
    lhs_e, rhs_e = coerce_bool(lhs), coerce_bool(rhs)
    if lhs_e is TRUE:
        return rhs_e
    if lhs_e is FALSE or rhs_e is TRUE:
        return TRUE
    if rhs_e is FALSE:
        return lnot(lhs_e)
    return Implies(lhs_e, rhs_e)


def iff(lhs: ExprLike, rhs: ExprLike) -> Expr:
    lhs_e, rhs_e = coerce_bool(lhs), coerce_bool(rhs)
    if lhs_e is rhs_e:
        return TRUE
    if lhs_e is TRUE:
        return rhs_e
    if rhs_e is TRUE:
        return lhs_e
    if lhs_e is FALSE:
        return lnot(rhs_e)
    if rhs_e is FALSE:
        return lnot(lhs_e)
    return Iff(lhs_e, rhs_e)


def _numeric(sort: Sort) -> bool:
    # Enum values are member indices, so enums are int-compatible.
    return sort.is_int() or sort.is_enum()


def _check_same_kind(lhs: Expr, rhs: Expr, what: str) -> None:
    ok = (
        (lhs.sort.is_bool() and rhs.sort.is_bool())
        or (_numeric(lhs.sort) and _numeric(rhs.sort))
        or (lhs.sort == rhs.sort)
    )
    if not ok:
        raise TypeError(f"{what}: incompatible sorts {lhs.sort} and {rhs.sort}")


def eq(lhs: ExprLike, rhs: ExprLike) -> Expr:
    lhs_e = coerce(lhs)
    rhs_e = coerce_like(rhs, lhs_e)
    _check_same_kind(lhs_e, rhs_e, "eq")
    if isinstance(lhs_e, Const) and isinstance(rhs_e, Const):
        return TRUE if lhs_e.value == rhs_e.value else FALSE
    if lhs_e is rhs_e:
        return TRUE
    return Eq(lhs_e, rhs_e)


def ne(lhs: ExprLike, rhs: ExprLike) -> Expr:
    return lnot(eq(lhs, rhs))


def _int_operands(lhs: ExprLike, rhs: ExprLike, what: str) -> tuple[Expr, Expr]:
    lhs_e, rhs_e = coerce(lhs), coerce(rhs)
    for side in (lhs_e, rhs_e):
        if not _numeric(side.sort):
            raise TypeError(f"{what}: expected int operands, got {side.sort}")
    return lhs_e, rhs_e


def lt(lhs: ExprLike, rhs: ExprLike) -> Expr:
    lhs_e, rhs_e = _int_operands(lhs, rhs, "lt")
    if isinstance(lhs_e, Const) and isinstance(rhs_e, Const):
        return TRUE if lhs_e.value < rhs_e.value else FALSE
    lo1, hi1 = interval(lhs_e)
    lo2, hi2 = interval(rhs_e)
    if hi1 < lo2:
        return TRUE
    if lo1 >= hi2:
        return FALSE
    return Lt(lhs_e, rhs_e)


def le(lhs: ExprLike, rhs: ExprLike) -> Expr:
    lhs_e, rhs_e = _int_operands(lhs, rhs, "le")
    if isinstance(lhs_e, Const) and isinstance(rhs_e, Const):
        return TRUE if lhs_e.value <= rhs_e.value else FALSE
    lo1, hi1 = interval(lhs_e)
    lo2, hi2 = interval(rhs_e)
    if hi1 <= lo2:
        return TRUE
    if lo1 > hi2:
        return FALSE
    return Le(lhs_e, rhs_e)


def gt(lhs: ExprLike, rhs: ExprLike) -> Expr:
    return lt(coerce(rhs), coerce(lhs))


def ge(lhs: ExprLike, rhs: ExprLike) -> Expr:
    return le(coerce(rhs), coerce(lhs))


def add(*args: ExprLike) -> Expr:
    terms: list[Expr] = []
    const_sum = 0
    for raw in args:
        term = coerce(raw)
        if not _numeric(term.sort):
            raise TypeError(f"add: expected int operand, got {term.sort}")
        if isinstance(term, Const):
            const_sum += term.value
        elif isinstance(term, Add):
            terms.extend(term.args)
        else:
            terms.append(term)
    if const_sum != 0 or not terms:
        terms.append(Const(const_sum, IntSort(const_sum, const_sum)))
    if len(terms) == 1:
        return terms[0]
    lo = sum(interval(t)[0] for t in terms)
    hi = sum(interval(t)[1] for t in terms)
    return Add(tuple(terms), _int_sort_for(lo, hi))


def sub(lhs: ExprLike, rhs: ExprLike) -> Expr:
    lhs_e, rhs_e = _int_operands(lhs, rhs, "sub")
    if isinstance(lhs_e, Const) and isinstance(rhs_e, Const):
        value = lhs_e.value - rhs_e.value
        return Const(value, IntSort(value, value))
    if isinstance(rhs_e, Const) and rhs_e.value == 0:
        return lhs_e
    lo1, hi1 = interval(lhs_e)
    lo2, hi2 = interval(rhs_e)
    return Sub(lhs_e, rhs_e, _int_sort_for(lo1 - hi2, hi1 - lo2))


def neg(arg: ExprLike) -> Expr:
    expr = coerce(arg)
    if not _numeric(expr.sort):
        raise TypeError(f"neg: expected int operand, got {expr.sort}")
    if isinstance(expr, Const):
        return Const(-expr.value, IntSort(-expr.value, -expr.value))
    lo, hi = interval(expr)
    return Neg(expr, _int_sort_for(-hi, -lo))


def mul(lhs: ExprLike, rhs: ExprLike) -> Expr:
    lhs_e, rhs_e = _int_operands(lhs, rhs, "mul")
    if isinstance(lhs_e, Const) and isinstance(rhs_e, Const):
        value = lhs_e.value * rhs_e.value
        return Const(value, IntSort(value, value))
    for const, other in ((lhs_e, rhs_e), (rhs_e, lhs_e)):
        if isinstance(const, Const):
            if const.value == 0:
                return Const(0, IntSort(0, 0))
            if const.value == 1:
                return other
    lo1, hi1 = interval(lhs_e)
    lo2, hi2 = interval(rhs_e)
    corners = [lo1 * lo2, lo1 * hi2, hi1 * lo2, hi1 * hi2]
    return Mul(lhs_e, rhs_e, _int_sort_for(min(corners), max(corners)))


def ite(cond: ExprLike, then: ExprLike, other: ExprLike) -> Expr:
    cond_e = coerce_bool(cond)
    then_e, other_e = coerce(then), coerce(other)
    if isinstance(then_e, Const) and not isinstance(other_e, Expr):
        other_e = coerce_like(other, then_e)
    _check_same_kind(then_e, other_e, "ite")
    if isinstance(cond_e, Const):
        return then_e if cond_e.value else other_e
    if then_e is other_e:
        return then_e
    if then_e.sort.is_bool():
        sort: Sort = BOOL
    else:
        lo1, hi1 = interval(then_e)
        lo2, hi2 = interval(other_e)
        lo, hi = min(lo1, lo2), max(hi1, hi2)
        # Prefer an enum branch sort when the union stays in its range,
        # so mode updates like ite(c, 1, mode) keep their enum typing.
        sort = _int_sort_for(lo, hi)
        for branch in (then_e, other_e):
            if isinstance(branch.sort, EnumSort) and 0 <= lo and hi < branch.sort.cardinality:
                sort = branch.sort
                break
    return Ite(cond_e, then_e, other_e, sort)


def minimum(lhs: ExprLike, rhs: ExprLike) -> Expr:
    lhs_e, rhs_e = _int_operands(lhs, rhs, "minimum")
    return ite(le(lhs_e, rhs_e), lhs_e, rhs_e)


def maximum(lhs: ExprLike, rhs: ExprLike) -> Expr:
    lhs_e, rhs_e = _int_operands(lhs, rhs, "maximum")
    return ite(ge(lhs_e, rhs_e), lhs_e, rhs_e)


# ---------------------------------------------------------------------------
# traversal helpers
# ---------------------------------------------------------------------------


def children(expr: Expr) -> tuple[Expr, ...]:
    """Direct children of a node (empty for leaves)."""
    if isinstance(expr, (Var, Const)):
        return ()
    if isinstance(expr, (Not, Neg)):
        return (expr.arg,)
    if isinstance(expr, (And, Or, Add)):
        return expr.args
    if isinstance(expr, (Implies, Iff, Eq, Lt, Le, Sub, Mul)):
        return (expr.lhs, expr.rhs)
    if isinstance(expr, Ite):
        return (expr.cond, expr.then, expr.other)
    raise TypeError(f"unknown expression node {type(expr).__name__}")


def walk(expr: Expr) -> Iterable[Expr]:
    """Pre-order traversal of all nodes (tree semantics: shared
    subexpressions are yielded once per occurrence)."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(children(node)))


def walk_unique(expr: Expr) -> Iterable[Expr]:
    """Traversal of all *distinct* nodes of the expression DAG.

    With hash-consing, shared subexpressions are physically shared;
    consumers that only need each node once (encoders, analyses) should
    prefer this over :func:`walk` -- it is linear in the DAG size even
    when the tree unfolding is exponential.
    """
    seen: set[Expr] = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        yield node
        stack.extend(children(node))


def free_vars(expr: Expr) -> frozenset[Var]:
    """All variables occurring in ``expr`` (O(1): cached at intern time)."""
    return expr._free


def has_primed_vars(expr: Expr) -> bool:
    """True iff any variable of ``expr`` is primed (cached at intern time)."""
    return expr._has_primed


def int_constants(expr: Expr) -> set[int]:
    """All integer constants occurring in ``expr`` (for predicate pools)."""
    return {
        node.value
        for node in walk_unique(expr)
        if isinstance(node, Const) and node.sort.is_int()
    }
