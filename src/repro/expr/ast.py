"""Expression AST.

Expressions are immutable trees of frozen dataclasses.  Structural equality
and hashing come from the dataclass machinery, which the rest of the code
relies on (memoisation tables, deduplication of predicates, ...).  For this
reason ``__eq__`` is *not* overloaded to build equality expressions; use
:func:`eq` / :func:`ne` or the ``.eq()`` / ``.ne()`` methods instead.
Arithmetic and ordering operators *are* overloaded, so chart guards read
naturally, e.g. ``(temp > 30) & coil.eq(ON)``.

Smart constructors (:func:`land`, :func:`lor`, :func:`lnot`, ...) perform
light normalisation -- flattening nested conjunctions, folding constants --
so that predicates extracted from learned automata stay readable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Union

from .types import BOOL, BoolSort, EnumSort, IntSort, Sort

ExprLike = Union["Expr", int, bool]


class Expr:
    """Base class for expression nodes."""

    __slots__ = ()

    sort: Sort  # every subclass carries a sort

    # -- boolean connectives -------------------------------------------------
    def __and__(self, other: ExprLike) -> "Expr":
        return land(self, coerce_bool(other))

    def __rand__(self, other: ExprLike) -> "Expr":
        return land(coerce_bool(other), self)

    def __or__(self, other: ExprLike) -> "Expr":
        return lor(self, coerce_bool(other))

    def __ror__(self, other: ExprLike) -> "Expr":
        return lor(coerce_bool(other), self)

    def __invert__(self) -> "Expr":
        return lnot(self)

    # -- arithmetic ----------------------------------------------------------
    def __add__(self, other: ExprLike) -> "Expr":
        return add(self, coerce(other))

    def __radd__(self, other: ExprLike) -> "Expr":
        return add(coerce(other), self)

    def __sub__(self, other: ExprLike) -> "Expr":
        return sub(self, coerce(other))

    def __rsub__(self, other: ExprLike) -> "Expr":
        return sub(coerce(other), self)

    def __mul__(self, other: ExprLike) -> "Expr":
        return mul(self, coerce(other))

    def __rmul__(self, other: ExprLike) -> "Expr":
        return mul(coerce(other), self)

    def __neg__(self) -> "Expr":
        return neg(self)

    # -- comparisons (NOT __eq__/__ne__: those stay structural) ---------------
    def __lt__(self, other: ExprLike) -> "Expr":
        return lt(self, coerce(other))

    def __le__(self, other: ExprLike) -> "Expr":
        return le(self, coerce(other))

    def __gt__(self, other: ExprLike) -> "Expr":
        return gt(self, coerce(other))

    def __ge__(self, other: ExprLike) -> "Expr":
        return ge(self, coerce(other))

    def eq(self, other: ExprLike) -> "Expr":
        """Equality *expression* (structural ``==`` is left untouched)."""
        return eq(self, coerce_like(other, self))

    def ne(self, other: ExprLike) -> "Expr":
        return ne(self, coerce_like(other, self))

    def __str__(self) -> str:  # pragma: no cover - convenience
        from .printer import to_str

        return to_str(self)


@dataclass(frozen=True)
class Var(Expr):
    """A named variable.  ``primed`` marks the next-state copy ``x'``."""

    name: str
    sort: Sort
    primed: bool = False

    @property
    def qualified_name(self) -> str:
        """Name used in valuations/environments (``x`` or ``x'``)."""
        return self.name + "'" if self.primed else self.name

    def prime(self) -> "Var":
        if self.primed:
            raise ValueError(f"variable {self.name!r} is already primed")
        return Var(self.name, self.sort, primed=True)

    def unprime(self) -> "Var":
        if not self.primed:
            raise ValueError(f"variable {self.name!r} is not primed")
        return Var(self.name, self.sort, primed=False)


@dataclass(frozen=True)
class Const(Expr):
    """A constant.  Booleans use ``value in (0, 1)`` with :data:`BOOL` sort;
    enum constants store the member index."""

    value: int
    sort: Sort

    def __post_init__(self) -> None:
        if isinstance(self.sort, BoolSort) and self.value not in (0, 1):
            raise ValueError(f"boolean constant must be 0/1, got {self.value}")
        if isinstance(self.sort, EnumSort) and not (
            0 <= self.value < self.sort.cardinality
        ):
            raise ValueError(
                f"enum constant index {self.value} out of range for {self.sort}"
            )


@dataclass(frozen=True)
class Not(Expr):
    arg: Expr
    sort: Sort = field(default=BOOL, init=False)


@dataclass(frozen=True)
class And(Expr):
    args: tuple[Expr, ...]
    sort: Sort = field(default=BOOL, init=False)


@dataclass(frozen=True)
class Or(Expr):
    args: tuple[Expr, ...]
    sort: Sort = field(default=BOOL, init=False)


@dataclass(frozen=True)
class Implies(Expr):
    lhs: Expr
    rhs: Expr
    sort: Sort = field(default=BOOL, init=False)


@dataclass(frozen=True)
class Iff(Expr):
    lhs: Expr
    rhs: Expr
    sort: Sort = field(default=BOOL, init=False)


@dataclass(frozen=True)
class Eq(Expr):
    lhs: Expr
    rhs: Expr
    sort: Sort = field(default=BOOL, init=False)


@dataclass(frozen=True)
class Lt(Expr):
    lhs: Expr
    rhs: Expr
    sort: Sort = field(default=BOOL, init=False)


@dataclass(frozen=True)
class Le(Expr):
    lhs: Expr
    rhs: Expr
    sort: Sort = field(default=BOOL, init=False)


@dataclass(frozen=True)
class Add(Expr):
    args: tuple[Expr, ...]
    sort: Sort  # computed by smart constructor via interval analysis


@dataclass(frozen=True)
class Sub(Expr):
    lhs: Expr
    rhs: Expr
    sort: Sort


@dataclass(frozen=True)
class Neg(Expr):
    arg: Expr
    sort: Sort


@dataclass(frozen=True)
class Mul(Expr):
    lhs: Expr
    rhs: Expr
    sort: Sort


@dataclass(frozen=True)
class Ite(Expr):
    """If-then-else; branches must share a compatible sort kind."""

    cond: Expr
    then: Expr
    other: Expr
    sort: Sort


TRUE = Const(1, BOOL)
FALSE = Const(0, BOOL)


# ---------------------------------------------------------------------------
# coercion helpers
# ---------------------------------------------------------------------------


def coerce(value: ExprLike) -> Expr:
    """Coerce a Python value to an expression (ints get a singleton range)."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return TRUE if value else FALSE
    if isinstance(value, int):
        return Const(value, IntSort(value, value))
    raise TypeError(f"cannot coerce {value!r} to an expression")


def coerce_bool(value: ExprLike) -> Expr:
    expr = coerce(value)
    if not expr.sort.is_bool():
        raise TypeError(f"expected boolean expression, got sort {expr.sort}")
    return expr


def coerce_like(value: ExprLike, template: Expr) -> Expr:
    """Coerce ``value`` using ``template``'s sort for bare ints/strs.

    This is what lets ``mode.eq("On")`` work for enum variables and
    ``flag.eq(True)`` for Boolean ones.
    """
    if isinstance(value, Expr):
        return value
    sort = template.sort
    if isinstance(sort, EnumSort):
        if isinstance(value, str):
            return Const(sort.index_of(value), sort)
        if isinstance(value, int):
            return Const(value, sort)
    if isinstance(sort, BoolSort):
        if isinstance(value, (bool, int)):
            return TRUE if value else FALSE
    return coerce(value)


def enum_const(sort: EnumSort, member: str) -> Const:
    """Constant for an enum member by name."""
    return Const(sort.index_of(member), sort)


def bool_const(value: bool) -> Const:
    return TRUE if value else FALSE


# ---------------------------------------------------------------------------
# interval analysis (exact ranges; drives bit widths in the bit-blaster)
# ---------------------------------------------------------------------------


def interval(expr: Expr) -> tuple[int, int]:
    """Exact value interval of an int/enum-sorted expression."""
    sort = expr.sort
    if isinstance(sort, IntSort):
        return (sort.lo, sort.hi)
    if isinstance(sort, EnumSort):
        return (0, sort.cardinality - 1)
    raise TypeError(f"no interval for sort {sort}")


def _int_sort_for(lo: int, hi: int) -> IntSort:
    return IntSort(lo, hi)


# ---------------------------------------------------------------------------
# smart constructors
# ---------------------------------------------------------------------------


def land(*args: ExprLike) -> Expr:
    """Conjunction; flattens, drops ``true``, short-circuits on ``false``."""
    flat: list[Expr] = []
    for raw in args:
        arg = coerce_bool(raw)
        if isinstance(arg, Const):
            if arg.value == 0:
                return FALSE
            continue
        if isinstance(arg, And):
            flat.extend(arg.args)
        else:
            flat.append(arg)
    deduped: list[Expr] = []
    for arg in flat:
        if arg not in deduped:
            deduped.append(arg)
    if not deduped:
        return TRUE
    if len(deduped) == 1:
        return deduped[0]
    return And(tuple(deduped))


def lor(*args: ExprLike) -> Expr:
    """Disjunction; flattens, drops ``false``, short-circuits on ``true``."""
    flat: list[Expr] = []
    for raw in args:
        arg = coerce_bool(raw)
        if isinstance(arg, Const):
            if arg.value == 1:
                return TRUE
            continue
        if isinstance(arg, Or):
            flat.extend(arg.args)
        else:
            flat.append(arg)
    deduped: list[Expr] = []
    for arg in flat:
        if arg not in deduped:
            deduped.append(arg)
    if not deduped:
        return FALSE
    if len(deduped) == 1:
        return deduped[0]
    return Or(tuple(deduped))


def lnot(arg: ExprLike) -> Expr:
    expr = coerce_bool(arg)
    if isinstance(expr, Const):
        return FALSE if expr.value else TRUE
    if isinstance(expr, Not):
        return expr.arg
    return Not(expr)


def implies(lhs: ExprLike, rhs: ExprLike) -> Expr:
    lhs_e, rhs_e = coerce_bool(lhs), coerce_bool(rhs)
    if lhs_e == TRUE:
        return rhs_e
    if lhs_e == FALSE or rhs_e == TRUE:
        return TRUE
    if rhs_e == FALSE:
        return lnot(lhs_e)
    return Implies(lhs_e, rhs_e)


def iff(lhs: ExprLike, rhs: ExprLike) -> Expr:
    lhs_e, rhs_e = coerce_bool(lhs), coerce_bool(rhs)
    if lhs_e == rhs_e:
        return TRUE
    if lhs_e == TRUE:
        return rhs_e
    if rhs_e == TRUE:
        return lhs_e
    if lhs_e == FALSE:
        return lnot(rhs_e)
    if rhs_e == FALSE:
        return lnot(lhs_e)
    return Iff(lhs_e, rhs_e)


def _numeric(sort: Sort) -> bool:
    # Enum values are member indices, so enums are int-compatible.
    return sort.is_int() or sort.is_enum()


def _check_same_kind(lhs: Expr, rhs: Expr, what: str) -> None:
    ok = (
        (lhs.sort.is_bool() and rhs.sort.is_bool())
        or (_numeric(lhs.sort) and _numeric(rhs.sort))
        or (lhs.sort == rhs.sort)
    )
    if not ok:
        raise TypeError(f"{what}: incompatible sorts {lhs.sort} and {rhs.sort}")


def eq(lhs: ExprLike, rhs: ExprLike) -> Expr:
    lhs_e = coerce(lhs)
    rhs_e = coerce_like(rhs, lhs_e)
    _check_same_kind(lhs_e, rhs_e, "eq")
    if isinstance(lhs_e, Const) and isinstance(rhs_e, Const):
        return TRUE if lhs_e.value == rhs_e.value else FALSE
    if lhs_e == rhs_e:
        return TRUE
    return Eq(lhs_e, rhs_e)


def ne(lhs: ExprLike, rhs: ExprLike) -> Expr:
    return lnot(eq(lhs, rhs))


def _int_operands(lhs: ExprLike, rhs: ExprLike, what: str) -> tuple[Expr, Expr]:
    lhs_e, rhs_e = coerce(lhs), coerce(rhs)
    for side in (lhs_e, rhs_e):
        if not _numeric(side.sort):
            raise TypeError(f"{what}: expected int operands, got {side.sort}")
    return lhs_e, rhs_e


def lt(lhs: ExprLike, rhs: ExprLike) -> Expr:
    lhs_e, rhs_e = _int_operands(lhs, rhs, "lt")
    if isinstance(lhs_e, Const) and isinstance(rhs_e, Const):
        return TRUE if lhs_e.value < rhs_e.value else FALSE
    lo1, hi1 = interval(lhs_e)
    lo2, hi2 = interval(rhs_e)
    if hi1 < lo2:
        return TRUE
    if lo1 >= hi2:
        return FALSE
    return Lt(lhs_e, rhs_e)


def le(lhs: ExprLike, rhs: ExprLike) -> Expr:
    lhs_e, rhs_e = _int_operands(lhs, rhs, "le")
    if isinstance(lhs_e, Const) and isinstance(rhs_e, Const):
        return TRUE if lhs_e.value <= rhs_e.value else FALSE
    lo1, hi1 = interval(lhs_e)
    lo2, hi2 = interval(rhs_e)
    if hi1 <= lo2:
        return TRUE
    if lo1 > hi2:
        return FALSE
    return Le(lhs_e, rhs_e)


def gt(lhs: ExprLike, rhs: ExprLike) -> Expr:
    return lt(coerce(rhs), coerce(lhs))


def ge(lhs: ExprLike, rhs: ExprLike) -> Expr:
    return le(coerce(rhs), coerce(lhs))


def add(*args: ExprLike) -> Expr:
    terms: list[Expr] = []
    const_sum = 0
    for raw in args:
        term = coerce(raw)
        if not _numeric(term.sort):
            raise TypeError(f"add: expected int operand, got {term.sort}")
        if isinstance(term, Const):
            const_sum += term.value
        elif isinstance(term, Add):
            terms.extend(term.args)
        else:
            terms.append(term)
    if const_sum != 0 or not terms:
        terms.append(Const(const_sum, IntSort(const_sum, const_sum)))
    if len(terms) == 1:
        return terms[0]
    lo = sum(interval(t)[0] for t in terms)
    hi = sum(interval(t)[1] for t in terms)
    return Add(tuple(terms), _int_sort_for(lo, hi))


def sub(lhs: ExprLike, rhs: ExprLike) -> Expr:
    lhs_e, rhs_e = _int_operands(lhs, rhs, "sub")
    if isinstance(lhs_e, Const) and isinstance(rhs_e, Const):
        value = lhs_e.value - rhs_e.value
        return Const(value, IntSort(value, value))
    if isinstance(rhs_e, Const) and rhs_e.value == 0:
        return lhs_e
    lo1, hi1 = interval(lhs_e)
    lo2, hi2 = interval(rhs_e)
    return Sub(lhs_e, rhs_e, _int_sort_for(lo1 - hi2, hi1 - lo2))


def neg(arg: ExprLike) -> Expr:
    expr = coerce(arg)
    if not _numeric(expr.sort):
        raise TypeError(f"neg: expected int operand, got {expr.sort}")
    if isinstance(expr, Const):
        return Const(-expr.value, IntSort(-expr.value, -expr.value))
    lo, hi = interval(expr)
    return Neg(expr, _int_sort_for(-hi, -lo))


def mul(lhs: ExprLike, rhs: ExprLike) -> Expr:
    lhs_e, rhs_e = _int_operands(lhs, rhs, "mul")
    if isinstance(lhs_e, Const) and isinstance(rhs_e, Const):
        value = lhs_e.value * rhs_e.value
        return Const(value, IntSort(value, value))
    for const, other in ((lhs_e, rhs_e), (rhs_e, lhs_e)):
        if isinstance(const, Const):
            if const.value == 0:
                return Const(0, IntSort(0, 0))
            if const.value == 1:
                return other
    lo1, hi1 = interval(lhs_e)
    lo2, hi2 = interval(rhs_e)
    corners = [lo1 * lo2, lo1 * hi2, hi1 * lo2, hi1 * hi2]
    return Mul(lhs_e, rhs_e, _int_sort_for(min(corners), max(corners)))


def ite(cond: ExprLike, then: ExprLike, other: ExprLike) -> Expr:
    cond_e = coerce_bool(cond)
    then_e, other_e = coerce(then), coerce(other)
    if isinstance(then_e, Const) and not isinstance(other_e, Expr):
        other_e = coerce_like(other, then_e)
    _check_same_kind(then_e, other_e, "ite")
    if isinstance(cond_e, Const):
        return then_e if cond_e.value else other_e
    if then_e == other_e:
        return then_e
    if then_e.sort.is_bool():
        sort: Sort = BOOL
    else:
        lo1, hi1 = interval(then_e)
        lo2, hi2 = interval(other_e)
        lo, hi = min(lo1, lo2), max(hi1, hi2)
        # Prefer an enum branch sort when the union stays in its range,
        # so mode updates like ite(c, 1, mode) keep their enum typing.
        sort = _int_sort_for(lo, hi)
        for branch in (then_e, other_e):
            if isinstance(branch.sort, EnumSort) and 0 <= lo and hi < branch.sort.cardinality:
                sort = branch.sort
                break
    return Ite(cond_e, then_e, other_e, sort)


def minimum(lhs: ExprLike, rhs: ExprLike) -> Expr:
    lhs_e, rhs_e = _int_operands(lhs, rhs, "minimum")
    return ite(le(lhs_e, rhs_e), lhs_e, rhs_e)


def maximum(lhs: ExprLike, rhs: ExprLike) -> Expr:
    lhs_e, rhs_e = _int_operands(lhs, rhs, "maximum")
    return ite(ge(lhs_e, rhs_e), lhs_e, rhs_e)


# ---------------------------------------------------------------------------
# traversal helpers
# ---------------------------------------------------------------------------


def children(expr: Expr) -> tuple[Expr, ...]:
    """Direct children of a node (empty for leaves)."""
    if isinstance(expr, (Var, Const)):
        return ()
    if isinstance(expr, (Not, Neg)):
        return (expr.arg,)
    if isinstance(expr, (And, Or, Add)):
        return expr.args
    if isinstance(expr, (Implies, Iff, Eq, Lt, Le, Sub, Mul)):
        return (expr.lhs, expr.rhs)
    if isinstance(expr, Ite):
        return (expr.cond, expr.then, expr.other)
    raise TypeError(f"unknown expression node {type(expr).__name__}")


def walk(expr: Expr) -> Iterable[Expr]:
    """Pre-order traversal of all nodes."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(children(node)))


def free_vars(expr: Expr) -> set[Var]:
    """All variables occurring in ``expr``."""
    return {node for node in walk(expr) if isinstance(node, Var)}


def int_constants(expr: Expr) -> set[int]:
    """All integer constants occurring in ``expr`` (for predicate pools)."""
    return {
        node.value
        for node in walk(expr)
        if isinstance(node, Const) and node.sort.is_int()
    }
