"""Sorts (types) for the expression IR.

The expression language is deliberately small: Booleans, bounded integers
and enumerations.  This mirrors what the paper's tool chain sees -- the C
code generated from Stateflow charts manipulates fixed-width integers,
enumerated mode variables and Booleans, and CBMC reasons about them with
bit-precise semantics.

Bounded integers carry an inclusive ``[lo, hi]`` range.  The range serves
three purposes:

* it tells the bit-blaster (:mod:`repro.smt`) how many bits are needed,
* it tells samplers and the explicit-state engine which values to enumerate,
* it lets interval analysis pick exact widths so that arithmetic never
  wraps (unlike raw machine arithmetic, every operation is given enough
  result bits; this matches CBMC's behaviour on the generated code, where
  the code generator chooses types large enough for the modelled ranges).
"""

from __future__ import annotations

from dataclasses import dataclass


class Sort:
    """Base class for all sorts."""

    __slots__ = ()

    def is_bool(self) -> bool:
        return isinstance(self, BoolSort)

    def is_int(self) -> bool:
        return isinstance(self, IntSort)

    def is_enum(self) -> bool:
        return isinstance(self, EnumSort)


@dataclass(frozen=True)
class BoolSort(Sort):
    """The Boolean sort."""

    def __str__(self) -> str:
        return "bool"


@dataclass(frozen=True)
class IntSort(Sort):
    """Bounded integer sort with inclusive range ``[lo, hi]``."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty integer range [{self.lo}, {self.hi}]")

    def __str__(self) -> str:
        return f"int[{self.lo},{self.hi}]"

    @property
    def cardinality(self) -> int:
        return self.hi - self.lo + 1

    def values(self) -> range:
        """All values of the sort, smallest first."""
        return range(self.lo, self.hi + 1)

    def clamp(self, value: int) -> int:
        """Clamp ``value`` into the range (used by saturating samplers)."""
        return max(self.lo, min(self.hi, value))


@dataclass(frozen=True)
class EnumSort(Sort):
    """Enumeration sort.

    Members are identified by position; expression values of an enum sort
    are the member *indices* (small non-negative ints).  The printer maps
    indices back to member names.
    """

    name: str
    members: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError(f"enum {self.name!r} has no members")
        if len(set(self.members)) != len(self.members):
            raise ValueError(f"enum {self.name!r} has duplicate members")

    def __str__(self) -> str:
        return self.name

    @property
    def cardinality(self) -> int:
        return len(self.members)

    def values(self) -> range:
        return range(len(self.members))

    def index_of(self, member: str) -> int:
        """Index of ``member``; raises ``ValueError`` if unknown."""
        try:
            return self.members.index(member)
        except ValueError:
            raise ValueError(
                f"enum {self.name!r} has no member {member!r}; "
                f"members are {self.members}"
            ) from None

    def member_name(self, index: int) -> str:
        if not 0 <= index < len(self.members):
            raise ValueError(f"enum {self.name!r} has no member index {index}")
        return self.members[index]


BOOL = BoolSort()


def int_sort(lo: int, hi: int) -> IntSort:
    """Convenience constructor for :class:`IntSort`."""
    return IntSort(lo, hi)


def enum_sort(name: str, *members: str) -> EnumSort:
    """Convenience constructor for :class:`EnumSort`."""
    return EnumSort(name, tuple(members))


def sort_values(sort: Sort) -> range:
    """All concrete values of a finite sort (bool maps to ``range(2)``)."""
    if isinstance(sort, BoolSort):
        return range(2)
    if isinstance(sort, (IntSort, EnumSort)):
        return sort.values()
    raise TypeError(f"not a finite sort: {sort!r}")
