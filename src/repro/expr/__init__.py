"""Typed expression IR: the lingua franca of the reproduction.

Chart guards, transition relations ``R(X, X')``, learned edge predicates
and model-checking queries are all values of this little language.

The IR is **hash-consed**: constructors intern every node, equality and
hashing are identity-based O(1) operations, and hot-path evaluation goes
through :func:`compile_expr` (see ``docs/expr_core.md``).
"""

from .ast import (
    Add,
    And,
    Const,
    Eq,
    Expr,
    FALSE,
    Iff,
    Implies,
    Ite,
    Le,
    Lt,
    Mul,
    Neg,
    Not,
    Or,
    Sub,
    TRUE,
    Var,
    add,
    bool_const,
    children,
    coerce,
    enum_const,
    eq,
    free_vars,
    ge,
    gt,
    has_primed_vars,
    iff,
    implies,
    int_constants,
    intern_table_size,
    interval,
    ite,
    land,
    le,
    lnot,
    lor,
    lt,
    maximum,
    minimum,
    mul,
    ne,
    neg,
    sub,
    walk,
    walk_unique,
)
from .eval import Env, EvalError, evaluate, holds
from .compiled import compile_expr, compiled_size
from .printer import guard_str, to_str
from .sexpr import SexprError
from .sexpr import dumps as sexpr_dumps
from .sexpr import loads as sexpr_loads
from .rewrite import (
    DiscriminationNet,
    Match,
    PAc,
    PLit,
    PNode,
    PVar,
    RewriteEngine,
    Rule,
)
from .rules import (
    DEFAULT_RULES,
    EXTENDED_RULES,
    default_engine,
    extended_engine,
    make_const_comparison_rules,
)
from .simplify import (
    deep_simplify,
    is_trivially_false,
    is_trivially_true,
    legacy_simplify,
    set_simplify_backend,
    simplify,
    simplify_backend,
)
from .subst import (
    rename_step,
    substitute,
    substitute_values,
    to_primed,
    to_unprimed,
    transform,
)
from .types import (
    BOOL,
    BoolSort,
    EnumSort,
    IntSort,
    Sort,
    enum_sort,
    int_sort,
    sort_values,
)

__all__ = [
    "Add", "And", "BOOL", "BoolSort", "Const", "DEFAULT_RULES",
    "DiscriminationNet", "EXTENDED_RULES", "Env", "EnumSort", "Eq",
    "EvalError", "Expr", "FALSE", "Iff", "Implies", "IntSort", "Ite", "Le",
    "Lt", "Match", "Mul", "Neg", "Not", "Or", "PAc", "PLit", "PNode",
    "PVar", "RewriteEngine", "Rule", "Sort", "Sub", "TRUE", "Var",
    "add", "bool_const", "children", "coerce", "compile_expr",
    "compiled_size", "deep_simplify", "default_engine", "enum_const",
    "enum_sort", "eq", "evaluate", "extended_engine", "free_vars", "ge",
    "gt", "guard_str", "has_primed_vars", "holds", "iff", "implies",
    "int_constants", "int_sort", "intern_table_size", "interval",
    "is_trivially_false", "is_trivially_true", "ite", "land", "le",
    "legacy_simplify", "lnot", "lor", "lt", "make_const_comparison_rules",
    "maximum", "minimum", "mul", "ne", "neg", "rename_step",
    "set_simplify_backend", "simplify", "simplify_backend", "sort_values",
    "sub", "substitute", "substitute_values", "to_primed", "to_str",
    "to_unprimed", "transform", "walk", "walk_unique",
]
