"""Compiled evaluation: expressions flattened to Python code objects.

:func:`compile_expr` turns an expression into a plain Python function
``fn(env) -> int`` with the same semantics as
:func:`repro.expr.eval.evaluate` but none of its per-node interpretation
cost: the expression DAG is code-generated into a single Python
expression (shared subterms hoisted into local temporaries, variables
read straight out of the environment mapping) and compiled once.  The
result is memoised by node identity -- hash-consing guarantees each
distinct predicate is compiled exactly once per process -- which is what
makes compiled evaluation profitable for the hot consumers: the concrete
simulator (:meth:`repro.system.SymbolicSystem.step`), trace generation,
the explicit-state engine's BFS, guard evaluation during NFA runs and
predicate synthesis.

Semantics notes
---------------

* Results mirror ``evaluate`` exactly on total environments: Booleans
  come back as 0/1, integer arithmetic is unbounded, missing variables
  raise :class:`~repro.expr.eval.EvalError`.
* And/Or/Ite/Implies short-circuit like the interpreter.  The one
  intentional divergence: *hoisted* subterms -- those shared between
  several parents, plus very large single-use subterms lifted to keep
  the generated source within the parser's comfort zone -- are
  evaluated eagerly, so on a partial environment a compiled function
  may raise ``EvalError`` for a variable the interpreter's
  short-circuiting would have skipped.  All shipped callers evaluate
  over total environments (observations bind every observable).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

from .ast import (
    Add,
    And,
    Const,
    Eq,
    Expr,
    Iff,
    Implies,
    Ite,
    Le,
    Lt,
    Mul,
    Neg,
    Not,
    Or,
    Sub,
    Var,
    children,
    walk_unique,
)
from .eval import EvalError

Env = Mapping[str, int]

# Compiled functions, keyed by eid (append-only, like the intern table:
# each distinct expression is compiled at most once; the int key cannot
# pin node objects or go stale across spawn re-interning).
_COMPILED: dict[int, Callable[[Env], int]] = {}

# Hoist subterms whose rendered source exceeds this many characters even
# when used once: keeps generated expressions within CPython's parser
# comfort zone for pathologically deep trees.
_HOIST_LENGTH = 2000


def _missing_var(exc: KeyError, env: Env) -> EvalError:
    (name,) = exc.args
    return EvalError(
        f"variable {name!r} not bound (have: {sorted(env)})"
    )


def _count_parents(root: Expr) -> dict[Expr, int]:
    refs: dict[Expr, int] = {root: 1}
    for node in walk_unique(root):
        for child in children(node):
            refs[child] = refs.get(child, 0) + 1
    return refs


def _generate(root: Expr) -> str:
    """Source of a module defining ``_fn(E)`` evaluating ``root``."""
    refs = _count_parents(root)
    lines: list[str] = []
    names: dict[Expr, str] = {}

    def emit(node: Expr) -> str:
        name = names.get(node)
        if name is not None:
            return name
        text = _render(node, emit)
        if refs[node] > 1 or len(text) > _HOIST_LENGTH:
            name = f"_t{len(names)}"
            lines.append(f"{name} = {text}")
            names[node] = name
            return name
        return text

    result = emit(root)
    body = ["def _fn(E):", "    try:"]
    body.extend(f"        {line}" for line in lines)
    body.append(f"        return {result}")
    body.append("    except KeyError as exc:")
    body.append("        raise _missing_var(exc, E) from None")
    return "\n".join(body) + "\n"


def _render(node: Expr, emit: Callable[[Expr], str]) -> str:
    if isinstance(node, Const):
        return repr(node.value)
    if isinstance(node, Var):
        return f"E[{node.qualified_name!r}]"
    if isinstance(node, Not):
        return f"(0 if {emit(node.arg)} else 1)"
    # Empty n-ary nodes are unreachable through the smart constructors
    # but constructible raw; mirror evaluate()'s neutral elements.
    if isinstance(node, And):
        if not node.args:
            return "1"
        inner = " and ".join(emit(a) for a in node.args)
        return f"(1 if {inner} else 0)"
    if isinstance(node, Or):
        if not node.args:
            return "0"
        inner = " or ".join(emit(a) for a in node.args)
        return f"(1 if {inner} else 0)"
    if isinstance(node, Implies):
        return f"((1 if {emit(node.rhs)} else 0) if {emit(node.lhs)} else 1)"
    if isinstance(node, Iff):
        return f"(1 if bool({emit(node.lhs)}) == bool({emit(node.rhs)}) else 0)"
    if isinstance(node, Eq):
        return f"(1 if {emit(node.lhs)} == {emit(node.rhs)} else 0)"
    if isinstance(node, Lt):
        return f"(1 if {emit(node.lhs)} < {emit(node.rhs)} else 0)"
    if isinstance(node, Le):
        return f"(1 if {emit(node.lhs)} <= {emit(node.rhs)} else 0)"
    if isinstance(node, Add):
        if not node.args:
            return "0"
        return "(" + " + ".join(emit(a) for a in node.args) + ")"
    if isinstance(node, Sub):
        return f"({emit(node.lhs)} - {emit(node.rhs)})"
    if isinstance(node, Neg):
        return f"(-{emit(node.arg)})"
    if isinstance(node, Mul):
        return f"({emit(node.lhs)} * {emit(node.rhs)})"
    if isinstance(node, Ite):
        return f"({emit(node.then)} if {emit(node.cond)} else {emit(node.other)})"
    raise TypeError(f"cannot compile node {type(node).__name__}")


def compile_expr(expr: Expr) -> Callable[[Env], int]:
    """Compile ``expr`` once into a fast ``fn(env) -> int`` (memoised)."""
    fn = _COMPILED.get(expr.eid)
    if fn is None:
        source = _generate(expr)
        namespace: dict[str, object] = {"_missing_var": _missing_var}
        exec(compile(source, f"<expr-eid-{expr.eid}>", "exec"), namespace)
        fn = namespace["_fn"]  # type: ignore[assignment]
        _COMPILED[expr.eid] = fn
    return fn


def compiled_size() -> int:
    """Number of expressions compiled so far (introspection/benchmarks)."""
    return len(_COMPILED)


def generated_source(expr: Expr) -> str:
    """The Python source :func:`compile_expr` would execute for ``expr``
    (introspection/benchmarks: its length tracks evaluator size)."""
    return _generate(expr)
