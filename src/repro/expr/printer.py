"""Pretty-printing of expressions.

Two styles are provided:

* ``"plain"`` -- ASCII, suitable for logs and DOT labels.
* ``"paper"`` -- the notation used in the paper's figures: unicode
  logical connectives and primed variables, e.g.
  ``(inp.temp > T_thresh) ∧ (s' = On)`` as in Fig. 2.

Enum constants print as their member names whenever the sort is known
from context (comparisons against enum variables).
"""

from __future__ import annotations

from .ast import (
    Add,
    And,
    Const,
    Eq,
    Expr,
    Iff,
    Implies,
    Ite,
    Le,
    Lt,
    Mul,
    Neg,
    Not,
    Or,
    Sub,
    Var,
)
from .types import BoolSort, EnumSort

_PLAIN = {
    "and": " && ",
    "or": " || ",
    "not": "!",
    "implies": " -> ",
    "iff": " <-> ",
}
_PAPER = {
    "and": " ∧ ",
    "or": " ∨ ",
    "not": "¬",
    "implies": " ⟹ ",
    "iff": " ⟺ ",
}

# Precedence levels: higher binds tighter.
_PREC_OR = 1
_PREC_AND = 2
_PREC_NOT = 3
_PREC_CMP = 4
_PREC_ADD = 5
_PREC_MUL = 6
_PREC_ATOM = 7


def to_str(expr: Expr, style: str = "plain") -> str:
    """Render ``expr``; ``style`` is ``"plain"`` or ``"paper"``."""
    if style == "plain":
        symbols = _PLAIN
    elif style == "paper":
        symbols = _PAPER
    else:
        raise ValueError(f"unknown printing style {style!r}")
    text, _prec = _render(expr, symbols)
    return text


def _const_str(value: int, sort) -> str:
    if isinstance(sort, BoolSort):
        return "true" if value else "false"
    if isinstance(sort, EnumSort):
        return sort.member_name(value)
    return str(value)


def _paren(inner: str, inner_prec: int, outer_prec: int) -> str:
    if inner_prec < outer_prec:
        return f"({inner})"
    return inner


def _render_infix(
    parts: list[tuple[str, int]], sep: str, prec: int
) -> tuple[str, int]:
    rendered = [_paren(text, p, prec + 1 if i else prec) for i, (text, p) in enumerate(parts)]
    return sep.join(rendered), prec


def _render(expr: Expr, sym: dict) -> tuple[str, int]:
    if isinstance(expr, Var):
        return expr.qualified_name, _PREC_ATOM
    if isinstance(expr, Const):
        return _const_str(expr.value, expr.sort), _PREC_ATOM
    if isinstance(expr, Not):
        inner, prec = _render(expr.arg, sym)
        if isinstance(expr.arg, (Eq, Lt, Le)):
            # The paper writes ``¬(inp.temp > T_thresh)``.
            return f"{sym['not']}({inner})", _PREC_NOT
        return f"{sym['not']}{_paren(inner, prec, _PREC_NOT)}", _PREC_NOT
    if isinstance(expr, And):
        parts = [_render(a, sym) for a in expr.args]
        return _render_infix(parts, sym["and"], _PREC_AND)
    if isinstance(expr, Or):
        parts = [_render(a, sym) for a in expr.args]
        return _render_infix(parts, sym["or"], _PREC_OR)
    if isinstance(expr, Implies):
        lhs, lp = _render(expr.lhs, sym)
        rhs, rp = _render(expr.rhs, sym)
        text = f"{_paren(lhs, lp, _PREC_OR + 1)}{sym['implies']}{_paren(rhs, rp, _PREC_OR + 1)}"
        return text, _PREC_OR
    if isinstance(expr, Iff):
        lhs, lp = _render(expr.lhs, sym)
        rhs, rp = _render(expr.rhs, sym)
        text = f"{_paren(lhs, lp, _PREC_OR + 1)}{sym['iff']}{_paren(rhs, rp, _PREC_OR + 1)}"
        return text, _PREC_OR
    if isinstance(expr, (Eq, Lt, Le)):
        op = {"Eq": "=", "Lt": "<", "Le": "<="}[type(expr).__name__]
        lhs, rhs = expr.lhs, expr.rhs
        # gt/ge desugar to Lt/Le with swapped operands; restore the
        # paper's reading order (``temp > 30``) when a constant leads.
        if (
            isinstance(expr, (Lt, Le))
            and isinstance(lhs, Const)
            and not isinstance(rhs, Const)
        ):
            op = ">" if isinstance(expr, Lt) else ">="
            lhs, rhs = rhs, lhs
        # Print enum comparisons with member names.
        if isinstance(expr, Eq) and isinstance(rhs, Const) and isinstance(lhs.sort, EnumSort):
            rhs_text = lhs.sort.member_name(rhs.value)
        else:
            rhs_text = _paren(*_render(rhs, sym), _PREC_ADD)
        lhs_text = _paren(*_render(lhs, sym), _PREC_ADD)
        return f"{lhs_text} {op} {rhs_text}", _PREC_CMP
    if isinstance(expr, Add):
        parts = [_render(a, sym) for a in expr.args]
        return _render_infix(parts, " + ", _PREC_ADD)
    if isinstance(expr, Sub):
        lhs, lp = _render(expr.lhs, sym)
        rhs, rp = _render(expr.rhs, sym)
        return f"{_paren(lhs, lp, _PREC_ADD)} - {_paren(rhs, rp, _PREC_ADD + 1)}", _PREC_ADD
    if isinstance(expr, Neg):
        inner, prec = _render(expr.arg, sym)
        return f"-{_paren(inner, prec, _PREC_MUL)}", _PREC_MUL
    if isinstance(expr, Mul):
        lhs, lp = _render(expr.lhs, sym)
        rhs, rp = _render(expr.rhs, sym)
        return f"{_paren(lhs, lp, _PREC_MUL)} * {_paren(rhs, rp, _PREC_MUL)}", _PREC_MUL
    if isinstance(expr, Ite):
        cond, _ = _render(expr.cond, sym)
        then, _ = _render(expr.then, sym)
        other, _ = _render(expr.other, sym)
        return f"ite({cond}, {then}, {other})", _PREC_ATOM
    raise TypeError(f"unknown expression node {type(expr).__name__}")


def guard_str(expr: Expr) -> str:
    """Paper-style rendering used for automaton edge labels (Fig. 2)."""
    return to_str(expr, style="paper")
