"""Substitution and priming transforms over expressions.

The completeness conditions of the paper mix predicates evaluated "now"
(at observation ``v_t``) with predicates evaluated one step later (at
``v_t+1``).  The model checker realises "one step later" by rewriting a
predicate over ``X`` into the same predicate over the primed copies
``X'`` -- that is :func:`to_primed`.
"""

from __future__ import annotations

from typing import Callable, Mapping

from .ast import (
    Add,
    And,
    Const,
    Eq,
    Expr,
    Iff,
    Implies,
    Ite,
    Le,
    Lt,
    Mul,
    Neg,
    Not,
    Or,
    Sub,
    Var,
    add,
    eq,
    iff,
    implies,
    ite,
    land,
    le,
    lnot,
    lor,
    lt,
    mul,
    neg,
    sub,
)


def transform(expr: Expr, leaf_fn: Callable[[Expr], Expr]) -> Expr:
    """Rebuild ``expr`` bottom-up, applying ``leaf_fn`` to Var/Const leaves.

    Rebuilding goes through the smart constructors, so substituting
    constants folds the expression along the way.
    """
    if isinstance(expr, (Var, Const)):
        return leaf_fn(expr)
    if isinstance(expr, Not):
        return lnot(transform(expr.arg, leaf_fn))
    if isinstance(expr, And):
        return land(*(transform(a, leaf_fn) for a in expr.args))
    if isinstance(expr, Or):
        return lor(*(transform(a, leaf_fn) for a in expr.args))
    if isinstance(expr, Implies):
        return implies(transform(expr.lhs, leaf_fn), transform(expr.rhs, leaf_fn))
    if isinstance(expr, Iff):
        return iff(transform(expr.lhs, leaf_fn), transform(expr.rhs, leaf_fn))
    if isinstance(expr, Eq):
        return eq(transform(expr.lhs, leaf_fn), transform(expr.rhs, leaf_fn))
    if isinstance(expr, Lt):
        return lt(transform(expr.lhs, leaf_fn), transform(expr.rhs, leaf_fn))
    if isinstance(expr, Le):
        return le(transform(expr.lhs, leaf_fn), transform(expr.rhs, leaf_fn))
    if isinstance(expr, Add):
        return add(*(transform(a, leaf_fn) for a in expr.args))
    if isinstance(expr, Sub):
        return sub(transform(expr.lhs, leaf_fn), transform(expr.rhs, leaf_fn))
    if isinstance(expr, Neg):
        return neg(transform(expr.arg, leaf_fn))
    if isinstance(expr, Mul):
        return mul(transform(expr.lhs, leaf_fn), transform(expr.rhs, leaf_fn))
    if isinstance(expr, Ite):
        return ite(
            transform(expr.cond, leaf_fn),
            transform(expr.then, leaf_fn),
            transform(expr.other, leaf_fn),
        )
    raise TypeError(f"unknown expression node {type(expr).__name__}")


def substitute(expr: Expr, mapping: Mapping[Var, Expr]) -> Expr:
    """Replace variables according to ``mapping`` (missing vars unchanged)."""

    def leaf(node: Expr) -> Expr:
        if isinstance(node, Var):
            return mapping.get(node, node)
        return node

    return transform(expr, leaf)


def substitute_values(expr: Expr, env: Mapping[str, int]) -> Expr:
    """Plug concrete values (by qualified name) into ``expr`` and fold."""

    def leaf(node: Expr) -> Expr:
        if isinstance(node, Var) and node.qualified_name in env:
            return Const(env[node.qualified_name], node.sort)
        return node

    return transform(expr, leaf)


def to_primed(expr: Expr) -> Expr:
    """Rewrite every unprimed variable ``x`` to its primed copy ``x'``.

    Used to evaluate a predicate "at the next observation": condition (2)
    of the paper asserts ``v_t+1 |= p_o``, which the checker encodes as
    ``to_primed(p_o)`` over the one-step unrolling.
    """

    def leaf(node: Expr) -> Expr:
        if isinstance(node, Var) and not node.primed:
            return node.prime()
        return node

    return transform(expr, leaf)


def to_unprimed(expr: Expr) -> Expr:
    """Rewrite every primed variable ``x'`` back to ``x``."""

    def leaf(node: Expr) -> Expr:
        if isinstance(node, Var) and node.primed:
            return node.unprime()
        return node

    return transform(expr, leaf)


def rename_step(expr: Expr, step_of_unprimed: int, namer: Callable[[str, int], Var]) -> Expr:
    """Rewrite ``x``/``x'`` into per-step variables for BMC unrollings.

    ``namer(name, t)`` must return the variable standing for ``name`` at
    time-step ``t``; unprimed vars map to ``step_of_unprimed`` and primed
    vars to ``step_of_unprimed + 1``.
    """

    def leaf(node: Expr) -> Expr:
        if isinstance(node, Var):
            step = step_of_unprimed + (1 if node.primed else 0)
            return namer(node.name, step)
        return node

    return transform(expr, leaf)
