"""Substitution and priming transforms over expressions.

The completeness conditions of the paper mix predicates evaluated "now"
(at observation ``v_t``) with predicates evaluated one step later (at
``v_t+1``).  The model checker realises "one step later" by rewriting a
predicate over ``X`` into the same predicate over the primed copies
``X'`` -- that is :func:`to_primed`.

With the hash-consed expression core every transform is memoised *by
node identity*: within one call a shared subexpression is rewritten
once (linear in the DAG, not the tree unfolding), and the pure unary
transforms :func:`to_primed` / :func:`to_unprimed` additionally keep a
global memo across calls -- the condition checker re-primes the same
conclusions every strengthening round, which is now a dictionary hit.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

from .ast import (
    Add,
    And,
    Const,
    Eq,
    Expr,
    Iff,
    Implies,
    Ite,
    Le,
    Lt,
    Mul,
    Neg,
    Not,
    Or,
    Sub,
    Var,
    add,
    eq,
    iff,
    implies,
    ite,
    land,
    le,
    lnot,
    lor,
    lt,
    mul,
    neg,
    sub,
)


# contract: ignore[C007] structure-preserving leaf substitution, not an algebraic rewrite; smart constructors only re-normalise
def _transform(
    expr: Expr, leaf_fn: Callable[[Expr], Expr], memo: dict[Expr, Expr]
) -> Expr:
    done = memo.get(expr)
    if done is not None:
        return done
    if isinstance(expr, (Var, Const)):
        result = leaf_fn(expr)
    elif isinstance(expr, Not):
        result = lnot(_transform(expr.arg, leaf_fn, memo))
    elif isinstance(expr, And):
        result = land(*(_transform(a, leaf_fn, memo) for a in expr.args))
    elif isinstance(expr, Or):
        result = lor(*(_transform(a, leaf_fn, memo) for a in expr.args))
    elif isinstance(expr, Implies):
        result = implies(
            _transform(expr.lhs, leaf_fn, memo),
            _transform(expr.rhs, leaf_fn, memo),
        )
    elif isinstance(expr, Iff):
        result = iff(
            _transform(expr.lhs, leaf_fn, memo),
            _transform(expr.rhs, leaf_fn, memo),
        )
    elif isinstance(expr, Eq):
        result = eq(
            _transform(expr.lhs, leaf_fn, memo),
            _transform(expr.rhs, leaf_fn, memo),
        )
    elif isinstance(expr, Lt):
        result = lt(
            _transform(expr.lhs, leaf_fn, memo),
            _transform(expr.rhs, leaf_fn, memo),
        )
    elif isinstance(expr, Le):
        result = le(
            _transform(expr.lhs, leaf_fn, memo),
            _transform(expr.rhs, leaf_fn, memo),
        )
    elif isinstance(expr, Add):
        result = add(*(_transform(a, leaf_fn, memo) for a in expr.args))
    elif isinstance(expr, Sub):
        result = sub(
            _transform(expr.lhs, leaf_fn, memo),
            _transform(expr.rhs, leaf_fn, memo),
        )
    elif isinstance(expr, Neg):
        result = neg(_transform(expr.arg, leaf_fn, memo))
    elif isinstance(expr, Mul):
        result = mul(
            _transform(expr.lhs, leaf_fn, memo),
            _transform(expr.rhs, leaf_fn, memo),
        )
    elif isinstance(expr, Ite):
        result = ite(
            _transform(expr.cond, leaf_fn, memo),
            _transform(expr.then, leaf_fn, memo),
            _transform(expr.other, leaf_fn, memo),
        )
    else:
        raise TypeError(f"unknown expression node {type(expr).__name__}")
    memo[expr] = result
    return result


def transform(expr: Expr, leaf_fn: Callable[[Expr], Expr]) -> Expr:
    """Rebuild ``expr`` bottom-up, applying ``leaf_fn`` to Var/Const leaves.

    Rebuilding goes through the smart constructors, so substituting
    constants folds the expression along the way.  Shared subexpressions
    are rebuilt once per call (identity-keyed memo).
    """
    return _transform(expr, leaf_fn, {})


def substitute(expr: Expr, mapping: Mapping[Var, Expr]) -> Expr:
    """Replace variables according to ``mapping`` (missing vars unchanged)."""

    def leaf(node: Expr) -> Expr:
        if isinstance(node, Var):
            return mapping.get(node, node)
        return node

    return transform(expr, leaf)


def substitute_values(expr: Expr, env: Mapping[str, int]) -> Expr:
    """Plug concrete values (by qualified name) into ``expr`` and fold."""

    def leaf(node: Expr) -> Expr:
        if isinstance(node, Var) and node.qualified_name in env:
            return Const(env[node.qualified_name], node.sort)
        return node

    return transform(expr, leaf)


# Global memos for the pure unary priming transforms.  Safe because the
# transforms are deterministic functions of the (immutable, interned)
# input node; keyed by eid, which for interned nodes *is* structural
# equality and (being a plain int) cannot pin stale node objects across
# spawn re-interning.
_PRIMED_MEMO: dict[int, Expr] = {}
_UNPRIMED_MEMO: dict[int, Expr] = {}


def _prime_leaf(node: Expr) -> Expr:
    if isinstance(node, Var) and not node.primed:
        return node.prime()
    return node


def _unprime_leaf(node: Expr) -> Expr:
    if isinstance(node, Var) and node.primed:
        return node.unprime()
    return node


def to_primed(expr: Expr) -> Expr:
    """Rewrite every unprimed variable ``x`` to its primed copy ``x'``.

    Used to evaluate a predicate "at the next observation": condition (2)
    of the paper asserts ``v_t+1 |= p_o``, which the checker encodes as
    ``to_primed(p_o)`` over the one-step unrolling.
    """
    cached = _PRIMED_MEMO.get(expr.eid)
    if cached is None:
        cached = _transform(expr, _prime_leaf, {})
        _PRIMED_MEMO[expr.eid] = cached
    return cached


def to_unprimed(expr: Expr) -> Expr:
    """Rewrite every primed variable ``x'`` back to ``x``."""
    cached = _UNPRIMED_MEMO.get(expr.eid)
    if cached is None:
        cached = _transform(expr, _unprime_leaf, {})
        _UNPRIMED_MEMO[expr.eid] = cached
    return cached


def rename_step(expr: Expr, step_of_unprimed: int, namer: Callable[[str, int], Var]) -> Expr:
    """Rewrite ``x``/``x'`` into per-step variables for BMC unrollings.

    ``namer(name, t)`` must return the variable standing for ``name`` at
    time-step ``t``; unprimed vars map to ``step_of_unprimed`` and primed
    vars to ``step_of_unprimed + 1``.
    """

    def leaf(node: Expr) -> Expr:
        if isinstance(node, Var):
            step = step_of_unprimed + (1 if node.primed else 0)
            return namer(node.name, step)
        return node

    return transform(expr, leaf)
