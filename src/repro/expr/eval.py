"""Concrete evaluation of expressions under an environment.

Environments map *qualified* variable names (``x`` or ``x'``) to Python
ints (Booleans are 0/1, enum values are member indices).  The same
evaluator backs the concrete simulator in :mod:`repro.system` -- the
symbolic transition relation and the executable implementation share one
source of truth, so the model checker and the trace generator can never
disagree about the system's semantics.

:func:`evaluate` is the reference tree-walking interpreter; the hot
paths use :func:`repro.expr.compiled.compile_expr`, which flattens an
expression into one compiled Python function with identical semantics
(differentially tested).  :func:`holds` -- the Boolean entry point used
by guard evaluation, predicate synthesis and counterexample splicing --
goes through the compiled evaluator, so repeated queries against the
same (interned) predicate pay no interpretation cost.
"""

from __future__ import annotations

from collections.abc import Mapping

from .ast import (
    Add,
    And,
    Const,
    Eq,
    Expr,
    Iff,
    Implies,
    Ite,
    Le,
    Lt,
    Mul,
    Neg,
    Not,
    Or,
    Sub,
    Var,
)

Env = Mapping[str, int]


class EvalError(KeyError):
    """Raised when a variable is missing from the environment."""


def evaluate(expr: Expr, env: Env) -> int:
    """Evaluate ``expr`` under ``env``; Booleans come back as 0/1."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Var):
        try:
            return env[expr.qualified_name]
        except KeyError:
            raise EvalError(
                f"variable {expr.qualified_name!r} not bound "
                f"(have: {sorted(env)})"
            ) from None
    if isinstance(expr, Not):
        return 0 if evaluate(expr.arg, env) else 1
    if isinstance(expr, And):
        for arg in expr.args:
            if not evaluate(arg, env):
                return 0
        return 1
    if isinstance(expr, Or):
        for arg in expr.args:
            if evaluate(arg, env):
                return 1
        return 0
    if isinstance(expr, Implies):
        if not evaluate(expr.lhs, env):
            return 1
        return 1 if evaluate(expr.rhs, env) else 0
    if isinstance(expr, Iff):
        return 1 if bool(evaluate(expr.lhs, env)) == bool(evaluate(expr.rhs, env)) else 0
    if isinstance(expr, Eq):
        return 1 if evaluate(expr.lhs, env) == evaluate(expr.rhs, env) else 0
    if isinstance(expr, Lt):
        return 1 if evaluate(expr.lhs, env) < evaluate(expr.rhs, env) else 0
    if isinstance(expr, Le):
        return 1 if evaluate(expr.lhs, env) <= evaluate(expr.rhs, env) else 0
    if isinstance(expr, Add):
        return sum(evaluate(arg, env) for arg in expr.args)
    if isinstance(expr, Sub):
        return evaluate(expr.lhs, env) - evaluate(expr.rhs, env)
    if isinstance(expr, Neg):
        return -evaluate(expr.arg, env)
    if isinstance(expr, Mul):
        return evaluate(expr.lhs, env) * evaluate(expr.rhs, env)
    if isinstance(expr, Ite):
        if evaluate(expr.cond, env):
            return evaluate(expr.then, env)
        return evaluate(expr.other, env)
    raise TypeError(f"cannot evaluate node {type(expr).__name__}")


# Bound lazily to avoid a module-level import cycle (compiled.py imports
# EvalError from here).
_compile_expr = None


def holds(expr: Expr, env: Env) -> bool:
    """True iff the Boolean expression ``expr`` is satisfied by ``env``."""
    global _compile_expr
    if not expr.sort.is_bool():
        raise TypeError(f"holds() needs a Boolean expression, got {expr.sort}")
    if _compile_expr is None:
        from .compiled import compile_expr

        _compile_expr = compile_expr
    return bool(_compile_expr(expr)(env))
