"""S-expression serialisation of expressions.

Mined invariants and learned guards are artefacts users want to store,
diff and reload (e.g. to re-check a new implementation against last
release's invariants without re-learning).  The infix printer is for
humans; this module provides a lossless machine format:

    (and (> (var temp (int 0 60)) 30) (= (var s (enum Mode Off On)) 1))

``dumps``/``loads`` round-trip every expression the IR can build
(property-tested); sorts are carried inline on variables so a reloaded
expression needs no external declarations.
"""

from __future__ import annotations

from .ast import (
    Add,
    And,
    Const,
    Eq,
    Expr,
    Iff,
    Implies,
    Ite,
    Le,
    Lt,
    Mul,
    Neg,
    Not,
    Or,
    Sub,
    Var,
    add,
    eq,
    iff,
    implies,
    ite,
    land,
    le,
    lnot,
    lor,
    lt,
    mul,
    neg,
    sub,
)
from .types import BOOL, BoolSort, EnumSort, IntSort, Sort


class SexprError(ValueError):
    """Raised on malformed s-expression input."""


# ---------------------------------------------------------------------------
# writing
# ---------------------------------------------------------------------------


def _sort_sexpr(sort: Sort) -> str:
    if isinstance(sort, BoolSort):
        return "bool"
    if isinstance(sort, IntSort):
        return f"(int {sort.lo} {sort.hi})"
    if isinstance(sort, EnumSort):
        members = " ".join(sort.members)
        return f"(enum {sort.name} {members})"
    raise TypeError(f"unsupported sort {sort!r}")


def dumps(expr: Expr) -> str:
    """Serialise an expression to a canonical s-expression string."""
    if isinstance(expr, Const):
        if isinstance(expr.sort, BoolSort):
            return "true" if expr.value else "false"
        if isinstance(expr.sort, EnumSort):
            return f"(const {expr.value} {_sort_sexpr(expr.sort)})"
        return str(expr.value)
    if isinstance(expr, Var):
        marker = "var'" if expr.primed else "var"
        return f"({marker} {expr.name} {_sort_sexpr(expr.sort)})"
    if isinstance(expr, Not):
        return f"(not {dumps(expr.arg)})"
    if isinstance(expr, And):
        return "(and " + " ".join(dumps(a) for a in expr.args) + ")"
    if isinstance(expr, Or):
        return "(or " + " ".join(dumps(a) for a in expr.args) + ")"
    if isinstance(expr, Implies):
        return f"(=> {dumps(expr.lhs)} {dumps(expr.rhs)})"
    if isinstance(expr, Iff):
        return f"(<=> {dumps(expr.lhs)} {dumps(expr.rhs)})"
    if isinstance(expr, Eq):
        return f"(= {dumps(expr.lhs)} {dumps(expr.rhs)})"
    if isinstance(expr, Lt):
        return f"(< {dumps(expr.lhs)} {dumps(expr.rhs)})"
    if isinstance(expr, Le):
        return f"(<= {dumps(expr.lhs)} {dumps(expr.rhs)})"
    if isinstance(expr, Add):
        return "(+ " + " ".join(dumps(a) for a in expr.args) + ")"
    if isinstance(expr, Sub):
        return f"(- {dumps(expr.lhs)} {dumps(expr.rhs)})"
    if isinstance(expr, Neg):
        return f"(neg {dumps(expr.arg)})"
    if isinstance(expr, Mul):
        return f"(* {dumps(expr.lhs)} {dumps(expr.rhs)})"
    if isinstance(expr, Ite):
        return f"(ite {dumps(expr.cond)} {dumps(expr.then)} {dumps(expr.other)})"
    raise TypeError(f"cannot serialise node {type(expr).__name__}")


# ---------------------------------------------------------------------------
# reading
# ---------------------------------------------------------------------------


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    current = ""
    for char in text:
        if char in "()":
            if current:
                tokens.append(current)
                current = ""
            tokens.append(char)
        elif char.isspace():
            if current:
                tokens.append(current)
                current = ""
        else:
            current += char
    if current:
        tokens.append(current)
    return tokens


def _parse_tree(tokens: list[str], pos: int) -> tuple[object, int]:
    if pos >= len(tokens):
        raise SexprError("unexpected end of input")
    token = tokens[pos]
    if token == "(":
        items = []
        pos += 1
        while pos < len(tokens) and tokens[pos] != ")":
            item, pos = _parse_tree(tokens, pos)
            items.append(item)
        if pos >= len(tokens):
            raise SexprError("missing closing parenthesis")
        return items, pos + 1
    if token == ")":
        raise SexprError("unexpected ')'")
    return token, pos + 1


def _parse_sort(tree: object) -> Sort:
    if tree == "bool":
        return BOOL
    if isinstance(tree, list) and tree:
        if tree[0] == "int" and len(tree) == 3:
            return IntSort(int(tree[1]), int(tree[2]))
        if tree[0] == "enum" and len(tree) >= 3:
            return EnumSort(str(tree[1]), tuple(str(m) for m in tree[2:]))
    raise SexprError(f"bad sort: {tree!r}")


def _build(tree: object) -> Expr:
    if isinstance(tree, str):
        if tree == "true":
            return Const(1, BOOL)
        if tree == "false":
            return Const(0, BOOL)
        try:
            value = int(tree)
        except ValueError:
            raise SexprError(f"unknown atom {tree!r}") from None
        return Const(value, IntSort(value, value))
    if not isinstance(tree, list) or not tree:
        raise SexprError(f"bad expression: {tree!r}")
    head = tree[0]
    args = tree[1:]
    if head in ("var", "var'"):
        if len(args) != 2:
            raise SexprError(f"var needs name and sort: {tree!r}")
        variable = Var(str(args[0]), _parse_sort(args[1]))
        return variable.prime() if head == "var'" else variable
    if head == "const":
        if len(args) != 2:
            raise SexprError(f"const needs value and sort: {tree!r}")
        return Const(int(args[0]), _parse_sort(args[1]))
    operands = [_build(a) for a in args]
    builders = {
        "not": lambda: lnot(*operands),
        "and": lambda: land(*operands),
        "or": lambda: lor(*operands),
        "=>": lambda: implies(*operands),
        "<=>": lambda: iff(*operands),
        "=": lambda: eq(*operands),
        "<": lambda: lt(*operands),
        "<=": lambda: le(*operands),
        "+": lambda: add(*operands),
        "-": lambda: sub(*operands),
        "neg": lambda: neg(*operands),
        "*": lambda: mul(*operands),
        "ite": lambda: ite(*operands),
    }
    if head not in builders:
        raise SexprError(f"unknown operator {head!r}")
    try:
        return builders[head]()
    except TypeError as exc:
        raise SexprError(f"bad arity for {head!r}: {exc}") from exc


def loads(text: str) -> Expr:
    """Parse a serialised expression back into the IR.

    Rebuilding goes through the smart constructors, so the result is the
    *normalised* form of what was written -- semantically identical, and
    (interning) the *identical canonical object* for anything
    :func:`dumps` produced from an already-normalised expression.
    """
    tokens = _tokenize(text)
    if not tokens:
        raise SexprError("empty input")
    tree, pos = _parse_tree(tokens, 0)
    if pos != len(tokens):
        raise SexprError(f"trailing tokens: {tokens[pos:]}")
    return _build(tree)
