"""Rule tables for the rewrite engine (``expr/rewrite.py``).

The rule set is *data*: every algebraic identity the simplifier knows
lives here as a :class:`~repro.expr.rewrite.Rule`, grouped into two
tiers --

* :data:`DEFAULT_RULES` -- the four legacy ``simplify`` rules
  re-expressed as table entries, plus the context-threaded
  nested-contradiction rule (``x = c1 ∧ (y ∨ x = c2)`` prunes the
  contradicting disjunct).  This tier backs the default :func:`simplify`
  and is tuned to preserve the legacy pass's outputs on the golden
  differential workloads.
* :data:`EXTENDED_RULES` -- the rules the legacy pass could not state:
  ITE lifting and branch-merging, negation normal-form pushing,
  comparison chaining (``x < c1 ∧ x < c2 → x < min``),
  constant-range propagation on comparisons (reusing
  ``analysis/sortcheck``'s interval machinery through the match
  context), and absorption/subsumption over And/Or.  This tier backs
  ``deep_simplify`` and the presimplify hooks in the encoder and BDD
  compiler.

Extending the table per scenario family: build new :class:`Rule`
entries (see ``docs/rewrite_engine.md``) and hand them to a
:class:`~repro.expr.rewrite.RewriteEngine`;
:func:`make_const_comparison_rules` shows the idiom by generating a
family of per-constant comparison folds (also the ≥100-rule table used
by ``benchmarks/test_simplify.py``).

Soundness note for context rules: ``Match.ctx`` carries bounds implied
by *sibling* conjuncts.  Folding a node to ``FALSE`` from those bounds
is always sound; folding to ``TRUE`` is sound only off the conjunct
root (``Match.at_conjunct_root``) -- see ``expr/rewrite.py``'s module
docstring for the circular-support argument.
"""

from __future__ import annotations

from .ast import (
    And,
    Const,
    Eq,
    Expr,
    FALSE,
    Implies,
    Ite,
    Le,
    Lt,
    Not,
    Or,
    TRUE,
    Var,
    eq,
    ite,
    land,
    le,
    lnot,
    lor,
    lt,
)
from .rewrite import (
    Match,
    PAc,
    PLit,
    PVar,
    Rule,
    RewriteEngine,
    p_eq,
    p_implies,
    p_ite,
    p_le,
    p_lt,
    p_not,
)
from .types import EnumSort, IntSort

__all__ = [
    "DEFAULT_RULES",
    "EXTENDED_RULES",
    "default_engine",
    "extended_engine",
    "make_const_comparison_rules",
]


def _as_var_eq_const(expr: Expr) -> tuple[Var, int] | None:
    if isinstance(expr, Eq):
        if isinstance(expr.lhs, Var) and isinstance(expr.rhs, Const):
            return expr.lhs, expr.rhs.value
        if isinstance(expr.rhs, Var) and isinstance(expr.lhs, Const):
            return expr.rhs, expr.lhs.value
    return None


def _bounds(m: Match, expr: Expr, with_ctx: bool) -> tuple[int, int]:
    """Interval of ``expr``: declared sorts only, or context-refined."""
    # Layering: the analysis package imports the expression core, so
    # the interval machinery is pulled in at call time only.
    from ..analysis.sortcheck import expr_bounds

    return expr_bounds(expr, dict(m.ctx) if (with_ctx and m.ctx) else {})


def _numeric(expr: Expr) -> bool:
    return expr.sort.is_int() or expr.sort.is_enum()


# ---------------------------------------------------------------------------
# default tier: the legacy rules as table entries + context pruning
# ---------------------------------------------------------------------------


def _and_contradiction(m: Match) -> Expr | None:
    """``x = c1 ∧ x = c2`` with ``c1 ≠ c2`` → false."""
    seen: dict[Var, int] = {}
    for arg in m.node.args:
        pair = _as_var_eq_const(arg)
        if pair is not None:
            var, value = pair
            if var in seen and seen[var] != value:
                return FALSE
            seen[var] = value
    return None


def _and_complement(m: Match) -> Expr | None:
    """``a ∧ ¬a`` (anywhere in the argument tuple) → false."""
    args = m.node.args
    present = set(args)
    for arg in args:
        # Probe structurally instead of constructing lnot(arg): building
        # a Not per argument would intern a garbage node per probe.
        if type(arg) is Not and arg.arg in present:
            return FALSE
    return None


def _or_complement(m: Match) -> Expr | None:
    """``a ∨ ¬a`` → true."""
    args = m.node.args
    present = set(args)
    for arg in args:
        if type(arg) is Not and arg.arg in present:
            return TRUE
    return None


def _or_enum_sweep(m: Match) -> Expr | None:
    """``x = A ∨ x = B ∨ ...`` over every member of an enum → true."""
    by_var: dict[Var, set[int]] = {}
    for arg in m.node.args:
        pair = _as_var_eq_const(arg)
        if pair is not None and isinstance(pair[0].sort, EnumSort):
            by_var.setdefault(pair[0], set()).add(pair[1])
    for var, values in by_var.items():
        if len(values) == var.sort.cardinality:
            return TRUE
    return None


def _implies_refl(m: Match) -> Expr:
    """``a ⇒ a`` → true (nonlinear pattern: both sides bind ``a``)."""
    return TRUE


def _eq_ctx(m: Match) -> Expr | None:
    """Fold ``x = c`` under sibling-conjunct facts.

    Contradiction → false fires at any position (default tier);
    entailment → true only off the conjunct root and only in engines
    whose table includes :data:`_EQ_CTX_ENTAILED`.
    """
    pair = _as_var_eq_const(m.node)
    if pair is None:
        return None
    var, value = pair
    bounds = m.var_bounds(var)
    if bounds is None:
        return None
    if not bounds[0] <= value <= bounds[1]:
        return FALSE
    return None


def _eq_ctx_entailed(m: Match) -> Expr | None:
    pair = _as_var_eq_const(m.node)
    if pair is None:
        return None
    var, value = pair
    bounds = m.var_bounds(var)
    if bounds == (value, value) and not m.at_conjunct_root:
        return TRUE
    return None


DEFAULT_RULES: tuple[Rule, ...] = (
    Rule(
        "and_contradiction",
        PAc(And),
        _and_contradiction,
        doc="x = c1 ∧ x = c2 → false (c1 ≠ c2)",
    ),
    Rule("and_complement", PAc(And), _and_complement, doc="a ∧ ¬a → false"),
    Rule("or_complement", PAc(Or), _or_complement, doc="a ∨ ¬a → true"),
    Rule(
        "or_enum_sweep",
        PAc(Or),
        _or_enum_sweep,
        doc="x = A ∨ ... over all enum members → true",
    ),
    Rule(
        "implies_refl",
        p_implies(PVar("a"), PVar("a")),
        _implies_refl,
        doc="a ⇒ a → true",
    ),
    Rule(
        "eq_ctx_contradiction",
        p_eq(PVar("a"), PVar("b")),
        _eq_ctx,
        doc="x = c under conjunct facts excluding c → false",
    ),
)


# ---------------------------------------------------------------------------
# extended tier: ITE lifting/merging, NNF, chaining, range propagation,
# absorption/subsumption
# ---------------------------------------------------------------------------


def _not_over_and(m: Match) -> Expr:
    return lor(*(lnot(a) for a in m["a"].args))


def _not_over_or(m: Match) -> Expr:
    return land(*(lnot(a) for a in m["a"].args))


def _not_over_implies(m: Match) -> Expr:
    inner = m["a"]
    return land(inner.lhs, lnot(inner.rhs))


def _not_over_lt(m: Match) -> Expr:
    inner = m["a"]
    return le(inner.rhs, inner.lhs)


def _not_over_le(m: Match) -> Expr:
    inner = m["a"]
    return lt(inner.rhs, inner.lhs)


def _not_over_ite(m: Match) -> Expr:
    inner = m["a"]
    return ite(inner.cond, lnot(inner.then), lnot(inner.other))


def _ite_bool_branch(m: Match) -> Expr | None:
    """Boolean ITE with a constant branch → plain connectives."""
    cond, then, other = m["c"], m["t"], m["e"]
    if then is TRUE:
        return lor(cond, other)
    if then is FALSE:
        return land(lnot(cond), other)
    if other is TRUE:
        return lor(lnot(cond), then)
    if other is FALSE:
        return land(cond, then)
    return None


def _ite_negated_cond(m: Match) -> Expr:
    return ite(m["c"].arg, m["e"], m["t"])


def _ite_branch_merge(m: Match) -> Expr | None:
    """Nested ITE on the same condition collapses to one decision."""
    cond, then, other = m["c"], m["t"], m["e"]
    if isinstance(then, Ite) and then.cond is cond:
        return ite(cond, then.then, other)
    if isinstance(other, Ite) and other.cond is cond:
        return ite(cond, then, other.other)
    return None


def _eq_ite_lift(m: Match) -> Expr | None:
    """``ite(c, t, e) = k`` → ``ite(c, t = k, e = k)`` (k constant)."""
    for branch, const in ((m["a"], m["b"]), (m["b"], m["a"])):
        if (
            isinstance(branch, Ite)
            and _numeric(branch)
            and isinstance(const, Const)
        ):
            return ite(
                branch.cond,
                eq(branch.then, const),
                eq(branch.other, const),
            )
    return None


def _fold_cmp(m: Match, lhs: Expr, rhs: Expr, strict: bool) -> Expr | None:
    """Interval-fold a comparison ``lhs (<|<=) rhs``.

    Context-free folds (declared/derived sorts only) are safe anywhere;
    folds that need the sibling-fact context obey the
    ``at_conjunct_root`` true-fold guard.
    """
    for with_ctx in (False, True):
        if with_ctx and not m.ctx:
            return None
        lo1, hi1 = _bounds(m, lhs, with_ctx)
        lo2, hi2 = _bounds(m, rhs, with_ctx)
        if (hi1 < lo2) if strict else (hi1 <= lo2):
            if with_ctx and m.at_conjunct_root:
                return None
            return TRUE
        if (lo1 >= hi2) if strict else (lo1 > hi2):
            return FALSE
    return None


def _lt_bounds(m: Match) -> Expr | None:
    return _fold_cmp(m, m["a"], m["b"], strict=True)


def _le_bounds(m: Match) -> Expr | None:
    return _fold_cmp(m, m["a"], m["b"], strict=False)


def _eq_bounds(m: Match) -> Expr | None:
    lhs, rhs = m["a"], m["b"]
    if not (_numeric(lhs) and _numeric(rhs)):
        return None
    for with_ctx in (False, True):
        if with_ctx and not m.ctx:
            return None
        lo1, hi1 = _bounds(m, lhs, with_ctx)
        lo2, hi2 = _bounds(m, rhs, with_ctx)
        if hi1 < lo2 or hi2 < lo1:
            return FALSE
        if lo1 == hi1 == lo2 == hi2:
            if with_ctx and m.at_conjunct_root:
                return None
            return TRUE
    return None


def _cmp_bound(arg: Expr) -> tuple[Expr, str, int] | None:
    """Decompose ``arg`` as an upper/lower constant bound on an operand:
    returns ``(operand, "hi"|"lo", inclusive_bound)``."""
    if isinstance(arg, Lt):
        if isinstance(arg.rhs, Const):
            return (arg.lhs, "hi", arg.rhs.value - 1)
        if isinstance(arg.lhs, Const):
            return (arg.rhs, "lo", arg.lhs.value + 1)
    elif isinstance(arg, Le):
        if isinstance(arg.rhs, Const):
            return (arg.lhs, "hi", arg.rhs.value)
        if isinstance(arg.lhs, Const):
            return (arg.rhs, "lo", arg.lhs.value)
    return None


def _cmp_chain_and(m: Match) -> Expr | None:
    """``x < c1 ∧ x < c2 → x < min`` -- keep the tightest bound per
    operand and direction; conflicting bounds fold the conjunction."""
    best: dict[tuple[int, str], tuple[int, int]] = {}  # -> (bound, pos)
    for pos, arg in enumerate(m.node.args):
        decomposed = _cmp_bound(arg)
        if decomposed is None:
            continue
        operand, direction, bound = decomposed
        key = (operand.eid, direction)
        held = best.get(key)
        if held is None or (
            bound < held[0] if direction == "hi" else bound > held[0]
        ):
            best[key] = (bound, pos)
    if not best:
        return None
    keep: set[int] = set()
    for (operand_eid, direction), (bound, pos) in best.items():
        other = best.get((operand_eid, "lo" if direction == "hi" else "hi"))
        if direction == "hi" and other is not None and other[0] > bound:
            return FALSE
        keep.add(pos)
    args = [
        arg
        for pos, arg in enumerate(m.node.args)
        if _cmp_bound(arg) is None or pos in keep
    ]
    if len(args) == len(m.node.args):
        return None
    return land(*args)


def _cmp_chain_or(m: Match) -> Expr | None:
    """Dual chaining on disjunctions: keep the loosest bound per operand
    and direction; complementary bounds covering the line fold to true."""
    best: dict[tuple[int, str], tuple[int, int]] = {}
    for pos, arg in enumerate(m.node.args):
        decomposed = _cmp_bound(arg)
        if decomposed is None:
            continue
        operand, direction, bound = decomposed
        key = (operand.eid, direction)
        held = best.get(key)
        if held is None or (
            bound > held[0] if direction == "hi" else bound < held[0]
        ):
            best[key] = (bound, pos)
    if not best:
        return None
    keep: set[int] = set()
    for (operand_eid, direction), (bound, pos) in best.items():
        other = best.get((operand_eid, "lo" if direction == "hi" else "hi"))
        if direction == "hi" and other is not None and other[0] <= bound + 1:
            return TRUE
        keep.add(pos)
    args = [
        arg
        for pos, arg in enumerate(m.node.args)
        if _cmp_bound(arg) is None or pos in keep
    ]
    if len(args) == len(m.node.args):
        return None
    return lor(*args)


def _absorb_and(m: Match) -> Expr | None:
    """Absorption ``a ∧ (a ∨ b) → a`` and Or-superset subsumption."""
    args = m.node.args
    atom_eids = {a.eid for a in args if not isinstance(a, Or)}
    or_sets = {
        pos: frozenset(x.eid for x in a.args)
        for pos, a in enumerate(args)
        if isinstance(a, Or)
    }
    drop: set[int] = set()
    for pos, eids in or_sets.items():
        if eids & atom_eids:
            drop.add(pos)
            continue
        for other_pos, other_eids in or_sets.items():
            if other_pos != pos and other_eids < eids:
                drop.add(pos)
                break
    if not drop:
        return None
    return land(*(a for pos, a in enumerate(args) if pos not in drop))


def _absorb_or(m: Match) -> Expr | None:
    """Absorption ``a ∨ (a ∧ b) → a`` and And-superset subsumption."""
    args = m.node.args
    atom_eids = {a.eid for a in args if not isinstance(a, And)}
    and_sets = {
        pos: frozenset(x.eid for x in a.args)
        for pos, a in enumerate(args)
        if isinstance(a, And)
    }
    drop: set[int] = set()
    for pos, eids in and_sets.items():
        if eids & atom_eids:
            drop.add(pos)
            continue
        for other_pos, other_eids in and_sets.items():
            if other_pos != pos and other_eids < eids:
                drop.add(pos)
                break
    if not drop:
        return None
    return lor(*(a for pos, a in enumerate(args) if pos not in drop))


def _bool_ite(m: Match) -> bool:
    return m["t"].sort.is_bool()


EXTENDED_RULES: tuple[Rule, ...] = DEFAULT_RULES + (
    Rule(
        "eq_ctx_entailed",
        p_eq(PVar("a"), PVar("b")),
        _eq_ctx_entailed,
        doc="x = c entailed by conjunct facts → true (off conjunct root)",
    ),
    Rule(
        "ite_bool_branch",
        p_ite(PVar("c"), PVar("t"), PVar("e")),
        _ite_bool_branch,
        guard=_bool_ite,
        doc="ite with a constant boolean branch → connectives",
    ),
    Rule(
        "ite_negated_cond",
        p_ite(PVar("c", klass=Not), PVar("t"), PVar("e")),
        _ite_negated_cond,
        doc="ite(¬c, t, e) → ite(c, e, t)",
    ),
    Rule(
        "ite_branch_merge",
        p_ite(PVar("c"), PVar("t"), PVar("e")),
        _ite_branch_merge,
        doc="ite(c, ite(c, a, _), e) → ite(c, a, e) (and dual)",
    ),
    Rule(
        "eq_ite_lift",
        p_eq(PVar("a"), PVar("b")),
        _eq_ite_lift,
        doc="ite(c, t, e) = k → ite(c, t = k, e = k)",
    ),
    Rule(
        "lt_bounds",
        p_lt(PVar("a", kind="numeric"), PVar("b", kind="numeric")),
        _lt_bounds,
        doc="interval-fold a < b (context-refined ranges)",
    ),
    Rule(
        "le_bounds",
        p_le(PVar("a", kind="numeric"), PVar("b", kind="numeric")),
        _le_bounds,
        doc="interval-fold a <= b (context-refined ranges)",
    ),
    Rule(
        "eq_bounds",
        p_eq(PVar("a"), PVar("b")),
        _eq_bounds,
        doc="interval-fold a = b (disjoint → false, pinned → true)",
    ),
    Rule(
        "cmp_chain_and",
        PAc(And),
        _cmp_chain_and,
        doc="x < c1 ∧ x < c2 → x < min(c1, c2)",
    ),
    Rule(
        "cmp_chain_or",
        PAc(Or),
        _cmp_chain_or,
        doc="x < c1 ∨ x < c2 → x < max(c1, c2)",
    ),
    Rule("absorb_and", PAc(And), _absorb_and, doc="a ∧ (a ∨ b) → a"),
    Rule("absorb_or", PAc(Or), _absorb_or, doc="a ∨ (a ∧ b) → a"),
    Rule(
        "not_over_and",
        p_not(PVar("a", klass=And)),
        _not_over_and,
        doc="¬(a ∧ b) → ¬a ∨ ¬b",
    ),
    Rule(
        "not_over_or",
        p_not(PVar("a", klass=Or)),
        _not_over_or,
        doc="¬(a ∨ b) → ¬a ∧ ¬b",
    ),
    Rule(
        "not_over_implies",
        p_not(PVar("a", klass=Implies)),
        _not_over_implies,
        doc="¬(a ⇒ b) → a ∧ ¬b",
    ),
    Rule(
        "not_over_lt",
        p_not(PVar("a", klass=Lt)),
        _not_over_lt,
        doc="¬(a < b) → b ≤ a",
    ),
    Rule(
        "not_over_le",
        p_not(PVar("a", klass=Le)),
        _not_over_le,
        doc="¬(a ≤ b) → b < a",
    ),
    Rule(
        "not_over_ite",
        p_not(PVar("a", klass=Ite, kind="bool")),
        _not_over_ite,
        doc="¬ite(c, a, b) → ite(c, ¬a, ¬b)",
    ),
)


# ---------------------------------------------------------------------------
# per-constant rule families (extensibility idiom; benchmark scale)
# ---------------------------------------------------------------------------


def make_const_comparison_rules(values) -> list[Rule]:
    """Per-constant comparison folds: four rules per value ``c``, each
    anchored on the exact interned constant so the discrimination net
    discriminates on it (a family like this is how a scenario adds
    domain constants without touching the engine)."""
    rules: list[Rule] = []
    for value in values:
        const = Const(value, IntSort(value, value))
        lit = PLit(const)
        operand = PVar("a", kind="numeric")

        def fold(m: Match, _c=const, _flip=False, _strict=True):
            lhs, rhs = ((_c, m["a"]) if _flip else (m["a"], _c))
            return _fold_cmp(m, lhs, rhs, strict=_strict)

        for name, pattern, flip, strict in (
            (f"lt_const_{value}", p_lt(operand, lit), False, True),
            (f"le_const_{value}", p_le(operand, lit), False, False),
            (f"gt_const_{value}", p_lt(lit, operand), True, True),
            (f"ge_const_{value}", p_le(lit, operand), True, False),
        ):
            rules.append(
                Rule(
                    name,
                    pattern,
                    (
                        lambda m, _f=fold, _flip=flip, _strict=strict: _f(
                            m, _flip=_flip, _strict=_strict
                        )
                    ),
                    doc=f"interval-fold comparison against {value}",
                )
            )
    return rules


# ---------------------------------------------------------------------------
# shared engine instances
# ---------------------------------------------------------------------------

_DEFAULT_ENGINE: RewriteEngine | None = None
_EXTENDED_ENGINE: RewriteEngine | None = None


def default_engine() -> RewriteEngine:
    """Process-wide engine backing the default :func:`simplify`."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = RewriteEngine(
            DEFAULT_RULES, name="default", context="eq"
        )
    return _DEFAULT_ENGINE


def extended_engine() -> RewriteEngine:
    """Process-wide engine backing ``deep_simplify``."""
    global _EXTENDED_ENGINE
    if _EXTENDED_ENGINE is None:
        _EXTENDED_ENGINE = RewriteEngine(
            EXTENDED_RULES, name="extended", context="bounds"
        )
    return _EXTENDED_ENGINE
