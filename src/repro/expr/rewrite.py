"""Rewrite-rule engine: many-to-one matching over the hash-consed DAG.

This module turns simplification into *data*: a rule is a pattern plus a
builder function, and a :class:`RewriteEngine` owns an ordered table of
rules compiled into a **discrimination net** so that matching hundreds
of rules against a node costs one trie walk instead of one traversal
per rule.  ``expr/rules.py`` holds the rule tables themselves;
``expr/simplify.py`` dispatches the public :func:`simplify` entry point
onto an engine instance.

Pattern language
----------------

* :class:`PVar` -- a typed pattern variable.  Matches any subterm,
  optionally constrained by node class (``klass``), sort kind
  (``kind`` in ``{"bool", "int", "enum", "numeric"}``), constant-ness
  (``const=True``) and an arbitrary predicate (``pred``).  Repeating a
  name makes the pattern *nonlinear*: later occurrences must match the
  identical interned node (identity ``is``, which is structural
  equality in the hash-consed core).
* :class:`PLit` -- exactly one interned leaf node (e.g. ``TRUE``).
* :class:`PNode` -- a fixed-arity operator (``Not``, ``Eq``, ``Lt``,
  ``Le``, ``Implies``, ``Iff``, ``Sub``, ``Neg``, ``Mul``, ``Ite``)
  with sub-patterns for every child.
* :class:`PAc` -- a variadic/commutative root (``And``, ``Or``,
  ``Add``).  It matches the whole node; the rule's builder scans the
  argument tuple itself (commutative-subset selection in the builder
  keeps matching deterministic and avoids the exponential AC-matching
  blowup -- the matchpy-style net still discriminates on the root).

Discrimination net
------------------

Fixed patterns are flattened to their preorder symbol string; pattern
variables become wildcard edges.  Terms are flattened the same way --
memoised by ``eid`` and depth-capped at the tallest pattern, with
subtrees below the cap collapsed to an opaque symbol only wildcards can
consume -- so candidate lookup for a node visits each trie branch at
most once and is O(1) amortised per shared subterm.  ``PAc`` rules are
bucketed by root class.  Candidates come back in table order, so the
net and the sequential fallback (:meth:`RewriteEngine.find_match` with
``sequential=True``, kept for differential benchmarks) pick the same
first match.

Context environment
-------------------

While rebuilding a conjunction the engine collects *facts* from the
immediate conjunct atoms (``x = c`` equalities, and in ``bounds`` mode
interval constraints via ``analysis/sortcheck``) and threads them into
the sibling arguments as a bounds environment ``{Var: (lo, hi)}``, so
rules can prune nested disjuncts: ``x = c1 ∧ (y ∨ x = c2)`` drops the
contradicting disjunct.  Soundness rule: a fact source is an immediate
conjunct atom, and ctx-based **entailed→true** folds never fire on an
immediate conjunct (``Match.at_conjunct_root``); otherwise two atoms
could circularly fold each other away (``x=3 ∧ 3=x``).
Contradiction→false folds are safe anywhere.

Fixpoint contract
-----------------

``RewriteEngine.simplify`` carries the same memoised idempotent
contract as the legacy pass: results are memoised per ``(eid, ctx)``,
every intermediate form in a rewrite chain maps to the final form, and
``simplify(simplify(e)) is simplify(e)`` holds.  Rule-level telemetry
(match attempts, fires, fixpoint iterations) feeds PR 9's metrics
registry when a run is instrumented; ``repro profile`` ranks rules.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from typing import Optional, Union

from .ast import (
    Add,
    And,
    Const,
    Eq,
    Expr,
    Iff,
    Implies,
    Ite,
    Le,
    Lt,
    Mul,
    Neg,
    Not,
    Or,
    Sub,
    Var,
    add,
    children,
    eq,
    free_vars,
    iff,
    implies,
    ite,
    land,
    le,
    lnot,
    lor,
    lt,
    mul,
    neg,
    sub,
)

__all__ = [
    "PVar",
    "PLit",
    "PNode",
    "PAc",
    "Pattern",
    "Match",
    "Rule",
    "DiscriminationNet",
    "RewriteEngine",
    "match_pattern",
    "pattern_height",
]

Bounds = tuple[int, int]
Ctx = Optional[dict[Var, Bounds]]


def _tel_metrics():
    """Metrics registry when telemetry is active, else ``None``.

    Lazy import: ``repro.core.telemetry`` must not be imported at
    module load time from the expression core (layering/import cycle).
    """
    from ..core.telemetry import active

    session = active()
    return session.metrics if session is not None else None


# ---------------------------------------------------------------------------
# patterns
# ---------------------------------------------------------------------------


class Pattern:
    """Base class for rule patterns."""

    __slots__ = ()


class PVar(Pattern):
    """Typed pattern variable; see module docstring for constraints."""

    __slots__ = ("name", "klass", "kind", "const", "pred")

    def __init__(
        self,
        name: str,
        klass: Union[type, tuple[type, ...], None] = None,
        kind: str | None = None,
        const: bool = False,
        pred: Callable[[Expr], bool] | None = None,
    ):
        if kind not in (None, "bool", "int", "enum", "numeric"):
            raise ValueError(f"unknown sort kind constraint {kind!r}")
        self.name = name
        self.klass = klass
        self.kind = kind
        self.const = const
        self.pred = pred

    def admits(self, node: Expr) -> bool:
        if self.const and not isinstance(node, Const):
            return False
        if self.klass is not None and not isinstance(node, self.klass):
            return False
        kind = self.kind
        if kind is not None:
            sort = node.sort
            if kind == "bool":
                if not sort.is_bool():
                    return False
            elif kind == "int":
                if not sort.is_int():
                    return False
            elif kind == "enum":
                if not sort.is_enum():
                    return False
            elif not (sort.is_int() or sort.is_enum()):
                return False
        return self.pred is None or self.pred(node)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PVar({self.name!r})"


class PLit(Pattern):
    """Exactly one interned leaf node (``Var`` or ``Const``)."""

    __slots__ = ("node",)

    def __init__(self, node: Expr):
        if children(node):
            raise ValueError("PLit patterns must be leaves; use PNode")
        self.node = node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PLit({self.node!r})"


# Fixed-arity composite classes a PNode may use, mapped to their net
# edge symbol (And/Or/Add are variadic: use PAc).
_NODE_SYMBOL: dict[type, tuple] = {
    Not: ("!",),
    Implies: ("=>",),
    Iff: ("<=>",),
    Eq: ("=",),
    Lt: ("<",),
    Le: ("<=",),
    Sub: ("-",),
    Neg: ("~",),
    Mul: ("*",),
    Ite: ("ite",),
}


class PNode(Pattern):
    """Fixed-arity operator pattern with child sub-patterns."""

    __slots__ = ("klass", "children")

    _ARITY = {Not: 1, Neg: 1, Ite: 3}

    def __init__(self, klass: type, kids: tuple[Pattern, ...]):
        if klass not in _NODE_SYMBOL:
            raise ValueError(
                f"{klass.__name__} is not a fixed-arity pattern root; "
                "use PAc for And/Or/Add"
            )
        arity = self._ARITY.get(klass, 2)
        if len(kids) != arity:
            raise ValueError(
                f"{klass.__name__} pattern takes {arity} children, "
                f"got {len(kids)}"
            )
        self.klass = klass
        self.children = tuple(kids)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PNode({self.klass.__name__}, {self.children!r})"


class PAc(Pattern):
    """Variadic root pattern (``And``/``Or``/``Add``): matches the whole
    node; the rule builder scans ``match.node.args`` itself."""

    __slots__ = ("klass",)

    def __init__(self, klass: type):
        if klass not in (And, Or, Add):
            raise ValueError("PAc roots are And, Or or Add")
        self.klass = klass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PAc({self.klass.__name__})"


def p_not(a: Pattern) -> PNode:
    return PNode(Not, (a,))


def p_implies(a: Pattern, b: Pattern) -> PNode:
    return PNode(Implies, (a, b))


def p_iff(a: Pattern, b: Pattern) -> PNode:
    return PNode(Iff, (a, b))


def p_eq(a: Pattern, b: Pattern) -> PNode:
    return PNode(Eq, (a, b))


def p_lt(a: Pattern, b: Pattern) -> PNode:
    return PNode(Lt, (a, b))


def p_le(a: Pattern, b: Pattern) -> PNode:
    return PNode(Le, (a, b))


def p_ite(c: Pattern, t: Pattern, e: Pattern) -> PNode:
    return PNode(Ite, (c, t, e))


def p_and() -> PAc:
    return PAc(And)


def p_or() -> PAc:
    return PAc(Or)


def pattern_height(p: Pattern) -> int:
    """Tree height of a pattern (leaves and AC roots count 1)."""
    if isinstance(p, PNode):
        return 1 + max(pattern_height(c) for c in p.children)
    return 1


def match_pattern(p: Pattern, node: Expr, bindings: dict[str, Expr]) -> bool:
    """Confirm ``p`` against ``node``, extending ``bindings`` in place."""
    if isinstance(p, PVar):
        if not p.admits(node):
            return False
        bound = bindings.get(p.name)
        if bound is not None:
            return bound is node
        bindings[p.name] = node
        return True
    if isinstance(p, PLit):
        return node is p.node
    if isinstance(p, PNode):
        if type(node) is not p.klass:
            return False
        kids = children(node)
        if len(kids) != len(p.children):
            return False
        return all(
            match_pattern(cp, ck, bindings)
            for cp, ck in zip(p.children, kids)
        )
    if isinstance(p, PAc):
        return type(node) is p.klass
    raise TypeError(f"unknown pattern {type(p).__name__}")


# ---------------------------------------------------------------------------
# match result + rules
# ---------------------------------------------------------------------------


class Match:
    """A confirmed match handed to a rule's guard and builder."""

    __slots__ = ("node", "bindings", "ctx", "at_conjunct_root")

    def __init__(
        self,
        node: Expr,
        bindings: Mapping[str, Expr],
        ctx: Ctx = None,
        at_conjunct_root: bool = False,
    ):
        self.node = node
        self.bindings = bindings
        # Bounds environment from enclosing conjunct facts; None when
        # no fact applies to this subterm's free variables.
        self.ctx = ctx
        # True when ``node`` is an immediate conjunct of the And that
        # contributed ctx facts: entailed→true folds must not fire
        # there (see module docstring on circular support).
        self.at_conjunct_root = at_conjunct_root

    def __getitem__(self, name: str) -> Expr:
        return self.bindings[name]

    def var_bounds(self, var: Expr) -> Bounds | None:
        """Context bounds for ``var``, if any fact constrains it."""
        if self.ctx is None or not isinstance(var, Var):
            return None
        return self.ctx.get(var)


class Rule:
    """One rewrite rule: pattern + optional guard + builder.

    The builder returns the replacement expression, or ``None`` /
    the matched node itself to decline (scan-style rules use this when
    nothing in the argument tuple changes).
    """

    __slots__ = ("name", "pattern", "build", "guard", "doc")

    def __init__(
        self,
        name: str,
        pattern: Pattern,
        build: Callable[[Match], Expr | None],
        guard: Callable[[Match], bool] | None = None,
        doc: str = "",
    ):
        self.name = name
        self.pattern = pattern
        self.build = build
        self.guard = guard
        self.doc = doc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Rule({self.name!r})"


# ---------------------------------------------------------------------------
# term flattening + discrimination net
# ---------------------------------------------------------------------------

# Opaque symbol for subtrees below the flattening cap: only wildcard
# edges can consume it (no pattern is deeper than the cap, so an exact
# edge never needs to look inside).
_DEEP = ("…",)

# Flattened term strings, keyed by (eid, depth): append-only like the
# intern table; shared subterms flatten once per depth.
_FLAT_MEMO: dict[tuple[int, int], tuple] = {}


def _symbol(node: Expr) -> tuple:
    t = type(node)
    if t is Var:
        return ("v", node.name, node.sort, node.primed)
    if t is Const:
        return ("c", node.value, node.sort)
    if t is And:
        return ("&", len(node.args))
    if t is Or:
        return ("|", len(node.args))
    if t is Add:
        return ("+", len(node.args))
    sym = _NODE_SYMBOL.get(t)
    if sym is None:
        raise TypeError(f"unknown expression node {t.__name__}")
    return sym


def flatten_term(node: Expr, depth: int) -> tuple:
    """Depth-capped preorder flattening: ``((symbol, size), ...)`` where
    ``size`` is the number of entries the subterm occupies (wildcard
    edges skip exactly that many)."""
    key = (node.eid, depth)
    cached = _FLAT_MEMO.get(key)
    if cached is not None:
        return cached
    kids = children(node)
    if not kids:
        out: tuple = ((_symbol(node), 1),)
    elif depth <= 1:
        out = ((_DEEP, 1),)
    else:
        parts = [flatten_term(k, depth - 1) for k in kids]
        entries = [(_symbol(node), 1 + sum(len(p) for p in parts))]
        for part in parts:
            entries.extend(part)
        out = tuple(entries)
    _FLAT_MEMO[key] = out
    return out


class _Trie:
    __slots__ = ("edges", "wild", "rules")

    def __init__(self):
        self.edges: dict[tuple, _Trie] = {}
        self.wild: _Trie | None = None
        self.rules: list[int] = []


def _pattern_path(p: Pattern, out: list) -> None:
    """Preorder path of net edges for a fixed pattern (None = wildcard)."""
    if isinstance(p, PVar):
        out.append(None)
    elif isinstance(p, PLit):
        out.append(_symbol(p.node))
    elif isinstance(p, PNode):
        out.append(_NODE_SYMBOL[p.klass])
        for c in p.children:
            _pattern_path(c, out)
    else:
        raise TypeError(f"{type(p).__name__} cannot appear inside a PNode")


class DiscriminationNet:
    """Trie over preorder symbol strings; one walk yields every rule
    whose pattern can match the node, in table order."""

    def __init__(self, rules: tuple[Rule, ...] | list[Rule]):
        self._root = _Trie()
        self._ac: dict[type, list[int]] = {}
        self._height = 1
        self._trivial: list[int] = []  # patterns that match leaves too
        for index, rule in enumerate(rules):
            p = rule.pattern
            if isinstance(p, PAc):
                self._ac.setdefault(p.klass, []).append(index)
                continue
            if isinstance(p, (PVar, PLit)):
                raise ValueError(
                    f"rule {rule.name!r}: root pattern must be a PNode "
                    "or PAc (a bare variable would match every node)"
                )
            self._height = max(self._height, pattern_height(p))
            path: list = []
            _pattern_path(p, path)
            node = self._root
            for sym in path:
                if sym is None:
                    if node.wild is None:
                        node.wild = _Trie()
                    node = node.wild
                else:
                    node = node.edges.setdefault(sym, _Trie())
            node.rules.append(index)

    @property
    def height(self) -> int:
        return self._height

    def candidates(self, node: Expr) -> list[int]:
        """Indices of rules whose pattern may match ``node`` (table
        order; callers confirm with :func:`match_pattern`)."""
        out = self._ac.get(type(node), [])
        out = list(out)
        flat = flatten_term(node, self._height)
        self._walk(self._root, flat, 0, out)
        if len(out) > 1:
            out.sort()
        return out

    def _walk(self, trie: _Trie, flat: tuple, i: int, out: list[int]) -> None:
        if i == len(flat):
            out.extend(trie.rules)
            return
        sym, size = flat[i]
        child = trie.edges.get(sym)
        if child is not None:
            self._walk(child, flat, i + 1, out)
        if trie.wild is not None:
            self._walk(trie.wild, flat, i + size, out)


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------

_EMPTY_BINDINGS: dict[str, Expr] = {}


class RewriteEngine:
    """Ordered rule table + discrimination net + memoised fixpoint.

    ``context`` selects how conjunct facts are collected for sibling
    pruning: ``None`` (no context), ``"eq"`` (``x = c`` equalities
    only -- the default tier) or ``"bounds"`` (full interval narrowing
    via ``analysis/sortcheck``, used by the extended tier).
    """

    # Bound on sibling-fact propagation rounds inside one conjunction
    # rebuild; two rounds reach fixpoint in practice, the cap guards
    # pathological rule sets.
    _MAX_FACT_ROUNDS = 4

    def __init__(
        self,
        rules,
        *,
        name: str = "rewrite",
        context: str | None = "eq",
    ):
        if context not in (None, "eq", "bounds"):
            raise ValueError(f"unknown context mode {context!r}")
        self.name = name
        self.rules: tuple[Rule, ...] = tuple(rules)
        self.net = DiscriminationNet(self.rules)
        self.context = context
        # Fixpoints keyed by eid (no context) or (eid, ctx_key, root).
        self._memo: dict[object, Expr] = {}
        self._metrics = None

    # -- public entry points ------------------------------------------------

    def simplify(self, expr: Expr) -> Expr:
        """Memoised idempotent fixpoint rewrite of ``expr``."""
        cached = self._memo.get(expr.eid)
        if cached is not None:
            return cached
        self._metrics = _tel_metrics()
        try:
            return self._simplify(expr, None, False)
        finally:
            self._metrics = None

    def find_match(
        self, expr: Expr, *, sequential: bool = False, ctx: Ctx = None
    ) -> tuple[Rule, Expr] | None:
        """First applicable ``(rule, result)`` for ``expr``, or ``None``.

        ``sequential=True`` attempts every rule in table order without
        the net -- the differential baseline for benchmarks; both modes
        return the identical first match.
        """
        if sequential:
            for rule in self.rules:
                fired = self._try_rule(rule, expr, ctx, False)
                if fired is not None:
                    return fired
            return None
        for index in self.net.candidates(expr):
            rule = self.rules[index]
            fired = self._try_rule(rule, expr, ctx, False)
            if fired is not None:
                return fired
        return None

    def memo_size(self) -> int:
        return len(self._memo)

    def clear_memo(self) -> None:
        """Drop memoised fixpoints (tests/benchmarks only)."""
        self._memo.clear()

    # -- matching -----------------------------------------------------------

    def _try_rule(
        self, rule: Rule, expr: Expr, ctx: Ctx, at_root: bool
    ) -> tuple[Rule, Expr] | None:
        pattern = rule.pattern
        if isinstance(pattern, PAc):
            if type(expr) is not pattern.klass:
                return None
            bindings = _EMPTY_BINDINGS
        else:
            bindings = {}
            if not match_pattern(pattern, expr, bindings):
                return None
        match = Match(expr, bindings, ctx, at_root)
        if rule.guard is not None and not rule.guard(match):
            return None
        result = rule.build(match)
        if result is None or result is expr:
            return None
        return rule, result

    def _apply_rules(self, expr: Expr, ctx: Ctx, at_root: bool) -> Expr:
        metrics = self._metrics
        for index in self.net.candidates(expr):
            rule = self.rules[index]
            if metrics is not None:
                metrics.inc(f"rewrite.rule.{rule.name}.attempts")
            fired = self._try_rule(rule, expr, ctx, at_root)
            if fired is not None:
                if metrics is not None:
                    metrics.inc(f"rewrite.rule.{rule.name}.fires")
                return fired[1]
        return expr

    # -- context environments ----------------------------------------------

    def _restrict(self, ctx: Ctx, expr: Expr) -> Ctx:
        """Facts relevant to ``expr`` (None when none apply)."""
        if not ctx:
            return None
        free = free_vars(expr)
        if not free:
            return None
        out = {v: b for v, b in ctx.items() if v in free}
        return out or None

    @staticmethod
    def _ctx_key(ctx: dict[Var, Bounds]) -> tuple:
        return tuple(
            sorted((v.eid, b[0], b[1]) for v, b in ctx.items())
        )

    def _assume(self, env: dict[Var, Bounds], fact: Expr) -> dict[Var, Bounds]:
        """Refine ``env`` under a conjunct ``fact``; unusable or
        conflicting facts are skipped (weaker env stays sound)."""
        if self.context == "bounds":
            # Layering: the expression core must not import the
            # analysis package at module load; narrow at call time.
            from ..analysis.sortcheck import narrow_env

            refined = narrow_env(env, fact)
            return env if refined is None else refined
        if isinstance(fact, Eq):
            var, val = None, None
            if isinstance(fact.lhs, Var) and isinstance(fact.rhs, Const):
                var, val = fact.lhs, fact.rhs.value
            elif isinstance(fact.rhs, Var) and isinstance(fact.lhs, Const):
                var, val = fact.rhs, fact.lhs.value
            if var is not None and not var.sort.is_bool():
                old = env.get(var)
                if old is not None and not (old[0] <= val <= old[1]):
                    # Conflicting equalities: the table's contradiction
                    # rule folds the conjunction; keep the env usable.
                    return env
                out = dict(env)
                out[var] = (val, val)
                return out
        return env

    # -- the fixpoint loop --------------------------------------------------

    def _simplify(self, expr: Expr, ctx: Ctx, at_root: bool) -> Expr:
        rctx = self._restrict(ctx, expr)
        if rctx is None:
            key: object = expr.eid
            make_key = lambda e: e.eid  # noqa: E731
        else:
            ctx_key = self._ctx_key(rctx)
            make_key = lambda e: (e.eid, ctx_key, at_root)  # noqa: E731
            key = make_key(expr)
        memo = self._memo
        cached = memo.get(key)
        if cached is not None:
            return cached
        metrics = self._metrics
        chain = [key]
        visited = {expr}
        current = expr
        iterations = 0
        while True:
            step = self._apply_rules(
                self._rebuild(current, rctx), rctx, at_root
            )
            iterations += 1
            if step is current or step in visited:
                break
            visited.add(step)
            step_key = make_key(step)
            cached = memo.get(step_key)
            if cached is not None:
                current = cached
                break
            chain.append(step_key)
            current = step
        if metrics is not None:
            metrics.inc("rewrite.fixpoint_iterations", iterations)
        for seen_key in chain:
            memo[seen_key] = current
        memo[make_key(current)] = current
        return current

    def _rebuild(self, expr: Expr, ctx: Ctx) -> Expr:
        """One bottom-up rebuild through the smart constructors, with
        children simplified under the threaded context."""
        t = type(expr)
        if t is Not:
            return lnot(self._simplify(expr.arg, ctx, False))
        if t is And:
            return self._rebuild_and(expr, ctx)
        if t is Or:
            return lor(
                *(self._simplify(a, ctx, False) for a in expr.args)
            )
        if t is Implies:
            return implies(
                self._simplify(expr.lhs, ctx, False),
                self._simplify(expr.rhs, ctx, False),
            )
        if t is Iff:
            return iff(
                self._simplify(expr.lhs, ctx, False),
                self._simplify(expr.rhs, ctx, False),
            )
        if t is Eq:
            return eq(
                self._simplify(expr.lhs, ctx, False),
                self._simplify(expr.rhs, ctx, False),
            )
        if t is Lt:
            return lt(
                self._simplify(expr.lhs, ctx, False),
                self._simplify(expr.rhs, ctx, False),
            )
        if t is Le:
            return le(
                self._simplify(expr.lhs, ctx, False),
                self._simplify(expr.rhs, ctx, False),
            )
        if t is Ite:
            return self._rebuild_ite(expr, ctx)
        if t is Add:
            return add(*(self._simplify(a, ctx, False) for a in expr.args))
        if t is Sub:
            return sub(
                self._simplify(expr.lhs, ctx, False),
                self._simplify(expr.rhs, ctx, False),
            )
        if t is Neg:
            return neg(self._simplify(expr.arg, ctx, False))
        if t is Mul:
            return mul(
                self._simplify(expr.lhs, ctx, False),
                self._simplify(expr.rhs, ctx, False),
            )
        return expr

    def _rebuild_ite(self, expr: Ite, ctx: Ctx) -> Expr:
        cond = self._simplify(expr.cond, ctx, False)
        then_ctx = else_ctx = ctx
        if self.context == "bounds":
            from ..analysis.sortcheck import narrow_env

            base = ctx or {}
            then_ctx = narrow_env(base, cond)
            else_ctx = narrow_env(base, cond, positive=False)
            if then_ctx is None:
                # cond is unsatisfiable under the enclosing facts.
                return self._simplify(expr.other, else_ctx or ctx, False)
            if else_ctx is None:
                return self._simplify(expr.then, then_ctx or ctx, False)
        return ite(
            cond,
            self._simplify(expr.then, then_ctx, False),
            self._simplify(expr.other, else_ctx, False),
        )

    def _rebuild_and(self, expr: And, ctx: Ctx) -> Expr:
        args = [self._simplify(a, ctx, False) for a in expr.args]
        node = land(*args)
        if self.context is None or not isinstance(node, And):
            return node
        # Propagate conjunct facts into siblings (nested-contradiction
        # pruning); re-simplification is memo-cheap when nothing bites.
        for _ in range(self._MAX_FACT_ROUNDS):
            args = list(node.args)
            base = dict(ctx) if ctx else {}
            envs: list[dict[Var, Bounds]] = []
            for i in range(len(args)):
                env = base
                for j, sibling in enumerate(args):
                    if j != i:
                        env = self._assume(env, sibling)
                envs.append(env)
            changed = False
            new_args = []
            for a, env in zip(args, envs):
                na = self._simplify(a, env or None, True) if env else a
                changed = changed or (na is not a)
                new_args.append(na)
            if not changed:
                return node
            node = land(*new_args)
            if not isinstance(node, And):
                return node
        return node
