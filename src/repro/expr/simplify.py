"""Local simplification of expressions.

The smart constructors in :mod:`repro.expr.ast` already fold constants
as expressions are built; :func:`simplify` re-runs that folding over a
whole tree (useful after substitution) and applies the algebraic rules
that keep learned guards and extracted invariants readable.

The rules themselves are **data**: see the rule tables in
:mod:`repro.expr.rules` (``DEFAULT_RULES`` is the authoritative list of
what the default pass does, rule by rule, including the
context-threaded nested-contradiction pruning) and the matching engine
in :mod:`repro.expr.rewrite`.  Three backends share this entry point:

* ``engine`` (default) -- ``DEFAULT_RULES`` on the discrimination-net
  engine; output-compatible with the legacy pass on the golden
  differential workloads, plus nested contradiction pruning.
* ``legacy`` -- the original hand-coded pass (:func:`legacy_simplify`),
  kept callable for differential testing.
* ``deep``  -- ``EXTENDED_RULES`` (:func:`deep_simplify`): ITE
  lifting/merging, NNF pushing, comparison chaining, constant-range
  propagation, absorption/subsumption.  Opt-in: it changes expression
  *shapes* (while preserving semantics), so the bit-for-bit pinned
  workloads run it only through explicit presimplify hooks.

Select the backend with :func:`set_simplify_backend` (CLI:
``--simplify``; environment: ``REPRO_SIMPLIFY``).

Whatever the backend, ``simplify`` is memoised by node identity
(hash-consed core) and *idempotent*: rules are iterated to a fixpoint,
the fixpoint is recorded for every intermediate form, and
``simplify(simplify(e)) is simplify(e)`` always holds, so repeated
simplification of shared predicates costs one dictionary lookup.
"""

from __future__ import annotations

import os

from .ast import And, Const, Eq, Expr, FALSE, Not, Or, TRUE, Var, land, lnot, lor
from .rules import default_engine, extended_engine
from .subst import transform
from .types import EnumSort

_BACKENDS = ("engine", "legacy", "deep")

_BACKEND = os.environ.get("REPRO_SIMPLIFY", "engine")
if _BACKEND not in _BACKENDS:  # pragma: no cover - env misconfiguration
    raise ValueError(
        f"REPRO_SIMPLIFY={_BACKEND!r}: expected one of {_BACKENDS}"
    )


def set_simplify_backend(mode: str) -> None:
    """Select the backend behind :func:`simplify` for this process."""
    global _BACKEND
    if mode not in _BACKENDS:
        raise ValueError(
            f"unknown simplify backend {mode!r}: expected one of {_BACKENDS}"
        )
    _BACKEND = mode


def simplify_backend() -> str:
    return _BACKEND


def simplify(expr: Expr) -> Expr:
    """Simplify ``expr`` under the selected backend (see module docs)."""
    if _BACKEND == "engine":
        return default_engine().simplify(expr)
    if _BACKEND == "deep":
        return extended_engine().simplify(expr)
    return legacy_simplify(expr)


def deep_simplify(expr: Expr) -> Expr:
    """Simplify with the extended rule tier regardless of the backend."""
    return extended_engine().simplify(expr)


# ---------------------------------------------------------------------------
# the legacy hand-coded pass (differential baseline)
# ---------------------------------------------------------------------------

# legacy_simplify() results, keyed by eid (identity ≡ structure for
# interned nodes, and integer keys survive spawn re-interning).
# Append-only, like the intern table itself; every entry maps its
# node's (also memoised) fixpoint.
_SIMPLIFY_MEMO: dict[int, Expr] = {}


def legacy_simplify(expr: Expr) -> Expr:
    """The pre-engine pass: rebuild through smart constructors, then
    apply the four original local rules, iterated to a fixpoint.

    Kept callable for differential testing against the rule-table
    engine; new rules go in ``expr/rules.py``, not here.
    """
    cached = _SIMPLIFY_MEMO.get(expr.eid)
    if cached is not None:
        return cached
    chain = [expr]
    visited = {expr}
    current = expr
    while True:
        cached = _SIMPLIFY_MEMO.get(current.eid)
        if cached is not None:
            current = cached
            break
        step = _rules(transform(current, lambda leaf: leaf))
        if step is current or step in visited:
            break
        chain.append(step)
        visited.add(step)
        current = step
    for seen in chain:
        _SIMPLIFY_MEMO[seen.eid] = current
    _SIMPLIFY_MEMO[current.eid] = current
    return current


def _as_var_eq_const(expr: Expr) -> tuple[Var, int] | None:
    if isinstance(expr, Eq) and isinstance(expr.lhs, Var) and isinstance(expr.rhs, Const):
        return expr.lhs, expr.rhs.value
    if isinstance(expr, Eq) and isinstance(expr.rhs, Var) and isinstance(expr.lhs, Const):
        return expr.rhs, expr.lhs.value
    return None


# contract: ignore[C007] legacy differential baseline kept verbatim; the live rules are table entries in expr/rules.py
def _rules(expr: Expr) -> Expr:
    if isinstance(expr, And):
        args = [_rules(a) for a in expr.args]
        # Contradicting equalities on the same variable.
        seen: dict[Var, int] = {}
        for arg in args:
            pair = _as_var_eq_const(arg)
            if pair is not None:
                var, value = pair
                if var in seen and seen[var] != value:
                    return FALSE
                seen[var] = value
        # Complement pair detection.  Probe structurally -- building
        # lnot(arg) per argument would intern a garbage Not node per
        # probe and grow the intern table on every pass.
        present = set(args)
        for arg in args:
            if isinstance(arg, Not) and arg.arg in present:
                return FALSE
        return land(*args)
    if isinstance(expr, Or):
        args = [_rules(a) for a in expr.args]
        present = set(args)
        for arg in args:
            if isinstance(arg, Not) and arg.arg in present:
                return TRUE
        # Enum sweep: disjunction of equalities covering every member.
        by_var: dict[Var, set[int]] = {}
        for arg in args:
            pair = _as_var_eq_const(arg)
            if pair is not None and isinstance(pair[0].sort, EnumSort):
                by_var.setdefault(pair[0], set()).add(pair[1])
        for var, values in by_var.items():
            if len(values) == var.sort.cardinality:
                return TRUE
        return lor(*args)
    if isinstance(expr, Not):
        return lnot(_rules(expr.arg))
    return expr


def is_trivially_true(expr: Expr) -> bool:
    return simplify(expr) is TRUE


def is_trivially_false(expr: Expr) -> bool:
    return simplify(expr) is FALSE
