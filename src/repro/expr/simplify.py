"""Local simplification of expressions.

The smart constructors in :mod:`repro.expr.ast` already fold constants as
expressions are built; :func:`simplify` re-runs that folding over a whole
tree (useful after substitution) and applies a handful of extra local
rules that keep learned guards and extracted invariants readable:

* ``x = c1 ∧ x = c2`` with ``c1 ≠ c2``  →  ``false``
* ``x = c1 ∨ x ≠ c1`` →  ``true``  (complement detection in general)
* enum equality sweeps: ``x = A ∨ x = B ∨ ... `` over *all* members → ``true``
* implication with syntactically identical sides → ``true``

``simplify`` is memoised by node identity (hash-consed core) and
*idempotent*: the rules are iterated to a fixpoint, and the fixpoint is
recorded for every intermediate form, so ``simplify(simplify(e)) is
simplify(e)`` always holds and repeated simplification of shared
predicates costs one dictionary lookup.
"""

from __future__ import annotations

from .ast import And, Const, Eq, Expr, FALSE, Not, Or, TRUE, Var, land, lnot, lor
from .subst import transform
from .types import EnumSort

# simplify() results, keyed by eid (identity ≡ structure for interned
# nodes, and integer keys survive spawn re-interning).  Append-only,
# like the intern table itself; every entry maps its node's (also
# memoised) fixpoint.
_SIMPLIFY_MEMO: dict[int, Expr] = {}


def simplify(expr: Expr) -> Expr:
    """Rebuild through smart constructors, then apply local rules.

    Iterates to a fixpoint (flattening can expose new complement pairs),
    so the result is stable under further simplification.
    """
    cached = _SIMPLIFY_MEMO.get(expr.eid)
    if cached is not None:
        return cached
    chain = [expr]
    visited = {expr}
    current = expr
    while True:
        cached = _SIMPLIFY_MEMO.get(current.eid)
        if cached is not None:
            current = cached
            break
        step = _rules(transform(current, lambda leaf: leaf))
        if step is current or step in visited:
            break
        chain.append(step)
        visited.add(step)
        current = step
    for seen in chain:
        _SIMPLIFY_MEMO[seen.eid] = current
    _SIMPLIFY_MEMO[current.eid] = current
    return current


def _as_var_eq_const(expr: Expr) -> tuple[Var, int] | None:
    if isinstance(expr, Eq) and isinstance(expr.lhs, Var) and isinstance(expr.rhs, Const):
        return expr.lhs, expr.rhs.value
    if isinstance(expr, Eq) and isinstance(expr.rhs, Var) and isinstance(expr.lhs, Const):
        return expr.rhs, expr.lhs.value
    return None


def _rules(expr: Expr) -> Expr:
    if isinstance(expr, And):
        args = [_rules(a) for a in expr.args]
        # Contradicting equalities on the same variable.
        seen: dict[Var, int] = {}
        for arg in args:
            pair = _as_var_eq_const(arg)
            if pair is not None:
                var, value = pair
                if var in seen and seen[var] != value:
                    return FALSE
                seen[var] = value
        # Complement pair detection.
        present = set(args)
        for arg in args:
            if lnot(arg) in present:
                return FALSE
        return land(*args)
    if isinstance(expr, Or):
        args = [_rules(a) for a in expr.args]
        present = set(args)
        for arg in args:
            if lnot(arg) in present:
                return TRUE
        # Enum sweep: disjunction of equalities covering every member.
        by_var: dict[Var, set[int]] = {}
        for arg in args:
            pair = _as_var_eq_const(arg)
            if pair is not None and isinstance(pair[0].sort, EnumSort):
                by_var.setdefault(pair[0], set()).add(pair[1])
        for var, values in by_var.items():
            if len(values) == var.sort.cardinality:
                return TRUE
        return lor(*args)
    if isinstance(expr, Not):
        return lnot(_rules(expr.arg))
    return expr


def is_trivially_true(expr: Expr) -> bool:
    return simplify(expr) is TRUE


def is_trivially_false(expr: Expr) -> bool:
    return simplify(expr) is FALSE
