"""SMT-style solver facade over the bit-blaster and the CDCL solver.

The model checker formulates queries as conjunctions of expression-level
assertions; :class:`SmtSolver` bit-blasts them into one CNF and solves.
Satisfying assignments decode back into valuations of the original
variables, which become counterexample observations.
"""

from __future__ import annotations

from ..expr.ast import Expr, Var
from ..sat.solver import Solver
from .encoder import Encoder


class SmtSolver:
    """Assert expressions, check satisfiability, extract models."""

    def __init__(self) -> None:
        self._encoder = Encoder()
        self._asserted: list[Expr] = []
        self._last_model: dict[str, int] | None = None
        self.stats = {"checks": 0, "conflicts": 0, "decisions": 0}

    def declare(self, var: Var) -> None:
        """Pre-declare a variable (useful so models mention all of X)."""
        self._encoder.declare(var)

    def add(self, expr: Expr) -> None:
        """Assert ``expr`` (Boolean) as a constraint."""
        self._asserted.append(expr)
        self._encoder.assert_expr(expr)

    def check(self) -> bool:
        """True iff the asserted constraints are satisfiable."""
        self.stats["checks"] += 1
        solver = Solver(self._encoder.cnf)
        result = solver.solve()
        self.stats["conflicts"] += result.conflicts
        self.stats["decisions"] += result.decisions
        if result.satisfiable:
            self._last_model = self._encoder.decode_model(result.model)
        else:
            self._last_model = None
        return result.satisfiable

    def model(self) -> dict[str, int]:
        """Valuation (by qualified name) from the last sat check."""
        if self._last_model is None:
            raise RuntimeError("no model available (last check was unsat?)")
        return dict(self._last_model)


def is_satisfiable(*exprs: Expr) -> bool:
    """One-shot satisfiability of a conjunction of expressions."""
    solver = SmtSolver()
    for expr in exprs:
        solver.add(expr)
    return solver.check()


def get_model(*exprs: Expr) -> dict[str, int] | None:
    """One-shot model of a conjunction, or None if unsat."""
    solver = SmtSolver()
    for expr in exprs:
        solver.add(expr)
    if solver.check():
        return solver.model()
    return None


def is_valid(expr: Expr) -> bool:
    """Validity of a Boolean expression (no free-var constraints beyond sorts)."""
    from ..expr.ast import lnot

    return not is_satisfiable(lnot(expr))


def implies_semantically(lhs: Expr, rhs: Expr) -> bool:
    """True iff ``lhs -> rhs`` is valid over the variable sorts."""
    from ..expr.ast import land, lnot

    return not is_satisfiable(land(lhs, lnot(rhs)))
