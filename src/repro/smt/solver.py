"""SMT-style solver facade over the bit-blaster and the CDCL solver.

The model checker formulates queries as conjunctions of expression-level
assertions; :class:`SmtSolver` bit-blasts them and solves.  Satisfying
assignments decode back into valuations of the original variables, which
become counterexample observations.

The facade is genuinely incremental: it keeps **one** backing
:class:`~repro.sat.solver.Solver` for its whole lifetime and feeds it
only the clauses encoded since the previous ``check``.  Scoped queries
use :meth:`push`/:meth:`pop`: assertions inside a scope are *not* turned
into unit clauses but into assumption literals for the next solve, so
popping a scope costs nothing and everything the SAT core learned --
including lemmas about the scoped assertions themselves, which the
encoder memoises by expression node -- is reused by later queries.
"""

from __future__ import annotations

from ..expr.ast import Expr, Var
from ..sat.solver import Solver
from .encoder import Encoder


def _tel_metrics():
    """Live metrics registry, or ``None`` (lazy import: this module is
    inside the core package's import closure, see telemetry docstring)."""
    from ..core.telemetry import active

    session = active()
    return None if session is None else session.metrics


class SmtSolver:
    """Assert expressions, check satisfiability, extract models."""

    def __init__(self) -> None:
        self._encoder = Encoder()
        self._solver = Solver()
        self._fed_clauses = 0
        # Stack of open scopes: each holds the assumption literals of its
        # scoped assertions plus the first assertion that encoded to
        # constant false (None while the scope is satisfiable).
        self._scopes: list[tuple[list[int], Expr | None]] = []
        self._last_model: dict[str, int] | None = None
        # Which Expr each assumption literal stands for, so unsat cores
        # decode back to the conjuncts the caller asserted/guarded.
        self._lit_exprs: dict[int, Expr] = {}
        self._last_core: tuple[int, ...] | None = None
        self._last_core_exprs: tuple[Expr, ...] | None = None
        self.stats = {"checks": 0, "conflicts": 0, "decisions": 0}

    @property
    def solver(self) -> Solver:
        """The persistent backing SAT solver (stable across checks)."""
        return self._solver

    @property
    def encoder(self) -> Encoder:
        return self._encoder

    def declare(self, var: Var) -> None:
        """Pre-declare a variable (useful so models mention all of X)."""
        self._encoder.declare(var)

    # ------------------------------------------------------------------
    # assertions and scopes
    # ------------------------------------------------------------------
    def add(self, expr: Expr) -> None:
        """Assert ``expr`` (Boolean) as a constraint.

        Outside any scope the assertion is permanent; inside the
        innermost scope it lives until the matching :meth:`pop`.
        """
        lit = self._encoder.encode_literal(expr)
        if not self._scopes:
            self._encoder.gates.assert_true(lit)
            return
        const = self._encoder.gates.is_const(lit)
        lits, unsat = self._scopes[-1]
        if const is True:
            return
        if const is False:
            if unsat is None:
                self._scopes[-1] = (lits, expr)
            return
        self._lit_exprs.setdefault(lit, expr)
        lits.append(lit)

    def literal(self, expr: Expr) -> int:
        """Encode ``expr`` to a guard literal without asserting it.

        The literal is constrained to be *equivalent* to the expression;
        pass it to ``check(assuming=...)`` to enable the constraint for
        a single query.  Unlike scoped assertions, guard literals are
        caller-managed, which lets consumers keep stable per-constraint
        switches across many scopes (e.g. the unroller's per-frame
        transition guards, or IC3's frame activations and cube
        conjuncts).
        """
        lit = self._encoder.encode_literal(expr)
        self._lit_exprs.setdefault(lit, expr)
        return lit

    def push(self) -> None:
        """Open a retractable assertion scope."""
        self._scopes.append(([], None))

    def pop(self) -> None:
        """Drop the innermost scope and its assertions."""
        if not self._scopes:
            raise RuntimeError("pop without matching push")
        self._scopes.pop()

    @property
    def scope_depth(self) -> int:
        return len(self._scopes)

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def _sync(self) -> None:
        """Feed the solver every clause encoded since the last sync."""
        cnf = self._encoder.cnf
        self._solver.ensure_vars(cnf.num_vars)
        for clause in cnf.clauses[self._fed_clauses :]:
            self._solver.add_clause(clause)
        self._fed_clauses = self._encoder.clause_cursor()

    @property
    def clauses_fed(self) -> int:
        """Total clauses handed to the backing solver so far."""
        return self._fed_clauses

    def check(self, assuming: "list[int] | tuple[int, ...]" = ()) -> bool:
        """True iff the asserted constraints are satisfiable.

        ``assuming`` adds guard literals from :meth:`literal` for this
        query only.  After an UNSAT answer, :attr:`unsat_core` holds the
        subset of assumption literals (scoped assertions plus
        ``assuming`` guards) the refutation actually used, and
        :meth:`unsat_core_exprs` decodes them back to expressions.
        """
        self.stats["checks"] += 1
        self._sync()
        self._last_core = None
        self._last_core_exprs = None
        for _lits, unsat_expr in self._scopes:
            if unsat_expr is not None:
                # A scoped assertion simplified to constant false: the
                # contradiction needs nothing beyond that one conjunct.
                self._last_model = None
                self._last_core = ()
                self._last_core_exprs = (unsat_expr,)
                return False
        assumptions = [
            lit for lits, _unsat in self._scopes for lit in lits
        ] + list(assuming)
        conflicts_before = self._solver.conflicts
        decisions_before = self._solver.decisions
        result = self._solver.solve(assumptions)
        self.stats["conflicts"] += self._solver.conflicts - conflicts_before
        self.stats["decisions"] += self._solver.decisions - decisions_before
        registry = _tel_metrics()
        if registry is not None:
            registry.inc("smt.checks")
            registry.inc("smt.conflicts", result.conflicts_delta)
            registry.inc("smt.decisions", result.decisions_delta)
            registry.gauge_max("smt.clauses_fed_peak", self._fed_clauses)
        if result.satisfiable:
            self._last_model = self._encoder.decode_model(result.model)
        else:
            self._last_model = None
            self._last_core = result.unsat_core
            if result.unsat_core is not None:
                self._last_core_exprs = tuple(
                    self._lit_exprs[lit]
                    for lit in result.unsat_core
                    if lit in self._lit_exprs
                )
        return result.satisfiable

    @property
    def unsat_core(self) -> tuple[int, ...] | None:
        """Assumption literals used by the last UNSAT check (else None).

        A subset of the literals assumed in that check; re-checking with
        just these stays UNSAT.  Empty means the contradiction needed no
        assumption literal: either the permanent assertions alone are
        contradictory, or a *scoped* assertion simplified to constant
        false -- :meth:`unsat_core_exprs` names that conjunct, and
        popping its scope restores satisfiability.
        """
        return self._last_core

    def unsat_core_exprs(self) -> tuple[Expr, ...]:
        """The asserted/guarded expressions behind :attr:`unsat_core`.

        Literals without a recorded expression (none, in normal use) are
        skipped.  Raises if the last check was not UNSAT.
        """
        if self._last_core_exprs is None and self._last_core is None:
            raise RuntimeError("no unsat core available (last check was sat?)")
        return self._last_core_exprs or ()

    def model(self) -> dict[str, int]:
        """Valuation (by qualified name) from the last sat check."""
        if self._last_model is None:
            raise RuntimeError("no model available (last check was unsat?)")
        return dict(self._last_model)


def is_satisfiable(*exprs: Expr) -> bool:
    """One-shot satisfiability of a conjunction of expressions."""
    solver = SmtSolver()
    for expr in exprs:
        solver.add(expr)
    return solver.check()


def get_model(*exprs: Expr) -> dict[str, int] | None:
    """One-shot model of a conjunction, or None if unsat."""
    solver = SmtSolver()
    for expr in exprs:
        solver.add(expr)
    if solver.check():
        return solver.model()
    return None


def is_valid(expr: Expr) -> bool:
    """Validity of a Boolean expression (no free-var constraints beyond sorts)."""
    from ..expr.ast import lnot

    return not is_satisfiable(lnot(expr))


def implies_semantically(lhs: Expr, rhs: Expr) -> bool:
    """True iff ``lhs -> rhs`` is valid over the variable sorts."""
    from ..expr.ast import land, lnot

    return not is_satisfiable(land(lhs, lnot(rhs)))
