"""Bit-vector helpers for the bit-blaster.

A :class:`BitVec` is a list of CNF literals, least-significant bit first,
interpreted in two's complement.  Widths are chosen by interval analysis
(:func:`width_for_range`) so that every operation is given enough result
bits to be *exact* -- modular arithmetic at the chosen width coincides
with unbounded integer arithmetic, which is what the expression IR means.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sat.tseitin import GateBuilder


def width_for_range(lo: int, hi: int) -> int:
    """Smallest two's complement width representing every value in [lo, hi]."""
    if lo > hi:
        raise ValueError(f"empty range [{lo}, {hi}]")
    width = 1
    while not (-(1 << (width - 1)) <= lo and hi <= (1 << (width - 1)) - 1):
        width += 1
    return width


@dataclass
class BitVec:
    """Two's complement bit-vector of CNF literals (LSB first)."""

    bits: list[int]

    @property
    def width(self) -> int:
        return len(self.bits)

    @property
    def sign_bit(self) -> int:
        return self.bits[-1]


def const_bitvec(value: int, width: int, gates: GateBuilder) -> BitVec:
    """Encode a constant as width-bit two's complement."""
    if not (-(1 << (width - 1)) <= value <= (1 << (width - 1)) - 1):
        raise ValueError(f"constant {value} does not fit in {width} bits")
    masked = value & ((1 << width) - 1)
    bits = [
        gates.const(bool((masked >> i) & 1)) for i in range(width)
    ]
    return BitVec(bits)


def sign_extend(vec: BitVec, width: int) -> BitVec:
    """Sign-extend (never truncate) to ``width`` bits."""
    if width < vec.width:
        raise ValueError(f"cannot truncate {vec.width}-bit vector to {width}")
    return BitVec(vec.bits + [vec.sign_bit] * (width - vec.width))


def fit(vec: BitVec, width: int) -> BitVec:
    """Sign-extend or truncate to ``width`` bits.

    Truncation of two's complement preserves the value whenever the value
    fits in the target width; interval analysis guarantees exactly that
    for every use in the encoder, so this is value-preserving.
    """
    if width >= vec.width:
        return sign_extend(vec, width)
    return BitVec(vec.bits[:width])


def decode_bits(values: list[bool]) -> int:
    """Decode two's complement bit values (LSB first) to a Python int."""
    total = sum(1 << i for i, bit in enumerate(values[:-1]) if bit)
    if values[-1]:
        total -= 1 << (len(values) - 1)
    return total


def add_bitvec(a: BitVec, b: BitVec, width: int, gates: GateBuilder) -> BitVec:
    """Ripple-carry addition; exact because the result fits ``width`` bits."""
    work = max(width, a.width, b.width)
    av, bv = sign_extend(a, work), sign_extend(b, work)
    out: list[int] = []
    carry = gates.false_lit
    for i in range(work):
        total, carry = gates.full_adder(av.bits[i], bv.bits[i], carry)
        out.append(total)
    return fit(BitVec(out), width)


def negate_bitvec(vec: BitVec, width: int, gates: GateBuilder) -> BitVec:
    """Two's complement negation."""
    work = max(width, vec.width + 1)  # -(-2^(w-1)) needs one extra bit
    extended = sign_extend(vec, work)
    inverted = BitVec([gates.not_gate(bit) for bit in extended.bits])
    one = const_bitvec(1, work, gates)
    return fit(add_bitvec(inverted, one, work, gates), width)


def sub_bitvec(a: BitVec, b: BitVec, width: int, gates: GateBuilder) -> BitVec:
    return add_bitvec(a, negate_bitvec(b, width, gates), width, gates)


def mul_bitvec(a: BitVec, b: BitVec, width: int, gates: GateBuilder) -> BitVec:
    """Shift-and-add multiplication; exact at the interval-derived width."""
    work = max(width, a.width + b.width)
    av, bv = sign_extend(a, work), sign_extend(b, work)
    accum = const_bitvec(0, work, gates)
    for i in range(work):
        # Partial product: (a << i) gated by b_i, truncated to work width.
        shifted = [gates.false_lit] * i + av.bits[: work - i]
        gated = BitVec([gates.and_gate(bit, bv.bits[i]) for bit in shifted])
        accum = add_bitvec(accum, BitVec(gated.bits), work, gates)
    return fit(accum, width)


def eq_bitvec(a: BitVec, b: BitVec, gates: GateBuilder) -> int:
    width = max(a.width, b.width)
    av, bv = sign_extend(a, width), sign_extend(b, width)
    return gates.and_gate(
        *(gates.xnor_gate(av.bits[i], bv.bits[i]) for i in range(width))
    )


def unsigned_less(a: BitVec, b: BitVec, gates: GateBuilder) -> int:
    """a < b for equal-width vectors read as unsigned."""
    assert a.width == b.width
    result = gates.false_lit
    for i in range(a.width):  # LSB to MSB; MSB decided last dominates
        bit_lt = gates.and_gate(gates.not_gate(a.bits[i]), b.bits[i])
        bit_eq = gates.xnor_gate(a.bits[i], b.bits[i])
        result = gates.or_gate(bit_lt, gates.and_gate(bit_eq, result))
    return result


def signed_less(a: BitVec, b: BitVec, gates: GateBuilder) -> int:
    """a < b in two's complement."""
    width = max(a.width, b.width)
    av, bv = sign_extend(a, width), sign_extend(b, width)
    sign_a, sign_b = av.sign_bit, bv.sign_bit
    a_neg_b_pos = gates.and_gate(sign_a, gates.not_gate(sign_b))
    same_sign = gates.xnor_gate(sign_a, sign_b)
    mag_less = unsigned_less(
        BitVec(av.bits[:-1] or [gates.false_lit]),
        BitVec(bv.bits[:-1] or [gates.false_lit]),
        gates,
    )
    return gates.or_gate(a_neg_b_pos, gates.and_gate(same_sign, mag_less))


def signed_leq(a: BitVec, b: BitVec, gates: GateBuilder) -> int:
    return gates.or_gate(signed_less(a, b, gates), eq_bitvec(a, b, gates))


def ite_bitvec(cond: int, then: BitVec, other: BitVec, width: int, gates: GateBuilder) -> BitVec:
    tv, ov = fit(then, width), fit(other, width)
    return BitVec(
        [gates.ite_gate(cond, tv.bits[i], ov.bits[i]) for i in range(width)]
    )
