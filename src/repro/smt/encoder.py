"""Word-level to bit-level encoder (bit-blaster).

Turns expressions from :mod:`repro.expr` into CNF over a
:class:`~repro.sat.tseitin.GateBuilder`.  Integer and enum variables are
declared with range constraints taken from their sorts, which mirrors
what CBMC sees for the generated C code (typed variables with
code-generator-chosen widths).

The encoder is memoised per expression node, so shared sub-expressions
(ubiquitous in priority-encoded transition relations) are encoded once.
With the hash-consed expression core the memo is keyed on the node's
``eid`` (interning makes structural equality object identity, so the
stable integer id *is* the structural key) -- cache probes cost a small
int hash instead of a deep structural hash, and the same interned
predicate asserted in different scopes or strengthening rounds always
hits the same literal.
"""

from __future__ import annotations

from ..expr.ast import (
    Add,
    And,
    Const,
    Eq,
    Expr,
    Iff,
    Implies,
    Ite,
    Le,
    Lt,
    Mul,
    Neg,
    Not,
    Or,
    Sub,
    Var,
    interval,
)
from ..expr.types import BoolSort, EnumSort, IntSort
from ..sat.cnf import CNF
from ..sat.tseitin import GateBuilder
from .bitvec import (
    BitVec,
    add_bitvec,
    const_bitvec,
    decode_bits,
    eq_bitvec,
    ite_bitvec,
    mul_bitvec,
    negate_bitvec,
    signed_leq,
    signed_less,
    sub_bitvec,
    width_for_range,
)


class Encoder:
    """Encodes expressions into a shared CNF."""

    def __init__(self, *, presimplify=None) -> None:
        self.cnf = CNF()
        self.gates = GateBuilder(self.cnf)
        self._bool_vars: dict[str, int] = {}
        self._int_vars: dict[str, BitVec] = {}
        self._var_sorts: dict[str, object] = {}
        # eid-keyed (interned exprs: eid is the structural identity).
        self._bool_cache: dict[int, int] = {}
        self._int_cache: dict[int, BitVec] = {}
        # Optional Expr -> Expr hook (e.g. ``expr.deep_simplify``)
        # applied at the public entry points before encoding: a smaller
        # input DAG means fewer Tseitin gates for every later query.
        # The hook's own memo keeps repeated entries cheap.
        self._presimplify = presimplify

    # ------------------------------------------------------------------
    # variable declaration
    # ------------------------------------------------------------------
    def declare(self, var: Var) -> None:
        """Declare a variable (idempotent); adds range constraints."""
        name = var.qualified_name
        if name in self._var_sorts:
            if self._var_sorts[name] != var.sort:
                raise ValueError(
                    f"variable {name!r} redeclared with different sort"
                )
            return
        self._var_sorts[name] = var.sort
        if isinstance(var.sort, BoolSort):
            self._bool_vars[name] = self.cnf.new_var()
            return
        if isinstance(var.sort, IntSort):
            lo, hi = var.sort.lo, var.sort.hi
        elif isinstance(var.sort, EnumSort):
            lo, hi = 0, var.sort.cardinality - 1
        else:
            raise TypeError(f"cannot declare variable of sort {var.sort}")
        width = width_for_range(lo, hi)
        vec = BitVec(self.cnf.new_vars(width))
        self._int_vars[name] = vec
        # Range constraints lo <= x <= hi.
        lo_vec = const_bitvec(lo, width, self.gates)
        hi_vec = const_bitvec(hi, width, self.gates)
        self.gates.assert_true(signed_leq(lo_vec, vec, self.gates))
        self.gates.assert_true(signed_leq(vec, hi_vec, self.gates))

    def _declare_all(self, expr: Expr) -> None:
        from ..expr.ast import free_vars

        for var in free_vars(expr):
            self.declare(var)

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------
    def encode_bool(self, expr: Expr) -> int:
        """Encode a Boolean expression; returns its output literal."""
        if not expr.sort.is_bool():
            raise TypeError(f"expected bool expression, got {expr.sort}")
        cached = self._bool_cache.get(expr.eid)
        if cached is not None:
            return cached
        lit = self._encode_bool(expr)
        self._bool_cache[expr.eid] = lit
        return lit

    def _encode_bool(self, expr: Expr) -> int:
        gates = self.gates
        if isinstance(expr, Const):
            return gates.const(bool(expr.value))
        if isinstance(expr, Var):
            self.declare(expr)
            return self._bool_vars[expr.qualified_name]
        if isinstance(expr, Not):
            return gates.not_gate(self.encode_bool(expr.arg))
        if isinstance(expr, And):
            return gates.and_gate(*(self.encode_bool(a) for a in expr.args))
        if isinstance(expr, Or):
            return gates.or_gate(*(self.encode_bool(a) for a in expr.args))
        if isinstance(expr, Implies):
            return gates.implies_gate(
                self.encode_bool(expr.lhs), self.encode_bool(expr.rhs)
            )
        if isinstance(expr, Iff):
            return gates.xnor_gate(
                self.encode_bool(expr.lhs), self.encode_bool(expr.rhs)
            )
        if isinstance(expr, Eq):
            if expr.lhs.sort.is_bool():
                return gates.xnor_gate(
                    self.encode_bool(expr.lhs), self.encode_bool(expr.rhs)
                )
            return eq_bitvec(
                self.encode_int(expr.lhs), self.encode_int(expr.rhs), gates
            )
        if isinstance(expr, Lt):
            return signed_less(
                self.encode_int(expr.lhs), self.encode_int(expr.rhs), gates
            )
        if isinstance(expr, Le):
            return signed_leq(
                self.encode_int(expr.lhs), self.encode_int(expr.rhs), gates
            )
        if isinstance(expr, Ite):
            return gates.ite_gate(
                self.encode_bool(expr.cond),
                self.encode_bool(expr.then),
                self.encode_bool(expr.other),
            )
        raise TypeError(f"cannot encode boolean node {type(expr).__name__}")

    def encode_int(self, expr: Expr) -> BitVec:
        """Encode an int/enum expression; returns its bit-vector."""
        cached = self._int_cache.get(expr.eid)
        if cached is not None:
            return cached
        vec = self._encode_int(expr)
        self._int_cache[expr.eid] = vec
        return vec

    def _encode_int(self, expr: Expr) -> BitVec:
        gates = self.gates
        if isinstance(expr, Const):
            lo, hi = interval(expr)
            width = width_for_range(min(lo, expr.value), max(hi, expr.value))
            return const_bitvec(expr.value, width, gates)
        if isinstance(expr, Var):
            self.declare(expr)
            return self._int_vars[expr.qualified_name]
        lo, hi = interval(expr)
        width = width_for_range(lo, hi)
        if isinstance(expr, Add):
            accum = self.encode_int(expr.args[0])
            for arg in expr.args[1:]:
                accum = add_bitvec(accum, self.encode_int(arg), width, gates)
            return accum
        if isinstance(expr, Sub):
            return sub_bitvec(
                self.encode_int(expr.lhs), self.encode_int(expr.rhs), width, gates
            )
        if isinstance(expr, Neg):
            return negate_bitvec(self.encode_int(expr.arg), width, gates)
        if isinstance(expr, Mul):
            return mul_bitvec(
                self.encode_int(expr.lhs), self.encode_int(expr.rhs), width, gates
            )
        if isinstance(expr, Ite):
            return ite_bitvec(
                self.encode_bool(expr.cond),
                self.encode_int(expr.then),
                self.encode_int(expr.other),
                width,
                gates,
            )
        raise TypeError(f"cannot encode integer node {type(expr).__name__}")

    def assert_expr(self, expr: Expr) -> None:
        """Assert a Boolean expression as a permanent constraint."""
        self.gates.assert_true(self.encode_literal(expr))

    def encode_literal(self, expr: Expr) -> int:
        """Encode ``expr`` (declaring its free variables) without asserting.

        The returned literal is constrained to be *equivalent* to the
        expression, never to hold.  This is the incremental-query
        primitive: :class:`~repro.smt.solver.SmtSolver` passes scoped
        assertion literals as solver assumptions, so a query is retracted
        by simply dropping its literal -- the gate definitions (which are
        satisfiable on their own) stay behind and are shared with every
        later query, as are all clauses the SAT core learned about them.
        """
        if self._presimplify is not None:
            expr = self._presimplify(expr)
        self._declare_all(expr)
        return self.encode_bool(expr)

    def clause_cursor(self) -> int:
        """Number of clauses encoded so far (for incremental feeding).

        A consumer that keeps a persistent SAT solver remembers the
        cursor after each sync and feeds only ``cnf.clauses[cursor:]``
        next time; the encoder itself never discards clauses.
        """
        return len(self.cnf.clauses)

    # ------------------------------------------------------------------
    # model decoding
    # ------------------------------------------------------------------
    def decode_model(self, model: dict[int, bool]) -> dict[str, int]:
        """Map a SAT model back to a valuation by qualified variable name."""
        result: dict[str, int] = {}
        for name, lit in self._bool_vars.items():
            result[name] = 1 if model.get(lit, False) else 0
        for name, vec in self._int_vars.items():
            values = [model.get(abs(bit), False) ^ (bit < 0) for bit in vec.bits]
            result[name] = decode_bits(values)
        return result

    @property
    def declared_names(self) -> list[str]:
        return sorted(self._var_sorts)
