"""Bit-blasting SMT layer: expressions -> CNF -> CDCL solver."""

from .bitvec import BitVec, decode_bits, width_for_range
from .encoder import Encoder
from .solver import (
    SmtSolver,
    get_model,
    implies_semantically,
    is_satisfiable,
    is_valid,
)

__all__ = [
    "BitVec",
    "Encoder",
    "SmtSolver",
    "decode_bits",
    "get_model",
    "implies_semantically",
    "is_satisfiable",
    "is_valid",
    "width_for_range",
]
