"""Tseitin encoding of Boolean circuits into CNF.

The bit-blaster builds circuits gate by gate; every helper returns the
literal of a fresh variable constrained to equal the gate's output.
Constant literals are threaded through :data:`TRUE_LIT` handling in
:class:`GateBuilder` so trivial gates collapse without new variables.
"""

from __future__ import annotations

from .cnf import CNF


class GateBuilder:
    """Builds a circuit over a CNF, with constant folding on literals."""

    def __init__(self, cnf: CNF) -> None:
        self.cnf = cnf
        self._true_lit: int | None = None
        self._and_cache: dict[tuple[int, ...], int] = {}
        self._or_cache: dict[tuple[int, ...], int] = {}
        self._xor_cache: dict[tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    @property
    def true_lit(self) -> int:
        """A literal fixed to true (allocated lazily)."""
        if self._true_lit is None:
            self._true_lit = self.cnf.new_var()
            self.cnf.add_clause([self._true_lit])
        return self._true_lit

    @property
    def false_lit(self) -> int:
        return -self.true_lit

    def is_const(self, lit: int) -> bool | None:
        """Return the constant value of ``lit`` if it is the true/false lit."""
        if self._true_lit is None:
            return None
        if lit == self._true_lit:
            return True
        if lit == -self._true_lit:
            return False
        return None

    def const(self, value: bool) -> int:
        return self.true_lit if value else self.false_lit

    # ------------------------------------------------------------------
    def and_gate(self, *lits: int) -> int:
        """Output literal of AND(lits)."""
        ins: list[int] = []
        for lit in lits:
            const = self.is_const(lit)
            if const is False:
                return self.false_lit
            if const is True:
                continue
            if -lit in ins:
                return self.false_lit
            if lit not in ins:
                ins.append(lit)
        if not ins:
            return self.true_lit
        if len(ins) == 1:
            return ins[0]
        key = tuple(sorted(ins))
        cached = self._and_cache.get(key)
        if cached is not None:
            return cached
        out = self.cnf.new_var()
        for lit in ins:
            self.cnf.add_clause([-out, lit])
        self.cnf.add_clause([out] + [-lit for lit in ins])
        self._and_cache[key] = out
        return out

    def or_gate(self, *lits: int) -> int:
        """Output literal of OR(lits)."""
        ins: list[int] = []
        for lit in lits:
            const = self.is_const(lit)
            if const is True:
                return self.true_lit
            if const is False:
                continue
            if -lit in ins:
                return self.true_lit
            if lit not in ins:
                ins.append(lit)
        if not ins:
            return self.false_lit
        if len(ins) == 1:
            return ins[0]
        key = tuple(sorted(ins))
        cached = self._or_cache.get(key)
        if cached is not None:
            return cached
        out = self.cnf.new_var()
        for lit in ins:
            self.cnf.add_clause([-lit, out])
        self.cnf.add_clause([-out] + list(ins))
        self._or_cache[key] = out
        return out

    def not_gate(self, lit: int) -> int:
        return -lit

    def xor_gate(self, a: int, b: int) -> int:
        """Output literal of XOR(a, b)."""
        const_a, const_b = self.is_const(a), self.is_const(b)
        if const_a is not None:
            return -b if const_a else b
        if const_b is not None:
            return -a if const_b else a
        if a == b:
            return self.false_lit
        if a == -b:
            return self.true_lit
        key = (min(a, b), max(a, b))
        cached = self._xor_cache.get(key)
        if cached is not None:
            return cached
        out = self.cnf.new_var()
        self.cnf.add_clause([-out, a, b])
        self.cnf.add_clause([-out, -a, -b])
        self.cnf.add_clause([out, -a, b])
        self.cnf.add_clause([out, a, -b])
        self._xor_cache[key] = out
        return out

    def xnor_gate(self, a: int, b: int) -> int:
        return -self.xor_gate(a, b)

    def ite_gate(self, cond: int, then: int, other: int) -> int:
        """Output literal of (cond ? then : other)."""
        const_c = self.is_const(cond)
        if const_c is True:
            return then
        if const_c is False:
            return other
        if then == other:
            return then
        return self.or_gate(
            self.and_gate(cond, then), self.and_gate(-cond, other)
        )

    def implies_gate(self, a: int, b: int) -> int:
        return self.or_gate(-a, b)

    def full_adder(self, a: int, b: int, carry_in: int) -> tuple[int, int]:
        """Returns (sum, carry_out)."""
        axb = self.xor_gate(a, b)
        total = self.xor_gate(axb, carry_in)
        carry = self.or_gate(
            self.and_gate(a, b), self.and_gate(axb, carry_in)
        )
        return total, carry

    def assert_true(self, lit: int) -> None:
        const = self.is_const(lit)
        if const is True:
            return
        if const is False:
            # Assert an immediate contradiction.
            fresh = self.cnf.new_var()
            self.cnf.add_clause([fresh])
            self.cnf.add_clause([-fresh])
            return
        self.cnf.add_clause([lit])

    def assert_false(self, lit: int) -> None:
        self.assert_true(-lit)
