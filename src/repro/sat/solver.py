"""CDCL SAT solver.

A compact but complete conflict-driven clause-learning solver:

* two-watched-literal propagation,
* first-UIP conflict analysis with basic clause minimisation,
* VSIDS activity heuristics (lazy heap) with phase saving,
* Luby-sequence restarts,
* learned-clause garbage collection.

This plays the role of the SAT core inside CBMC in the original tool
chain.  It is deliberately dependency-free: the whole reproduction runs
on a stock Python install.

The solver is *incremental* in the MiniSat sense: ``solve(assumptions)``
enqueues each assumption as a decision on its own leading decision level
and retracts them all before returning, so one solver instance answers
many queries while learned clauses, watch lists, saved phases and VSIDS
activity survive between calls.  ``add_clause`` may be called between
solves, and clauses can be registered under *retractable groups*
(activation literals) so a whole block of constraints can be switched
off permanently with :meth:`Solver.retract_group`.  An UNSAT answer
under assumptions additionally reports the subset of assumptions that
was actually used (:attr:`SolveResult.unsat_core`, via MiniSat-style
final-conflict analysis) -- the primitive behind IC3 cube
generalization and the oracle's proof-driven assumption strengthening.

Because instances now live for entire active-learning *runs* (learner
sessions and the incremental condition checkers keep one solver hot
across every iteration), the learned-clause database is kept healthy
with LBD (literal block distance) scoring: each learned clause is
tagged with the number of distinct decision levels it spans, the tag is
refreshed whenever the clause participates in conflict analysis, and
periodic reductions drop the worst-scored half while always retaining
"glue" clauses (LBD <= 2), binary clauses, and clauses locked as
propagation reasons.  :meth:`Solver.maintain` exposes the same hygiene
(plus VSIDS activity rescaling and lazy-heap compaction) as an explicit
hook for session owners to call between iterations.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

from .cnf import CNF


def _tel_metrics():
    """Live metrics registry, or ``None`` when telemetry is disabled.

    Imported lazily so this module stays importable on its own: a
    module-level ``from ..core import telemetry`` would execute
    ``repro.core.__init__`` while this module is still half-initialised
    (the core package transitively imports :class:`Solver`).
    """
    from ..core.telemetry import active

    session = active()
    return None if session is None else session.metrics


_UNASSIGNED = 0
_TRUE = 1
_FALSE = -1


def luby(i: int) -> int:
    """The Luby restart sequence 1,1,2,1,1,2,4,... (1-indexed)."""
    x = i - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) >> 1
        seq -= 1
        x %= size
    return 1 << seq


class _LearnedClause(list):
    """A learned clause with its LBD score (distinct decision levels).

    Subclasses ``list`` so watch lists and propagation treat it exactly
    like a problem clause; only the reduction policy reads the tag.
    """

    __slots__ = ("lbd",)

    def __init__(self, lits, lbd: int):
        super().__init__(lits)
        self.lbd = lbd


@dataclass
class SolveResult:
    """Outcome of a solver run.

    ``unsat_core`` is ``None`` on satisfiable results.  On UNSAT results
    it is the subset of the *caller's* assumption literals actually used
    to derive the contradiction (MiniSat's final-conflict analysis), in
    the order they were passed; solving again under just the core stays
    UNSAT.  An empty tuple means the formula itself (together with any
    active clause groups) is contradictory and no assumption was needed.
    """

    satisfiable: bool
    model: dict[int, bool] = field(default_factory=dict)
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    unsat_core: tuple[int, ...] | None = None
    # Per-call attribution: the ``conflicts``/``decisions``/
    # ``propagations`` fields above are cumulative since solver
    # construction (session solvers live for whole runs), so the
    # ``*_delta`` fields carry what *this* ``solve()`` call cost.
    conflicts_delta: int = 0
    decisions_delta: int = 0
    propagations_delta: int = 0
    learned_db_size: int = 0

    def value(self, var: int) -> bool:
        return self.model[var]

    def lit_true(self, lit: int) -> bool:
        return self.model[abs(lit)] == (lit > 0)


class Solver:
    """CDCL solver over a :class:`~repro.sat.cnf.CNF` formula."""

    def __init__(self, cnf: CNF | None = None) -> None:
        self._num_vars = 0
        self._watches: dict[int, list[list[int]]] = {}
        self._assign: list[int] = [_UNASSIGNED]  # 1-indexed by variable
        self._level: list[int] = [0]
        self._reason: list[list[int] | None] = [None]
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._prop_head = 0
        self._activity: list[float] = [0.0]
        self._phase: list[bool] = [False]
        self._order: list[tuple[float, int]] = []  # lazy max-heap (neg act)
        self._var_inc = 1.0
        self._var_decay = 1.0 / 0.95
        self._learned: list[list[int]] = []
        self._max_learned = 4000
        self._ok = True
        self._groups: dict[int, int] = {}  # group id -> activation literal
        self._retired_groups: set[int] = set()
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.solve_calls = 0
        self._solve_base = (0, 0, 0)
        if cnf is not None:
            self.add_cnf(cnf)

    @property
    def num_learned(self) -> int:
        """Learned clauses currently retained (survive across solves)."""
        return len(self._learned)

    # ------------------------------------------------------------------
    # problem construction
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        self._num_vars += 1
        var = self._num_vars
        self._assign.append(_UNASSIGNED)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._phase.append(False)
        self._watches[var] = []
        self._watches[-var] = []
        heapq.heappush(self._order, (0.0, var))
        return var

    def ensure_vars(self, num_vars: int) -> None:
        while self._num_vars < num_vars:
            self.new_var()

    def add_cnf(self, cnf: CNF) -> None:
        self.ensure_vars(cnf.num_vars)
        for clause in cnf.clauses:
            self.add_clause(clause)

    # ------------------------------------------------------------------
    # retractable clause groups
    # ------------------------------------------------------------------
    def new_group(self) -> int:
        """Open a retractable clause group; returns its (opaque) id.

        Clauses added with ``add_clause(..., group=gid)`` only constrain
        the search while the group is active; :meth:`retract_group`
        switches them off permanently.  Internally each group clause
        carries the negated activation literal, and every solve assumes
        the activation literals of all active groups, so learned clauses
        record their group dependencies explicitly and stay sound after
        retraction.
        """
        act = self.new_var()
        self._groups[act] = act
        return act

    def retract_group(self, group: int) -> None:
        """Permanently disable every clause added under ``group``."""
        act = self._groups.pop(group, None)
        if act is None:
            if group in self._retired_groups:
                return
            raise ValueError(f"unknown clause group {group!r}")
        self._retired_groups.add(group)
        self.add_clause([-act])

    def add_clause(self, lits: Iterable[int], group: int | None = None) -> bool:
        """Add a problem clause; returns False if the formula became UNSAT.

        With ``group`` the clause belongs to a retractable group from
        :meth:`new_group`.  May be called between solves; the solver
        always returns to decision level 0.
        """
        if not self._ok:
            return False
        if self._trail_lim:
            raise RuntimeError("add_clause only allowed at decision level 0")
        if group is not None:
            if group not in self._groups:
                raise ValueError(f"unknown or retired clause group {group!r}")
            lits = list(lits) + [-self._groups[group]]
        clause: list[int] = []
        seen: set[int] = set()
        for lit in lits:
            if abs(lit) > self._num_vars:
                self.ensure_vars(abs(lit))
            if -lit in seen:
                return True  # tautology
            if lit in seen:
                continue
            seen.add(lit)
            value = self._lit_value(lit)
            if value == _TRUE:
                return True  # already satisfied at level 0
            if value == _FALSE:
                continue  # falsified at level 0; drop the literal
            clause.append(lit)
        if not clause:
            self._ok = False
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], None) or self._propagate() is not None:
                self._ok = False
                return False
            return True
        self._watch(clause)
        return True

    def _watch(self, clause: list[int]) -> None:
        self._watches[clause[0]].append(clause)
        self._watches[clause[1]].append(clause)

    # ------------------------------------------------------------------
    # assignment helpers
    # ------------------------------------------------------------------
    def _lit_value(self, lit: int) -> int:
        value = self._assign[abs(lit)]
        if value == _UNASSIGNED:
            return _UNASSIGNED
        return value if lit > 0 else -value

    def _enqueue(self, lit: int, reason: list[int] | None) -> bool:
        value = self._lit_value(lit)
        if value == _FALSE:
            return False
        if value == _TRUE:
            return True
        var = abs(lit)
        self._assign[var] = _TRUE if lit > 0 else _FALSE
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _propagate(self) -> list[int] | None:
        """Unit propagation; returns a conflicting clause or None."""
        while self._prop_head < len(self._trail):
            lit = self._trail[self._prop_head]
            self._prop_head += 1
            self.propagations += 1
            false_lit = -lit
            watch_list = self._watches[false_lit]
            kept: list[list[int]] = []
            conflict: list[int] | None = None
            for idx, clause in enumerate(watch_list):
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._lit_value(first) == _TRUE:
                    kept.append(clause)
                    continue
                moved = False
                for j in range(2, len(clause)):
                    if self._lit_value(clause[j]) != _FALSE:
                        clause[1], clause[j] = clause[j], clause[1]
                        self._watches[clause[1]].append(clause)
                        moved = True
                        break
                if moved:
                    continue
                kept.append(clause)
                if not self._enqueue(first, clause):
                    conflict = clause
                    kept.extend(watch_list[idx + 1:])
                    break
            self._watches[false_lit] = kept
            if conflict is not None:
                return conflict
        return None

    # ------------------------------------------------------------------
    # conflict analysis (first UIP)
    # ------------------------------------------------------------------
    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
        heapq.heappush(self._order, (-self._activity[var], var))

    def _analyze(self, conflict: list[int]) -> tuple[list[int], int]:
        """First-UIP analysis; returns (learned clause, backtrack level)."""
        current_level = len(self._trail_lim)
        learned: list[int] = []
        seen: set[int] = set()
        counter = 0
        resolve_lit: int | None = None
        reason: Sequence[int] = conflict
        index = len(self._trail) - 1
        while True:
            for q in reason:
                if resolve_lit is not None and q == resolve_lit:
                    continue
                var = abs(q)
                if var in seen or self._level[var] == 0:
                    continue
                seen.add(var)
                self._bump_var(var)
                if self._level[var] == current_level:
                    counter += 1
                else:
                    learned.append(q)
            while abs(self._trail[index]) not in seen:
                index -= 1
            resolve_lit = self._trail[index]
            index -= 1
            var = abs(resolve_lit)
            seen.discard(var)
            counter -= 1
            if counter == 0:
                learned.insert(0, -resolve_lit)
                break
            next_reason = self._reason[var]
            assert next_reason is not None, "UIP literal must have a reason"
            if isinstance(next_reason, _LearnedClause):
                # Aging refresh: a clause pulled into conflict analysis
                # is alive; re-score it so reductions keep it around.
                levels = len({
                    self._level[abs(q)]
                    for q in next_reason
                    if self._level[abs(q)] > 0
                })
                if levels and levels < next_reason.lbd:
                    next_reason.lbd = levels
            reason = next_reason
        learned = self._minimize(learned)
        if len(learned) == 1:
            return learned, 0
        # Second-highest level literal goes to slot 1 (watch invariant).
        max_i = 1
        for i in range(2, len(learned)):
            if self._level[abs(learned[i])] > self._level[abs(learned[max_i])]:
                max_i = i
        learned[1], learned[max_i] = learned[max_i], learned[1]
        return learned, self._level[abs(learned[1])]

    def _minimize(self, learned: list[int]) -> list[int]:
        """Basic (local) clause minimisation: drop self-subsumed literals."""
        in_clause = {abs(lit) for lit in learned}
        keep = [learned[0]]
        for q in learned[1:]:
            reason = self._reason[abs(q)]
            if reason is not None and all(
                abs(other) in in_clause or self._level[abs(other)] == 0
                for other in reason
                if abs(other) != abs(q)
            ):
                continue
            keep.append(q)
        return keep

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        bound = self._trail_lim[level]
        for lit in reversed(self._trail[bound:]):
            var = abs(lit)
            self._phase[var] = self._assign[var] == _TRUE
            self._assign[var] = _UNASSIGNED
            self._reason[var] = None
            heapq.heappush(self._order, (-self._activity[var], var))
        del self._trail[bound:]
        del self._trail_lim[level:]
        self._prop_head = min(self._prop_head, len(self._trail))

    def _record_learned(self, clause: list[int], lbd: int) -> None:
        if len(clause) == 1:
            self._enqueue(clause[0], None)
            return
        learned = _LearnedClause(clause, lbd)
        self._learned.append(learned)
        self._watch(learned)
        self._enqueue(learned[0], learned)

    def _reduce_learned(self, force: bool = False) -> None:
        """LBD-based learned-clause reduction.

        Drops the worst-scored half (high LBD, then long) of the
        database, always retaining glue clauses (LBD <= 2), binary
        clauses, and clauses currently locked as propagation reasons --
        dropping a reason would leave a dangling pointer in the
        implication graph.  ``force`` reduces even under budget (the
        session-hygiene path); organic reductions also grow the budget.
        """
        if not force and len(self._learned) < self._max_learned:
            return
        locked = {
            id(self._reason[v])
            for v in range(1, self._num_vars + 1)
            if self._reason[v] is not None
        }
        self._learned.sort(key=lambda c: (c.lbd, len(c)))
        half = len(self._learned) // 2
        dropped = {
            id(c)
            for c in self._learned[half:]
            if id(c) not in locked and len(c) > 2 and c.lbd > 2
        }
        if not dropped:
            return
        self._learned = [c for c in self._learned if id(c) not in dropped]
        for lit in self._watches:
            self._watches[lit] = [
                c for c in self._watches[lit] if id(c) not in dropped
            ]
        if not force:
            self._max_learned = int(self._max_learned * 1.3)

    # ------------------------------------------------------------------
    # long-lived-solver hygiene
    # ------------------------------------------------------------------
    def rescale_var_activity(self) -> None:
        """Normalise VSIDS activities and compact the lazy heap.

        Long-lived solvers accumulate both very large activity values
        (the increment grows geometrically) and stale heap entries (one
        per bump).  Dividing everything by the maximum activity keeps
        the ordering while restoring headroom, and rebuilding the heap
        drops the dead weight.
        """
        top = max(self._activity[1:], default=0.0)
        if top > 1e20:
            factor = 1.0 / top
            for var in range(1, self._num_vars + 1):
                self._activity[var] *= factor
            self._var_inc = max(self._var_inc * factor, 1.0)
        self._compact_order()

    def _compact_order(self) -> None:
        self._order = [
            (-self._activity[var], var)
            for var in range(1, self._num_vars + 1)
        ]
        heapq.heapify(self._order)

    def maintain(self) -> None:
        """Periodic hygiene hook for session-scoped solvers.

        Call between logically separate workloads (e.g. active-learning
        iterations): ages the learned-clause database once it exceeds
        half its budget and rescales/compacts the VSIDS state.  Safe to
        call at any decision level 0 point; never drops reason clauses.
        """
        if len(self._learned) > self._max_learned // 2:
            self._reduce_learned(force=True)
        self.rescale_var_activity()

    # ------------------------------------------------------------------
    # final-conflict analysis (unsat cores under assumptions)
    # ------------------------------------------------------------------
    def _final_core(
        self, failed_lit: int, assumptions: Sequence[int]
    ) -> tuple[int, ...]:
        """MiniSat's ``analyzeFinal``: assumptions implying ``¬failed_lit``.

        Called while the trail still holds the propagations that
        falsified the pending assumption ``failed_lit``.  Walks the
        implication graph backwards from the falsifying literal,
        collecting every assumption *decision* met on the way (in the
        assumption phase every decision is an assumption literal,
        enqueued exactly as passed).  The result is filtered to the
        caller's assumptions -- group activation literals stay internal
        -- and ordered as the caller passed them, so cores are
        deterministic for a given solver state.
        """
        core = {failed_lit}
        var0 = abs(failed_lit)
        # Falsified at level 0 means the formula alone implies the
        # negation: the core is the failed assumption by itself.
        if self._level[var0] > 0 and self._trail_lim:
            seen = {var0}
            bound = self._trail_lim[0]
            for lit in reversed(self._trail[bound:]):
                var = abs(lit)
                if var not in seen:
                    continue
                seen.discard(var)
                reason = self._reason[var]
                if reason is None:
                    core.add(lit)
                else:
                    for q in reason:
                        if abs(q) != var and self._level[abs(q)] > 0:
                            seen.add(abs(q))
        ordered: list[int] = []
        picked: set[int] = set()
        for lit in assumptions:
            if lit in core and lit not in picked:
                ordered.append(lit)
                picked.add(lit)
        return tuple(ordered)

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------
    def _pick_branch_var(self) -> int:
        while self._order:
            _act, var = heapq.heappop(self._order)
            if self._assign[var] == _UNASSIGNED:
                return var
        for var in range(1, self._num_vars + 1):
            if self._assign[var] == _UNASSIGNED:
                return var
        return 0

    # ------------------------------------------------------------------
    # main search
    # ------------------------------------------------------------------
    def solve(self, assumptions: Sequence[int] = ()) -> SolveResult:
        """Solve under temporary ``assumptions`` (MiniSat-style).

        Assumptions are enqueued as decisions on dedicated leading
        decision levels and are fully retracted before returning, so
        repeated calls with different (even conflicting) assumptions are
        answered independently while learned clauses, saved phases and
        activity persist.  An UNSAT answer under assumptions leaves the
        solver usable; only a contradiction in the formula itself is
        permanent.  Activation literals of active clause groups are
        assumed implicitly.
        """
        self.solve_calls += 1
        self._solve_base = (self.conflicts, self.decisions, self.propagations)
        assumed = list(assumptions) + sorted(self._groups.values())
        for lit in assumed:
            if abs(lit) > self._num_vars:
                self.ensure_vars(abs(lit))
        if not self._ok:
            return self._result(False, unsat_core=())
        self._backtrack(0)
        if self._propagate() is not None:
            self._ok = False
            return self._result(False, unsat_core=())
        restart_count = 0
        conflicts_since_restart = 0
        restart_budget = 64 * luby(1)
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_since_restart += 1
                if not self._trail_lim:
                    self._ok = False
                    return self._result(False, unsat_core=())
                learned, back_level = self._analyze(conflict)
                # LBD must be read off the pre-backtrack levels.
                lbd = len({
                    self._level[abs(q)]
                    for q in learned
                    if self._level[abs(q)] > 0
                })
                self._backtrack(back_level)
                self._record_learned(learned, lbd)
                self._var_inc *= self._var_decay
                continue
            if conflicts_since_restart >= restart_budget and self._trail_lim:
                restart_count += 1
                conflicts_since_restart = 0
                restart_budget = 64 * luby(restart_count + 1)
                self._backtrack(0)
                self._reduce_learned()
                if len(self._order) > max(1024, 4 * self._num_vars):
                    self._compact_order()
                continue
            lit = 0
            while len(self._trail_lim) < len(assumed):
                # Re-assert pending assumptions, one decision level each.
                next_assumed = assumed[len(self._trail_lim)]
                value = self._lit_value(next_assumed)
                if value == _TRUE:
                    self._trail_lim.append(len(self._trail))
                elif value == _FALSE:
                    # Assumptions conflict with the formula (or each
                    # other): UNSAT *under assumptions* only.  The final
                    # conflict is analyzed before backtracking (the core
                    # walk needs the falsifying trail intact).
                    core = self._final_core(next_assumed, assumptions)
                    result = self._result(False, unsat_core=core)
                    self._backtrack(0)
                    return result
                else:
                    lit = next_assumed
                    break
            if lit == 0:
                var = self._pick_branch_var()
                if var == 0:
                    result = self._result(True)
                    self._backtrack(0)
                    return result
                self.decisions += 1
                lit = var if self._phase[var] else -var
            self._trail_lim.append(len(self._trail))
            self._enqueue(lit, None)

    def _result(
        self,
        satisfiable: bool,
        unsat_core: tuple[int, ...] | None = None,
    ) -> SolveResult:
        model = {}
        if satisfiable:
            model = {
                v: self._assign[v] == _TRUE for v in range(1, self._num_vars + 1)
            }
        base_c, base_d, base_p = self._solve_base
        result = SolveResult(
            satisfiable,
            model=model,
            conflicts=self.conflicts,
            decisions=self.decisions,
            propagations=self.propagations,
            unsat_core=unsat_core,
            conflicts_delta=self.conflicts - base_c,
            decisions_delta=self.decisions - base_d,
            propagations_delta=self.propagations - base_p,
            learned_db_size=len(self._learned),
        )
        registry = _tel_metrics()
        if registry is not None:
            registry.inc("sat.solve_calls")
            registry.inc("sat.conflicts", result.conflicts_delta)
            registry.inc("sat.decisions", result.decisions_delta)
            registry.inc("sat.propagations", result.propagations_delta)
            registry.gauge_max("sat.learned_db_peak", result.learned_db_size)
        return result


def solve_cnf(cnf: CNF, assumptions: Sequence[int] = ()) -> SolveResult:
    """One-shot convenience wrapper: solve ``cnf`` under ``assumptions``."""
    return Solver(cnf).solve(assumptions)
