"""CNF formula container with DIMACS-style literals.

Variables are positive integers ``1..num_vars``; a literal is ``v`` or
``-v``.  The container is shared by the Tseitin encoder, the bit-blaster
and the CDCL solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable
from typing import TextIO


@dataclass
class CNF:
    """A growable CNF formula."""

    num_vars: int = 0
    clauses: list[list[int]] = field(default_factory=list)

    def new_var(self) -> int:
        """Allocate a fresh variable and return its positive literal."""
        self.num_vars += 1
        return self.num_vars

    def new_vars(self, count: int) -> list[int]:
        return [self.new_var() for _ in range(count)]

    def add_clause(self, lits: Iterable[int]) -> None:
        """Add a clause; literals must reference allocated variables."""
        clause = list(lits)
        for lit in clause:
            var = abs(lit)
            if lit == 0 or var > self.num_vars:
                raise ValueError(f"bad literal {lit} (num_vars={self.num_vars})")
        self.clauses.append(clause)

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def extend_from(self, other: "CNF", offset: int | None = None) -> int:
        """Append ``other``'s clauses with variables shifted; returns offset."""
        if offset is None:
            offset = self.num_vars
        self.num_vars = max(self.num_vars, offset + other.num_vars)
        for clause in other.clauses:
            self.clauses.append(
                [lit + offset if lit > 0 else lit - offset for lit in clause]
            )
        return offset

    def to_dimacs(self, out: TextIO) -> None:
        """Write the formula in DIMACS cnf format."""
        out.write(f"p cnf {self.num_vars} {len(self.clauses)}\n")
        for clause in self.clauses:
            out.write(" ".join(str(lit) for lit in clause) + " 0\n")

    @classmethod
    def from_dimacs(cls, src: TextIO) -> "CNF":
        """Parse a DIMACS cnf file."""
        cnf = cls()
        declared_vars = 0
        for line in src:
            line = line.strip()
            if not line or line.startswith(("c", "%")):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) != 4 or parts[1] != "cnf":
                    raise ValueError(f"bad DIMACS header: {line!r}")
                declared_vars = int(parts[2])
                cnf.num_vars = declared_vars
                continue
            lits = [int(tok) for tok in line.split()]
            if lits and lits[-1] == 0:
                lits = lits[:-1]
            if lits:
                cnf.num_vars = max(cnf.num_vars, max(abs(lit) for lit in lits))
                cnf.clauses.append(lits)
        return cnf


def evaluate_clause(clause: list[int], assignment: dict[int, bool]) -> bool:
    """True iff ``clause`` is satisfied under a total ``assignment``."""
    return any(assignment[abs(lit)] == (lit > 0) for lit in clause)


def check_model(cnf: CNF, assignment: dict[int, bool]) -> bool:
    """True iff ``assignment`` satisfies every clause (used in tests)."""
    return all(evaluate_clause(clause, assignment) for clause in cnf.clauses)
