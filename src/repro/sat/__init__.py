"""SAT substrate: CNF container, Tseitin gates, and a CDCL solver."""

from .cnf import CNF, check_model, evaluate_clause
from .solver import SolveResult, Solver, luby, solve_cnf
from .tseitin import GateBuilder

__all__ = [
    "CNF",
    "GateBuilder",
    "SolveResult",
    "Solver",
    "check_model",
    "evaluate_clause",
    "luby",
    "solve_cnf",
]
