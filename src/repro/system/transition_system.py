"""The formal system model ``S = (X, X', R, Init)`` of paper §II-A.

A :class:`SymbolicSystem` is the reproduction's stand-in for "an
instrumented C implementation":

* the observables ``X`` are the union of *input* variables (free at every
  step) and *state* variables (updated by the step function);
* the transition relation ``R(X, X')`` is given functionally, exactly as
  in Fig. 3a's ``X' = f(X)``: one next-state expression per state
  variable, over the current state and the *next* observation's inputs;
* ``Init(X)`` characterises the pre-first-observation states.

Time indexing follows the paper: an observation ``v_t`` records the
inputs consumed at step ``t`` together with the state *after* step ``t``.
Hence ``R(v_t, v_{t+1})`` constrains ``state_{t+1} = f(state_t,
inputs_{t+1})`` and leaves inputs unconstrained.

The same next-state expressions drive both the bit-precise model checker
and the concrete simulator (:meth:`SymbolicSystem.step` simply evaluates
them), so the checker and the trace generator can never diverge.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import InitVar, dataclass, field
from dataclasses import fields as dataclass_fields
from collections.abc import Callable, Iterable, Mapping, Sequence

from ..expr.ast import Expr, Var, eq, free_vars, land
from ..expr.eval import holds
from ..expr.types import BoolSort, EnumSort, IntSort
from .valuation import Valuation

InputSampler = Callable[[random.Random], dict[str, int]]


def _sort_values(sort) -> list[int]:
    if isinstance(sort, BoolSort):
        return [0, 1]
    if isinstance(sort, IntSort):
        return list(range(sort.lo, sort.hi + 1))
    if isinstance(sort, EnumSort):
        return list(range(sort.cardinality))
    raise TypeError(f"not a finite sort: {sort!r}")


@dataclass
class SymbolicSystem:
    """A transition system over typed observables.

    Parameters
    ----------
    name:
        Identifier used in reports.
    state_vars:
        Observable state variables (updated by the step function).
    input_vars:
        Observable input variables (havocked each step).
    init_state:
        The concrete initial valuation of the state variables (charts have
        a unique initial configuration; ``Init(X)`` is derived from it).
    next_exprs:
        For each state variable ``x``, the expression for ``x'`` over the
        unprimed state variables and the *primed* input variables.
    input_samples:
        Optional list of "interesting" concrete input valuations.  Used by
        the explicit-state engine; guard-boundary values belong here.  If
        empty, the full input space is enumerated when small enough.
    validate:
        Opt-in: run the full static analyzer
        (:func:`repro.analysis.validate_system`) at construction and
        raise :class:`~repro.analysis.diagnostics.AnalysisError` --
        carrying every diagnostic, not just the first -- on any ERROR
        finding.  The default keeps construction cheap; boundaries that
        accept *untrusted* systems (the oracle specs, ``run_active``,
        the CLI) turn it on.
    """

    name: str
    state_vars: tuple[Var, ...]
    input_vars: tuple[Var, ...]
    init_state: Valuation
    next_exprs: dict[Var, Expr]
    input_samples: list[Valuation] = field(default_factory=list)
    validate: InitVar[bool] = False

    def __post_init__(self, validate: bool = False) -> None:
        if validate:
            # Lazy import: analysis sits above the system layer.
            from ..analysis.system_check import validate_system

            validate_system(self)
        state_names = {v.name for v in self.state_vars}
        input_names = {v.name for v in self.input_vars}
        if state_names & input_names:
            raise ValueError(
                f"state/input overlap: {sorted(state_names & input_names)}"
            )
        missing = [v.name for v in self.state_vars if v not in self.next_exprs]
        if missing:
            raise ValueError(f"no next-state expression for {missing}")
        for var, expr in self.next_exprs.items():
            for ref in free_vars(expr):
                if ref.primed and ref.name not in input_names:
                    raise ValueError(
                        f"next({var.name}) references primed non-input "
                        f"{ref.qualified_name!r}"
                    )
                if not ref.primed and ref.name not in state_names:
                    # Unprimed inputs would mean "the input consumed one
                    # step earlier"; charts must latch that in a state
                    # variable, keeping step() and R(X,X') in lock-step.
                    raise ValueError(
                        f"next({var.name}) references {ref.name!r}, which is "
                        "not a state variable (inputs must appear primed)"
                    )
        for var in self.state_vars:
            if var.name not in self.init_state:
                raise ValueError(f"init_state missing {var.name!r}")

    def __getstate__(self) -> dict:
        """Pickle only the declared fields.

        Process-local caches accumulate in ``__dict__`` as the system is
        used -- compiled step functions (exec-generated, unpicklable)
        and the shared analysis engines (solvers, BDD managers, huge BFS
        tables).  None of them belong on the wire; everything rebuilds
        lazily on the receiving side.
        """
        declared = {f.name for f in dataclass_fields(self)}
        return {k: v for k, v in self.__dict__.items() if k in declared}

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    @property
    def variables(self) -> tuple[Var, ...]:
        """The observables ``X`` (inputs first, then state)."""
        return self.input_vars + self.state_vars

    @property
    def state_names(self) -> tuple[str, ...]:
        return tuple(v.name for v in self.state_vars)

    @property
    def input_names(self) -> tuple[str, ...]:
        return tuple(v.name for v in self.input_vars)

    @property
    def init(self) -> Expr:
        """``Init(X)``: the state part equals the initial configuration."""
        return land(
            *(
                eq(var, self.init_state[var.name])
                for var in self.state_vars
            )
        )

    @property
    def trans(self) -> Expr:
        """``R(X, X')`` as a characteristic function."""
        return land(
            *(
                eq(var.prime(), expr)
                for var, expr in sorted(
                    self.next_exprs.items(), key=lambda kv: kv[0].name
                )
            )
        )

    def var_by_name(self, name: str) -> Var:
        for var in self.variables:
            if var.name == name:
                return var
        raise KeyError(name)

    # ------------------------------------------------------------------
    # concrete semantics
    # ------------------------------------------------------------------
    @property
    def _step_fns(self) -> "list[tuple[str, Callable[[Mapping[str, int]], int]]]":
        """Compiled next-state functions, built once per instance.

        The next-state expressions are interned, so
        :func:`~repro.expr.compiled.compile_expr` hands back one shared
        compiled function per distinct expression process-wide; the
        per-instance list only pins the (name, fn) pairing.  Stored in
        ``__dict__`` like the shared analysis engines -- systems are
        never pickled directly (workers rebuild from ``SystemSpec``).
        """
        cached = self.__dict__.get("_compiled_step_fns")
        if cached is None:
            from ..expr.compiled import compile_expr

            cached = [
                (var.name, compile_expr(expr))
                for var, expr in self.next_exprs.items()
            ]
            self.__dict__["_compiled_step_fns"] = cached
        return cached

    def step(self, state: Mapping[str, int], inputs: Mapping[str, int]) -> Valuation:
        """One step: returns the new state valuation.

        ``state`` binds the state variables, ``inputs`` the inputs consumed
        during this step (they appear primed in the next-state expressions).
        Evaluation uses the compiled next-state functions (identical
        semantics to :func:`repro.expr.evaluate`, differentially tested).
        """
        env = dict(state)
        env.update({f"{name}'": value for name, value in inputs.items()})
        next_state = {name: fn(env) for name, fn in self._step_fns}
        return Valuation(next_state)

    def observe(self, state: Mapping[str, int], inputs: Mapping[str, int]) -> Valuation:
        """Observation ``v_t``: inputs at step t plus the state after step t."""
        merged = dict(inputs)
        merged.update(state)
        return Valuation(merged)

    def run(
        self, input_seq: Sequence[Mapping[str, int]]
    ) -> list[Valuation]:
        """Execute from the initial state; returns observations v_1..v_n."""
        state = self.init_state
        observations: list[Valuation] = []
        for inputs in input_seq:
            state = self.step(state, inputs)
            observations.append(self.observe(state, inputs))
        return observations

    def is_execution(self, observations: Sequence[Valuation]) -> bool:
        """True iff the observation sequence is a system execution trace."""
        if not observations:
            return True
        state = self.init_state.as_dict()
        for obs in observations:
            inputs = {name: obs[name] for name in self.input_names}
            new_state = self.step(state, inputs)
            if any(obs[name] != new_state[name] for name in self.state_names):
                return False
            state = new_state.as_dict()
        return True

    def satisfies_init(self, state: Mapping[str, int]) -> bool:
        return holds(self.init, dict(state))

    # ------------------------------------------------------------------
    # input enumeration / sampling
    # ------------------------------------------------------------------
    def random_inputs(self, rng: random.Random) -> dict[str, int]:
        """Uniformly random input valuation (the paper's random sampling)."""
        return {
            var.name: rng.choice(_sort_values(var.sort))
            for var in self.input_vars
        }

    def enumerate_inputs(self, limit: int = 4096) -> list[Valuation]:
        """Representative input valuations for the explicit-state engine.

        Prefers the declared ``input_samples``; otherwise enumerates the
        full input space if it has at most ``limit`` points.
        """
        if self.input_samples:
            return list(self.input_samples)
        if not self.input_vars:
            return [Valuation()]
        spaces = [_sort_values(var.sort) for var in self.input_vars]
        total = 1
        for space in spaces:
            total *= len(space)
            if total > limit:
                raise ValueError(
                    f"input space of {self.name} too large to enumerate "
                    f"({total}+ points); provide input_samples"
                )
        names = [var.name for var in self.input_vars]
        return [
            Valuation(dict(zip(names, combo, strict=True)))
            for combo in itertools.product(*spaces)
        ]

    def state_space_size(self) -> int:
        total = 1
        for var in self.state_vars:
            total *= len(_sort_values(var.sort))
        return total


def shared_analysis(
    system: SymbolicSystem, attr: str, factory: Callable[[SymbolicSystem], object]
) -> object:
    """Per-system memo for analysis engines, keyed by object identity.

    The engine is stored on the system instance itself rather than in a
    module-level ``id()``-keyed dict: ids are recycled after garbage
    collection, so a global table could hand a fresh system a dead
    system's engine, and it would grow without bound.  The attribute
    gives WeakValueDictionary-style lifetime (the cache entry dies
    exactly when the system does) with exact identity semantics; the
    ``engine._system is system`` guard detects copied instances that
    inherited the attribute via ``__dict__`` duplication and gives them
    their own engine.  Used by ``shared_reachability``,
    ``shared_kinduction``, ``shared_ic3``, ``shared_bdd_context`` and
    ``shared_symbolic_reachability``.
    """
    engine = getattr(system, attr, None)
    if engine is None or getattr(engine, "_system", None) is not system:
        engine = factory(system)
        setattr(system, attr, engine)
    return engine


def make_system(
    name: str,
    state_vars: Iterable[Var],
    input_vars: Iterable[Var],
    init_state: Mapping[str, int],
    next_exprs: Mapping[Var, Expr],
    input_samples: Iterable[Mapping[str, int]] = (),
    validate: bool = False,
) -> SymbolicSystem:
    """Convenience constructor accepting plain mappings."""
    return SymbolicSystem(
        name=name,
        state_vars=tuple(state_vars),
        input_vars=tuple(input_vars),
        init_state=Valuation(dict(init_state)),
        next_exprs=dict(next_exprs),
        input_samples=[Valuation(dict(s)) for s in input_samples],
        validate=validate,
    )
