"""Valuations: immutable observations of the observable variables.

A valuation ``v : X -> D`` (paper §II-A) maps every observable variable
to a value.  Observations are hashable so trace sets can deduplicate and
the explicit-state engine can key on state projections.

Lookups are dict-backed (O(1)); the sorted item tuple is kept alongside
for the hash, ordered iteration/equality and the pickle contract.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping


class Valuation(Mapping[str, int]):
    """Immutable mapping from variable names to values."""

    __slots__ = ("_items", "_dict", "_hash")

    def __init__(self, values: Mapping[str, int] | None = None, **kwargs: int):
        merged = dict(values or {})
        merged.update(kwargs)
        self._dict = merged
        self._items = tuple(sorted(merged.items()))
        self._hash = hash(self._items)

    def __getitem__(self, key: str) -> int:
        return self._dict[key]

    def __iter__(self) -> Iterator[str]:
        return (name for name, _value in self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Valuation):
            return self._items == other._items
        if isinstance(other, Mapping):
            return self._dict == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}={value}" for name, value in self._items)
        return f"Valuation({inner})"

    def __reduce__(self):
        # Rebuild through __init__ so _hash is recomputed under the
        # *receiving* interpreter's string-hash seed: a hash cached by the
        # sending process (e.g. an oracle worker under spawn) is wrong
        # here, and a stale one silently breaks set/dict deduplication.
        return (Valuation, (dict(self._items),))

    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, int]:
        return dict(self._dict)

    def project(self, names: Mapping[str, object] | list[str] | tuple[str, ...] | set[str]) -> "Valuation":
        """Restrict to the given variable names."""
        wanted = set(names)
        return Valuation({n: v for n, v in self._items if n in wanted})

    def primed(self) -> dict[str, int]:
        """Environment binding this valuation to the primed copies ``x'``."""
        return {f"{name}'": value for name, value in self._items}

    def merged_with(self, other: Mapping[str, int]) -> "Valuation":
        """New valuation with ``other``'s bindings added/overriding."""
        merged = dict(self._dict)
        merged.update(other)
        return Valuation(merged)

    def key(self, names: tuple[str, ...]) -> tuple[int, ...]:
        """Projection as a plain tuple (fast dict key for BFS)."""
        table = self._dict
        return tuple(table[name] for name in names)
