"""System substrate: the formal model S = (X, X', R, Init) + simulator."""

from .transition_system import InputSampler, SymbolicSystem, make_system
from .valuation import Valuation

__all__ = ["InputSampler", "SymbolicSystem", "Valuation", "make_system"]
