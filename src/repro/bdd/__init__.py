"""BDD substrate: reduced ordered binary decision diagrams."""

from .manager import BddManager

__all__ = ["BddManager"]
