"""Reduced Ordered Binary Decision Diagrams.

A compact BDD package supporting what symbolic reachability needs:
hash-consed nodes, memoised ``ite``-based apply, memoised restriction,
existential quantification over variable sets, a fused relational
product (``and_exists``), variable renaming, model counting, and
dynamic variable reordering.

Variables are non-negative integers; their placement in the ordering is
a separate *level* permutation (``level_of`` / ``var_at_level``).  A
fresh manager places variable ``i`` at level ``i``, so callers that
never reorder see the classic index-ordered behaviour (the interleaved
current/next convention of symbolic model checking).  Reordering moves
variables between levels via in-place adjacent-level swaps (Rudell
sifting) without changing what any node id *means*.

Nodes are integers indexing into the manager's tables; 0 and 1 are the
terminals.  This representation keeps the hot paths allocation-free.

Reordering contract
-------------------
The node store is append-only -- ids are never freed or recycled -- and
an adjacent-level swap rewrites nodes in place so that every rewritten
id keeps denoting the same Boolean function.  Liveness is root-driven:
callers pin the BDDs they hold across reorder points with
:meth:`protect` (a counted pin, released by :meth:`unprotect`).  A
reorder (:meth:`reorder` / :meth:`maybe_reorder`) guarantees validity
for protected nodes and everything reachable from them; unprotected
ids must be treated as invalidated afterwards.  If *nothing* is
protected, every current node is treated as a root (safe, but the
sifting size metric then counts garbage).  All operation caches are
cleared on reorder -- cached entries may reference nodes that were not
rewritten -- which is the invalidation hook long-lived owners (e.g. the
symbolic engine's shared context) rely on.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator

# A fresh manager never auto-reorders; owners opt in via the
# ``auto_reorder_threshold`` constructor argument or
# ``enable_auto_reorder``.
_MIN_AUTO_REORDER = 2048


class _Accounting:
    """Live-DAG reference counts scoped to one reordering pass.

    Built from the protected roots (or every node, absent roots): a node
    is *live* while its count of live parents plus root pins is
    positive.  Swaps call :meth:`ref` / :meth:`deref` as they rewire
    children, so deaths and revivals cascade and ``total`` is always the
    exact live size -- the metric Rudell sifting minimises.
    """

    __slots__ = ("by_var", "mgr", "refs", "total")

    def __init__(self, mgr: BddManager, roots: Iterable[tuple[int, int]]):
        self.mgr = mgr
        refs: dict[int, int] = {}
        for node, pins in roots:
            if node > 1:
                refs[node] = refs.get(node, 0) + pins
        stack = [n for n in refs]
        seen: set[int] = set()
        low, high = mgr._low, mgr._high
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            for child in (low[n], high[n]):
                refs[child] = refs.get(child, 0) + 1
                if child > 1 and child not in seen:
                    stack.append(child)
        refs.pop(0, None)
        refs.pop(1, None)
        self.refs = refs
        self.total = len(seen)
        by_var: dict[int, set[int]] = {}
        var = mgr._var
        for n in seen:
            by_var.setdefault(var[n], set()).add(n)
        self.by_var = by_var

    def ref(self, node: int) -> None:
        """Acquire a reference; revives (and re-refs children of) dead nodes."""
        if node <= 1:
            return
        count = self.refs.get(node, 0)
        self.refs[node] = count + 1
        if count == 0:
            mgr = self.mgr
            self.by_var.setdefault(mgr._var[node], set()).add(node)
            self.total += 1
            self.ref(mgr._low[node])
            self.ref(mgr._high[node])

    def deref(self, node: int) -> None:
        """Release a reference; cascades when a node's count hits zero."""
        if node <= 1:
            return
        count = self.refs[node] - 1
        self.refs[node] = count
        if count == 0:
            mgr = self.mgr
            self.by_var[mgr._var[node]].discard(node)
            self.total -= 1
            self.deref(mgr._low[node])
            self.deref(mgr._high[node])


class _CountingCache(dict):
    """Op cache that counts probes and insertions (profiling mode only).

    Hit/miss accounting must not slow the structural recursions down,
    so the recursions never increment anything: in profiling mode the
    caches themselves are swapped for this subclass, and the stats fall
    out of two invariants -- every lookup goes through :meth:`get`, and
    every miss stores exactly once -- giving ``misses = insertions`` and
    ``hits = probes - insertions``.  The default (plain ``dict``) caches
    cost nothing.  ``dict.clear`` leaves both counters intact, so they
    are lifetime totals across :meth:`BddManager.clear_caches`.
    """

    __slots__ = ("insertions", "probes")

    def __init__(self) -> None:
        super().__init__()
        self.probes = 0
        self.insertions = 0

    def get(self, key, default=None):
        self.probes += 1
        return super().get(key, default)

    def __setitem__(self, key, value) -> None:
        self.insertions += 1
        super().__setitem__(key, value)


class BddManager:
    """Owns the node store, the level permutation and the operation caches."""

    FALSE = 0
    TRUE = 1

    def __init__(
        self,
        auto_reorder_threshold: int | None = None,
        profile_caches: bool | None = None,
    ) -> None:
        # node id -> (var, low, high); terminals use var = -1 sentinel.
        self._var: list[int] = [-1, -1]
        self._low: list[int] = [0, 0]
        self._high: list[int] = [0, 0]
        self._unique: dict[tuple[int, int, int], int] = {}
        # Level permutation: identity until a reorder moves variables.
        self._var2level: list[int] = []
        self._level2var: list[int] = []
        # Operation caches (all cleared by clear_caches / on reorder).
        # ``profile_caches`` (default: on iff a telemetry session is
        # active at construction) swaps them for counting dicts; plain
        # dicts keep the recursions free of accounting overhead.
        if profile_caches is None:
            from ..core import telemetry

            profile_caches = telemetry.metrics() is not None
        self.profile_caches = bool(profile_caches)
        _cache: Callable[[], dict] = (
            _CountingCache if self.profile_caches else dict
        )
        self._ite_cache: dict[tuple[int, int, int], int] = _cache()
        self._exists_cache: dict[tuple[int, frozenset[int]], int] = _cache()
        self._rename_cache: dict[
            tuple[int, tuple[tuple[int, int], ...]], int
        ] = _cache()
        self._restrict_cache: dict[tuple[int, int, bool], int] = _cache()
        self._andex_cache: dict[tuple[int, int, frozenset[int]], int] = _cache()
        self._support_cache: dict[int, frozenset[int]] = {}
        # Root pins for the reordering contract (node -> pin count).
        self._protected: dict[int, int] = {}
        # Model counting uses per-call local caches; their stats are
        # folded into these totals after each walk (profiling mode).
        self._count_models_hits = 0
        self._count_models_misses = 0
        self.cache_clears = 0
        self.cache_dropped = 0
        # Reorder bookkeeping.
        self.reorder_count = 0
        self.swap_count = 0
        self.last_reorder_live: int | None = None
        self._published_metrics: dict[str, int] = {}
        self._auto_reorder_at: int | None = None
        if auto_reorder_threshold:
            self.enable_auto_reorder(auto_reorder_threshold)

    # ------------------------------------------------------------------
    # node construction
    # ------------------------------------------------------------------
    def _mk(self, var: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (var, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._var)
            self._var.append(var)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
        return node

    def _ensure_var(self, index: int) -> None:
        """Extend the level tables so ``index`` has a level (appended last)."""
        while len(self._var2level) <= index:
            self._var2level.append(len(self._level2var))
            self._level2var.append(len(self._var2level) - 1)

    def var(self, index: int) -> int:
        """The BDD of variable ``index``."""
        if index < 0:
            raise ValueError(f"variable index must be >= 0, got {index}")
        self._ensure_var(index)
        return self._mk(index, self.FALSE, self.TRUE)

    def nvar(self, index: int) -> int:
        """The BDD of ``¬variable``."""
        if index < 0:
            raise ValueError(f"variable index must be >= 0, got {index}")
        self._ensure_var(index)
        return self._mk(index, self.TRUE, self.FALSE)

    @property
    def num_nodes(self) -> int:
        return len(self._var)

    @property
    def peak_nodes(self) -> int:
        """Allocation high-water mark.

        The store is append-only (ids are never freed), so the current
        table length *is* the peak; exposed under its own name so
        owners can record it without baking that invariant in.
        """
        return len(self._var)

    def top_var(self, node: int) -> int:
        return self._var[node]

    def level_of(self, var: int) -> int:
        """Current level (position in the ordering) of ``var``."""
        self._ensure_var(var)
        return self._var2level[var]

    def var_at_level(self, level: int) -> int:
        return self._level2var[level]

    @property
    def variable_order(self) -> tuple[int, ...]:
        """Variables from top level to bottom."""
        return tuple(self._level2var)

    def cofactors(self, node: int, var: int) -> tuple[int, int]:
        """(low, high) cofactors of ``node`` w.r.t. ``var``."""
        if self._var[node] == var:
            return self._low[node], self._high[node]
        return node, node

    # ------------------------------------------------------------------
    # core operations
    # ------------------------------------------------------------------
    def ite(self, cond: int, then: int, other: int) -> int:
        """If-then-else: the universal connective."""
        if cond == self.TRUE:
            return then
        if cond == self.FALSE:
            return other
        if then == other:
            return then
        if then == self.TRUE and other == self.FALSE:
            return cond
        key = (cond, then, other)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        v2l = self._var2level
        tops = [
            self._var[n]
            for n in (cond, then, other)
            if n > 1
        ]
        var = min(tops, key=v2l.__getitem__)
        c0, c1 = self.cofactors(cond, var)
        t0, t1 = self.cofactors(then, var)
        o0, o1 = self.cofactors(other, var)
        result = self._mk(
            var, self.ite(c0, t0, o0), self.ite(c1, t1, o1)
        )
        self._ite_cache[key] = result
        return result

    def apply_and(self, a: int, b: int) -> int:
        return self.ite(a, b, self.FALSE)

    def apply_or(self, a: int, b: int) -> int:
        return self.ite(a, self.TRUE, b)

    def apply_xor(self, a: int, b: int) -> int:
        return self.ite(a, self.apply_not(b), b)

    def apply_not(self, a: int) -> int:
        return self.ite(a, self.FALSE, self.TRUE)

    def apply_xnor(self, a: int, b: int) -> int:
        return self.ite(a, b, self.apply_not(b))

    def apply_implies(self, a: int, b: int) -> int:
        return self.ite(a, b, self.TRUE)

    def conjoin(self, terms: Iterable[int]) -> int:
        result = self.TRUE
        for term in terms:
            result = self.apply_and(result, term)
            if result == self.FALSE:
                return result
        return result

    def disjoin(self, terms: Iterable[int]) -> int:
        result = self.FALSE
        for term in terms:
            result = self.apply_or(result, term)
            if result == self.TRUE:
                return result
        return result

    # ------------------------------------------------------------------
    # restriction / quantification / renaming
    # ------------------------------------------------------------------
    def restrict(self, node: int, var: int, value: bool) -> int:
        """Cofactor w.r.t. ``var = value`` (memoised over the shared DAG)."""
        self._ensure_var(var)
        return self._restrict_rec(node, var, bool(value), self._var2level[var])

    def _restrict_rec(self, node: int, var: int, value: bool, target: int) -> int:
        if node <= 1:
            return node
        node_var = self._var[node]
        if self._var2level[node_var] > target:
            return node
        if node_var == var:
            return self._high[node] if value else self._low[node]
        key = (node, var, value)
        cached = self._restrict_cache.get(key)
        if cached is not None:
            return cached
        result = self._mk(
            node_var,
            self._restrict_rec(self._low[node], var, value, target),
            self._restrict_rec(self._high[node], var, value, target),
        )
        self._restrict_cache[key] = result
        return result

    def exists(self, node: int, variables: Iterable[int]) -> int:
        """Existential quantification over a set of variables."""
        var_set = frozenset(variables)
        if not var_set or node <= 1:
            return node
        self._ensure_var(max(var_set))
        v2l = self._var2level
        max_level = max(v2l[v] for v in var_set)
        return self._exists_rec(node, var_set, max_level)

    def _exists_rec(self, node: int, var_set: frozenset[int], max_level: int) -> int:
        if node <= 1:
            return node
        var = self._var[node]
        if self._var2level[var] > max_level:
            return node  # ordering: no quantified variable below here
        key = (node, var_set)
        cached = self._exists_cache.get(key)
        if cached is not None:
            return cached
        low = self._exists_rec(self._low[node], var_set, max_level)
        if var in var_set:
            if low == self.TRUE:
                result = self.TRUE
            else:
                high = self._exists_rec(self._high[node], var_set, max_level)
                result = self.apply_or(low, high)
        else:
            high = self._exists_rec(self._high[node], var_set, max_level)
            result = self._mk(var, low, high)
        self._exists_cache[key] = result
        return result

    def and_exists(self, a: int, b: int, variables: Iterable[int]) -> int:
        """Relational product ``∃ vars. a ∧ b`` (image computation core).

        Fused: the conjunction is never materialised below the highest
        quantified level, which is what keeps partitioned image steps
        from re-growing the intermediate product they exist to avoid.
        """
        var_set = frozenset(variables)
        if not var_set:
            return self.apply_and(a, b)
        self._ensure_var(max(var_set))
        max_level = max(self._var2level[v] for v in var_set)
        return self._and_exists_rec(a, b, var_set, max_level)

    def _and_exists_rec(
        self, a: int, b: int, var_set: frozenset[int], max_level: int
    ) -> int:
        if a == self.FALSE or b == self.FALSE:
            return self.FALSE
        if a == self.TRUE:
            return self._exists_rec(b, var_set, max_level)
        if b == self.TRUE or a == b:
            return self._exists_rec(a, var_set, max_level)
        v2l = self._var2level
        var_a, var_b = self._var[a], self._var[b]
        level_a, level_b = v2l[var_a], v2l[var_b]
        if min(level_a, level_b) > max_level:
            return self.apply_and(a, b)
        if a > b:
            a, b = b, a  # ∧ commutes: normalise the cache key
            var_a, level_a, var_b, level_b = var_b, level_b, var_a, level_a
        key = (a, b, var_set)
        cached = self._andex_cache.get(key)
        if cached is not None:
            return cached
        var = var_a if level_a <= level_b else var_b
        a0, a1 = self.cofactors(a, var)
        b0, b1 = self.cofactors(b, var)
        if var in var_set:
            low = self._and_exists_rec(a0, b0, var_set, max_level)
            if low == self.TRUE:
                result = self.TRUE
            else:
                high = self._and_exists_rec(a1, b1, var_set, max_level)
                result = self.apply_or(low, high)
        else:
            result = self._mk(
                var,
                self._and_exists_rec(a0, b0, var_set, max_level),
                self._and_exists_rec(a1, b1, var_set, max_level),
            )
        self._andex_cache[key] = result
        return result

    def rename(self, node: int, mapping: dict[int, int]) -> int:
        """Simultaneous variable substitution ``node[old := new, ...]``.

        When the mapping preserves the *level* order of the node's
        support (true for the interleaved current/next convention, in
        any reordering that keeps pairs together) the result is built by
        a direct structural walk; otherwise it falls back to an
        ``ite``-based compose, which is correct for arbitrary mappings
        -- including level-order-violating and collapsing ones.
        """
        if node <= 1 or not mapping:
            return node
        items = tuple(sorted(mapping.items()))
        for old, new in items:
            if new < 0:
                raise ValueError(f"variable index must be >= 0, got {new}")
            self._ensure_var(old)
            self._ensure_var(new)
        key = (node, items)
        cached = self._rename_cache.get(key)
        if cached is not None:
            return cached
        support = self.support(node)
        if not support & mapping.keys():
            self._rename_cache[key] = node
            return node
        v2l = self._var2level
        src = sorted(support, key=v2l.__getitem__)
        dst_levels = [v2l[mapping.get(v, v)] for v in src]
        if all(x < y for x, y in zip(dst_levels, dst_levels[1:], strict=False)):
            result = self._rename_rec(node, items, mapping)
        else:
            result = self._subst_rec(node, items, mapping)
        self._rename_cache[key] = result
        return result

    def _rename_rec(
        self, node: int, items: tuple[tuple[int, int], ...], mapping: dict[int, int]
    ) -> int:
        if node <= 1:
            return node
        key = (node, items)
        cached = self._rename_cache.get(key)
        if cached is not None:
            return cached
        var = self._var[node]
        result = self._mk(
            mapping.get(var, var),
            self._rename_rec(self._low[node], items, mapping),
            self._rename_rec(self._high[node], items, mapping),
        )
        self._rename_cache[key] = result
        return result

    def _subst_rec(
        self, node: int, items: tuple[tuple[int, int], ...], mapping: dict[int, int]
    ) -> int:
        if node <= 1:
            return node
        key = (node, items)
        cached = self._rename_cache.get(key)
        if cached is not None:
            return cached
        var = self._var[node]
        result = self.ite(
            self.var(mapping.get(var, var)),
            self._subst_rec(self._high[node], items, mapping),
            self._subst_rec(self._low[node], items, mapping),
        )
        self._rename_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # support
    # ------------------------------------------------------------------
    def support(self, node: int) -> frozenset[int]:
        """Variables the function actually depends on (memoised).

        Drives the early-quantification scheduler: a variable can be
        quantified out as soon as no remaining conjunct's support
        mentions it.
        """
        cache = self._support_cache

        def rec(n: int) -> frozenset[int]:
            if n <= 1:
                return frozenset()
            cached = cache.get(n)
            if cached is None:
                cached = (
                    rec(self._low[n]) | rec(self._high[n]) | {self._var[n]}
                )
                cache[n] = cached
            return cached

        return rec(node)

    # ------------------------------------------------------------------
    # cache accounting
    # ------------------------------------------------------------------
    @property
    def cache_entries(self) -> int:
        """Total entries across every operation cache."""
        return (
            len(self._ite_cache)
            + len(self._exists_cache)
            + len(self._rename_cache)
            + len(self._restrict_cache)
            + len(self._andex_cache)
            + len(self._support_cache)
        )

    def clear_caches(self) -> int:
        """Drop every operation cache; returns the number of entries dropped.

        Owners of long-lived managers call this to bound memory between
        workloads; reordering calls it because cached results may
        reference nodes the reorder did not rewrite.
        """
        dropped = self.cache_entries
        self._ite_cache.clear()
        self._exists_cache.clear()
        self._rename_cache.clear()
        self._restrict_cache.clear()
        self._andex_cache.clear()
        self._support_cache.clear()
        self.cache_clears += 1
        self.cache_dropped += dropped
        return dropped

    @property
    def cache_stats(self) -> dict[str, int]:
        """Per-op-cache hit/miss counters plus clear accounting.

        Exact only in profiling mode (``profile_caches``; see
        :class:`_CountingCache`) -- otherwise every hit/miss reads 0.
        Hits/misses survive :meth:`clear_caches` (they are lifetime
        totals; a clear shows up as the ``clears``/``dropped`` pair and
        a subsequent dip in hit rate, not as a counter reset).
        """
        stats: dict[str, int] = {}
        for name, cache in (
            ("ite", self._ite_cache),
            ("restrict", self._restrict_cache),
            ("exists", self._exists_cache),
            ("and_exists", self._andex_cache),
            ("rename", self._rename_cache),
        ):
            probes = getattr(cache, "probes", 0)
            insertions = getattr(cache, "insertions", 0)
            stats[name + "_hits"] = probes - insertions
            stats[name + "_misses"] = insertions
        stats["count_models_hits"] = self._count_models_hits
        stats["count_models_misses"] = self._count_models_misses
        stats["clears"] = self.cache_clears
        stats["dropped"] = self.cache_dropped
        return stats

    def publish_metrics(self, registry, prefix: str = "bdd.") -> None:
        """Fold this manager's counters into a telemetry registry.

        Counter-style values are published as *deltas* since the last
        publish (tracked per manager), so owners may call this at every
        safe point — image steps do — without double counting.  Peaks
        (node store, cache entries, reorder live size) go out as
        max-merged gauges.
        """
        counters = {
            "cache." + name: value for name, value in self.cache_stats.items()
        }
        counters["reorders"] = self.reorder_count
        counters["swaps"] = self.swap_count
        published = self._published_metrics
        for name in sorted(counters):
            diff = counters[name] - published.get(name, 0)
            if diff:
                registry.inc(prefix + name, diff)
                published[name] = counters[name]
        registry.gauge_max(prefix + "peak_nodes", self.peak_nodes)
        registry.gauge_max(prefix + "cache_entries_peak", self.cache_entries)
        if self.last_reorder_live is not None:
            registry.gauge_max(prefix + "reorder_live", self.last_reorder_live)

    # ------------------------------------------------------------------
    # variable reordering
    # ------------------------------------------------------------------
    def protect(self, node: int) -> int:
        """Pin ``node`` as a reorder root (counted; pair with unprotect)."""
        if node > 1:
            self._protected[node] = self._protected.get(node, 0) + 1
        return node

    def unprotect(self, node: int) -> None:
        """Release one :meth:`protect` pin."""
        if node <= 1:
            return
        count = self._protected.get(node, 0) - 1
        if count > 0:
            self._protected[node] = count
        else:
            self._protected.pop(node, None)

    def _accounting(self) -> _Accounting:
        if self._protected:
            roots: Iterable[tuple[int, int]] = self._protected.items()
        else:
            # No declared roots: treat every node as live so that swaps
            # keep the whole store well-ordered (metric includes garbage).
            roots = ((n, 1) for n in range(2, len(self._var)))
        return _Accounting(self, roots)

    def swap_adjacent(self, level: int) -> None:
        """Exchange the variables at ``level`` and ``level + 1`` in place.

        Every live node keeps its id and its meaning; see the module
        docstring for the validity contract.  Clears the operation
        caches (a swap is a one-off reorder).
        """
        if not 0 <= level < len(self._level2var) - 1:
            raise ValueError(f"no adjacent levels at {level}")
        self._swap_tracked(level, self._accounting())
        self.clear_caches()

    def _swap_tracked(self, level: int, acc: _Accounting) -> None:
        self.swap_count += 1
        u = self._level2var[level]
        v = self._level2var[level + 1]
        var_arr, low_arr, high_arr = self._var, self._low, self._high
        unique = self._unique
        nodes_u = acc.by_var.get(u)
        if nodes_u:
            for n in list(nodes_u):
                if acc.refs.get(n, 0) <= 0:
                    continue  # died earlier in this pass
                f0, f1 = low_arr[n], high_arr[n]
                f0v = f0 > 1 and var_arr[f0] == v
                f1v = f1 > 1 and var_arr[f1] == v
                if not (f0v or f1v):
                    continue  # independent of v: rides along with u
                if f0v:
                    f00, f01 = low_arr[f0], high_arr[f0]
                else:
                    f00 = f01 = f0
                if f1v:
                    f10, f11 = low_arr[f1], high_arr[f1]
                else:
                    f10 = f11 = f1
                del unique[(u, f0, f1)]
                new_low = self._mk(u, f00, f10)
                new_high = self._mk(u, f01, f11)
                var_arr[n] = v
                low_arr[n] = new_low
                high_arr[n] = new_high
                unique[(v, new_low, new_high)] = n
                nodes_u.discard(n)
                acc.by_var.setdefault(v, set()).add(n)
                acc.ref(new_low)
                acc.ref(new_high)
                acc.deref(f0)
                acc.deref(f1)
        self._level2var[level] = v
        self._level2var[level + 1] = u
        self._var2level[u] = level + 1
        self._var2level[v] = level

    def _sift_var(self, var: int, acc: _Accounting, max_growth: float) -> None:
        """Move ``var`` through every level; settle at the best position."""
        levels = len(self._level2var)
        level = self._var2level[var]
        best_size = acc.total
        best_level = level
        while level < levels - 1:  # downward pass
            self._swap_tracked(level, acc)
            level += 1
            if acc.total < best_size:
                best_size, best_level = acc.total, level
            elif acc.total > best_size * max_growth:
                break
        while level > 0:  # upward pass
            self._swap_tracked(level - 1, acc)
            level -= 1
            if acc.total < best_size:
                best_size, best_level = acc.total, level
            elif acc.total > best_size * max_growth:
                break
        while level < best_level:
            self._swap_tracked(level, acc)
            level += 1
        while level > best_level:
            self._swap_tracked(level - 1, acc)
            level -= 1

    def sift(self, max_growth: float = 1.2) -> int:
        """One Rudell sifting pass over all variables.

        Variables are visited by decreasing live-node count; each is
        swapped through every level and parked where the live size was
        smallest (a pass down a variable's worse direction aborts once
        the size exceeds ``max_growth`` times the best seen).  Returns
        the live node count after the pass.  Callers that want the
        operation caches invalidated too should go through
        :meth:`reorder`.
        """
        if len(self._level2var) < 2:
            return self.num_nodes
        acc = self._accounting()
        order = sorted(
            (v for v, nodes in acc.by_var.items() if nodes),
            key=lambda v: (-len(acc.by_var[v]), v),
        )
        for var in order:
            if acc.by_var.get(var):
                self._sift_var(var, acc, max_growth)
        return acc.total

    def reorder(self, max_growth: float = 1.2) -> int:
        """Sift, invalidate the operation caches, and record the pass.

        Returns the live node count after sifting.  Only protected
        nodes (and their descendants) are guaranteed valid afterwards.
        """
        live = self.sift(max_growth)
        self.clear_caches()
        self.reorder_count += 1
        self.last_reorder_live = live
        return live

    def enable_auto_reorder(self, threshold: int) -> None:
        """Arm :meth:`maybe_reorder` to fire once ``num_nodes`` reaches
        ``threshold`` (and thereafter at each doubling of the store)."""
        self._auto_reorder_at = max(int(threshold), _MIN_AUTO_REORDER)

    def maybe_reorder(self) -> bool:
        """Reorder iff the node store crossed the growth threshold.

        This is the *only* auto-trigger: it must be called at a safe
        point (no structural recursion in flight), which owners do
        between image steps.  After firing, the next trigger is twice
        the current store size, so reorder work stays proportional to
        allocation growth.
        """
        threshold = self._auto_reorder_at
        if threshold is None or self.num_nodes < threshold:
            return False
        self.reorder()
        self._auto_reorder_at = max(threshold, self.num_nodes * 2)
        return True

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def evaluate(self, node: int, assignment: Callable[[int], bool]) -> bool:
        """Evaluate under a variable assignment function."""
        while node > 1:
            node = (
                self._high[node]
                if assignment(self._var[node])
                else self._low[node]
            )
        return node == self.TRUE

    def count_models(self, node: int, num_vars: int) -> int:
        """Number of satisfying assignments over ``num_vars`` variables
        (variables indexed 0..num_vars-1).

        Counting walks *levels*, so the answer is reorder-independent;
        the function's support must lie within the counted variables.
        """
        for v in self.support(node):
            if v >= num_vars:
                raise ValueError(
                    f"cannot count over {num_vars} variables: "
                    f"support contains variable {v}"
                )
        levels = max(num_vars, len(self._level2var))
        v2l = self._var2level
        cache: dict[int, int] = (
            _CountingCache() if self.profile_caches else {}
        )

        def count(n: int) -> tuple[int, int]:
            """(models, level_or_levels) counted from the node's level down."""
            if n == self.FALSE:
                return 0, levels
            if n == self.TRUE:
                return 1, levels
            level = v2l[self._var[n]]
            cached = cache.get(n)
            if cached is not None:
                return cached, level
            low_models, low_level = count(self._low[n])
            high_models, high_level = count(self._high[n])
            total = low_models * (1 << (low_level - level - 1)) + high_models * (
                1 << (high_level - level - 1)
            )
            cache[n] = total
            return total, level

        models, top = count(node)
        if self.profile_caches:
            self._count_models_misses += cache.insertions
            self._count_models_hits += cache.probes - cache.insertions
        return (models * (1 << top)) >> (levels - num_vars)

    def one_model(self, node: int) -> dict[int, bool] | None:
        """Some satisfying assignment (partial: only decided variables)."""
        if node == self.FALSE:
            return None
        model: dict[int, bool] = {}
        while node > 1:
            if self._low[node] != self.FALSE:
                model[self._var[node]] = False
                node = self._low[node]
            else:
                model[self._var[node]] = True
                node = self._high[node]
        return model

    def iter_nodes(self, node: int) -> Iterator[int]:
        """All reachable nodes of a BDD (for size measurements)."""
        seen: set[int] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current in seen or current <= 1:
                continue
            seen.add(current)
            stack.append(self._low[current])
            stack.append(self._high[current])
        return iter(seen)

    def size(self, node: int) -> int:
        return sum(1 for _ in self.iter_nodes(node))
