"""Reduced Ordered Binary Decision Diagrams.

A compact BDD package supporting what symbolic reachability needs:
hash-consed nodes, memoised ``ite``-based apply, restriction,
existential quantification over variable sets, variable renaming, and
model counting.  Variables are non-negative integers ordered by value
(callers choose an interleaved current/next ordering for good image
computation behaviour, as is standard in symbolic model checking).

Nodes are integers indexing into the manager's tables; 0 and 1 are the
terminals.  This representation keeps the hot paths allocation-free.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator


class BddManager:
    """Owns the node store and the operation caches."""

    FALSE = 0
    TRUE = 1

    def __init__(self) -> None:
        # node id -> (var, low, high); terminals use var = -1 sentinel.
        self._var: list[int] = [-1, -1]
        self._low: list[int] = [0, 0]
        self._high: list[int] = [0, 0]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}
        self._exists_cache: dict[tuple[int, frozenset[int]], int] = {}
        self._rename_cache: dict[tuple[int, tuple[tuple[int, int], ...]], int] = {}

    # ------------------------------------------------------------------
    # node construction
    # ------------------------------------------------------------------
    def _mk(self, var: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (var, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._var)
            self._var.append(var)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
        return node

    def var(self, index: int) -> int:
        """The BDD of variable ``index``."""
        if index < 0:
            raise ValueError(f"variable index must be >= 0, got {index}")
        return self._mk(index, self.FALSE, self.TRUE)

    def nvar(self, index: int) -> int:
        """The BDD of ``¬variable``."""
        return self._mk(index, self.TRUE, self.FALSE)

    @property
    def num_nodes(self) -> int:
        return len(self._var)

    def top_var(self, node: int) -> int:
        return self._var[node]

    def cofactors(self, node: int, var: int) -> tuple[int, int]:
        """(low, high) cofactors of ``node`` w.r.t. ``var``."""
        if self._var[node] == var:
            return self._low[node], self._high[node]
        return node, node

    # ------------------------------------------------------------------
    # core operations
    # ------------------------------------------------------------------
    def ite(self, cond: int, then: int, other: int) -> int:
        """If-then-else: the universal connective."""
        if cond == self.TRUE:
            return then
        if cond == self.FALSE:
            return other
        if then == other:
            return then
        if then == self.TRUE and other == self.FALSE:
            return cond
        key = (cond, then, other)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        tops = [
            self._var[n]
            for n in (cond, then, other)
            if n > 1
        ]
        var = min(tops)
        c0, c1 = self.cofactors(cond, var)
        t0, t1 = self.cofactors(then, var)
        o0, o1 = self.cofactors(other, var)
        result = self._mk(
            var, self.ite(c0, t0, o0), self.ite(c1, t1, o1)
        )
        self._ite_cache[key] = result
        return result

    def apply_and(self, a: int, b: int) -> int:
        return self.ite(a, b, self.FALSE)

    def apply_or(self, a: int, b: int) -> int:
        return self.ite(a, self.TRUE, b)

    def apply_xor(self, a: int, b: int) -> int:
        return self.ite(a, self.apply_not(b), b)

    def apply_not(self, a: int) -> int:
        return self.ite(a, self.FALSE, self.TRUE)

    def apply_xnor(self, a: int, b: int) -> int:
        return self.ite(a, b, self.apply_not(b))

    def apply_implies(self, a: int, b: int) -> int:
        return self.ite(a, b, self.TRUE)

    def conjoin(self, terms: Iterable[int]) -> int:
        result = self.TRUE
        for term in terms:
            result = self.apply_and(result, term)
            if result == self.FALSE:
                return result
        return result

    def disjoin(self, terms: Iterable[int]) -> int:
        result = self.FALSE
        for term in terms:
            result = self.apply_or(result, term)
            if result == self.TRUE:
                return result
        return result

    # ------------------------------------------------------------------
    # restriction / quantification / renaming
    # ------------------------------------------------------------------
    def restrict(self, node: int, var: int, value: bool) -> int:
        """Cofactor w.r.t. ``var = value``."""
        if node <= 1 or self._var[node] > var:
            return node
        if self._var[node] == var:
            return self._high[node] if value else self._low[node]
        return self._mk(
            self._var[node],
            self.restrict(self._low[node], var, value),
            self.restrict(self._high[node], var, value),
        )

    def exists(self, node: int, variables: Iterable[int]) -> int:
        """Existential quantification over a set of variables."""
        var_set = frozenset(variables)
        if not var_set:
            return node
        return self._exists_rec(node, var_set)

    def _exists_rec(self, node: int, var_set: frozenset[int]) -> int:
        if node <= 1:
            return node
        var = self._var[node]
        if all(v < var for v in var_set):
            return node  # ordering: no quantified variable below here
        key = (node, var_set)
        cached = self._exists_cache.get(key)
        if cached is not None:
            return cached
        low = self._exists_rec(self._low[node], var_set)
        high = self._exists_rec(self._high[node], var_set)
        if var in var_set:
            result = self.apply_or(low, high)
        else:
            result = self._mk(var, low, high)
        self._exists_cache[key] = result
        return result

    def and_exists(self, a: int, b: int, variables: Iterable[int]) -> int:
        """Relational product ``∃ vars. a ∧ b`` (image computation core)."""
        return self.exists(self.apply_and(a, b), variables)

    def rename(self, node: int, mapping: dict[int, int]) -> int:
        """Substitute variables according to ``mapping``.

        Requires the mapping to be order-preserving between its domain
        and range (true for the interleaved current/next convention
        where ``next = current + 1``).
        """
        items = tuple(sorted(mapping.items()))
        if not items:
            return node
        ordered = sorted(mapping)
        if [mapping[v] for v in ordered] != sorted(mapping.values()):
            raise ValueError("rename mapping must preserve variable order")
        return self._rename_rec(node, items)

    def _rename_rec(self, node: int, items: tuple[tuple[int, int], ...]) -> int:
        if node <= 1:
            return node
        key = (node, items)
        cached = self._rename_cache.get(key)
        if cached is not None:
            return cached
        var = self._var[node]
        new_var = dict(items).get(var, var)
        result = self._mk(
            new_var,
            self._rename_rec(self._low[node], items),
            self._rename_rec(self._high[node], items),
        )
        self._rename_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def evaluate(self, node: int, assignment: Callable[[int], bool]) -> bool:
        """Evaluate under a variable assignment function."""
        while node > 1:
            node = (
                self._high[node]
                if assignment(self._var[node])
                else self._low[node]
            )
        return node == self.TRUE

    def count_models(self, node: int, num_vars: int) -> int:
        """Number of satisfying assignments over ``num_vars`` variables
        (variables indexed 0..num_vars-1)."""
        cache: dict[int, int] = {}

        def count(n: int) -> tuple[int, int]:
            """(models, top_var_or_num_vars) with models counted from the
            node's top variable downwards."""
            if n == self.FALSE:
                return 0, num_vars
            if n == self.TRUE:
                return 1, num_vars
            if n in cache:
                return cache[n], self._var[n]
            low_models, low_top = count(self._low[n])
            high_models, high_top = count(self._high[n])
            var = self._var[n]
            total = low_models * (1 << (low_top - var - 1)) + high_models * (
                1 << (high_top - var - 1)
            )
            cache[n] = total
            return total, var

        models, top = count(node)
        return models * (1 << top)

    def one_model(self, node: int) -> dict[int, bool] | None:
        """Some satisfying assignment (partial: only decided variables)."""
        if node == self.FALSE:
            return None
        model: dict[int, bool] = {}
        while node > 1:
            if self._low[node] != self.FALSE:
                model[self._var[node]] = False
                node = self._low[node]
            else:
                model[self._var[node]] = True
                node = self._high[node]
        return model

    def iter_nodes(self, node: int) -> Iterator[int]:
        """All reachable nodes of a BDD (for size measurements)."""
        seen: set[int] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current in seen or current <= 1:
                continue
            seen.add(current)
            stack.append(self._low[current])
            stack.append(self._high[current])
        return iter(seen)

    def size(self, node: int) -> int:
        return sum(1 for _ in self.iter_nodes(node))
