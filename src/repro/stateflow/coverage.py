"""Structural coverage of a chart by a trace set.

Complements the behavioural coverage of :mod:`repro.core.coverage`
(which measures the paper's α) with the structural metrics a Simulink
test engineer would recognise: which chart states were visited and which
chart transitions fired during a set of executions.  The compiled firing
conditions (:class:`~repro.stateflow.chart.CodegenInfo`) identify the
fired transition of every machine at every step, so the measurement is
exact rather than inferred from observations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..traces.trace import TraceSet
from .benchmark import Benchmark


@dataclass
class MachineCoverage:
    """State/transition coverage for one machine."""

    machine: str
    states_total: int
    states_visited: set[str] = field(default_factory=set)
    transitions_total: int = 0
    transitions_fired: set[str] = field(default_factory=set)
    _all_labels: list[str] = field(default_factory=list)

    @property
    def state_coverage(self) -> float:
        if self.states_total == 0:
            return 1.0
        return len(self.states_visited) / self.states_total

    @property
    def transition_coverage(self) -> float:
        if self.transitions_total == 0:
            return 1.0
        return len(self.transitions_fired) / self.transitions_total


@dataclass
class ChartCoverage:
    """Aggregate structural coverage of a benchmark chart."""

    machines: dict[str, MachineCoverage] = field(default_factory=dict)

    @property
    def transition_coverage(self) -> float:
        total = sum(m.transitions_total for m in self.machines.values())
        fired = sum(len(m.transitions_fired) for m in self.machines.values())
        if total == 0:
            return 1.0
        return fired / total

    @property
    def state_coverage(self) -> float:
        total = sum(m.states_total for m in self.machines.values())
        visited = sum(len(m.states_visited) for m in self.machines.values())
        if total == 0:
            return 1.0
        return visited / total

    def uncovered_transitions(self) -> list[str]:
        missing: list[str] = []
        for machine in self.machines.values():
            fired = machine.transitions_fired
            missing.extend(
                f"{machine.machine}:{label}"
                for label in machine._all_labels
                if label not in fired
            )
        return missing


def measure_chart_coverage(
    benchmark: Benchmark, traces: TraceSet
) -> ChartCoverage:
    """Replay ``traces`` against the chart and record what they exercise.

    Traces must be executions of the benchmark's system (they are
    replayed step by step; the compiled firing conditions decide which
    transition each step took).
    """
    system = benchmark.system
    chart = benchmark.chart
    coverage = ChartCoverage()
    for machine in chart.machines:
        entry = MachineCoverage(
            machine=machine.name,
            states_total=len(machine.states),
            transitions_total=len(machine.transitions),
        )
        entry._all_labels = [t.label for t in machine.transitions]
        entry.states_visited.add(machine.initial)
        coverage.machines[machine.name] = entry

    input_names = system.input_names
    state_names = system.state_names
    for trace in traces:
        state = system.init_state.as_dict()
        for observation in trace:
            primed_inputs = {
                f"{name}'": observation[name] for name in input_names
            }
            for machine in chart.machines:
                fired = benchmark.info.fired(machine.name, state, primed_inputs)
                if fired is not None:
                    entry = coverage.machines[machine.name]
                    entry.transitions_fired.add(fired.transition.label)
                    entry.states_visited.add(fired.transition.dst)
            state = {name: observation[name] for name in state_names}
    return coverage
