"""Temporal-logic and scheduling benchmarks.

* AutomaticTransmissionUsingDurationOperator -- gear shifting with
  duration-qualified speed thresholds.
* SchedulingSimulinkAlgorithmsUsingStateflow -- a cyclic algorithm
  scheduler with per-phase dwell times.
* Superstep -- the super-step semantics demo: with super-stepping the
  inner chain collapses within a tick (a single observable state);
  without it the chain is traversed one state per tick.
* TemporalLogicScheduler -- rate scheduler driven by ``after``.
"""

from __future__ import annotations

from ...expr.ast import land
from ...expr.types import BOOL, IntSort
from ..benchmark import Benchmark, FsaSpec, make_benchmark
from ..chart import Chart


def transmission() -> Benchmark:
    """Automatic transmission with duration-qualified shifts.

    A shift happens only after the speed has satisfied the threshold for
    a dwell period (the ``duration`` operator; scaled-down dwell here,
    the paper's k=125 reflects the original 62-tick counter).
    |X| = 4: speed and throttle inputs, gear, gear dwell.  Paper: N=5.
    """
    chart = Chart("AutomaticTransmissionUsingDurationOperator")
    speed = chart.add_input(
        "speed", IntSort(0, 120), samples=[0, 5, 20, 25, 26, 45, 50, 51, 75, 76, 120]
    )
    throttle = chart.add_input("throttle", IntSort(0, 100), samples=[0, 50, 100])

    gear = chart.machine(
        "Gear", ["Neutral", "First", "Second", "Third", "Fourth"],
        initial="Neutral", max_dwell=3,
    )
    gear.transition("Neutral", "First", guard=speed > 0, label="engage")
    gear.transition(
        "First", "Second", guard=land(speed > 25, gear.after(3)), label="up12"
    )
    gear.transition(
        "Second", "Third", guard=land(speed > 50, gear.after(3)), label="up23"
    )
    gear.transition(
        "Third", "Fourth", guard=land(speed > 75, gear.after(3)), label="up34"
    )
    gear.transition("Fourth", "Third", guard=speed <= 75, label="down43")
    gear.transition("Third", "Second", guard=speed <= 50, label="down32")
    gear.transition("Second", "First", guard=speed <= 25, label="down21")
    gear.transition(
        "First", "Neutral", guard=land(speed.eq(0), throttle.eq(0)),
        label="disengage",
    )

    return make_benchmark(
        chart,
        k=125,
        fsas=[FsaSpec("Gear", machines=("Gear",))],
        paper_num_observables=4,
    )


def simulink_scheduler() -> Benchmark:
    """Cyclic scheduler for three Simulink algorithms (A -> B -> C).

    Each phase holds for a fixed number of ticks while ``run`` is
    asserted; dropping ``run`` parks the scheduler.
    |X| = 3: run input, phase, dwell.  Paper: N=3, i=5.
    """
    chart = Chart("SchedulingSimulinkAlgorithmsUsingStateflow")
    run = chart.add_input("run", BOOL)

    sched = chart.machine(
        "Sched", ["AlgoA", "AlgoB", "AlgoC"], initial="AlgoA", max_dwell=4
    )
    sched.transition(
        "AlgoA", "AlgoB", guard=land(run, sched.after(2)), label="a2b"
    )
    sched.transition(
        "AlgoB", "AlgoC", guard=land(run, sched.after(3)), label="b2c"
    )
    sched.transition(
        "AlgoC", "AlgoA", guard=land(run, sched.after(2)), label="c2a"
    )

    return make_benchmark(
        chart,
        k=127,
        fsas=[FsaSpec("Sched", machines=("Sched",))],
        paper_num_observables=3,
    )


def superstep() -> Benchmark:
    """Super-step semantics demo (paper rows: with / without).

    With super-stepping enabled, the demo chart's inner chain reaches its
    fixpoint within one tick -- externally a single state (the paper
    learns N=1).  Without super-stepping the chain advances one state per
    tick (N=3).  Both variants are modelled side by side; each Table I
    row learns one of them.
    """
    chart = Chart("Superstep")
    step = chart.add_input("step", BOOL)

    with_super = chart.machine("WithSuper", ["Steady"], initial="Steady")
    with_super.transition("Steady", "Steady", guard=step, label="fixpoint")

    without = chart.machine(
        "Without", ["A", "B", "C"], initial="A"
    )
    without.transition("A", "B", guard=step, label="ab")
    without.transition("B", "C", guard=step, label="bc")
    without.transition("C", "A", guard=step, label="ca")

    return make_benchmark(
        chart,
        k=10,
        fsas=[
            FsaSpec("WithSuperStep", machines=("WithSuper",)),
            FsaSpec("WithoutSuperStep", machines=("Without",)),
        ],
        paper_num_observables=1,
        notes="Two semantics variants modelled as sibling machines.",
    )


def temporal_scheduler() -> Benchmark:
    """Rate scheduler: fast/medium/slow phases timed with ``after``.

    |X| = 2 in the paper (state + tick); the dwell counter is observable
    here, giving 3.  Paper: N=4, i=6, k=202 (scaled dwell).
    """
    chart = Chart("TemporalLogicScheduler")
    run = chart.add_input("run", BOOL)

    sched = chart.machine(
        "Rate", ["Idle", "Fast", "Medium", "Slow"], initial="Idle",
        max_dwell=6,
    )
    sched.transition("Idle", "Fast", guard=run, label="start")
    sched.transition("Fast", "Medium", guard=sched.after(2), label="f2m")
    sched.transition("Medium", "Slow", guard=sched.after(4), label="m2s")
    sched.transition("Slow", "Fast", guard=land(run, sched.after(6)), label="s2f")
    sched.transition("Slow", "Idle", guard=land(~run, sched.after(6)), label="stop")

    return make_benchmark(
        chart,
        k=202,
        fsas=[FsaSpec("Rate", machines=("Rate",))],
        paper_num_observables=2,
    )
