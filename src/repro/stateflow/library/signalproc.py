"""Signal-processing and dataflow benchmarks.

* FrameSyncController -- serial frame synchroniser with a position
  counter (the paper's hardest case: CBMC timed out on it).
* KarplusStrongAlgorithmUsingStateflow -- plucked-string synthesis:
  delay-line FSA and moving-average FSA.
* LadderLogicScheduler -- PLC-style ladder rung sequencing.
* SequenceRecognitionUsingMealyAndMooreChart -- "1101" detector.
* ServerQueueingSystem -- single server with a bounded queue.
* VarSize -- variable-size signal source and size-based processing.
"""

from __future__ import annotations

from ...expr.ast import ite, land
from ...expr.types import BOOL, IntSort
from ..benchmark import Benchmark, FsaSpec, make_benchmark
from ..chart import Chart


def frame_sync() -> Benchmark:
    """Serial frame synchroniser: search for markers, verify, lock.

    The frame-position counter is scaled to 0..63 (the original C uses a
    255-deep frame buffer; the paper's k=530 reflects that).  Paper: the
    only timeout row -- CBMC's per-condition proofs were slow on the
    memory operations; this reproduction's checker has no such cliff.
    |X| = 3: serial bit input, sync state, frame position.
    """
    chart = Chart("FrameSyncController")
    bit = chart.add_input("bit", BOOL)
    pos = chart.add_data("pos", IntSort(0, 63), init=0)

    sync = chart.machine("Sync", ["Search", "Verify", "Locked"], initial="Search")
    sync.transition("Search", "Verify", guard=bit, actions={pos: 0}, label="marker")
    sync.transition("Verify", "Locked", guard=land(bit, pos >= 2), label="confirm")
    sync.transition("Verify", "Search", guard=~bit, actions={pos: 0}, label="noise")
    sync.transition(
        "Locked", "Search", guard=land(~bit, pos >= 63), actions={pos: 0},
        label="drop",
    )
    sync.during("Verify", {pos: ite(pos < 63, pos + 1, pos)})
    sync.during("Locked", {pos: ite(pos < 63, pos + 1, 0)})

    return make_benchmark(
        chart,
        k=530,
        fsas=[FsaSpec("Sync", machines=("Sync",))],
        paper_num_observables=3,
    )


def karplus_strong() -> Benchmark:
    """Karplus-Strong string synthesis: delay line + moving average.

    |X| = 5: excitation input, the two FSAs, buffer index, accumulator.
    Paper rows: DelayLine (N=3), MovingAverage (N=3).
    """
    chart = Chart("KarplusStrongAlgorithmUsingStateflow")
    excite = chart.add_input("excite", BOOL)
    idx = chart.add_data("idx", IntSort(0, 15), init=0)
    acc = chart.add_data("acc", IntSort(0, 15), init=0)

    delay = chart.machine("DelayLine", ["Idle", "Fill", "Shift"], initial="Idle")
    delay.transition("Idle", "Fill", guard=excite, actions={idx: 0}, label="pluck")
    delay.transition("Fill", "Shift", guard=idx >= 15, label="full")
    delay.transition("Shift", "Idle", guard=~excite, actions={idx: 0}, label="decay")
    delay.during("Fill", {idx: idx + 1})

    average = chart.machine(
        "MovingAverage", ["Bypass", "Average", "Damp"], initial="Bypass"
    )
    average.transition(
        "Bypass", "Average", guard=delay.in_state("Shift"), actions={acc: 1},
        label="engage",
    )
    average.transition("Average", "Damp", guard=acc >= 12, label="saturate")
    average.transition(
        "Damp", "Bypass", guard=delay.in_state("Idle"), actions={acc: 0},
        label="quiet",
    )
    average.during("Average", {acc: acc + 1})

    return make_benchmark(
        chart,
        k=100,
        fsas=[
            FsaSpec("DelayLine", machines=("DelayLine",)),
            FsaSpec("MovingAverage", machines=("MovingAverage",)),
        ],
        paper_num_observables=5,
    )


def ladder_logic() -> Benchmark:
    """Ladder-logic rung scheduler: rungs fire in sequence on contacts.

    Deep rungs need specific input sequences, which random sampling
    rarely exercises -- the paper reports i=9 learning iterations here,
    its maximum outside the CD player.  |X| = 3.  Paper: N=4.
    """
    chart = Chart("LadderLogicScheduler")
    contact_a = chart.add_input("a", BOOL)
    contact_b = chart.add_input("b", BOOL)

    ladder = chart.machine(
        "Ladder", ["Idle", "Rung1", "Rung2", "Rung3"], initial="Idle"
    )
    ladder.transition("Idle", "Rung1", guard=land(contact_a, ~contact_b), label="r1")
    ladder.transition("Rung1", "Rung2", guard=land(contact_a, contact_b), label="r2")
    ladder.transition("Rung2", "Rung3", guard=land(~contact_a, contact_b), label="r3")
    ladder.transition("Rung3", "Idle", guard=land(~contact_a, ~contact_b), label="done")
    ladder.transition("Rung1", "Idle", guard=~contact_a, label="break1")
    ladder.transition("Rung2", "Idle", guard=land(~contact_a, ~contact_b), label="break2")

    return make_benchmark(
        chart,
        k=10,
        fsas=[FsaSpec("Ladder", machines=("Ladder",))],
        paper_num_observables=3,
    )


def sequence_recognition() -> Benchmark:
    """Mealy/Moore sequence detector for the bit pattern 1-1-0-1.

    |X| = 2: bit input and detector state.  Paper: N=5, i=1.
    """
    chart = Chart("SequenceRecognitionUsingMealyAndMooreChart")
    bit = chart.add_input("bit", BOOL)

    detector = chart.machine(
        "Detect", ["S0", "S1", "S11", "S110", "Hit"], initial="S0"
    )
    detector.transition("S0", "S1", guard=bit, label="one")
    detector.transition("S1", "S11", guard=bit, label="oneone")
    detector.transition("S1", "S0", guard=~bit, label="miss1")
    detector.transition("S11", "S110", guard=~bit, label="zero")
    detector.transition("S110", "Hit", guard=bit, label="match")
    detector.transition("S110", "S0", guard=~bit, label="miss2")
    detector.transition("Hit", "S11", guard=bit, label="overlap")
    detector.transition("Hit", "S0", guard=~bit, label="restart")

    return make_benchmark(
        chart,
        k=30,
        fsas=[FsaSpec("Detect", machines=("Detect",))],
        paper_num_observables=2,
    )


def server_queue() -> Benchmark:
    """Single-server queueing system with a bounded queue.

    |X| = 4: arrival and departure inputs, server state, queue length.
    Paper: N=3, i=2, k=40 (twice the queue bound).
    """
    chart = Chart("ServerQueueingSystem")
    arrive = chart.add_input("arrive", BOOL)
    depart = chart.add_input("depart", BOOL)
    queue = chart.add_data("q", IntSort(0, 10), init=0)

    server = chart.machine("Server", ["Idle", "Busy", "Full"], initial="Idle")
    server.transition(
        "Idle", "Busy", guard=arrive, actions={queue: 1}, label="first"
    )
    server.transition(
        "Busy", "Full", guard=land(arrive, ~depart, queue >= 9),
        actions={queue: 10}, label="saturate",
    )
    server.transition(
        "Busy", "Idle", guard=land(depart, ~arrive, queue <= 1),
        actions={queue: 0}, label="drain",
    )
    server.transition(
        "Full", "Busy", guard=land(depart, ~arrive), actions={queue: 9},
        label="relieve",
    )
    server.during(
        "Busy",
        {
            queue: ite(
                land(arrive, ~depart),
                ite(queue < 10, queue + 1, queue),
                ite(land(depart, ~arrive), ite(queue > 0, queue - 1, queue), queue),
            )
        },
    )

    return make_benchmark(
        chart,
        k=40,
        fsas=[FsaSpec("Server", machines=("Server",))],
        paper_num_observables=4,
    )


def var_size() -> Benchmark:
    """Variable-size signals: a size-ramping source + size-based processing.

    |X| = 4: size-select input, the two FSAs, current length.
    Paper rows: SizeBasedProcessing (N=3), VarSizeSignalSource (N=5).
    """
    chart = Chart("VarSize")
    sel = chart.add_input("sel", IntSort(0, 3))
    length = chart.add_data("len", IntSort(0, 16), init=0)

    source = chart.machine(
        "Source", ["Idle", "Small", "Growing", "Large", "Reset"],
        initial="Idle",
    )
    source.transition(
        "Idle", "Small", guard=sel >= 1, actions={length: 4}, label="start"
    )
    source.transition(
        "Small", "Growing", guard=sel >= 2, actions={length: 8}, label="grow"
    )
    source.transition(
        "Growing", "Large", guard=sel >= 3, actions={length: 16}, label="max"
    )
    source.transition(
        "Large", "Reset", guard=sel.eq(0), actions={length: 0}, label="clear"
    )
    source.transition(
        "Growing", "Reset", guard=sel.eq(0), actions={length: 0}, label="clear2"
    )
    source.transition("Reset", "Idle", guard=None, label="rearm")

    proc = chart.machine("Proc", ["Copy", "Sum", "Mean"], initial="Copy")
    proc.transition("Copy", "Sum", guard=length >= 8, label="batch")
    proc.transition("Sum", "Mean", guard=length >= 16, label="window")
    proc.transition("Sum", "Copy", guard=length < 8, label="small")
    proc.transition("Mean", "Copy", guard=length < 8, label="flush")

    return make_benchmark(
        chart,
        k=35,
        fsas=[
            FsaSpec("SizeBasedProcessing", machines=("Proc",)),
            FsaSpec("VarSizeSignalSource", machines=("Source",)),
        ],
        paper_num_observables=4,
    )
