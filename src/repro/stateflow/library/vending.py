"""Small event-driven benchmarks.

* MealyVendingMachine -- the classic Mealy chart: nickels/dimes
  accumulate toward 15 cents, soda dispensed on reaching it.
* CountEvents -- counting input events against a limit.
* MonitorTestPointsInStateflowChart -- a two-state toggle whose test
  point is observed.
* ViewDifferencesBetweenMessagesEventsAndData -- a consumer cycling
  through receive/process/send on message arrival.
"""

from __future__ import annotations

from ...expr.ast import land
from ...expr.types import BOOL, EnumSort, IntSort
from ..benchmark import Benchmark, FsaSpec, make_benchmark
from ..chart import Chart

COIN = EnumSort("Coin", ("none", "nickel", "dime"))


def vending_machine() -> Benchmark:
    """Mealy vending machine: states track money inserted (0/5/10/15).

    |X| = 2: the coin input and the chart state.  Paper: N=4, i=1.
    """
    chart = Chart("MealyVendingMachine")
    coin = chart.add_input("coin", COIN)

    machine = chart.machine(
        "Vend", ["Zero", "Five", "Ten", "Fifteen"], initial="Zero"
    )
    machine.transition("Zero", "Five", guard=coin.eq("nickel"), label="n0")
    machine.transition("Zero", "Ten", guard=coin.eq("dime"), label="d0")
    machine.transition("Five", "Ten", guard=coin.eq("nickel"), label="n5")
    machine.transition("Five", "Fifteen", guard=coin.eq("dime"), label="d5")
    machine.transition("Ten", "Fifteen", guard=coin.eq("nickel"), label="n10")
    machine.transition("Ten", "Fifteen", guard=coin.eq("dime"), label="d10")
    # Dispense and return to Zero on any further activity.
    machine.transition("Fifteen", "Zero", guard=None, label="dispense")

    return make_benchmark(
        chart,
        k=10,
        fsas=[FsaSpec("Vend", machines=("Vend",))],
        paper_num_observables=2,
    )


def count_events() -> Benchmark:
    """Count rising events up to a limit of 10, then saturate.

    |X| = 3: event input, chart state, counter.  Paper: N=3, k=20
    (twice the counter limit).
    """
    chart = Chart("CountEvents")
    ev = chart.add_input("ev", BOOL)
    count = chart.add_data("count", IntSort(0, 10), init=0)

    machine = chart.machine(
        "Counter", ["Idle", "Counting", "Full"], initial="Idle"
    )
    machine.transition(
        "Idle", "Counting", guard=ev, actions={count: 1}, label="first"
    )
    machine.transition(
        "Counting", "Full", guard=land(ev, count >= 9),
        actions={count: 10}, label="limit",
    )
    machine.transition(
        "Counting", "Counting", guard=land(ev, count < 9),
        actions={count: count + 1}, label="count",
    )
    machine.transition("Full", "Idle", guard=~ev, actions={count: 0}, label="reset")

    return make_benchmark(
        chart,
        k=20,
        fsas=[FsaSpec("Counter", machines=("Counter",))],
        paper_num_observables=3,
    )


def monitor_test_points() -> Benchmark:
    """Two-state toggle with an observed test point.

    |X| = 2.  Paper: N=2, i=1, converges immediately.
    """
    chart = Chart("MonitorTestPointsInStateflowChart")
    tick = chart.add_input("tick", BOOL)

    machine = chart.machine("Toggle", ["A", "B"], initial="A")
    machine.transition("A", "B", guard=tick, label="a2b")
    machine.transition("B", "A", guard=tick, label="b2a")

    return make_benchmark(
        chart,
        k=20,
        fsas=[FsaSpec("Toggle", machines=("Toggle",))],
        paper_num_observables=2,
    )


def messages_events() -> Benchmark:
    """Message/event/data consumer: idle -> receive -> process -> send.

    |X| = 2: message-arrival input and the consumer state.  Paper: N=4.
    """
    chart = Chart("ViewDifferencesBetweenMessagesEventsAndData")
    msg = chart.add_input("msg", BOOL)

    machine = chart.machine(
        "Consumer", ["Idle", "Receiving", "Processing", "Sending"],
        initial="Idle",
    )
    machine.transition("Idle", "Receiving", guard=msg, label="arrive")
    machine.transition("Receiving", "Processing", guard=None, label="take")
    machine.transition("Processing", "Sending", guard=msg, label="more")
    machine.transition("Processing", "Idle", guard=~msg, label="done")
    machine.transition("Sending", "Idle", guard=None, label="sent")

    return make_benchmark(
        chart,
        k=10,
        fsas=[FsaSpec("Consumer", machines=("Consumer",))],
        paper_num_observables=2,
    )
