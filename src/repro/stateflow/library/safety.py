"""Safety- and fault-handling benchmarks.

* ModelingALaunchAbortSystem -- launch vehicle with abort logic
  (three Table I rows: abort logic, overall mission, mode logic).
* ModelingARedundantSensorPairUsingAtomicSubchart -- two monitored
  sensors with a selector.
* ModelingASecuritySystem -- alarm controller with door/window/motion
  sensor FSAs (six Table I rows).
* YoYoControlOfSatellite -- yo-yo despin controller (three rows).
"""

from __future__ import annotations

from ...expr.ast import land, lor
from ...expr.types import BOOL, EnumSort, IntSort
from ..benchmark import Benchmark, FsaSpec, make_benchmark
from ..chart import Chart


def launch_abort() -> Benchmark:
    """Launch abort system: mission sequencer, mode logic, abort logic.

    |X| = 6: command + failure inputs, three machines, altitude counter.
    Paper rows: "Abort InabortLogic" (N=6), "Overall" (N=4),
    "ModeLogic" (N=5).
    """
    chart = Chart("ModelingALaunchAbortSystem")
    cmd = chart.add_input("cmd", EnumSort("Cmd", ("none", "launch", "abort")))
    fail = chart.add_input("fail", BOOL)
    alt = chart.add_data("alt", IntSort(0, 8), init=0)


    # AbortLogic is declared *first* (it must classify an abort against
    # the mission phase in which it was raised, i.e. the pre-update
    # Overall state); Overall and ModeLogic follow in execution order.
    abort_logic = chart.machine(
        "AbortLogic",
        ["Monitor", "PadAbort", "LowAbort", "HighAbort", "Chute", "Splashdown"],
        initial="Monitor",
    )
    overall = chart.machine(
        "Overall", ["Prelaunch", "Ascent", "AbortMode", "Done"],
        initial="Prelaunch",
    )
    overall.transition(
        "Prelaunch", "Ascent", guard=land(cmd.eq("launch"), ~fail),
        label="liftoff",
    )
    overall.transition(
        "Ascent", "AbortMode", guard=lor(cmd.eq("abort"), fail), label="abort"
    )
    overall.transition("Ascent", "Done", guard=alt >= 8, label="orbit")
    overall.transition("AbortMode", "Done", guard=~fail, label="recovered")
    overall.during("Ascent", {alt: alt + 1})

    mode = chart.machine(
        "ModeLogic",
        ["Idle", "FirstStage", "SecondStage", "AbortBurn", "Safed"],
        initial="Idle",
    )
    ascending = overall.in_state("Ascent")
    aborting = overall.in_state("AbortMode")
    mode.transition("Idle", "FirstStage", guard=ascending, label="stage1")
    mode.transition(
        "FirstStage", "SecondStage", guard=land(ascending, alt >= 4),
        label="stage2",
    )
    mode.transition("FirstStage", "AbortBurn", guard=aborting, label="escape1")
    mode.transition("SecondStage", "AbortBurn", guard=aborting, label="escape2")
    mode.transition("SecondStage", "Safed", guard=overall.in_state("Done"), label="secured")
    mode.transition("AbortBurn", "Safed", guard=overall.in_state("Done"), label="safed")

    trigger = lor(cmd.eq("abort"), fail)
    abort_logic.transition(
        "Monitor", "PadAbort",
        guard=land(trigger, overall.in_state("Prelaunch")), label="pad",
    )
    abort_logic.transition(
        "Monitor", "LowAbort", guard=land(trigger, ascending, alt < 4),
        label="low",
    )
    abort_logic.transition(
        "Monitor", "HighAbort", guard=land(trigger, ascending, alt >= 4),
        label="high",
    )
    abort_logic.transition("PadAbort", "Chute", guard=None, label="chute1")
    abort_logic.transition("LowAbort", "Chute", guard=None, label="chute2")
    abort_logic.transition("HighAbort", "Chute", guard=None, label="chute3")
    abort_logic.transition("Chute", "Splashdown", guard=~fail, label="down")

    return make_benchmark(
        chart,
        k=22,
        fsas=[
            FsaSpec("Abort InabortLogic", machines=("AbortLogic",)),
            FsaSpec("Overall", machines=("Overall",)),
            FsaSpec("ModeLogic", machines=("ModeLogic",)),
        ],
        paper_num_observables=6,
    )


def redundant_sensors() -> Benchmark:
    """Redundant sensor pair with range monitors and a selector.

    A sensor whose reading leaves [0, 90] is declared failed; the
    selector prefers sensor 1, falls back to sensor 2, holds the last
    good value while one recovers, and latches a total failure.
    |X| = 6.  Paper: N=4, i=4.
    """
    chart = Chart("ModelingARedundantSensorPairUsingAtomicSubchart")
    s1 = chart.add_input("s1", IntSort(0, 100), samples=[0, 45, 90, 91, 100])
    s2 = chart.add_input("s2", IntSort(0, 100), samples=[0, 55, 90, 91, 100])
    out = chart.add_data("out", IntSort(0, 100), init=0)

    mon1 = chart.machine("Mon1", ["Nominal", "Failed"], initial="Nominal")
    mon1.transition("Nominal", "Failed", guard=s1 > 90, label="fail1")
    mon1.transition("Failed", "Nominal", guard=s1 <= 90, label="heal1")

    mon2 = chart.machine("Mon2", ["Nominal", "Failed"], initial="Nominal")
    mon2.transition("Nominal", "Failed", guard=s2 > 90, label="fail2")
    mon2.transition("Failed", "Nominal", guard=s2 <= 90, label="heal2")

    ok1 = mon1.in_state("Nominal")
    ok2 = mon2.in_state("Nominal")
    selector = chart.machine(
        "Selector", ["UseS1", "UseS2", "Hold", "FailBoth"], initial="UseS1"
    )
    selector.transition("UseS1", "UseS2", guard=land(~ok1, ok2), label="swap")
    selector.transition("UseS1", "FailBoth", guard=land(~ok1, ~ok2), label="dual1")
    selector.transition("UseS2", "Hold", guard=land(~ok2, ok1), label="back")
    selector.transition("UseS2", "FailBoth", guard=land(~ok1, ~ok2), label="dual2")
    selector.transition("Hold", "UseS1", guard=ok1, label="restore")
    selector.transition("FailBoth", "Hold", guard=lor(ok1, ok2), label="partial")
    selector.during("UseS1", {out: s1})
    selector.during("UseS2", {out: s2})

    return make_benchmark(
        chart,
        k=20,
        fsas=[FsaSpec("Selector", machines=("Selector",))],
        paper_num_observables=6,
    )


def security_system() -> Benchmark:
    """Home security system: alarm controller + three sensor channels.

    Six Table I rows: the alarm's inner On-FSA, the alarm overall, the
    door channel, the motion channel's inner debounce FSA, the motion
    channel overall, and the window channel.  |X| = 14 here (the paper's
    16 includes two inputs this reconstruction folds into one each).
    """
    chart = Chart("ModelingASecuritySystem")
    arm = chart.add_input("arm", BOOL)
    disarm = chart.add_input("disarm", BOOL)
    door = chart.add_input("door", BOOL)
    window = chart.add_input("win", BOOL)
    motion = chart.add_input("motion", BOOL)
    siren = chart.add_data("siren", BOOL, init=0)

    alarm = chart.machine("Alarm", ["Off", "On", "Alert"], initial="Off")
    alarm_on = chart.machine(
        "AlarmOn", ["Idle", "Entry", "Siren", "Report"], initial="Idle",
        max_dwell=3,
    )
    door_ch = chart.machine("Door", ["Disarmed", "Watch", "Breach"], initial="Disarmed")
    win_ch = chart.machine("Win", ["Disarmed", "Watch", "Breach"], initial="Disarmed")
    motion_ch = chart.machine(
        "Motion", ["Disabled", "Active", "Breach"], initial="Disabled"
    )
    motion_act = chart.machine(
        "MotionAct", ["Quiet", "Count1", "Count2", "Tripped"], initial="Quiet"
    )

    armed = alarm.in_state("On")
    any_breach = lor(
        door_ch.in_state("Breach"),
        win_ch.in_state("Breach"),
        motion_ch.in_state("Breach"),
    )
    alarm.transition("Off", "On", guard=land(arm, ~disarm), label="arm")
    alarm.transition("On", "Alert", guard=any_breach, label="breach")
    alarm.transition("On", "Off", guard=disarm, label="disarm")
    alarm.transition("Alert", "Off", guard=disarm, label="silence")

    alarm_on.transition("Idle", "Entry", guard=land(armed, door), label="entry")
    alarm_on.transition(
        "Entry", "Idle", guard=disarm, label="authorized"
    )
    alarm_on.transition(
        "Entry", "Siren", guard=alarm_on.after(3), actions={siren: True},
        label="timeout",
    )
    alarm_on.transition(
        "Siren", "Report", guard=alarm_on.after(2), label="dial"
    )
    alarm_on.transition(
        "Report", "Idle", guard=disarm, actions={siren: False}, label="reset"
    )

    door_ch.transition("Disarmed", "Watch", guard=armed, label="dwatch")
    door_ch.transition("Watch", "Breach", guard=door, label="dbreach")
    door_ch.transition("Watch", "Disarmed", guard=~armed, label="drelax")
    door_ch.transition("Breach", "Disarmed", guard=disarm, label="dclear")

    win_ch.transition("Disarmed", "Watch", guard=armed, label="wwatch")
    win_ch.transition("Watch", "Breach", guard=window, label="wbreach")
    win_ch.transition("Watch", "Disarmed", guard=~armed, label="wrelax")
    win_ch.transition("Breach", "Disarmed", guard=disarm, label="wclear")

    motion_ch.transition("Disabled", "Active", guard=armed, label="mwatch")
    motion_ch.transition(
        "Active", "Breach", guard=motion_act.in_state("Tripped"), label="mbreach"
    )
    motion_ch.transition("Active", "Disabled", guard=~armed, label="mrelax")
    motion_ch.transition("Breach", "Disabled", guard=disarm, label="mclear")

    watching = motion_ch.in_state("Active")
    motion_act.transition("Quiet", "Count1", guard=land(watching, motion), label="m1")
    motion_act.transition("Count1", "Count2", guard=land(watching, motion), label="m2")
    motion_act.transition("Count1", "Quiet", guard=~motion, label="mq1")
    motion_act.transition("Count2", "Tripped", guard=land(watching, motion), label="m3")
    motion_act.transition("Count2", "Quiet", guard=~motion, label="mq2")
    motion_act.transition("Tripped", "Quiet", guard=~watching, label="mreset")

    return make_benchmark(
        chart,
        k=100,
        fsas=[
            FsaSpec("InAlarm InOn", machines=("AlarmOn",)),
            FsaSpec("Overall", machines=("Alarm",)),
            FsaSpec("InDoor", machines=("Door",)),
            FsaSpec("InMotion InActive", machines=("MotionAct",)),
            FsaSpec("InMotion Overall", machines=("Motion",)),
            FsaSpec("InWin", machines=("Win",)),
        ],
        paper_num_observables=16,
        notes="Paper |X|=16; this reconstruction observes 14 variables.",
    )


def yoyo_control() -> Benchmark:
    """Yo-yo despin control of a satellite.

    A control sequencer releases the yo-yo masses, a reel FSA tracks the
    deployment mechanics, and a spin monitor bands the measured rate.
    |X| = 8.  Paper rows: "InActive InReelMoving" (N=4) and two overall
    rows (N=4, N=3).
    """
    chart = Chart("YoYoControlOfSatellite")
    spin = chart.add_input("spin", IntSort(0, 20), samples=[0, 2, 3, 10, 14, 15, 20])
    go = chart.add_input("go", BOOL)
    released = chart.add_data("released", BOOL, init=0)

    control = chart.machine(
        "Control", ["Idle", "Active", "Complete"], initial="Idle"
    )
    control.transition(
        "Idle", "Active", guard=land(go, spin > 10),
        actions={released: True}, label="deploy",
    )
    control.transition("Active", "Complete", guard=spin <= 2, label="despun")

    active = control.in_state("Active")
    reel = chart.machine(
        "Reel", ["Stopped", "Out", "In", "Locked"], initial="Stopped",
        max_dwell=3,
    )
    reel.transition("Stopped", "Out", guard=active, label="unwind")
    reel.transition("Out", "In", guard=land(active, reel.after(3)), label="rewind")
    reel.transition("In", "Locked", guard=land(active, spin <= 3), label="lock")
    reel.transition("Locked", "Stopped", guard=control.in_state("Complete"), label="stow")

    monitor = chart.machine(
        "Monitor", ["High", "Nominal", "Low", "Critical"], initial="High"
    )
    monitor.transition("High", "Nominal", guard=spin <= 14, label="nom")
    monitor.transition("Nominal", "Low", guard=spin <= 3, label="low")
    monitor.transition("Nominal", "High", guard=spin > 14, label="back")
    monitor.transition("Low", "Critical", guard=spin.eq(0), label="crit")
    monitor.transition("Low", "Nominal", guard=spin > 3, label="rise")

    return make_benchmark(
        chart,
        k=10,
        fsas=[
            FsaSpec("InActive InReelMoving", machines=("Reel",)),
            FsaSpec("Overall", machines=("Monitor",)),
            FsaSpec("Control Overall", machines=("Control",)),
        ],
        paper_num_observables=8,
    )
