"""The benchmark library: the 28 Table I charts.

Benchmarks are registered by name; :func:`get_benchmark` compiles (and
caches) one, :func:`benchmark_names` lists them in Table I order.
Each module documents how its chart was reconstructed from the
identically named MathWorks Stateflow example.
"""

from __future__ import annotations

from functools import lru_cache
from collections.abc import Callable

from ..benchmark import Benchmark

_REGISTRY: dict[str, Callable[[], Benchmark]] = {}


def register(name: str, factory: Callable[[], Benchmark]) -> None:
    if name in _REGISTRY:
        raise ValueError(f"benchmark {name!r} registered twice")
    _REGISTRY[name] = factory


def benchmark_names() -> list[str]:
    """All benchmark names, in Table I order."""
    return list(_REGISTRY)


@lru_cache(maxsize=None)
def get_benchmark(name: str) -> Benchmark:
    """Compile and cache the named benchmark."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(_REGISTRY)
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None
    benchmark = factory()
    if benchmark.name != name:
        raise RuntimeError(
            f"benchmark registered as {name!r} built chart {benchmark.name!r}"
        )
    return benchmark


def all_benchmarks() -> list[Benchmark]:
    return [get_benchmark(name) for name in benchmark_names()]


def _populate() -> None:
    """Register every benchmark module (Table I order)."""
    from . import (
        cdplayer,
        climate,
        control,
        safety,
        signalproc,
        timing,
        traffic,
        vending,
    )

    register(
        "AutomaticTransmissionUsingDurationOperator", timing.transmission
    )
    register("BangBangControlUsingTemporalLogic", control.bangbang)
    register("CountEvents", vending.count_events)
    register("FrameSyncController", signalproc.frame_sync)
    register("HomeClimateControlUsingTheTruthtableBlock", climate.build)
    register("KarplusStrongAlgorithmUsingStateflow", signalproc.karplus_strong)
    register("LadderLogicScheduler", signalproc.ladder_logic)
    register("MealyVendingMachine", vending.vending_machine)
    register(
        "ModelingACdPlayerradioUsingEnumeratedDataType", cdplayer.cd_player
    )
    register(
        "ModelingACdPlayerradioUsingEnumeratedDataType2", cdplayer.cd_player2
    )
    register("ModelingALaunchAbortSystem", safety.launch_abort)
    register(
        "ModelingAnIntersectionOfTwo1wayStreetsUsingStateflow",
        traffic.intersection,
    )
    register(
        "ModelingARedundantSensorPairUsingAtomicSubchart",
        safety.redundant_sensors,
    )
    register("ModelingASecuritySystem", safety.security_system)
    register("MonitorTestPointsInStateflowChart", vending.monitor_test_points)
    register("MooreTrafficLight", traffic.moore_traffic_light)
    register("ReuseStatesByUsingAtomicSubcharts", control.reuse_states)
    register(
        "SchedulingSimulinkAlgorithmsUsingStateflow", timing.simulink_scheduler
    )
    register(
        "SequenceRecognitionUsingMealyAndMooreChart",
        signalproc.sequence_recognition,
    )
    register("ServerQueueingSystem", signalproc.server_queue)
    register("StatesWhenEnabling", control.states_when_enabling)
    register(
        "StateTransitionMatrixViewForStateTransitionTable",
        control.transition_table,
    )
    register("Superstep", timing.superstep)
    register("TemporalLogicScheduler", timing.temporal_scheduler)
    register(
        "UsingSimulinkFunctionsToDesignSwitchingControllers",
        control.switching_controllers,
    )
    register("VarSize", signalproc.var_size)
    register(
        "ViewDifferencesBetweenMessagesEventsAndData", vending.messages_events
    )
    register("YoYoControlOfSatellite", safety.yoyo_control)


_populate()

__all__ = [
    "all_benchmarks",
    "benchmark_names",
    "get_benchmark",
    "register",
]
