"""HomeClimateControlUsingTheTruthtableBlock (Table I row; paper Fig. 2).

A home climate controller: a cooler and a heater, each a two-state
bang-bang machine driven by the measured temperature against a setpoint,
plus humidity-driven dehumidification command outputs -- mirroring the
MathWorks truth-table example's observable interface (|X| = 7).

The paper's Fig. 2 shows the learned cooler abstraction:

    q1 --(s' = Off)--> q1
    q1 --(inp.temp > T_thresh) ∧ (s' = On)--> q2
    q2 --(s' = On)--> q2
    q2 --¬(inp.temp > T_thresh) ∧ (s' = Off)--> q1

with ``T_thresh = 30`` in this reconstruction.
"""

from __future__ import annotations

from ...expr.types import BOOL, IntSort
from ..benchmark import Benchmark, FsaSpec, make_benchmark
from ..chart import Chart

T_THRESH = 30       # cooling threshold
HEAT_THRESH = 15    # heating threshold
HUMID_THRESH = 70   # dehumidify threshold


def build() -> Benchmark:
    chart = Chart("HomeClimateControlUsingTheTruthtableBlock")
    temp = chart.add_input("temp", IntSort(0, 60))
    humid = chart.add_input("humid", IntSort(0, 100))
    chart.add_input("setpoint", IntSort(10, 40))

    cool_cmd = chart.add_data("cool_cmd", BOOL, init=0)
    dehumid_cmd = chart.add_data("dehumid_cmd", BOOL, init=0)

    cooler = chart.machine("Cooler", ["Off", "On"], initial="Off")
    cooler.transition(
        "Off", "On", guard=temp > T_THRESH,
        actions={cool_cmd: True}, label="hot",
    )
    cooler.transition(
        "On", "Off", guard=~(temp > T_THRESH),
        actions={cool_cmd: False}, label="cooled",
    )

    heater = chart.machine("Heater", ["Off", "On"], initial="Off")
    heater.transition("Off", "On", guard=temp < HEAT_THRESH, label="cold")
    heater.transition("On", "Off", guard=~(temp < HEAT_THRESH), label="warmed")
    # Dehumidifier command follows humidity while the heater idles.
    heater.during("Off", {dehumid_cmd: humid > HUMID_THRESH})
    heater.during("On", {dehumid_cmd: False})

    return make_benchmark(
        chart,
        k=10,
        fsas=[FsaSpec("Cooler", machines=("Cooler",))],
        paper_num_observables=7,
        notes=(
            "Fig. 2 benchmark. The paper reports N=2, d=1, alpha=1 in a "
            "single iteration for the cooler FSA."
        ),
    )
