"""ModelingACdPlayerradioUsingEnumeratedDataType (two implementations).

The largest Table I benchmark (|X| = 13, k = 205).  A CD player/radio:

* ``PowerMode``   -- standby/on (the paper's ModeManager "Overall", N=2);
* ``ModeManager`` -- standby/FM/AM/CD source selection (N=4);
* ``Loader``      -- the disc-handling FSA inside the On state
  (the paper's "InOn", N=5), with an insertion timer;
* ``Playback``    -- the disc-present FSA (the paper's
  "BehaviourModel DiscPresent", N=4).

The dataset contains a second implementation of the same model with
similar results (the paper's footnote 2); :func:`cd_player2` rebuilds it
with a different loader timing and an extra playback mode, completing
the 28-benchmark set.
"""

from __future__ import annotations

from ...expr.ast import land, lor
from ...expr.types import BOOL, EnumSort, IntSort
from ..benchmark import Benchmark, FsaSpec, make_benchmark
from ..chart import Chart

SRC = EnumSort("Src", ("fm", "am", "cd"))


def _cd_chart(name: str, insert_ticks: int, extra_playback: bool) -> Chart:
    chart = Chart(name)
    power = chart.add_input("power", BOOL)
    src = chart.add_input("src", SRC)
    insert = chart.add_input("insert", BOOL)
    eject = chart.add_input("eject", BOOL)
    play = chart.add_input("play", BOOL)
    stop = chart.add_input("stop", BOOL)
    disc = chart.add_data("disc", BOOL, init=0)
    track = chart.add_data("track", IntSort(0, 1), init=0)

    power_mode = chart.machine("PowerMode", ["Standby", "On"], initial="Standby")
    power_mode.transition("Standby", "On", guard=power, label="wake")
    power_mode.transition("On", "Standby", guard=~power, label="sleep")

    is_on = power_mode.in_state("On")
    manager = chart.machine(
        "ModeManager", ["Standby", "FM", "AM", "CD"], initial="Standby"
    )
    manager.transition("Standby", "FM", guard=land(is_on, src.eq("fm")), label="fm")
    manager.transition("Standby", "AM", guard=land(is_on, src.eq("am")), label="am")
    manager.transition(
        "Standby", "CD", guard=land(is_on, src.eq("cd"), disc), label="cd"
    )
    manager.transition("FM", "AM", guard=land(is_on, src.eq("am")), label="f2a")
    manager.transition(
        "FM", "CD", guard=land(is_on, src.eq("cd"), disc), label="f2c"
    )
    manager.transition("AM", "FM", guard=land(is_on, src.eq("fm")), label="a2f")
    manager.transition(
        "AM", "CD", guard=land(is_on, src.eq("cd"), disc), label="a2c"
    )
    manager.transition("CD", "FM", guard=land(is_on, src.eq("fm")), label="c2f")
    manager.transition("CD", "Standby", guard=~is_on, label="c2s")
    manager.transition("FM", "Standby", guard=~is_on, label="f2s")
    manager.transition("AM", "Standby", guard=~is_on, label="a2s")

    loader = chart.machine(
        "Loader", ["Empty", "Inserting", "Present", "Ejecting", "Stuck"],
        initial="Empty", max_dwell=max(insert_ticks, 2),
    )
    loader.transition(
        "Empty", "Inserting", guard=land(is_on, insert), label="slot"
    )
    loader.transition(
        "Inserting", "Present", guard=loader.after(insert_ticks),
        actions={disc: True}, label="seated",
    )
    loader.transition(
        "Present", "Ejecting", guard=eject, actions={disc: False}, label="eject"
    )
    loader.transition(
        "Ejecting", "Empty", guard=loader.after(2), label="out"
    )
    loader.transition(
        "Inserting", "Stuck", guard=land(insert, eject), label="jam"
    )
    loader.transition("Stuck", "Ejecting", guard=eject, label="unjam")

    playback_states = ["Stopped", "Playing", "Paused", "Rewinding"]
    if extra_playback:
        playback_states.append("FastForward")
    playback = chart.machine("Playback", playback_states, initial="Stopped")
    usable = land(manager.in_state("CD"), loader.in_state("Present"))
    playback.transition(
        "Stopped", "Playing", guard=land(usable, play),
        actions={track: 1}, label="play",
    )
    playback.transition(
        "Playing", "Paused", guard=land(usable, play, stop), label="pause"
    )
    playback.transition(
        "Paused", "Playing", guard=land(usable, play, ~stop), label="resume"
    )
    playback.transition(
        "Playing", "Rewinding", guard=land(usable, ~play, ~stop), label="rew"
    )
    playback.transition(
        "Rewinding", "Stopped", guard=stop, actions={track: 0}, label="rewound"
    )
    if extra_playback:
        playback.transition(
            "Playing", "FastForward", guard=land(usable, play, ~eject, ~stop),
            label="ff",
        )
        playback.transition(
            "FastForward", "Playing", guard=play, label="ffdone"
        )
    playback.transition(
        "Playing", "Stopped", guard=lor(stop, ~usable),
        actions={track: 0}, label="stop",
    )
    playback.transition(
        "Paused", "Stopped", guard=lor(stop, ~usable),
        actions={track: 0}, label="stop2",
    )
    playback.transition(
        "Rewinding", "Stopped", guard=~usable, actions={track: 0}, label="stop3"
    )
    return chart


def _fsas() -> list[FsaSpec]:
    return [
        FsaSpec("BehaviourModel DiscPresent", machines=("Playback",)),
        FsaSpec("BehaviourModel Overall", machines=("Loader", "Playback")),
        FsaSpec("ModeManager", machines=("ModeManager",)),
        FsaSpec("InOn", machines=("Loader",)),
        FsaSpec("ModeManager Overall", machines=("PowerMode",)),
    ]


def cd_player() -> Benchmark:
    return make_benchmark(
        _cd_chart(
            "ModelingACdPlayerradioUsingEnumeratedDataType",
            insert_ticks=3,
            extra_playback=False,
        ),
        k=205,
        fsas=_fsas(),
        paper_num_observables=13,
    )


def cd_player2() -> Benchmark:
    return make_benchmark(
        _cd_chart(
            "ModelingACdPlayerradioUsingEnumeratedDataType2",
            insert_ticks=2,
            extra_playback=True,
        ),
        k=205,
        fsas=_fsas(),
        paper_num_observables=13,
        notes="Second implementation of the CD player (paper footnote 2).",
    )
