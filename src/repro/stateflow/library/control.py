"""Control-oriented benchmarks.

* BangBangControlUsingTemporalLogic -- boiler bang-bang controller with
  temporal-logic dwell times; two Table I rows (outer Heater FSA and the
  inner On-phase FSA).
* ReuseStatesByUsingAtomicSubcharts -- a three-state power mode reused
  via atomic subcharts.
* StatesWhenEnabling -- behaviour of states under an enable signal.
* StateTransitionMatrixViewForStateTransitionTable -- a five-mode
  temperature controller authored as a transition table.
* UsingSimulinkFunctionsToDesignSwitchingControllers -- controller-mode
  switching on tracking error.
"""

from __future__ import annotations

from ...expr.ast import land
from ...expr.types import BOOL, EnumSort, IntSort
from ..benchmark import Benchmark, FsaSpec, make_benchmark
from ..chart import Chart

REFERENCE = 20  # bang-bang temperature reference


def bangbang() -> Benchmark:
    """Boiler bang-bang controller (paper rows: Heater, On).

    The heater cycles Off -> Warmup -> On -> Cooldown with dwell-time
    minimums (``after``); while On, an inner machine tracks the boiler
    temperature band and drives the status LED.  |X| = 5: temperature
    input, heater state + dwell, on-phase state, LED output.
    """
    chart = Chart("BangBangControlUsingTemporalLogic")
    temp = chart.add_input("temp", IntSort(0, 40))
    led = chart.add_data("led", BOOL, init=0)

    heater = chart.machine(
        "Heater", ["Off", "Warmup", "On", "Cooldown"],
        initial="Off", max_dwell=4,
    )
    heater.transition(
        "Off", "Warmup", guard=temp < REFERENCE, label="demand"
    )
    heater.transition(
        "Warmup", "On", guard=heater.after(3), label="warm"
    )
    heater.transition(
        "On", "Cooldown", guard=land(temp >= REFERENCE, heater.after(3)),
        label="satisfied",
    )
    heater.transition(
        "Cooldown", "Off", guard=heater.after(2), label="rested"
    )

    phase = chart.machine(
        "OnPhase", ["Idle", "Low", "Norm", "High", "Flash"], initial="Idle"
    )
    active = heater.in_state("On")
    phase.transition("Idle", "Low", guard=land(active, temp < 10), label="low")
    phase.transition(
        "Idle", "Norm", guard=land(active, temp >= 10, temp < 30),
        label="norm",
    )
    phase.transition("Idle", "High", guard=land(active, temp >= 30), label="high")
    phase.transition("Low", "Norm", guard=land(active, temp >= 10), label="rise")
    phase.transition("Norm", "High", guard=land(active, temp >= 30), label="hot")
    phase.transition("Norm", "Low", guard=land(active, temp < 10), label="drop")
    phase.transition("High", "Flash", guard=land(active, temp >= 38), label="alert")
    phase.transition("High", "Norm", guard=land(active, temp < 30), label="calm")
    phase.transition("Flash", "Idle", guard=~active, label="off1")
    phase.transition("Low", "Idle", guard=~active, label="off2")
    phase.transition("Norm", "Idle", guard=~active, label="off3")
    phase.transition("High", "Idle", guard=~active, label="off4")
    phase.during("Flash", {led: True})
    phase.during("Idle", {led: False})

    return make_benchmark(
        chart,
        k=62,
        fsas=[
            FsaSpec("Heater", machines=("Heater",)),
            FsaSpec("On", machines=("OnPhase",)),
        ],
        paper_num_observables=5,
    )


def reuse_states() -> Benchmark:
    """Power-mode subchart reused atomically: Off / Standby / On.

    |X| = 2: mode-request input and the chart state.  Paper: N=3, i=1.
    """
    chart = Chart("ReuseStatesByUsingAtomicSubcharts")
    req = chart.add_input("req", EnumSort("Req", ("off", "standby", "on")))

    machine = chart.machine("Power", ["Off", "Standby", "On"], initial="Off")
    machine.transition("Off", "Standby", guard=req.eq("standby"), label="wake")
    machine.transition("Standby", "On", guard=req.eq("on"), label="start")
    machine.transition("On", "Standby", guard=req.eq("standby"), label="pause")
    machine.transition("Standby", "Off", guard=req.eq("off"), label="sleep")
    machine.transition("On", "Off", guard=req.eq("off"), label="kill")

    return make_benchmark(
        chart,
        k=10,
        fsas=[FsaSpec("Power", machines=("Power",))],
        paper_num_observables=2,
    )


def states_when_enabling() -> Benchmark:
    """Enable-signal semantics: Disabled / Enabled / Held / Reset.

    |X| = 2: enable input and state.  Paper: N=4, i=1.
    """
    chart = Chart("StatesWhenEnabling")
    enable = chart.add_input("en", BOOL)

    machine = chart.machine(
        "Enabling", ["Disabled", "Enabled", "Held", "Reset"],
        initial="Disabled",
    )
    machine.transition("Disabled", "Enabled", guard=enable, label="enable")
    machine.transition("Enabled", "Held", guard=~enable, label="hold")
    machine.transition("Held", "Enabled", guard=enable, label="resume")
    machine.transition("Held", "Reset", guard=~enable, label="expire")
    machine.transition("Reset", "Enabled", guard=enable, label="restart")
    machine.transition("Reset", "Disabled", guard=~enable, label="settle")

    return make_benchmark(
        chart,
        k=30,
        fsas=[FsaSpec("Enabling", machines=("Enabling",))],
        paper_num_observables=2,
    )


def transition_table() -> Benchmark:
    """Temperature controller authored as a state-transition table.

    Five modes driven by temperature bands with a fault latch.
    |X| = 3: temperature input, mode, power output.  Paper: N=5, i=4.
    """
    chart = Chart("StateTransitionMatrixViewForStateTransitionTable")
    temp = chart.add_input("temp", IntSort(0, 50))
    power = chart.add_data("power", IntSort(0, 3), init=0)

    machine = chart.machine(
        "Mode", ["Off", "LowHeat", "MedHeat", "HighHeat", "Fault"],
        initial="Off",
    )
    machine.transition(
        "Off", "LowHeat", guard=temp < 18, actions={power: 1}, label="chill"
    )
    machine.transition(
        "LowHeat", "MedHeat", guard=temp < 12, actions={power: 2}, label="cold"
    )
    machine.transition(
        "MedHeat", "HighHeat", guard=temp < 6, actions={power: 3}, label="freeze"
    )
    machine.transition(
        "HighHeat", "Fault", guard=temp >= 45, actions={power: 0}, label="overrun"
    )
    machine.transition(
        "LowHeat", "Off", guard=temp >= 22, actions={power: 0}, label="warm1"
    )
    machine.transition(
        "MedHeat", "LowHeat", guard=temp >= 14, actions={power: 1}, label="warm2"
    )
    machine.transition(
        "HighHeat", "MedHeat", guard=temp >= 9, actions={power: 2}, label="warm3"
    )
    machine.transition(
        "Fault", "Off", guard=temp < 25, actions={power: 0}, label="clear"
    )

    return make_benchmark(
        chart,
        k=25,
        fsas=[FsaSpec("Mode", machines=("Mode",))],
        paper_num_observables=3,
    )


def switching_controllers() -> Benchmark:
    """Controller-mode switching on tracking error magnitude.

    |X| = 3: error input, controller mode, command output.
    Paper: N=4, i=1.
    """
    chart = Chart("UsingSimulinkFunctionsToDesignSwitchingControllers")
    err = chart.add_input("err", IntSort(-20, 20))
    cmd = chart.add_data("u", IntSort(0, 3), init=0)

    machine = chart.machine(
        "Controller", ["Idle", "P", "PI", "PID"], initial="Idle"
    )
    machine.transition(
        "Idle", "P", guard=(err > 2) | (err < -2), actions={cmd: 1},
        label="engage",
    )
    machine.transition(
        "P", "PI", guard=(err > 8) | (err < -8), actions={cmd: 2},
        label="integrate",
    )
    machine.transition(
        "PI", "PID", guard=(err > 15) | (err < -15), actions={cmd: 3},
        label="derivative",
    )
    machine.transition(
        "PID", "PI", guard=land(err <= 15, err >= -15), actions={cmd: 2},
        label="relax1",
    )
    machine.transition(
        "PI", "P", guard=land(err <= 8, err >= -8), actions={cmd: 1},
        label="relax2",
    )
    machine.transition(
        "P", "Idle", guard=land(err <= 2, err >= -2), actions={cmd: 0},
        label="settle",
    )

    return make_benchmark(
        chart,
        k=10,
        fsas=[FsaSpec("Controller", machines=("Controller",))],
        paper_num_observables=3,
    )
