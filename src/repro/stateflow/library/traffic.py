"""Traffic-light benchmarks.

* MooreTrafficLight -- a Moore-style pedestrian-aware light cycling
  through seven phases on tick timers.
* ModelingAnIntersectionOfTwo1wayStreetsUsingStateflow -- two one-way
  streets sharing an intersection: a six-phase controller plus an
  all-red countdown FSA, lamp and walk-signal outputs.
"""

from __future__ import annotations

from ...expr.ast import land, lor
from ...expr.types import BOOL, IntSort
from ..benchmark import Benchmark, FsaSpec, make_benchmark
from ..chart import Chart


def moore_traffic_light() -> Benchmark:
    """Moore traffic light with sensor-extended green (7 phases).

    |X| = 3: vehicle sensor, light phase, dwell.  Paper: N=7, i=3.
    """
    chart = Chart("MooreTrafficLight")
    sensor = chart.add_input("sensor", BOOL)

    light = chart.machine(
        "Light",
        ["Red", "RedYellow", "Green", "GreenHold", "Yellow", "AllRed1", "AllRed2"],
        initial="Red",
        max_dwell=5,
    )
    light.transition("Red", "RedYellow", guard=light.after(4), label="prep")
    light.transition("RedYellow", "Green", guard=light.after(1), label="go")
    light.transition(
        "Green", "GreenHold", guard=land(light.after(4), sensor), label="extend"
    )
    light.transition(
        "Green", "Yellow", guard=land(light.after(4), ~sensor), label="amber"
    )
    light.transition("GreenHold", "Yellow", guard=light.after(2), label="amber2")
    light.transition("Yellow", "AllRed1", guard=light.after(2), label="clear1")
    light.transition("AllRed1", "AllRed2", guard=None, label="clear2")
    light.transition("AllRed2", "Red", guard=None, label="cycle")

    return make_benchmark(
        chart,
        k=40,
        fsas=[FsaSpec("Light", machines=("Light",))],
        paper_num_observables=3,
    )


def intersection() -> Benchmark:
    """Two one-way streets: phase controller + all-red countdown.

    The phase machine (paper's "Overall", N=6) alternates green between
    street A and street B with yellow and all-red interludes; demand
    sensors shorten the opposite green.  The countdown machine (paper's
    "InRed", N=8) steps through eight pedestrian-countdown states while
    the intersection is all-red.  Lamp and walk outputs track the phase.
    |X| = 10-11 depending on counting convention; paper reports 11.
    """
    chart = Chart("ModelingAnIntersectionOfTwo1wayStreetsUsingStateflow")
    sens_a = chart.add_input("sensA", BOOL)
    sens_b = chart.add_input("sensB", BOOL)
    ped = chart.add_input("ped", BOOL)

    lamp_a = chart.add_data("lampA", IntSort(0, 2), init=2)  # 0=G,1=Y,2=R
    lamp_b = chart.add_data("lampB", IntSort(0, 2), init=2)
    walk_a = chart.add_data("walkA", BOOL, init=0)
    walk_b = chart.add_data("walkB", BOOL, init=0)

    phase = chart.machine(
        "Phase",
        ["AGreen", "AYellow", "AllRedA", "BGreen", "BYellow", "AllRedB"],
        initial="AllRedB",
        max_dwell=5,
    )
    phase.transition(
        "AllRedB", "AGreen", guard=land(phase.after(2), ~ped),
        actions={lamp_a: 0, walk_b: True}, label="openA",
    )
    phase.transition(
        "AGreen", "AYellow", guard=land(phase.after(4), lor(sens_b, ped)),
        actions={lamp_a: 1, walk_b: False}, label="yieldA",
    )
    phase.transition(
        "AYellow", "AllRedA", guard=phase.after(2), actions={lamp_a: 2},
        label="closeA",
    )
    phase.transition(
        "AllRedA", "BGreen", guard=land(phase.after(2), ~ped),
        actions={lamp_b: 0, walk_a: True}, label="openB",
    )
    phase.transition(
        "BGreen", "BYellow", guard=land(phase.after(4), lor(sens_a, ped)),
        actions={lamp_b: 1, walk_a: False}, label="yieldB",
    )
    phase.transition(
        "BYellow", "AllRedB", guard=phase.after(2), actions={lamp_b: 2},
        label="closeB",
    )

    in_red = lor(phase.in_state("AllRedA"), phase.in_state("AllRedB"))
    countdown = chart.machine(
        "InRed", [f"R{i}" for i in range(1, 9)], initial="R1"
    )
    for i in range(1, 8):
        countdown.transition(
            f"R{i}", f"R{i + 1}", guard=in_red, label=f"tick{i}"
        )
    countdown.transition("R8", "R1", guard=in_red, label="wrap")
    countdown.transition("R2", "R1", guard=~in_red, label="reset2")
    countdown.transition("R3", "R1", guard=~in_red, label="reset3")

    return make_benchmark(
        chart,
        k=60,
        fsas=[
            FsaSpec("InRed", machines=("InRed",)),
            FsaSpec("Overall", machines=("Phase",)),
        ],
        paper_num_observables=11,
    )
