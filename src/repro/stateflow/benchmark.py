"""Benchmark records: one per Table I benchmark.

A benchmark bundles the chart, its compiled system, the paper's ``k``
parameter, and one :class:`FsaSpec` per Table I row (a chart can contain
several FSAs; the paper learns an abstraction per FSA over traces of all
observables, which for the mode-based learner means selecting that FSA's
state variables as the mode variables).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..system.transition_system import SymbolicSystem
from .chart import Chart, CodegenInfo
from .flatten import GroundTruth, ground_truth_witnesses


@dataclass(frozen=True)
class FsaSpec:
    """One Table I row: an FSA to reverse-engineer from the benchmark.

    ``machines`` are the chart machines whose transitions form the ground
    truth; ``mode_vars`` are the observables whose valuations the learner
    should treat as automaton states (defaults to the machines' state
    variables).
    """

    name: str
    machines: tuple[str, ...]
    mode_vars: tuple[str, ...] = ()

    def resolved_mode_vars(self) -> tuple[str, ...]:
        return self.mode_vars or self.machines


@dataclass
class Benchmark:
    """A Table I benchmark: chart + compiled system + evaluation spec."""

    name: str
    chart: Chart
    system: SymbolicSystem
    info: CodegenInfo
    k: int
    fsas: tuple[FsaSpec, ...]
    paper_num_observables: int | None = None
    notes: str = ""
    _ground_truth: dict[str, GroundTruth] = field(default_factory=dict)

    @property
    def num_observables(self) -> int:
        return len(self.system.variables)

    def fsa(self, name: str) -> FsaSpec:
        for spec in self.fsas:
            if spec.name == name:
                return spec
        raise KeyError(f"{self.name} has no FSA {name!r}")

    def ground_truth(self, spec: FsaSpec) -> list[GroundTruth]:
        """Witnessed ground-truth transitions for one FSA (cached)."""
        missing = [m for m in spec.machines if m not in self._ground_truth]
        if missing:
            self._ground_truth.update(
                ground_truth_witnesses(
                    self.system, self.info, self.chart, machines=missing
                )
            )
        return [self._ground_truth[m] for m in spec.machines]


def make_benchmark(
    chart: Chart,
    k: int,
    fsas: list[FsaSpec],
    paper_num_observables: int | None = None,
    notes: str = "",
) -> Benchmark:
    """Compile a chart and bundle it into a benchmark record."""
    system, info = chart.build()
    return Benchmark(
        name=chart.name,
        chart=chart,
        system=system,
        info=info,
        k=k,
        fsas=tuple(fsas),
        paper_num_observables=paper_num_observables,
        notes=notes,
    )
