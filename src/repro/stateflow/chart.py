"""Stateflow-like chart DSL.

The evaluation dataset of the paper is a set of Simulink Stateflow demo
models compiled to C by Embedded Coder.  This module provides the
modelling layer: charts consisting of

* typed **inputs** (sampled each tick),
* typed **data** variables (outputs/locals with initial values),
* one or more **machines** -- flat FSAs that execute in declaration order
  within a tick (Stateflow's sequential semantics for parallel states):
  a machine declared later reads the *updated* states/data of earlier
  ones.  Hierarchical charts are modelled as an outer machine plus inner
  machines, which is also how the paper reports them (one Table I row per
  FSA).

Within a machine, the first enabled transition out of the active state
fires (priority = declaration order); its actions update data variables.
If nothing fires, the active state's ``during`` actions run.  Temporal
logic (``after(n, tick)``) is supported through an implicit saturating
dwell counter per machine (``max_dwell`` bounds it, keeping the state
space finite).

:meth:`Chart.build` is the **code generator** (the Embedded Coder
stand-in): it compiles the chart into a :class:`~repro.system.
SymbolicSystem` -- one next-state expression per variable, produced by
symbolic sequential composition of the machines.  The same expressions
drive simulation and model checking, mirroring how the paper's generated
C code is both executed for traces and handed to CBMC.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..expr.ast import (
    Expr,
    TRUE,
    Var,
    coerce,
    eq,
    free_vars,
    int_constants,
    ite,
    land,
    lnot,
    lor,
    minimum,
)
from ..expr.subst import substitute
from ..expr.types import BoolSort, EnumSort, IntSort, Sort
from ..system.transition_system import SymbolicSystem
from ..system.valuation import Valuation


@dataclass(frozen=True)
class SfTransition:
    """One chart transition: ``src --[guard]{actions}--> dst``."""

    src: str
    dst: str
    guard: Expr
    actions: tuple[tuple[Var, Expr], ...]
    label: str


class Machine:
    """A flat FSA within a chart.

    ``max_dwell`` enables the implicit dwell counter (needed by
    :meth:`after`); it should be at least ``n - 1`` for the largest
    ``after(n)`` used.
    """

    def __init__(
        self,
        name: str,
        states: list[str],
        initial: str,
        max_dwell: int | None = None,
    ):
        if initial not in states:
            raise ValueError(f"initial state {initial!r} not in {states}")
        self.name = name
        self.states = list(states)
        self.initial = initial
        self.sort = EnumSort(name, tuple(states))
        self.var = Var(name, self.sort)
        self.max_dwell = max_dwell
        self.dwell_var: Var | None = (
            Var(f"{name}_t", IntSort(0, max_dwell))
            if max_dwell is not None
            else None
        )
        self.transitions: list[SfTransition] = []
        self.during_actions: dict[str, tuple[tuple[Var, Expr], ...]] = {}

    # ------------------------------------------------------------------
    # authoring helpers
    # ------------------------------------------------------------------
    def state_index(self, state: str) -> int:
        try:
            return self.states.index(state)
        except ValueError:
            raise ValueError(
                f"machine {self.name!r} has no state {state!r}"
            ) from None

    def in_state(self, state: str) -> Expr:
        """Guard helper: the machine is currently in ``state``."""
        return eq(self.var, self.state_index(state))

    def after(self, n: int) -> Expr:
        """Stateflow's ``after(n, tick)``: n ticks elapsed in this state.

        First true on the n-th tick after entry (guards are evaluated
        before the dwell increment, so the comparison is ``>= n - 1``).
        """
        if self.dwell_var is None:
            raise ValueError(
                f"machine {self.name!r} needs max_dwell for after()"
            )
        if n < 1:
            raise ValueError(f"after(n) needs n >= 1, got {n}")
        if n - 1 > self.max_dwell:
            raise ValueError(
                f"after({n}) exceeds max_dwell={self.max_dwell} "
                f"of machine {self.name!r}"
            )
        return self.dwell_var >= (n - 1)

    def transition(
        self,
        src: str,
        dst: str,
        guard: Expr | bool | None = None,
        actions: dict[Var, Expr | int | bool] | None = None,
        label: str | None = None,
    ) -> SfTransition:
        """Add a transition; earlier transitions have higher priority."""
        self.state_index(src)
        self.state_index(dst)
        guard_expr = TRUE if guard is None else coerce(guard)
        if not guard_expr.sort.is_bool():
            raise TypeError(f"guard must be boolean, got {guard_expr.sort}")
        action_items = tuple(
            (var, coerce(value)) for var, value in (actions or {}).items()
        )
        transition = SfTransition(
            src=src,
            dst=dst,
            guard=guard_expr,
            actions=action_items,
            label=label or f"{src}->{dst}",
        )
        self.transitions.append(transition)
        return transition

    def during(self, state: str, actions: dict[Var, Expr | int | bool]) -> None:
        """Actions applied each tick the machine stays in ``state``."""
        self.state_index(state)
        self.during_actions[state] = tuple(
            (var, coerce(value)) for var, value in actions.items()
        )


@dataclass
class CompiledTransition:
    """A chart transition with its compiled firing condition.

    ``condition`` is over unprimed state variables and primed inputs,
    with earlier machines' same-tick updates already substituted in, so
    evaluating it on ``(state, inputs')`` tells exactly whether this
    transition fires.
    """

    machine: str
    index: int
    transition: SfTransition
    condition: Expr


@dataclass
class CodegenInfo:
    """Compilation artefacts beyond the symbolic system itself."""

    compiled: dict[str, list[CompiledTransition]] = field(default_factory=dict)

    def fired(
        self, machine: str, state: dict[str, int], primed_inputs: dict[str, int]
    ) -> CompiledTransition | None:
        """Which transition of ``machine`` fires from this state/input."""
        from ..expr.eval import holds

        env = dict(state)
        env.update(primed_inputs)
        for compiled in self.compiled.get(machine, []):
            if holds(compiled.condition, env):
                return compiled
        return None


class Chart:
    """A chart: inputs + data + ordered machines."""

    def __init__(self, name: str):
        self.name = name
        self.inputs: list[Var] = []
        self.input_samples: dict[str, list[int]] = {}
        self.data: list[Var] = []
        self.data_init: dict[str, int] = {}
        self.machines: list[Machine] = []

    # ------------------------------------------------------------------
    # declarations
    # ------------------------------------------------------------------
    def add_input(
        self, name: str, sort: Sort, samples: list[int] | None = None
    ) -> Var:
        var = Var(name, sort)
        self._check_fresh(name)
        self.inputs.append(var)
        if samples is not None:
            self.input_samples[name] = list(samples)
        return var

    def add_data(self, name: str, sort: Sort, init: int = 0) -> Var:
        var = Var(name, sort)
        self._check_fresh(name)
        self.data.append(var)
        self.data_init[name] = init
        return var

    def add_machine(self, machine: Machine) -> Machine:
        self._check_fresh(machine.name)
        if machine.dwell_var is not None:
            self._check_fresh(machine.dwell_var.name)
        self.machines.append(machine)
        return machine

    def machine(
        self,
        name: str,
        states: list[str],
        initial: str,
        max_dwell: int | None = None,
    ) -> Machine:
        """Create and register a machine in one call."""
        return self.add_machine(Machine(name, states, initial, max_dwell))

    def _check_fresh(self, name: str) -> None:
        taken = {v.name for v in self.inputs} | {v.name for v in self.data}
        for machine in self.machines:
            taken.add(machine.name)
            if machine.dwell_var is not None:
                taken.add(machine.dwell_var.name)
        if name in taken:
            raise ValueError(f"name {name!r} already used in chart {self.name!r}")

    def machine_by_name(self, name: str) -> Machine:
        for machine in self.machines:
            if machine.name == name:
                return machine
        raise KeyError(name)

    # ------------------------------------------------------------------
    # code generation (the Embedded Coder stand-in)
    # ------------------------------------------------------------------
    def build(self) -> tuple[SymbolicSystem, CodegenInfo]:
        """Compile the chart into a symbolic transition system."""
        self._validate()
        info = CodegenInfo()
        # ``current`` maps every chart variable to its value-so-far this
        # tick; machines later in the order observe earlier updates
        # (Stateflow's sequential execution of parallel states).
        current: dict[Var, Expr] = {}
        for machine in self.machines:
            current[machine.var] = machine.var
            if machine.dwell_var is not None:
                current[machine.dwell_var] = machine.dwell_var
        for var in self.data:
            current[var] = var
        input_subst = {var: var.prime() for var in self.inputs}

        for machine in self.machines:
            subst = dict(current)
            subst.update(input_subst)

            compiled: list[CompiledTransition] = []
            # Firing condition per transition, with in-machine priority:
            # a transition fires if its guard holds, the machine is in its
            # source state, and no higher-priority transition fired.
            blocked_by: dict[str, Expr] = {}
            for index, transition in enumerate(machine.transitions):
                guard = substitute(transition.guard, subst)
                in_src = eq(
                    current[machine.var], machine.state_index(transition.src)
                )
                earlier = blocked_by.get(transition.src, TRUE)
                condition = land(in_src, earlier, guard)
                blocked_by[transition.src] = land(earlier, lnot(guard))
                compiled.append(
                    CompiledTransition(
                        machine=machine.name,
                        index=index,
                        transition=transition,
                        condition=condition,
                    )
                )
            info.compiled[machine.name] = compiled

            fired_any = lor(*(c.condition for c in compiled))

            # Next state: priority ite-chain (innermost = stay put).
            next_state: Expr = current[machine.var]
            for item in reversed(compiled):
                next_state = ite(
                    item.condition,
                    machine.state_index(item.transition.dst),
                    next_state,
                )

            # Data updates: transition actions first (by priority), then
            # during actions of the (unfired) active state.
            assigned: dict[Var, Expr] = {}
            acted_vars: list[Var] = []
            for item in compiled:
                for var, _expr in item.transition.actions:
                    if var not in acted_vars:
                        acted_vars.append(var)
            for state, actions in machine.during_actions.items():
                for var, _expr in actions:
                    if var not in acted_vars:
                        acted_vars.append(var)
            for var in acted_vars:
                if var not in current:
                    raise ValueError(
                        f"action assigns unknown data variable {var.name!r}"
                    )
                update: Expr = current[var]
                for state, actions in machine.during_actions.items():
                    for action_var, action_expr in actions:
                        if action_var == var:
                            during_cond = land(
                                eq(
                                    current[machine.var],
                                    machine.state_index(state),
                                ),
                                lnot(fired_any),
                            )
                            update = ite(
                                during_cond,
                                substitute(action_expr, subst),
                                update,
                            )
                for item in reversed(compiled):
                    for action_var, action_expr in item.transition.actions:
                        if action_var == var:
                            update = ite(
                                item.condition,
                                substitute(action_expr, subst),
                                update,
                            )
                assigned[var] = update

            # Commit this machine's updates for later machines to read.
            current[machine.var] = next_state
            if machine.dwell_var is not None:
                dwell = current[machine.dwell_var]
                ticked = minimum(dwell + 1, machine.max_dwell)
                current[machine.dwell_var] = ite(fired_any, 0, ticked)
            current.update(assigned)

        state_vars: list[Var] = []
        init_state: dict[str, int] = {}
        for machine in self.machines:
            state_vars.append(machine.var)
            init_state[machine.name] = machine.state_index(machine.initial)
            if machine.dwell_var is not None:
                state_vars.append(machine.dwell_var)
                init_state[machine.dwell_var.name] = 0
        for var in self.data:
            state_vars.append(var)
            init_state[var.name] = self.data_init[var.name]

        next_exprs = {var: current[var] for var in state_vars}
        system = SymbolicSystem(
            name=self.name,
            state_vars=tuple(state_vars),
            input_vars=tuple(self.inputs),
            init_state=Valuation(init_state),
            next_exprs=next_exprs,
            input_samples=self._derive_input_samples(),
        )
        return system, info

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if not self.machines:
            raise ValueError(f"chart {self.name!r} has no machines")
        known = {v for v in self.inputs} | {v for v in self.data}
        for machine in self.machines:
            known.add(machine.var)
            if machine.dwell_var is not None:
                known.add(machine.dwell_var)
        for machine in self.machines:
            for transition in machine.transitions:
                for ref in free_vars(transition.guard):
                    if ref.primed or ref not in known:
                        raise ValueError(
                            f"guard of {machine.name}:{transition.label} "
                            f"references unknown variable {ref.qualified_name!r}"
                        )
                for _var, expr in transition.actions:
                    for ref in free_vars(expr):
                        if ref.primed or ref not in known:
                            raise ValueError(
                                f"action of {machine.name}:{transition.label} "
                                f"references unknown {ref.qualified_name!r}"
                            )

    def _derive_input_samples(self) -> list[Valuation]:
        """Representative inputs for the explicit-state engine.

        Declared samples win; otherwise guard constants (and their
        successors, to cover strict-inequality boundaries) plus the sort
        extremes are used for int inputs, and full enumeration for
        bool/enum inputs.
        """
        import itertools

        guard_constants: dict[str, set[int]] = {}
        for machine in self.machines:
            for transition in machine.transitions:
                constants = int_constants(transition.guard)
                for ref in free_vars(transition.guard):
                    if any(ref.name == inp.name for inp in self.inputs):
                        guard_constants.setdefault(ref.name, set()).update(
                            constants
                        )
        spaces: list[list[int]] = []
        for var in self.inputs:
            if var.name in self.input_samples:
                spaces.append(self.input_samples[var.name])
                continue
            sort = var.sort
            if isinstance(sort, BoolSort):
                spaces.append([0, 1])
            elif isinstance(sort, EnumSort):
                spaces.append(list(range(sort.cardinality)))
            elif isinstance(sort, IntSort):
                values = {sort.lo, sort.hi}
                for constant in guard_constants.get(var.name, ()):
                    for candidate in (constant, constant + 1, constant - 1):
                        if sort.lo <= candidate <= sort.hi:
                            values.add(candidate)
                spaces.append(sorted(values))
            else:  # pragma: no cover - unreachable with current sorts
                raise TypeError(f"unsupported input sort {sort}")
        total = 1
        for space in spaces:
            total *= len(space)
        if total > 4096:
            raise ValueError(
                f"chart {self.name!r}: {total} representative input "
                "combinations; declare input samples to narrow them"
            )
        names = [var.name for var in self.inputs]
        return [
            Valuation(dict(zip(names, combo, strict=True)))
            for combo in itertools.product(*spaces)
        ]
