"""Stateflow substrate: chart DSL, code generator, ground truth, benchmarks."""

from .benchmark import Benchmark, FsaSpec, make_benchmark
from .coverage import ChartCoverage, MachineCoverage, measure_chart_coverage
from .chart import Chart, CodegenInfo, CompiledTransition, Machine, SfTransition
from .flatten import GroundTruth, flatten_product, ground_truth_witnesses

__all__ = [
    "Benchmark",
    "ChartCoverage",
    "Chart",
    "CodegenInfo",
    "CompiledTransition",
    "FsaSpec",
    "GroundTruth",
    "MachineCoverage",
    "Machine",
    "SfTransition",
    "flatten_product",
    "ground_truth_witnesses",
    "measure_chart_coverage",
    "make_benchmark",
]
