"""Ground-truth extraction: flattened FSAs and transition witnesses.

For the paper's quality score ``d`` we need, per benchmark FSA, the set
of chart transitions and -- for the behavioural matching described in
:mod:`repro.automata.compare` -- a *witness* execution trace per
transition: a concrete run that ends by exercising exactly that
transition.

Witnesses are found by breadth-first exploration of the compiled system
using its representative inputs; the compiled firing conditions
(:class:`~repro.stateflow.chart.CodegenInfo`) identify which chart
transition a concrete step exercised.  Transitions with no witness
within the explored space are dead in the implementation (or unreachable
with the sampled inputs) and are reported separately rather than
silently dropped.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..automata.compare import TransitionWitness
from ..system.transition_system import SymbolicSystem
from ..system.valuation import Valuation
from ..traces.trace import Trace
from .chart import Chart, CodegenInfo, Machine


@dataclass
class GroundTruth:
    """Witnessed chart transitions for one FSA (one Table I row)."""

    machine: str
    witnesses: list[TransitionWitness] = field(default_factory=list)
    unwitnessed: list[str] = field(default_factory=list)  # transition labels

    @property
    def num_transitions(self) -> int:
        return len(self.witnesses) + len(self.unwitnessed)


def ground_truth_witnesses(
    system: SymbolicSystem,
    info: CodegenInfo,
    chart: Chart,
    machines: list[str] | None = None,
    max_states: int = 200_000,
) -> dict[str, GroundTruth]:
    """Witnesses for every transition of the requested machines."""
    wanted = machines or [m.name for m in chart.machines]
    targets: dict[str, Machine] = {
        name: chart.machine_by_name(name) for name in wanted
    }
    pending: dict[tuple[str, int], None] = {}
    for name, machine in targets.items():
        for index in range(len(machine.transitions)):
            pending[(name, index)] = None
    found: dict[tuple[str, int], Trace] = {}

    state_names = system.state_names
    inputs = system.enumerate_inputs()
    initial = system.init_state
    # BFS with parent pointers for witness reconstruction.
    table: dict[tuple[int, ...], tuple[tuple[int, ...] | None, Valuation | None]] = {
        initial.key(state_names): (None, None)
    }
    frontier: deque[Valuation] = deque([initial])

    def path_to(state_key: tuple[int, ...]) -> list[Valuation]:
        steps: list[tuple[tuple[int, ...], Valuation]] = []
        cursor = state_key
        while True:
            parent, used_inputs = table[cursor]
            if parent is None:
                break
            steps.append((cursor, used_inputs))
            cursor = parent
        steps.reverse()
        return [
            system.observe(dict(zip(state_names, key, strict=True)), used)
            for key, used in steps
        ]

    while frontier and len(found) < len(pending):
        state = frontier.popleft()
        state_key = state.key(state_names)
        prefix: list[Valuation] | None = None
        for input_valuation in inputs:
            primed = {f"{k}'": v for k, v in input_valuation.items()}
            for name in targets:
                fired = info.fired(name, state.as_dict(), primed)
                if fired is None:
                    continue
                key = (name, fired.index)
                if key in pending and key not in found:
                    if prefix is None:
                        prefix = path_to(state_key)
                    next_state = system.step(state, input_valuation)
                    observation = system.observe(next_state, input_valuation)
                    found[key] = Trace(prefix + [observation])
            next_state = system.step(state, input_valuation)
            next_key = next_state.key(state_names)
            if next_key not in table:
                if len(table) >= max_states:
                    raise RuntimeError(
                        f"{system.name}: witness search exceeded "
                        f"{max_states} states"
                    )
                table[next_key] = (state_key, input_valuation)
                frontier.append(next_state)

    result: dict[str, GroundTruth] = {}
    for name, machine in targets.items():
        truth = GroundTruth(machine=name)
        for index, transition in enumerate(machine.transitions):
            witness = found.get((name, index))
            if witness is None:
                truth.unwitnessed.append(transition.label)
            else:
                truth.witnesses.append(
                    TransitionWitness(
                        src=transition.src,
                        dst=transition.dst,
                        label=f"{name}:{transition.label}",
                        witness=witness,
                    )
                )
        result[name] = truth
    return result


def flatten_product(chart: Chart, machines: list[str]) -> list[str]:
    """Names of the product states of several machines (for reports)."""
    names = [""]
    for machine_name in machines:
        machine = chart.machine_by_name(machine_name)
        names = [
            f"{prefix}|{state}" if prefix else state
            for prefix in names
            for state in machine.states
        ]
    return names
