"""Command-line interface.

Usage examples::

    python -m repro list
    python -m repro run MealyVendingMachine
    python -m repro run ModelingASecuritySystem --fsa InDoor --dot out.dot
    python -m repro table1 --budget 30
    python -m repro baseline MealyVendingMachine
    python -m repro analyze --all-library-systems
    python -m repro analyze ModelingASecuritySystem --semantic
    python -m repro run MealyVendingMachine --telemetry run.telemetry.jsonl
    python -m repro profile run.telemetry.jsonl
"""

from __future__ import annotations

import argparse
import sys

from .automata import to_dot, to_text
from .core import (
    BaselineRow,
    TableRow,
    format_baseline_table,
    format_table,
    render_invariants,
)
from .core import telemetry
from .evaluation import run_active, run_random_baseline
from .expr.printer import to_str
from .mc.spurious import SPURIOUS_ENGINES
from .stateflow.library import benchmark_names, get_benchmark


def _cmd_list(_args: argparse.Namespace) -> int:
    for name in benchmark_names():
        benchmark = get_benchmark(name)
        fsas = ", ".join(spec.name for spec in benchmark.fsas)
        print(f"{name}  (|X|={benchmark.num_observables}, k={benchmark.k})")
        print(f"    FSAs: {fsas}")
    return 0


def _telemetry_args(args: argparse.Namespace) -> dict:
    """JSON-safe view of the parsed arguments for the meta event."""
    return {
        key: value
        for key, value in vars(args).items()
        if key not in ("fn", "telemetry")
        and isinstance(value, (str, int, float, bool, type(None)))
    }


def _with_telemetry(args: argparse.Namespace, body) -> int:
    """Run ``body()`` under a telemetry session when ``--telemetry PATH``
    was given; on exit export spans + the final snapshot to the path."""
    if not getattr(args, "telemetry", None):
        return body()
    from datetime import datetime, timezone

    session = telemetry.start(args.command, _telemetry_args(args))
    try:
        code = body()
    finally:
        telemetry.stop()
    stamp = datetime.now(timezone.utc).isoformat(timespec="seconds")
    with open(args.telemetry, "w") as handle:
        events = telemetry.export_jsonl(session, handle, timestamp=stamp)
    print(f"\ntelemetry: {events} event(s) written to {args.telemetry}")
    return code


def _cmd_run(args: argparse.Namespace) -> int:
    return _with_telemetry(args, lambda: _do_run(args))


def _do_run(args: argparse.Namespace) -> int:
    benchmark = get_benchmark(args.benchmark)
    spec = benchmark.fsa(args.fsa) if args.fsa else benchmark.fsas[0]
    out = run_active(
        benchmark,
        spec,
        initial_traces=args.traces,
        trace_length=args.length,
        seed=args.seed,
        budget_seconds=args.budget,
        spurious_engine=args.engine,
        jobs=args.jobs,
        use_session=args.session,
        segment_length=args.segment_length,
        segment_overlap=args.segment_overlap,
    )
    state_names = [v.name for v in benchmark.system.state_vars]
    print(TableRow.HEADER)
    print(out.row.format())
    result = out.result
    mode = "session" if result.session_mode else "stateless"
    print(
        f"learning ({mode}): cold {result.cold_learn_seconds:.3f}s, "
        f"warm {result.warm_learn_seconds:.3f}s over "
        f"{result.warm_iterations}/{result.iterations} warm iteration(s)"
    )
    print()
    print(to_text(out.result.model, title=f"{benchmark.name}/{spec.name}",
                  primed_names=state_names))
    if out.result.invariants and args.invariants:
        print("\nInvariants:")
        print(render_invariants(out.result.invariants))
    if out.result.proved_invariant is not None:
        print(
            "\nIC3 proved inductive invariant (over-approximates the "
            "reachable states):"
        )
        print(f"  {to_str(out.result.proved_invariant)}")
    elif args.engine == "ic3" and args.jobs > 1:
        print(
            "\n(IC3 frame invariants live in the --jobs worker processes "
            "and are not collected; run with --jobs 1 to print the proved "
            "invariant.)"
        )
    if args.dot:
        with open(args.dot, "w") as handle:
            handle.write(
                to_dot(out.result.model, title=spec.name, primed_names=state_names)
            )
        print(f"\nDOT written to {args.dot}")
    return 0


def _cmd_baseline(args: argparse.Namespace) -> int:
    benchmark = get_benchmark(args.benchmark)
    spec = benchmark.fsa(args.fsa) if args.fsa else benchmark.fsas[0]
    out = run_random_baseline(
        benchmark,
        spec,
        num_observations=args.observations,
        seed=args.seed,
        spurious_engine=args.engine,
        jobs=args.jobs,
    )
    print(BaselineRow.HEADER)
    print(out.row.format())
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    """Static analysis over benchmark systems (and optionally traces)."""
    from .analysis import Severity, check_benchmark, check_traces

    names = list(args.benchmarks)
    if args.all_library_systems:
        names = list(benchmark_names())
    if not names:
        print(
            "analyze: name at least one benchmark or pass "
            "--all-library-systems",
            file=sys.stderr,
        )
        return 2
    threshold = Severity[args.severity.upper()]
    worst_findings = 0
    for name in names:
        benchmark = get_benchmark(name)
        report = check_benchmark(benchmark, semantic=args.semantic)
        if args.trace:
            from .traces.io import load_csv, load_json, load_jsonl

            if args.trace.endswith(".jsonl"):
                loader = load_jsonl
            elif args.trace.endswith(".json"):
                loader = load_json
            else:
                loader = load_csv
            traces = loader(args.trace)
            report.extend(check_traces(traces, benchmark.system))
            report.finalize()
        shown = report.at_least(threshold)
        if shown:
            worst_findings += len(shown)
            for diagnostic in shown:
                print(f"{name}: {diagnostic.format()}")
        else:
            print(f"{name}: OK ({len(report.diagnostics)} diagnostics)")
    if worst_findings:
        print(
            f"analyze: {worst_findings} finding(s) at severity >= "
            f"{threshold}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    return _with_telemetry(args, lambda: _do_table1(args))


def _do_table1(args: argparse.Namespace) -> int:
    active_rows: list[TableRow] = []
    baseline_rows: list[BaselineRow] = []
    names = args.benchmarks or benchmark_names()
    for name in names:
        benchmark = get_benchmark(name)
        for spec in benchmark.fsas:
            out = run_active(
                benchmark,
                spec,
                initial_traces=args.traces,
                trace_length=args.length,
                seed=args.seed,
                budget_seconds=args.budget,
                spurious_engine=args.engine,
                jobs=args.jobs,
                use_session=args.session,
                segment_length=args.segment_length,
                segment_overlap=args.segment_overlap,
            )
            active_rows.append(out.row)
            print(out.row.format(), file=sys.stderr, flush=True)
            if args.baseline:
                base = run_random_baseline(
                    benchmark, spec, num_observations=args.observations,
                    seed=args.seed, spurious_engine=args.engine,
                    jobs=args.jobs,
                )
                baseline_rows.append(base.row)
    print("\nTable I (active algorithm):")
    print(format_table(active_rows))
    if baseline_rows:
        print("\nTable I (random-sampling baseline):")
        print(format_baseline_table(baseline_rows))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Render a telemetry log: span tree + top-k counters."""
    try:
        with open(args.log) as handle:
            events = telemetry.read_events(handle)
    except OSError as exc:
        print(f"profile: cannot read {args.log}: {exc}", file=sys.stderr)
        return 2
    if not events:
        print(f"profile: {args.log} contains no telemetry events",
              file=sys.stderr)
        return 1
    print(telemetry.render_profile(events, top=args.top))
    return 0


_TELEMETRY_HELP = (
    "write spans + the final metrics snapshot as deterministic JSONL "
    "events to this path (render with `repro profile`); with --jobs N "
    "the snapshot is the merged fleet total over all worker processes. "
    "See docs/observability.md."
)


_JOBS_HELP = (
    "condition-checking worker processes (default 1 = in-process). "
    "With N > 1 every completeness check is sharded over N persistent "
    "workers, each owning its own incremental solver; conditions are "
    "routed with sticky condition-to-worker affinity (repeats and "
    "same-symbol conditions return to the worker whose learned-clause "
    "database already covers them) and the merged report is bit-for-bit "
    "identical to the serial one."
)


_ENGINE_HELP = (
    "spuriousness engine for counterexample classification (Fig. 3b): "
    "'explicit' (default; exact BFS over representative inputs), 'bdd' "
    "(exact symbolic fixpoint), 'kinduction' (the literal bounded paper "
    "check; can report inconclusive), 'ic3' (unbounded IC3/PDR proofs; "
    "never inconclusive, no k to choose, prints the proved inductive "
    "invariant) or 'none' (treat every counterexample as valid). See "
    "docs/engines.md."
)


_SEGMENT_HELP = (
    "long-trace mode: slice every trace into overlapping segments of "
    "this many events, learn each distinct segment once (memoised, and "
    "fanned out over --jobs workers), then unify the per-segment models "
    "by overlap splicing (default: off = monolithic learning). See "
    "docs/long_traces.md."
)


_SIMPLIFY_HELP = (
    "expression simplification backend: 'engine' (default; table-driven "
    "rewrite rules matched through a discrimination net, legacy-"
    "equivalent output), 'legacy' (the original hand-coded pass) or "
    "'deep' (extended rule set with bounds-propagating context: "
    "comparison chaining, ITE lifting, absorption, NNF pushing). "
    "See docs/rewrite_engine.md."
)


_SESSION_HELP = (
    "learn through an incremental learner session (default): the trace "
    "set only grows, so each iteration extends the learner's persistent "
    "state (APT + SAT solver, merge structures) with the new traces "
    "instead of re-learning from scratch; --no-session forces a fresh "
    "learn() per iteration (identical models, more learning time)"
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Active learning of abstract system models from traces using "
            "model checking (DATE 2022 reproduction)"
        ),
        epilog=(
            "Parallelism: --jobs N runs the completeness oracle on N worker "
            "processes. Results are deterministic and independent of N; see "
            "docs/parallel_oracle.md for the affinity and determinism design."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks").set_defaults(fn=_cmd_list)

    run = sub.add_parser("run", help="run the active algorithm on a benchmark")
    run.add_argument("benchmark")
    run.add_argument("--fsa", help="FSA row (default: first)")
    run.add_argument("--traces", type=int, default=50)
    run.add_argument("--length", type=int, default=50)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--budget", type=float, default=120.0)
    run.add_argument(
        "--engine", choices=SPURIOUS_ENGINES, default="explicit",
        help=_ENGINE_HELP,
    )
    run.add_argument("--jobs", type=int, default=1, help=_JOBS_HELP)
    run.add_argument(
        "--session",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=_SESSION_HELP,
    )
    run.add_argument(
        "--segment-length", type=int, default=None, help=_SEGMENT_HELP
    )
    run.add_argument(
        "--segment-overlap",
        type=int,
        default=1,
        help=(
            "events shared between consecutive segments (default 1; "
            "requires --segment-length)"
        ),
    )
    run.add_argument(
        "--simplify", choices=("engine", "legacy", "deep"),
        default="engine", help=_SIMPLIFY_HELP,
    )
    run.add_argument("--dot", help="write learned model as Graphviz DOT")
    run.add_argument("--invariants", action="store_true")
    run.add_argument("--telemetry", metavar="PATH", help=_TELEMETRY_HELP)
    run.set_defaults(fn=_cmd_run)

    base = sub.add_parser("baseline", help="run the random-sampling baseline")
    base.add_argument("benchmark")
    base.add_argument("--fsa")
    base.add_argument("--observations", type=int, default=20_000)
    base.add_argument("--seed", type=int, default=0)
    base.add_argument(
        "--engine", choices=SPURIOUS_ENGINES, default="explicit",
        help=_ENGINE_HELP,
    )
    base.add_argument("--jobs", type=int, default=1, help=_JOBS_HELP)
    base.add_argument(
        "--simplify", choices=("engine", "legacy", "deep"),
        default="engine", help=_SIMPLIFY_HELP,
    )
    base.set_defaults(fn=_cmd_baseline)

    analyze = sub.add_parser(
        "analyze",
        help="statically analyze benchmark systems (sort/well-formedness)",
        description=(
            "Run the DSL static analyzer over benchmark systems: "
            "eid-memoised sort inference over the expression DAG, "
            "next-state width/sort conformance, init/sample range checks, "
            "FSA spec and reachability checks. Exit status 1 when any "
            "finding reaches --severity, 0 when clean. See "
            "docs/static_analysis.md for the diagnostic-code catalogue."
        ),
    )
    analyze.add_argument("benchmarks", nargs="*", help="benchmark names")
    analyze.add_argument(
        "--all-library-systems",
        action="store_true",
        help="analyze every benchmark in the library",
    )
    analyze.add_argument(
        "--semantic",
        action="store_true",
        help=(
            "enable solver-backed checks: dead transitions (R401), "
            "overlapping guards (R402), non-exhaustive guards (R403)"
        ),
    )
    analyze.add_argument(
        "--trace",
        help=(
            "also validate a trace file (.csv, .json or .jsonl event log) "
            "against the system"
        ),
    )
    analyze.add_argument(
        "--severity",
        choices=["info", "warning", "error"],
        default="info",
        help="minimum severity that is reported and fails the run",
    )
    analyze.set_defaults(fn=_cmd_analyze)

    table = sub.add_parser("table1", help="regenerate Table I")
    table.add_argument("benchmarks", nargs="*", help="subset (default: all)")
    table.add_argument("--traces", type=int, default=50)
    table.add_argument("--length", type=int, default=50)
    table.add_argument("--seed", type=int, default=0)
    table.add_argument("--budget", type=float, default=60.0)
    table.add_argument(
        "--engine", choices=SPURIOUS_ENGINES, default="explicit",
        help=_ENGINE_HELP,
    )
    table.add_argument("--baseline", action="store_true")
    table.add_argument("--observations", type=int, default=20_000)
    table.add_argument("--jobs", type=int, default=1, help=_JOBS_HELP)
    table.add_argument(
        "--session",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=_SESSION_HELP,
    )
    table.add_argument(
        "--segment-length", type=int, default=None, help=_SEGMENT_HELP
    )
    table.add_argument(
        "--segment-overlap",
        type=int,
        default=1,
        help=(
            "events shared between consecutive segments (default 1; "
            "requires --segment-length)"
        ),
    )
    table.add_argument(
        "--simplify", choices=("engine", "legacy", "deep"),
        default="engine", help=_SIMPLIFY_HELP,
    )
    table.add_argument("--telemetry", metavar="PATH", help=_TELEMETRY_HELP)
    table.set_defaults(fn=_cmd_table1)

    profile = sub.add_parser(
        "profile",
        help="render a --telemetry JSONL log (span tree + counters)",
        description=(
            "Read a telemetry log written by `repro run --telemetry` or "
            "`repro table1 --telemetry` and print the aggregated span "
            "tree (total/self seconds per phase), the learn-phase share "
            "(Table I %%Tm), and the top counters and gauges of the "
            "final metrics snapshot. See docs/observability.md."
        ),
    )
    profile.add_argument("log", help="telemetry JSONL file")
    profile.add_argument(
        "--top", type=int, default=10,
        help="how many counters to show (default 10)",
    )
    profile.set_defaults(fn=_cmd_profile)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "simplify", None):
        import os

        from .expr.simplify import set_simplify_backend

        set_simplify_backend(args.simplify)
        # --jobs workers are fresh processes; they read the env var.
        os.environ["REPRO_SIMPLIFY"] = args.simplify
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
