"""Evaluation runners: regenerate the paper's Table I.

Two entry points per (benchmark, FSA) pair:

* :func:`run_active` -- the paper's algorithm (§IV-B): initial random
  trace set, T2M-style learner, completeness checking, refinement to
  ``α = 1`` or budget expiry.  Produces the left-hand Table I columns
  (``i``, ``d``, ``N``, ``α``, ``T``, ``%Tm``).
* :func:`run_random_baseline` -- the §IV-C baseline: a large randomly
  sampled trace set, one passive learning pass, α measured with the same
  condition checker.  Produces the right-hand columns (``N``, ``α``,
  ``T``).

Scales (trace counts, budgets) default to laptop-friendly values; the
paper's original scales (50×50 initial traces, 1M baseline inputs, 10 h
budget) are reachable through the keyword arguments.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from .automata.compare import TransitionWitness, transition_match_score
from .core import telemetry
from .core.loop import ActiveLearner, ActiveLearningResult
from .core.metrics import BaselineRow, TableRow
from .core.conditions import extract_conditions
from .core.parallel import make_oracle
from .learn.base import ModelLearner
from .learn.segmented import SegmentedLearner
from .learn.t2m import T2MLearner
from .mc.explicit import reachable_formula
from .stateflow.benchmark import Benchmark, FsaSpec
from .traces.generate import random_traces


def default_learner(benchmark: Benchmark, spec: FsaSpec) -> T2MLearner:
    """The T2M-style learner configured the way the paper runs T2M."""
    return T2MLearner(
        mode_vars=list(spec.resolved_mode_vars()),
        variables={v.name: v for v in benchmark.system.variables},
        prefer_vars=list(benchmark.system.input_names),
    )


def fsa_witnesses(benchmark: Benchmark, spec: FsaSpec) -> list[TransitionWitness]:
    witnesses: list[TransitionWitness] = []
    for truth in benchmark.ground_truth(spec):
        witnesses.extend(truth.witnesses)
    return witnesses


@dataclass
class ActiveRunOutput:
    """A Table I row plus the underlying artefacts.

    ``snapshot`` is the telemetry metrics snapshot taken right after the
    run (``None`` when telemetry is disabled): the same aggregate the
    ``--telemetry`` JSONL export ends with, so the row and the export
    can be cross-checked against one source of truth.
    """

    row: TableRow
    result: ActiveLearningResult
    d: float
    snapshot: dict | None = None


def run_active(
    benchmark: Benchmark,
    spec: FsaSpec,
    initial_traces: int = 50,
    trace_length: int = 50,
    seed: int = 0,
    budget_seconds: float | None = 120.0,
    learner: ModelLearner | None = None,
    spurious_engine: str = "explicit",
    max_iterations: int = 50,
    guide_with_reachable: bool = True,
    jobs: int = 1,
    use_session: bool = True,
    validate: bool = True,
    segment_length: int | None = None,
    segment_overlap: int = 1,
) -> ActiveRunOutput:
    """Run the active algorithm on one FSA; returns its Table I row.

    ``guide_with_reachable`` applies the paper's domain-knowledge
    strengthening by default: without it, the larger benchmarks spend
    their budget excluding unreachable counterexample states one by one
    (the paper's own timeout mode, reproduced by the guidance ablation
    benchmark).  ``jobs > 1`` shards every iteration's condition checks
    across a persistent worker pool (identical results, lower
    wall-clock; see :mod:`repro.core.parallel`).  ``use_session``
    (default) re-learns incrementally across iterations through a
    learner session; the per-iteration records then carry ``warm_start``
    flags so Table I's ``%Tm`` can be split into cold vs warm shares
    (``result.cold_learn_seconds`` / ``result.warm_learn_seconds``).
    ``validate`` (default on -- the runners are the untrusted-spec
    boundary) statically analyzes the system and every extracted
    condition before any solver sees them, raising
    :class:`~repro.analysis.diagnostics.AnalysisError` on ERROR
    findings.

    ``segment_length`` switches learning to the long-trace pipeline:
    the learner is wrapped in a
    :class:`~repro.learn.segmented.SegmentedLearner` that slices each
    trace into overlapping segments (``segment_overlap`` shared
    events), learns them independently — on the same ``jobs`` worker
    count as the oracle — and unifies the per-segment models.  See
    ``docs/long_traces.md``.
    """
    model_learner = learner or default_learner(benchmark, spec)
    if segment_length is not None:
        model_learner = SegmentedLearner(
            model_learner,
            segment_length,
            segment_overlap,
            jobs=jobs,
        )
    traces = random_traces(
        benchmark.system, count=initial_traces, length=trace_length, seed=seed
    )
    with ActiveLearner(
        benchmark.system,
        model_learner,
        k=benchmark.k,
        spurious_engine=spurious_engine,
        budget_seconds=budget_seconds,
        max_iterations=max_iterations,
        guide_with_reachable=guide_with_reachable and spurious_engine == "explicit",
        jobs=jobs,
        use_session=use_session,
        validate=validate,
    ) as active:
        result = active.run(traces)
    with telemetry.span("eval.score", benchmark=benchmark.name, fsa=spec.name):
        d = transition_match_score(
            result.model, fsa_witnesses(benchmark, spec)
        )
    # Table I timing columns come from the run's span tree (the loop
    # stamps total/learn seconds off its `loop.*` spans), so the row and
    # a `--telemetry` export agree by construction.
    row = TableRow(
        benchmark=benchmark.name,
        fsa=spec.name,
        num_observables=benchmark.num_observables,
        k=benchmark.k,
        iterations=result.iterations,
        d=d,
        num_states=result.num_states,
        alpha=result.alpha,
        time_seconds=result.total_seconds,
        percent_learning=result.percent_learning,
        timed_out=result.timed_out,
    )
    snapshot = None
    session = telemetry.active()
    if session is not None:
        registry = session.metrics
        registry.inc("eval.active_runs")
        registry.gauge_max("eval.model_states", result.num_states)
        snapshot = registry.snapshot()
    return ActiveRunOutput(row=row, result=result, d=d, snapshot=snapshot)


@dataclass
class BaselineRunOutput:
    row: BaselineRow
    alpha: float
    num_states: int


def run_random_baseline(
    benchmark: Benchmark,
    spec: FsaSpec,
    num_observations: int = 20_000,
    trace_length: int = 50,
    seed: int = 0,
    learner: ModelLearner | None = None,
    spurious_engine: str = "explicit",
    guide_with_reachable: bool = True,
    jobs: int = 1,
    validate: bool = True,
) -> BaselineRunOutput:
    """The §IV-C random-sampling baseline for one FSA.

    ``num_observations`` plays the paper's "one million randomly sampled
    inputs" role at laptop scale; α of the passively learned model is
    measured with the same condition checker as the active algorithm
    (spurious counterexamples excluded through an exact engine --
    ``spurious_engine`` picks which, default the explicit table -- so
    the reported α is not depressed by unreachable-state artefacts).
    """
    start = time.monotonic()
    count = max(1, num_observations // trace_length)
    traces = random_traces(
        benchmark.system, count=count, length=trace_length, seed=seed
    )
    model_learner = learner or default_learner(benchmark, spec)
    model = model_learner.learn(traces)
    with make_oracle(
        benchmark.system,
        spurious_engine,
        benchmark.k,
        jobs=jobs,
        respect_k=False,
        domain_assumption=(
            reachable_formula(benchmark.system)
            if guide_with_reachable and spurious_engine == "explicit"
            else None
        ),
        validate=validate,
    ) as oracle:
        report = oracle.check_all(extract_conditions(model))
    elapsed = time.monotonic() - start
    row = BaselineRow(
        benchmark=benchmark.name,
        fsa=spec.name,
        num_states=model.num_states,
        alpha=report.alpha,
        time_seconds=elapsed,
    )
    return BaselineRunOutput(
        row=row, alpha=report.alpha, num_states=model.num_states
    )
