"""Macro-benchmark: warm-session vs. fresh-per-iteration re-learning.

Replays a multi-iteration active-learning trace workload on the
launch-abort system -- an initial random trace set plus a dozen delta
rounds, the shape the learn-check-refine loop produces -- through (a)
fresh ``learn()`` calls on the accumulated set every round (the
pre-session behaviour) and (b) one warm :class:`LearnerSession` fed only
the per-round deltas.  Per-round models are asserted isomorphic, and the
record lands in ``BENCH_incremental_learning.json`` at the repo root.

The acceptance assertion is on the SAT-DFA learner, the component whose
cost the paper's ``%Tm`` column measures: its session keeps one
persistent APT + SAT solver, so per-round work is proportional to the
*delta* while the fresh path re-encodes the whole prefix tree every
round (quadratic in total).  This is a single-process warm-start
speedup, so it is asserted unconditionally -- no CPU-count gating
needed, unlike the parallel-oracle benchmark.  The T2M and k-tails
sessions are timed and recorded too (their global synthesis/quotient
steps re-run per model, so their warm advantage is smaller).

Run:  pytest benchmarks/test_incremental_learning.py -s
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.automata.compare import nfa_isomorphic
from repro.learn import KTailsLearner, SatDfaLearner, T2MLearner
from repro.stateflow.library import get_benchmark
from repro.traces.generate import random_traces

BENCH = "ModelingALaunchAbortSystem"
INITIAL_TRACES = 40
DELTA_ROUNDS = 18
DELTA_TRACES = 4
TRACE_LEN = 40
RESULT_PATH = (
    Path(__file__).resolve().parents[1] / "BENCH_incremental_learning.json"
)


def _learner_factories(system):
    """Learners pinned to the system's real mode basis (the benchmark
    configuration), so auto-detection can never drift a session cold."""
    state_names = [v.name for v in system.state_vars]
    variables = {v.name: v for v in system.variables}
    return {
        "satdfa": lambda: SatDfaLearner(
            mode_vars=state_names, variables=variables
        ),
        "t2m": lambda: T2MLearner(
            mode_vars=state_names, variables=variables,
            prefer_vars=list(system.input_names),
        ),
        "ktails": lambda: KTailsLearner(
            k=2, mode_vars=state_names, variables=variables
        ),
    }


def _workload(system):
    initial = random_traces(
        system, count=INITIAL_TRACES, length=TRACE_LEN, seed=0
    )
    deltas = [
        tuple(
            random_traces(
                system, count=DELTA_TRACES, length=TRACE_LEN, seed=seed
            )
        )
        for seed in range(1, DELTA_ROUNDS + 1)
    ]
    return initial, deltas


def test_warm_session_relearning_speedup():
    system = get_benchmark(BENCH).system
    initial, deltas = _workload(system)
    # Accumulated snapshots the fresh path learns from, built up front so
    # set construction is outside both timed regions.
    snapshots = [initial.copy()]
    for delta in deltas:
        snapshot = snapshots[-1].copy()
        snapshot.update(delta)
        snapshots.append(snapshot)

    record = {
        "benchmark": BENCH,
        "initial_traces": INITIAL_TRACES,
        "delta_rounds": DELTA_ROUNDS,
        "delta_traces": DELTA_TRACES,
        "trace_length": TRACE_LEN,
        "total_observations": snapshots[-1].total_observations,
        "learners": {},
    }
    speedups = {}
    for label, factory in _learner_factories(system).items():
        start = time.perf_counter()
        fresh_models = [factory().learn(snapshot) for snapshot in snapshots]
        fresh_seconds = time.perf_counter() - start

        start = time.perf_counter()
        session = factory().start_session(initial)
        session_models = [session.model]
        for delta in deltas:
            session_models.append(session.add_traces(delta))
        session_seconds = time.perf_counter() - start
        assert session.warm

        for round_index, (warm, fresh) in enumerate(
            zip(session_models, fresh_models, strict=True)
        ):
            assert nfa_isomorphic(warm, fresh), (
                f"{label}: session model diverged on round {round_index}"
            )
        speedup = fresh_seconds / max(session_seconds, 1e-9)
        speedups[label] = speedup
        record["learners"][label] = {
            "fresh_seconds": round(fresh_seconds, 4),
            "session_seconds": round(session_seconds, 4),
            "speedup": round(speedup, 3),
            "models_isomorphic": True,
            "final_states": session_models[-1].num_states,
        }
        print(
            f"\n{BENCH}/{label}: {DELTA_ROUNDS + 1} rounds | "
            f"fresh {fresh_seconds:.3f}s, warm session "
            f"{session_seconds:.3f}s, speedup {speedup:.2f}x"
        )

    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"recorded in {RESULT_PATH.name}")
    # Single-process warm-start win: safe to assert even on 1-CPU CI.
    assert speedups["satdfa"] >= 2.0, (
        f"warm SAT-DFA session only {speedups['satdfa']:.2f}x faster "
        f"than fresh-per-iteration learning"
    )
