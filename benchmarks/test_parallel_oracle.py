"""Macro-benchmark: sharded vs. serial completeness checking.

Replays a launch-abort-scale condition workload (>= 60 conditions, with
spurious-strengthening churn) through the canonical serial oracle --
the baseline doing identical per-condition work -- and through a
:class:`ParallelCompletenessOracle` pool at ``jobs=4``, asserting the
reports are bit-for-bit identical and recording the wall-clock numbers
in ``BENCH_parallel_oracle.json`` at the repository root.  The default
(non-canonical) serial path is timed too, so the record shows both the
sharding speedup and the price of canonicalisation itself.

Both paths are warmed with one trivial condition first, so the measured
interval covers condition checking only -- not worker start-up, BFS
exploration or the first transition-relation encoding.

The >= 2x speedup assertion only runs where the hardware can express it
(>= 4 usable CPUs); on smaller machines the numbers are still measured
and recorded, and the identity assertion always runs.  Run with
``pytest benchmarks/test_parallel_oracle.py -s`` to see the figures.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from pathlib import Path

import pytest

from repro.core.conditions import Condition, ConditionKind
from repro.core.parallel import ParallelCompletenessOracle, make_oracle
from repro.expr import TRUE, lnot, sort_values
from repro.stateflow.library import get_benchmark

BENCH = "ModelingALaunchAbortSystem"
JOBS = 4
MAX_STRENGTHENINGS = 6
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_parallel_oracle.json"


def _step(assumption, conclusion) -> Condition:
    return Condition(
        kind=ConditionKind.STEP,
        state=0,
        state_name="q",
        assumption=assumption,
        conclusion=conclusion,
    )


def _workload(system) -> list[Condition]:
    """>= 60 distinct conditions mixing holding and churning checks."""
    conditions = []
    for var in system.state_vars:
        for value in sort_values(var.sort):
            # Usually violated: successors never all pin to one value...
            conditions.append(_step(TRUE, lnot(var.eq(value))))
            # ...a pinned state rarely self-loops under every input
            # (churns through spurious exclusions before a verdict)...
            conditions.append(_step(var.eq(value), var.eq(value)))
            # ...nor does every step leave it.
            conditions.append(_step(var.eq(value), lnot(var.eq(value))))
    return conditions


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def test_parallel_speedup_on_launch_abort_workload():
    benchmark = get_benchmark(BENCH)
    system = benchmark.system
    conditions = _workload(system)
    assert len(conditions) >= 60, f"workload too small: {len(conditions)}"
    # Warm-up batch: one violated condition per state variable, outside
    # the measured workload.  The distinct symbol sets spread over all
    # JOBS workers (a single condition would take the serial shortcut
    # and leave the pool cold), and each counterexample classification
    # forces the worker's reachability exploration up front.
    warmup = [
        _step(var.eq(sort_values(var.sort)[0]), lnot(TRUE))
        for var in system.state_vars
    ]
    assert len(warmup) >= JOBS
    start_method = (
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else "spawn"
    )

    # Reference 1: the default (non-canonical) serial path, for an
    # honest end-to-end number -- canonicalisation itself has a cost.
    default_serial = make_oracle(
        system,
        "explicit",
        benchmark.k,
        jobs=1,
        max_strengthenings=MAX_STRENGTHENINGS,
    )
    default_serial.check_all(warmup)
    start = time.perf_counter()
    default_serial.check_all(conditions)
    default_serial_seconds = time.perf_counter() - start

    # Reference 2: the canonical serial oracle -- the apples-to-apples
    # baseline for the sharding mechanism (identical per-condition work).
    serial = make_oracle(
        system,
        "explicit",
        benchmark.k,
        jobs=1,
        max_strengthenings=MAX_STRENGTHENINGS,
        canonical=True,
    )
    serial.check_all(warmup)
    start = time.perf_counter()
    serial_report = serial.check_all(conditions)
    serial_seconds = time.perf_counter() - start

    with ParallelCompletenessOracle(
        system,
        "explicit",
        benchmark.k,
        jobs=JOBS,
        max_strengthenings=MAX_STRENGTHENINGS,
        start_method=start_method,
    ) as parallel:
        parallel.check_all(warmup)
        start = time.perf_counter()
        parallel_report = parallel.check_all(conditions)
        parallel_seconds = time.perf_counter() - start
        assert parallel.worker_failures == 0

    assert parallel_report.outcomes == serial_report.outcomes
    assert parallel_report.alpha == serial_report.alpha
    assert parallel_report.truncated == serial_report.truncated

    cpus = _usable_cpus()
    speedup = serial_seconds / max(parallel_seconds, 1e-9)
    record = {
        "benchmark": BENCH,
        "conditions": len(conditions),
        "jobs": JOBS,
        "usable_cpus": cpus,
        "start_method": start_method,
        "max_strengthenings": MAX_STRENGTHENINGS,
        "serial_seconds": round(serial_seconds, 4),
        "default_serial_seconds": round(default_serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "speedup": round(speedup, 3),
        "speedup_vs_default_serial": round(
            default_serial_seconds / max(parallel_seconds, 1e-9), 3
        ),
        "reports_identical": True,
        "alpha": serial_report.alpha,
        "violations": len(serial_report.violations),
        "total_spurious_excluded": serial_report.total_spurious,
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(
        f"\n{BENCH}: {len(conditions)} conditions | "
        f"serial (canonical) {serial_seconds:.3f}s, "
        f"serial (default) {default_serial_seconds:.3f}s, "
        f"jobs={JOBS} {parallel_seconds:.3f}s, "
        f"speedup {speedup:.2f}x on {cpus} usable CPU(s) | "
        f"recorded in {RESULT_PATH.name}"
    )
    if cpus < JOBS:
        pytest.skip(
            f"only {cpus} usable CPU(s): a {JOBS}-way wall-clock speedup "
            f"is not expressible here (measured {speedup:.2f}x, recorded)"
        )
    assert speedup >= 2.0, (
        f"parallel oracle only {speedup:.2f}x faster at jobs={JOBS} "
        f"({parallel_seconds:.3f}s vs {serial_seconds:.3f}s serial)"
    )
