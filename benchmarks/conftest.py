"""Shared configuration for the benchmark harness.

Every table and figure of the paper's evaluation has a regenerating
benchmark module here (see DESIGN.md §4 for the index).  Scales default
to laptop-friendly values and can be raised towards the paper's original
scales via environment variables:

``REPRO_TRACES``        initial traces (paper: 50)          default 30
``REPRO_TRACE_LEN``     initial trace length (paper: 50)    default 30
``REPRO_BUDGET``        per-run budget seconds (paper: 10h) default 90
``REPRO_BASELINE_OBS``  baseline observations (paper: 1M)   default 5000
"""

from __future__ import annotations

import os

import pytest

_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))


def pytest_collection_modifyitems(items):
    """Mark everything under benchmarks/ as ``slow``.

    The fast tier-1 core is then ``pytest -m "not slow"`` (or just
    ``pytest tests/``); the full run still includes the benchmarks.
    """
    for item in items:
        if str(item.fspath).startswith(_BENCH_DIR):
            item.add_marker(pytest.mark.slow)


TRACES = int(os.environ.get("REPRO_TRACES", "30"))
TRACE_LEN = int(os.environ.get("REPRO_TRACE_LEN", "30"))
BUDGET = float(os.environ.get("REPRO_BUDGET", "90"))
BASELINE_OBS = int(os.environ.get("REPRO_BASELINE_OBS", "5000"))


def table1_rows() -> list[tuple[str, str]]:
    """All (benchmark, fsa) pairs: the rows of Table I."""
    from repro.stateflow.library import benchmark_names, get_benchmark

    rows = []
    for name in benchmark_names():
        for spec in get_benchmark(name).fsas:
            rows.append((name, spec.name))
    return rows


@pytest.fixture(scope="session")
def table1_report():
    """Collects rows across tests and prints the table at session end."""
    from repro.core import format_baseline_table, format_table

    active_rows = []
    baseline_rows = []
    yield active_rows, baseline_rows
    if active_rows:
        print("\n\n" + "=" * 100)
        print("TABLE I (reproduction) -- active learning algorithm")
        print("=" * 100)
        print(format_table(sorted(active_rows, key=lambda r: (r.benchmark, r.fsa))))
    if baseline_rows:
        print("\n" + "=" * 100)
        print("TABLE I (reproduction) -- random-sampling baseline")
        print("=" * 100)
        print(
            format_baseline_table(
                sorted(baseline_rows, key=lambda r: (r.benchmark, r.fsa))
            )
        )
