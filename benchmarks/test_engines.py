"""Cross-engine benchmark: the model-checking back-ends agree.

The reproduction ships four engines answering the Fig. 3b reachability
question -- SAT-based k-induction (the literal paper mechanism), explicit
BFS, BDD symbolic image computation, and IC3/PDR proofs (see
``docs/engines.md``).  This benchmark (a) verifies they produce
identical α = 1 results driving the full loop, and (b) records their
relative cost on a mid-sized benchmark, so regressions in any engine
are visible.  ``benchmarks/test_ic3.py`` drills further into the proof
engine specifically.

Run:  pytest benchmarks/test_engines.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.evaluation import run_active
from repro.mc import shared_reachability
from repro.mc.symbolic import SymbolicReachability
from repro.stateflow.library import get_benchmark

BENCH = "ModelingALaunchAbortSystem"
FSA = "Overall"


@pytest.mark.parametrize("engine", ["explicit", "bdd", "ic3"])
def test_loop_with_engine(benchmark, engine):
    bench = get_benchmark(BENCH)

    def run():
        return run_active(
            bench,
            bench.fsa(FSA),
            initial_traces=15,
            trace_length=15,
            budget_seconds=60,
            spurious_engine=engine,
            guide_with_reachable=(engine == "explicit"),
        )

    out = benchmark.pedantic(run, iterations=1, rounds=1)
    print(f"\n{engine}: α={out.row.alpha} N={out.row.num_states} "
          f"i={out.row.iterations} T={out.row.time_seconds:.2f}s")
    assert out.row.alpha == 1.0
    assert out.row.num_states == 4


def test_kinduction_engine_small_k(benchmark):
    """The literal Fig. 3b SAT path on a small-k benchmark."""
    bench = get_benchmark("MealyVendingMachine")

    def run():
        return run_active(
            bench,
            bench.fsas[0],
            initial_traces=10,
            trace_length=10,
            budget_seconds=60,
            spurious_engine="kinduction",
            guide_with_reachable=False,
        )

    out = benchmark.pedantic(run, iterations=1, rounds=1)
    assert out.row.alpha == 1.0
    assert out.row.num_states == 4


@pytest.mark.parametrize(
    "name",
    ["MealyVendingMachine", "CountEvents", "ModelingALaunchAbortSystem"],
)
def test_reachability_engines_agree(benchmark, name):
    """Explicit BFS and BDD fixpoint compute identical reachable sets."""
    bench = get_benchmark(name)

    def compare():
        explicit = shared_reachability(bench.system)
        symbolic = SymbolicReachability(bench.system)
        return (
            explicit.num_states,
            symbolic.num_reachable_states(),
            explicit.diameter,
            symbolic.diameter,
        )

    exp_n, sym_n, exp_d, sym_d = benchmark.pedantic(
        compare, iterations=1, rounds=1
    )
    assert exp_n == sym_n
    assert exp_d == sym_d
