"""Macro-benchmark: long-trace learning -- monolithic blow-up vs. segmented.

Three measurements on the launch-abort system, recorded together in
``BENCH_long_traces.json`` at the repository root:

1. **Blow-up curve** -- the monolithic SAT-DFA learner (with one
   negative sequence, so identification does real SAT work) timed at
   growing trace lengths.  The fitted scaling exponent documents why a
   10^5-event log is hopeless as one giant word (the measured curve is
   ~quadratic: each doubling costs ~4x).
2. **Speedup at 10^5 events** -- the same learner run segmented
   (:class:`SegmentedLearner`: overlapping segments + dedup memo +
   unification) against the monolithic run under a wall-clock budget in
   a subprocess.  Monolithic learning blows through the budget (a
   ~17 h extrapolation), so the recorded speedup is a *lower bound*:
   budget / segmented seconds, asserted >= 5x.  The assertion is gated
   behind a measurement floor like ``BENCH_parallel_oracle.json``'s: it
   only runs when the monolithic side was either capped or took long
   enough to time meaningfully.
3. **10^6-event learn with bounded memory** -- a million-event stream
   (never materialised: :func:`long_trace_events` generates lazily,
   segments are sliced on the fly) learned end to end under
   ``tracemalloc``.  Peak traced memory is asserted to stay megabytes
   -- strictly below what merely *materialising* a 10x shorter event
   list costs -- which is the whole point of streaming ingestion.

Scales are environment-tunable like the rest of the harness:

``REPRO_LONG_EVENTS``     million-run length        default 1_000_000
``REPRO_SPEEDUP_EVENTS``  speedup-run length        default 100_000
``REPRO_MONO_BUDGET``     monolithic cap (seconds)  default 60

Run with ``pytest benchmarks/test_long_traces.py -s`` to see figures.
"""

from __future__ import annotations

import json
import math
import multiprocessing
import os
import time
import tracemalloc
from itertools import islice
from pathlib import Path

import pytest

from repro.learn import SatDfaLearner, SegmentedLearner, T2MLearner
from repro.stateflow.library import get_benchmark
from repro.traces import long_trace_events

BENCH = "ModelingALaunchAbortSystem"
SEGMENT_LENGTH = 32
OVERLAP = 2
PERIOD = 11  # input-schedule period: makes the log eventually periodic
SEED = 0
BLOWUP_SIZES = (500, 1000, 2000)

LONG_EVENTS = int(os.environ.get("REPRO_LONG_EVENTS", "1000000"))
SPEEDUP_EVENTS = int(os.environ.get("REPRO_SPEEDUP_EVENTS", "100000"))
MONO_BUDGET = float(os.environ.get("REPRO_MONO_BUDGET", "60"))

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_long_traces.json"


def _record(section: str, payload: dict) -> None:
    """Merge one section into the shared record (tests stay runnable
    individually; a full run refreshes every section)."""
    record: dict = {}
    if RESULT_PATH.exists():
        record = json.loads(RESULT_PATH.read_text())
    record["benchmark"] = BENCH
    record["segment_length"] = SEGMENT_LENGTH
    record["overlap"] = OVERLAP
    record[section] = payload
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")


def _system():
    return get_benchmark(BENCH).system


def _events(n: int):
    return long_trace_events(_system(), n, seed=SEED, period=PERIOD)


def _sat_learner() -> SatDfaLearner:
    """SAT-DFA with one negative word: identification does real SAT work.

    The negative is a deterministic corruption of the trace's own third
    mode valuation, so it is consistent (never observed) yet forces the
    solver to separate states rather than emit the one-state permissive
    automaton for free.
    """
    system = _system()
    mode_vars = [v.name for v in system.state_vars]
    prefix = list(islice(_events(3), 3))
    word = [tuple(event[m] for m in mode_vars) for event in prefix]
    word[-1] = tuple(v + 1000 for v in word[-1])
    return SatDfaLearner(
        mode_vars=mode_vars,
        variables={
            v.name: v for v in (*system.state_vars, *system.input_vars)
        },
        negative_sequences=[word],
    )


def _t2m_learner() -> T2MLearner:
    system = _system()
    return T2MLearner(
        mode_vars=[v.name for v in system.state_vars],
        variables={
            v.name: v for v in (*system.state_vars, *system.input_vars)
        },
        synthesize_guards=False,
        merge_initial=False,
    )


def _learn_monolithic(n: int) -> float:
    """Time one monolithic SAT-DFA learn over an n-event trace."""
    from repro.traces import Trace, TraceSet

    events = list(_events(n))
    learner = _sat_learner()
    start = time.perf_counter()
    learner.learn(TraceSet([Trace(events)]))
    return time.perf_counter() - start


def _monolithic_worker(conn, n: int) -> None:
    conn.send(_learn_monolithic(n))
    conn.close()


# ---------------------------------------------------------------------------


def test_monolithic_blowup_curve():
    """The monolithic learner scales super-linearly in trace length."""
    points = []
    for n in BLOWUP_SIZES:
        seconds = _learn_monolithic(n)
        points.append({"events": n, "seconds": round(seconds, 4)})
        print(f"\nmonolithic SAT-DFA: {n} events -> {seconds:.2f}s")
    first, last = points[0], points[-1]
    exponent = math.log(last["seconds"] / max(first["seconds"], 1e-9)) / (
        math.log(last["events"] / first["events"])
    )
    _record(
        "monolithic_blowup",
        {"points": points, "scaling_exponent": round(exponent, 2)},
    )
    print(f"fitted scaling exponent: n^{exponent:.2f}")
    if last["seconds"] < 1.0:
        pytest.skip(
            f"largest monolithic run only {last['seconds']:.3f}s: "
            "below the measurement floor for a scaling fit (recorded)"
        )
    assert exponent >= 1.5, (
        f"expected super-linear monolithic scaling, measured n^{exponent:.2f}"
    )


def test_segmented_speedup_at_1e5_events():
    """Segmented learning beats monolithic >= 5x at 10^5 events.

    The monolithic side runs in a subprocess under ``MONO_BUDGET``
    seconds; the blow-up curve extrapolates it to hours at this size, so
    the subprocess is expected to be killed at the cap and the recorded
    speedup is a lower bound.
    """
    n = SPEEDUP_EVENTS

    learner = SegmentedLearner(_sat_learner(), SEGMENT_LENGTH, OVERLAP)
    start = time.perf_counter()
    model = learner.learn_events(_events(n))
    segmented_seconds = time.perf_counter() - start
    prefix = list(islice(_events(n), 2000))
    assert model.admits(prefix)

    start_method = (
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else "spawn"
    )
    ctx = multiprocessing.get_context(start_method)
    parent, child = ctx.Pipe(duplex=False)
    process = ctx.Process(
        target=_monolithic_worker, args=(child, n), daemon=True
    )
    process.start()
    child.close()
    capped = not parent.poll(MONO_BUDGET)
    monolithic_seconds = MONO_BUDGET if capped else parent.recv()
    process.terminate()
    process.join()

    speedup = monolithic_seconds / max(segmented_seconds, 1e-9)
    _record(
        "speedup_1e5",
        {
            "events": n,
            "segmented_seconds": round(segmented_seconds, 4),
            "monolithic_seconds": round(monolithic_seconds, 4),
            "monolithic_capped": capped,
            "monolithic_budget": MONO_BUDGET,
            "speedup_lower_bound" if capped else "speedup": round(speedup, 2),
            "segments": learner.stats.segments,
            "distinct_segments": learner.stats.distinct_segments,
            "memo_hits": learner.stats.memo_hits,
        },
    )
    print(
        f"\n{n} events: segmented {segmented_seconds:.2f}s "
        f"({learner.stats.distinct_segments} distinct of "
        f"{learner.stats.segments} segments), monolithic "
        f"{'>' if capped else ''}{monolithic_seconds:.1f}s "
        f"-> speedup {'>=' if capped else ''}{speedup:.1f}x"
    )
    if not capped and monolithic_seconds < 1.0:
        pytest.skip(
            f"monolithic finished in {monolithic_seconds:.3f}s: below the "
            "measurement floor for a speedup claim (recorded)"
        )
    assert speedup >= 5.0, (
        f"segmented learning only {speedup:.2f}x faster at {n} events "
        f"({segmented_seconds:.2f}s vs {monolithic_seconds:.2f}s)"
    )


def test_million_event_learn_bounded_memory():
    """A 10^6-event stream learns end to end in megabytes of memory.

    The yardstick is measured, not guessed: merely materialising a 10x
    *shorter* event list must cost more traced memory than the whole
    million-event segmented learn, whose working set is one segment
    window plus the distinct-segment memo plus one key reference per
    segment occurrence.
    """
    yardstick_n = max(LONG_EVENTS // 10, 1000)
    tracemalloc.start()
    yardstick = list(_events(yardstick_n))
    _, materialise_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del yardstick

    learner = SegmentedLearner(_t2m_learner(), SEGMENT_LENGTH, OVERLAP)
    tracemalloc.start()
    start = time.perf_counter()
    model = learner.learn_events(_events(LONG_EVENTS))
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    prefix = list(islice(_events(LONG_EVENTS), 5000))
    assert model.admits(prefix)

    peak_mib = peak / 2**20
    materialise_mib = materialise_peak / 2**20
    _record(
        "million_events",
        {
            "events": LONG_EVENTS,
            "seconds": round(elapsed, 2),
            "events_per_second": round(LONG_EVENTS / elapsed),
            "peak_traced_mib": round(peak_mib, 2),
            "materialise_tenth_mib": round(materialise_mib, 2),
            "num_states": model.num_states,
            "segments": learner.stats.segments,
            "distinct_segments": learner.stats.distinct_segments,
            "memo_hits": learner.stats.memo_hits,
        },
    )
    print(
        f"\n{LONG_EVENTS} events in {elapsed:.1f}s "
        f"({LONG_EVENTS / elapsed:,.0f} ev/s), peak {peak_mib:.1f} MiB "
        f"(materialising {yardstick_n} events alone: "
        f"{materialise_mib:.1f} MiB), "
        f"{learner.stats.distinct_segments} distinct of "
        f"{learner.stats.segments} segments"
    )
    assert peak_mib < 64, f"peak traced memory {peak_mib:.1f} MiB"
    assert peak < materialise_peak, (
        f"streaming learn peaked at {peak_mib:.1f} MiB, more than "
        f"materialising a {yardstick_n}-event list ({materialise_mib:.1f} MiB)"
    )
