"""Ablation: learning iterations vs initial trace coverage (paper §IV-B.3).

The paper observes that the number of learning iterations depends on how
much of ``Traces_X(S)`` the initial trace set already covers: the richer
the initial set, the fewer refinement rounds.  This benchmark sweeps the
initial trace budget on a benchmark whose behaviours need specific input
sequences (the ladder-logic scheduler) and checks the monotone trend.

Also asserts the §IV-B.3 growth law along the run: ``L(M_j)`` grows
monotonically, observed through the mode-learner's state counts.

Run:  pytest benchmarks/test_ablation_initial_traces.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.evaluation import run_active
from repro.stateflow.library import get_benchmark

BUDGETS = [1, 5, 20, 60]


def _iterations_for(initial_traces: int) -> int:
    bench = get_benchmark("LadderLogicScheduler")
    out = run_active(
        bench,
        bench.fsa("Ladder"),
        initial_traces=initial_traces,
        trace_length=5,
        seed=3,
        budget_seconds=60.0,
    )
    assert out.row.alpha == 1.0
    return out.row.iterations


def test_iteration_count_vs_initial_coverage(benchmark):
    def sweep():
        return {count: _iterations_for(count) for count in BUDGETS}

    iterations = benchmark.pedantic(sweep, iterations=1, rounds=1)
    print(f"\ninitial traces -> learning iterations: {iterations}")
    # Starved initial sets need refinement; saturated ones converge fast.
    assert iterations[BUDGETS[0]] >= iterations[BUDGETS[-1]]
    assert iterations[BUDGETS[0]] >= 2
    assert iterations[BUDGETS[-1]] >= 1


@pytest.mark.parametrize("count", [1, 10])
def test_model_growth_is_monotone(benchmark, count):
    """State counts never shrink across iterations (mode learner)."""
    bench = get_benchmark("SequenceRecognitionUsingMealyAndMooreChart")

    def run():
        return run_active(
            bench,
            bench.fsa("Detect"),
            initial_traces=count,
            trace_length=3,
            seed=1,
            budget_seconds=60.0,
        )

    out = benchmark.pedantic(run, iterations=1, rounds=1)
    sizes = [record.num_states for record in out.result.records]
    assert sizes == sorted(sizes)
    assert out.row.alpha == 1.0
