"""Macro-benchmark: what does the telemetry layer cost?

Two claims, measured on the launch-abort active-learning workload (the
same system the incremental-learning and parallel-oracle benchmarks
use) and recorded in ``BENCH_observability.json`` at the repo root:

* **Disabled telemetry is free (< 5%, asserted).**  With no active
  session every instrumented site costs one module-global ``is None``
  test plus, on span sites, the shared no-op singleton.  Wall-clock A/B
  runs cannot resolve sub-percent effects on a shared CI runner, so the
  assertion is built the robust way: count the instrumentation
  touchpoints the workload actually executes (registry method calls +
  spans, counted during an enabled run), micro-time the disabled-mode
  cost of each kind of touchpoint, and bound the total against the
  measured disabled-run wall time.  The direct A/B ratio is recorded
  too, for the humans.
* **Enabled-mode overhead and event counts (recorded).**  The enabled
  run's wall time, its exported event count, and the metric cardinality
  land in the record, and the export itself is written next to the
  record as ``observability.telemetry.jsonl`` — the CI benchmark job
  uploads ``*.telemetry.jsonl`` alongside ``BENCH_*.json``, so a
  regression in these numbers can be profiled straight from the
  artifact (``repro profile observability.telemetry.jsonl``).

Run:  pytest benchmarks/test_observability.py -s
"""

from __future__ import annotations

import json
from pathlib import Path
from time import perf_counter

from conftest import BUDGET, TRACE_LEN, TRACES

from repro.core import telemetry
from repro.core.telemetry import MetricsRegistry
from repro.evaluation import run_active
from repro.stateflow.library import get_benchmark

BENCH = "ModelingALaunchAbortSystem"
REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_observability.json"
TELEMETRY_PATH = REPO_ROOT / "observability.telemetry.jsonl"

MICRO_ITERATIONS = 200_000


def _workload():
    benchmark = get_benchmark(BENCH)
    return run_active(
        benchmark,
        benchmark.fsas[0],
        initial_traces=TRACES,
        trace_length=TRACE_LEN,
        seed=0,
        budget_seconds=BUDGET,
    )


def _count_registry_calls() -> "tuple[dict, int]":
    """Run the workload enabled, counting every registry touchpoint."""
    calls = 0

    class _Counting(MetricsRegistry):
        __slots__ = ()

        def inc(self, name, amount=1):
            nonlocal calls
            calls += 1
            super().inc(name, amount)

        def gauge(self, name, value):
            nonlocal calls
            calls += 1
            super().gauge(name, value)

        def gauge_max(self, name, value):
            nonlocal calls
            calls += 1
            super().gauge_max(name, value)

        def observe(self, name, value):
            nonlocal calls
            calls += 1
            super().observe(name, value)

    session = telemetry.start("bench-observability", {"benchmark": BENCH})
    session.metrics = _Counting()
    try:
        start = perf_counter()
        out = _workload()
        enabled_seconds = perf_counter() - start
    finally:
        telemetry.stop()
    spans = sum(1 for _ in session.tracer.iter_spans())
    return (
        {
            "session": session,
            "out": out,
            "enabled_seconds": enabled_seconds,
            "spans": spans,
        },
        calls,
    )


def _disabled_op_cost() -> dict[str, float]:
    """Per-call disabled-mode cost of each touchpoint kind, seconds."""
    assert telemetry.active() is None
    # Span touchpoint: span() + context enter/exit on the shared no-op.
    start = perf_counter()
    for _ in range(MICRO_ITERATIONS):
        with telemetry.span("bench.noop"):
            pass
    span_cost = (perf_counter() - start) / MICRO_ITERATIONS
    # Registry touchpoint: in disabled mode the registry is never
    # reached — the guard is one active()/metrics() None-check.
    start = perf_counter()
    for _ in range(MICRO_ITERATIONS):
        telemetry.metrics()
    check_cost = (perf_counter() - start) / MICRO_ITERATIONS
    return {"span": span_cost, "check": check_cost}


def test_telemetry_overhead():
    telemetry.stop()

    # Warm-up (library/caches), then the measured disabled runs.
    _workload()
    disabled_seconds = min(
        _timed(_workload) for _ in range(2)
    )

    enabled, registry_calls = _count_registry_calls()
    out = enabled["out"]

    # Export next to the record for the CI artifact upload.
    with open(TELEMETRY_PATH, "w") as handle:
        events = telemetry.export_jsonl(enabled["session"], handle)

    # Disabled-cost bound: every registry call site is guarded by one
    # None-check (so a disabled run pays `check` there, not the call),
    # every span site pays the no-op span protocol.  Guards that fire
    # without reaching the registry (per-solve _tel_metrics, per-image
    # publish) are bounded by the registry_calls count itself: each
    # enabled-mode registry call corresponds to exactly one disabled-mode
    # guard evaluation at the same site.
    costs = _disabled_op_cost()
    touch_seconds = (
        enabled["spans"] * costs["span"] + registry_calls * costs["check"]
    )
    overhead_fraction = touch_seconds / disabled_seconds

    snap = enabled["session"].metrics.snapshot()
    record = {
        "benchmark": BENCH,
        "workload": {
            "initial_traces": TRACES,
            "trace_length": TRACE_LEN,
            "budget_seconds": BUDGET,
            "iterations": out.result.iterations,
            "alpha": out.result.alpha,
        },
        "disabled": {
            "wall_seconds": round(disabled_seconds, 4),
            "span_sites_executed": enabled["spans"],
            "registry_guard_evaluations": registry_calls,
            "noop_span_cost_ns": round(costs["span"] * 1e9, 1),
            "guard_check_cost_ns": round(costs["check"] * 1e9, 1),
            "bounded_overhead_fraction": round(overhead_fraction, 6),
        },
        "enabled": {
            "wall_seconds": round(enabled["enabled_seconds"], 4),
            "overhead_vs_disabled": round(
                enabled["enabled_seconds"] / disabled_seconds - 1.0, 4
            ),
            "exported_events": events,
            "counters": len(snap["counters"]),
            "gauges": len(snap["gauges"]),
            "histograms": len(snap["histograms"]),
            "worker_snapshots": enabled["session"].worker_snapshots,
        },
        "telemetry_log": TELEMETRY_PATH.name,
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(
        f"\n{BENCH}: disabled {disabled_seconds:.3f}s "
        f"({enabled['spans']} spans + {registry_calls} guards "
        f"=> bounded overhead {100 * overhead_fraction:.3f}%), "
        f"enabled {enabled['enabled_seconds']:.3f}s, "
        f"{events} events exported"
    )
    print(f"recorded in {RESULT_PATH.name} + {TELEMETRY_PATH.name}")

    # The acceptance bound: instrumentation left disabled costs the
    # workload less than 5% of its wall time.
    assert overhead_fraction < 0.05, (
        f"disabled-telemetry bound {100 * overhead_fraction:.2f}% "
        f">= 5% of the {disabled_seconds:.3f}s workload"
    )
    # Sanity on the enabled path: the export carries real signal.
    assert events > 3
    assert snap["counters"].get("sat.solve_calls", 0) > 0


def _timed(fn) -> float:
    start = perf_counter()
    fn()
    return perf_counter() - start
