"""Micro-benchmark: incremental vs. one-shot condition checking.

Replays an identical condition-checking workload -- including
spurious-strengthening rounds, the hot path of the active loop -- through
(a) one persistent :class:`IncrementalConditionChecker` and (b) the
one-shot :func:`check_condition` path that re-bit-blasts the transition
relation per query.  The workload is recorded first so both paths answer
exactly the same (assume, conclusion) sequence.

This is the acceptance benchmark for the incremental-SAT work: the
persistent path must be at least 1.5x faster on a
``test_engines.py``-scale system (in practice it is far more), and it
must do strictly less solver-setup work (clauses fed to CDCL instances).

Run:  pytest benchmarks/test_incremental_sat.py -s
"""

from __future__ import annotations

import time

from repro.expr import TRUE, eq, land, lnot
from repro.mc.condition_check import IncrementalConditionChecker, check_condition
from repro.mc.spurious import state_equality_formula
from repro.stateflow.library import get_benchmark

BENCH = "ModelingALaunchAbortSystem"
MAX_ROUNDS = 12


def _record_workload(system):
    """(assume, conclusion) pairs as the oracle would generate them.

    Each conclusion starts from assumption TRUE and is strengthened with
    the state projection of every counterexample found, exactly like the
    spurious-exclusion loop, until it holds or the round cap is hit.
    """
    conclusions = [lnot(TRUE)]  # maximally churning: every state violates
    for var in system.state_vars:
        conclusions.append(eq(var, system.init_state[var.name]))
    recorder = IncrementalConditionChecker(system)
    queries = []
    for conclusion in conclusions:
        assume = TRUE
        for _round in range(MAX_ROUNDS):
            queries.append((assume, conclusion))
            result = recorder.check(assume, conclusion)
            if result.holds:
                break
            v_t, _v_t1 = result.counterexample
            assume = land(
                assume,
                lnot(state_equality_formula(system, v_t, state_only=True)),
            )
    return queries


def test_incremental_beats_oneshot_by_1_5x():
    system = get_benchmark(BENCH).system
    queries = _record_workload(system)
    assert len(queries) >= 20  # strengthening actually churned

    start = time.perf_counter()
    checker = IncrementalConditionChecker(system)
    incremental_verdicts = [
        checker.check(assume, conclusion).holds
        for assume, conclusion in queries
    ]
    incremental_seconds = time.perf_counter() - start
    clauses_incremental = checker._solver.clauses_fed

    start = time.perf_counter()
    oneshot_verdicts = []
    for assume, conclusion in queries:
        result = check_condition(system, assume, conclusion)
        oneshot_verdicts.append(result.holds)
    oneshot_seconds = time.perf_counter() - start

    assert incremental_verdicts == oneshot_verdicts
    speedup = oneshot_seconds / max(incremental_seconds, 1e-9)
    print(
        f"\n{BENCH}: {len(queries)} condition queries | "
        f"one-shot {oneshot_seconds:.3f}s, "
        f"incremental {incremental_seconds:.3f}s, "
        f"speedup {speedup:.1f}x | "
        f"clauses fed to CDCL (incremental path): {clauses_incremental}"
    )
    assert speedup >= 1.5, (
        f"incremental condition checking only {speedup:.2f}x faster "
        f"({incremental_seconds:.3f}s vs {oneshot_seconds:.3f}s)"
    )


def test_incremental_kinduction_shares_unrolling():
    """Fig. 3b churn: classifying many pinned states on one persistent
    engine beats re-unrolling per classification."""
    from repro.mc.explicit import shared_reachability
    from repro.mc.kinduction import KInductionEngine, k_induction

    system = get_benchmark("MealyVendingMachine").system

    states = shared_reachability(system).reachable_states()[:6]
    pins = [
        lnot(state_equality_formula(system, state, state_only=True))
        for state in states
    ]

    start = time.perf_counter()
    engine = KInductionEngine(system)
    shared_outcomes = [engine.k_induction(pin, 3).outcome for pin in pins]
    shared_seconds = time.perf_counter() - start

    start = time.perf_counter()
    fresh_outcomes = [k_induction(system, pin, 3).outcome for pin in pins]
    fresh_seconds = time.perf_counter() - start

    assert shared_outcomes == fresh_outcomes
    print(
        f"\nMealyVendingMachine k-induction x{len(pins)}: "
        f"fresh {fresh_seconds:.3f}s, shared {shared_seconds:.3f}s"
    )
    # The shared engine may not dominate on tiny systems, but it must
    # never be pathologically slower.
    assert shared_seconds <= fresh_seconds * 1.5
