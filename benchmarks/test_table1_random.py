"""Table I, right-hand columns: the random-sampling baseline (§IV-C).

The paper executes each benchmark on one million random inputs, learns a
model passively, and finds that for ~50 % of benchmarks the result still
misses behaviour (α < 1); T2M crashes on 7 of them.  This harness
regenerates those columns at a laptop scale (``REPRO_BASELINE_OBS``
observations) and asserts the headline claim: a substantial fraction of
benchmarks is *not* covered by random sampling, while the active
algorithm covers all of them (test_table1_active).

Run:  pytest benchmarks/test_table1_random.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from conftest import BASELINE_OBS, table1_rows
from repro.evaluation import run_random_baseline
from repro.stateflow.library import get_benchmark

# Benchmarks whose guarded/timed behaviour random sampling keeps missing
# at this scale (deep counters, rare input sequences).  These mirror the
# paper's α < 1 rows qualitatively (measured at the default seed).
_INCOMPLETE_EXPECTED = {
    ("FrameSyncController", "Sync"),
    ("AutomaticTransmissionUsingDurationOperator", "Gear"),
    ("ModelingACdPlayerradioUsingEnumeratedDataType", "BehaviourModel DiscPresent"),
    ("ModelingALaunchAbortSystem", "Overall"),
}


@pytest.mark.parametrize("name,fsa", table1_rows())
def test_baseline_row(benchmark, table1_report, name, fsa):
    bench = get_benchmark(name)
    spec = bench.fsa(fsa)

    def run():
        return run_random_baseline(
            bench, spec, num_observations=BASELINE_OBS
        )

    out = benchmark.pedantic(run, iterations=1, rounds=1)
    table1_report[1].append(out.row)
    assert 0.0 <= out.alpha <= 1.0
    assert out.num_states >= 1


def test_random_sampling_misses_behaviour(benchmark, table1_report):
    """The §IV-C claim: random sampling alone leaves α < 1 on a
    meaningful fraction of the benchmark suite."""

    def sweep():
        rows = []
        for name, fsa in table1_rows():
            bench = get_benchmark(name)
            out = run_random_baseline(
                bench, bench.fsa(fsa), num_observations=BASELINE_OBS
            )
            rows.append(((name, fsa), out.alpha))
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    incomplete = [key for key, alpha in rows if alpha < 1.0]
    fraction = len(incomplete) / len(rows)
    print(
        f"\nrandom sampling incomplete on {len(incomplete)}/{len(rows)} "
        f"FSAs ({fraction:.0%}): {sorted(k[0] for k in incomplete)}"
    )
    # The paper reports ~50% of benchmarks; at laptop scale we require at
    # least a meaningful fraction and that the known-hard cases show up.
    assert fraction >= 0.1
    for key in _INCOMPLETE_EXPECTED:
        alpha = dict(rows)[key]
        assert alpha < 1.0, f"{key} unexpectedly complete (α={alpha})"
