"""Ablation: sensitivity to the counterexample-validity bound ``k``.

Paper §III-C and §IV-B: with the literal Fig. 3b k-induction check, a
``k`` below the relevant reachability depth leaves some spuriousness
checks inconclusive; those counterexamples are treated as valid, so
*spurious behaviours are added to the learned model* -- extra automaton
states whose modes the implementation can never exhibit.  Crucially the
model still admits every system trace: α = 1 regardless of ``k``.

The system under learning is crafted so that spurious counterexamples
defeat shallow induction.  Mode ``m ∈ {A, B, C}`` with a counter
``c ∈ [0, 7]``:

* in A: ``go`` moves to B with c = 0;
* in B: c cycles over the evens (c' = c+2 mod 8-ish), ``reset`` returns
  to A, and **dead code** jumps to C when c = 7;
* odd counter values form an unreachable chain 1 → 3 → 5 → 7, so the
  observation (B, c=7) -- the only gateway to C -- is unreachable, but
  proving that needs induction depth ≥ 4.

With ``k = 1`` the checker cannot refute the (B,7) counterexample, the
loop splices it in, and the learned model grows a spurious C state.
With ``k = 4`` the spuriousness proof succeeds and the model is exact.

Run:  pytest benchmarks/test_ablation_k.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.core import ActiveLearner
from repro.expr import BOOL, Var, enum_sort, int_sort, ite, land
from repro.learn import T2MLearner
from repro.system import make_system
from repro.traces import random_traces

MODE = enum_sort("M", "A", "B", "C")


def chain_system():
    m = Var("m", MODE)
    c = Var("c", int_sort(0, 7))
    go = Var("go", BOOL)
    reset = Var("reset", BOOL)

    in_a, in_b, in_c = m.eq("A"), m.eq("B"), m.eq("C")
    next_m = ite(
        land(in_a, go.prime()), 1,
        ite(
            land(in_b, reset.prime()), 0,
            ite(land(in_b, c.eq(7)), 2, m),  # dead code: odd c unreachable
        ),
    )
    cycle = ite(c < 6, c + 2, 0)
    next_c = ite(
        land(in_a, go.prime()), 0,
        ite(
            land(in_b, reset.prime()), 0,
            ite(in_b, cycle, c),
        ),
    )
    return make_system(
        "chain", [m, c], [go, reset], {"m": 0, "c": 0},
        {m: next_m, c: next_c},
    )


def _run(k: int):
    system = chain_system()
    learner = T2MLearner(
        mode_vars=["m"],
        variables={v.name: v for v in system.variables},
        prefer_vars=["go", "reset"],
    )
    traces = random_traces(system, count=10, length=10, seed=2)
    active = ActiveLearner(
        system,
        learner,
        k=k,
        spurious_engine="kinduction",
        max_iterations=30,
    )
    return active.run(traces)


def _learned_modes(result) -> set[str]:
    return {result.model.state_name(q) for q in result.model.states}


def test_poor_k_adds_spurious_behaviour(benchmark):
    result = benchmark.pedantic(lambda: _run(1), iterations=1, rounds=1)
    modes = _learned_modes(result)
    print(f"\nk=1: α={result.alpha}, N={result.num_states}, modes={sorted(modes)}")
    # α = 1 is guaranteed irrespective of k (paper §III-C)...
    assert result.alpha == 1.0
    # ...but the weak induction let the unreachable C mode creep in.
    assert "C" in modes, "expected the spurious C mode with k=1"
    assert result.recorded_inconclusive > 0


def test_adequate_k_is_exact(benchmark):
    result = benchmark.pedantic(lambda: _run(4), iterations=1, rounds=1)
    modes = _learned_modes(result)
    print(f"\nk=4: α={result.alpha}, N={result.num_states}, modes={sorted(modes)}")
    assert result.alpha == 1.0
    assert modes == {"A", "B"}
    assert result.num_states == 2
    assert result.recorded_inconclusive == 0


@pytest.mark.parametrize("k", [1, 2, 4])
def test_alpha_one_for_any_k(benchmark, k):
    """Paper: "learned models are guaranteed to admit all system traces
    defined over X, irrespective of the value for k"."""
    result = benchmark.pedantic(lambda: _run(k), iterations=1, rounds=1)
    assert result.alpha == 1.0
    fresh = random_traces(chain_system(), count=20, length=20, seed=11)
    assert result.model.admits_all(fresh)
