"""Micro-benchmark: the hash-consed expression core.

Two measurements, recorded to ``BENCH_expr_core.json``:

1. **Compiled vs tree-walk evaluation** on the launch-abort
   trace-generation workload: the exact environment stream the
   simulator sees while generating the paper's initial trace set is
   replayed through the reference interpreter
   (:func:`repro.expr.evaluate`) and the compiled evaluator
   (:func:`repro.expr.compile_expr`).  The compiled path must be at
   least **1.5x** faster (acceptance criterion; in practice it is far
   more).  Single-process, so the assertion needs no CPU-count gating.

2. **Condition extraction under interning**: extracting the
   completeness conditions of a learned launch-abort model, cold
   (first walk: interning + simplify memos filling) and warm (all
   predicate work hitting identity-keyed memos).  The warm/cold ratio
   documents what hash-consing buys on the §III-A hot path; the
   pre-refactor core had no memo to warm up, so its every extraction
   paid the cold price with deep-structural hashing on top.

Run:  pytest benchmarks/test_expr_core.py -s
"""

from __future__ import annotations

import json
import random
import time

from repro.core.conditions import extract_conditions
from repro.evaluation import default_learner
from repro.expr import compile_expr, evaluate
from repro.stateflow.library import get_benchmark
from repro.traces.generate import random_traces

BENCH = "ModelingALaunchAbortSystem"
TRACE_COUNT = 50
TRACE_LENGTH = 50
EVAL_REPEATS = 3
EXTRACT_REPEATS = 25
MIN_SPEEDUP = 1.5


def _record_step_envs(system) -> list[dict[str, int]]:
    """Environment stream of the paper's initial-trace-set generation.

    Replays ``random_traces(50, 50)`` and records every environment the
    simulator hands to the next-state expressions, so both evaluators
    answer the identical workload.
    """
    rng = random.Random(0)
    envs: list[dict[str, int]] = []
    for _ in range(TRACE_COUNT):
        state = system.init_state.as_dict()
        for _ in range(TRACE_LENGTH):
            inputs = system.random_inputs(rng)
            env = dict(state)
            env.update({f"{name}'": value for name, value in inputs.items()})
            envs.append(env)
            state = {
                var.name: evaluate(expr, env)
                for var, expr in system.next_exprs.items()
            }
    return envs


def test_compiled_eval_beats_tree_walk_by_1_5x():
    system = get_benchmark(BENCH).system
    envs = _record_step_envs(system)
    exprs = [expr for _var, expr in sorted(
        system.next_exprs.items(), key=lambda kv: kv[0].name
    )]

    # Compile outside the timed region? No: include compilation cost so
    # the speedup is end-to-end honest; it amortises over one trace.
    start = time.perf_counter()
    compiled_values = []
    fns = [compile_expr(expr) for expr in exprs]
    for _ in range(EVAL_REPEATS):
        for env in envs:
            for fn in fns:
                compiled_values.append(fn(env))
    compiled_seconds = time.perf_counter() - start

    start = time.perf_counter()
    walked_values = []
    for _ in range(EVAL_REPEATS):
        for env in envs:
            for expr in exprs:
                walked_values.append(evaluate(expr, env))
    tree_walk_seconds = time.perf_counter() - start

    assert compiled_values == walked_values  # identical semantics
    speedup = tree_walk_seconds / max(compiled_seconds, 1e-9)

    # Condition extraction on a learned model: cold vs memo-warm.
    benchmark = get_benchmark(BENCH)
    traces = random_traces(system, count=10, length=20, seed=3)
    model = default_learner(benchmark, benchmark.fsas[0]).learn(traces)
    start = time.perf_counter()
    conditions = extract_conditions(model)
    cold_extract_seconds = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(EXTRACT_REPEATS):
        warm = extract_conditions(model)
    warm_extract_seconds = (time.perf_counter() - start) / EXTRACT_REPEATS
    assert len(warm) == len(conditions)

    record = {
        "benchmark": BENCH,
        "trace_count": TRACE_COUNT,
        "trace_length": TRACE_LENGTH,
        "eval_repeats": EVAL_REPEATS,
        "environments": len(envs),
        "evaluations": len(compiled_values),
        "tree_walk_seconds": round(tree_walk_seconds, 4),
        "compiled_seconds": round(compiled_seconds, 4),
        "compiled_speedup": round(speedup, 3),
        "conditions_extracted": len(conditions),
        "cold_extract_seconds": round(cold_extract_seconds, 5),
        "warm_extract_seconds": round(warm_extract_seconds, 5),
        "warm_extract_speedup": round(
            cold_extract_seconds / max(warm_extract_seconds, 1e-9), 3
        ),
    }
    with open("BENCH_expr_core.json", "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"\ncompiled eval speedup: {speedup:.2f}x "
          f"(tree-walk {tree_walk_seconds:.3f}s, compiled {compiled_seconds:.3f}s); "
          f"condition extraction cold {cold_extract_seconds*1e3:.2f}ms, "
          f"warm {warm_extract_seconds*1e3:.2f}ms")
    assert speedup >= MIN_SPEEDUP, (
        f"compiled evaluation only {speedup:.2f}x faster "
        f"(needed {MIN_SPEEDUP}x)"
    )
