"""Fig. 2: the learned Home Climate-Control Cooler abstraction.

The paper's only rendered model.  This benchmark re-learns it from the
HomeClimateControl benchmark and asserts the exact published structure:

* two states (Off-mode and On-mode) with one of them initial;
* a self-loop on each state guarded only by the mode predicate;
* the Off→On edge carries ``(temp > T_thresh) ∧ (s' = On)``;
* the On→Off edge carries ``¬(temp > T_thresh) ∧ (s' = Off)``.

Run:  pytest benchmarks/test_fig2_climate.py --benchmark-only -s
"""

from __future__ import annotations

from conftest import BUDGET, TRACE_LEN, TRACES
from repro.automata import guard_label, to_text
from repro.evaluation import run_active
from repro.stateflow.library import get_benchmark

T_THRESH = 30


def _learn():
    bench = get_benchmark("HomeClimateControlUsingTheTruthtableBlock")
    spec = bench.fsa("Cooler")
    return run_active(
        bench,
        spec,
        initial_traces=TRACES,
        trace_length=TRACE_LEN,
        budget_seconds=BUDGET,
    )


def test_fig2_structure(benchmark):
    out = benchmark.pedantic(_learn, iterations=1, rounds=1)
    model = out.result.model
    bench = get_benchmark("HomeClimateControlUsingTheTruthtableBlock")
    state_names = [v.name for v in bench.system.state_vars]

    print("\n" + to_text(model, title="Fig. 2 reproduction", primed_names=state_names))

    assert out.row.alpha == 1.0 and out.d == 1.0
    assert model.num_states == 2
    assert model.num_transitions == 4
    assert len(model.initial_states) == 1

    off = model.state_by_name("Off")
    on = model.state_by_name("On")
    assert off is not None and on is not None

    def edges(src, dst):
        return [t for t in model.outgoing(src) if t.dst == dst]

    # Self-loops: plain mode predicates (paper: (s' = Off) / (s' = On)).
    (off_loop,) = edges(off, off)
    (on_loop,) = edges(on, on)
    assert guard_label(off_loop.guard, ["Cooler"]) == "Cooler' = Off"
    assert guard_label(on_loop.guard, ["Cooler"]) == "Cooler' = On"

    # Switching edges carry the synthesised temperature threshold.
    (heat,) = edges(off, on)
    (cool,) = edges(on, off)
    heat_label = guard_label(heat.guard, ["Cooler"])
    cool_label = guard_label(cool.guard, ["Cooler"])
    assert heat_label == f"temp > {T_THRESH} ∧ Cooler' = On"
    assert cool_label == f"¬(temp > {T_THRESH}) ∧ Cooler' = Off"
