"""Macro-benchmark: the IC3 proof engine across its three roles.

Records to ``BENCH_ic3.json`` at the repository root:

1. **Classification timings per engine** -- one shared batch of
   counterexample states (shallow reachable, deep reachable,
   unreachable) classified by every registered engine on the
   launch-abort benchmark, with verdict-agreement asserted between the
   exact engines (``ic3`` ≡ ``explicit``/``bdd`` with
   ``respect_k=False``).  The k-induction column shows what the literal
   Fig. 3b mechanism costs at the benchmark's ``k = 22``; the recorded
   ``kinduction_inconclusive`` count is the weak-induction failures at
   that ``k`` (zero here because 22 *is* the magic bound -- the
   ``ablation_k`` benchmark shows how verdicts decay below it, which is
   exactly the sensitivity the proof engine removes).
2. **Oracle strengthening** -- a churny condition workload through the
   default serial oracle with blind single-state exclusions
   (``explicit``) vs. IC3's unsat-core-generalized region exclusions:
   spurious rounds and wall-clock for both.
3. **Sharded ic3** -- the same workload through a ``jobs=4``
   :class:`ParallelCompletenessOracle` rebuilt per worker, asserted
   bit-for-bit against the canonical serial report.

Always asserted: verdict agreement, report identity, and that region
exclusions never need more strengthening rounds than blind ones.  The
``jobs=4`` wall-clock speedup assertion arms only on hosts with >= 4
usable CPUs (consistent with ``benchmarks/test_parallel_oracle.py``);
on this container the numbers are still measured and recorded.

Run:  pytest benchmarks/test_ic3.py -s
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import os
import time
from pathlib import Path

import pytest

from repro.core.conditions import Condition, ConditionKind
from repro.core.parallel import ParallelCompletenessOracle, make_oracle
from repro.expr import TRUE, lnot, sort_values
from repro.evaluation import run_active
from repro.mc import build_spurious_checker, shared_reachability
from repro.mc.verdicts import SpuriousVerdict
from repro.stateflow.library import get_benchmark
from repro.system.valuation import Valuation

BENCH = "ModelingALaunchAbortSystem"
FSA = "Overall"
JOBS = 4
MAX_STRENGTHENINGS = 6
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_ic3.json"


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _classification_batch(system, reach, deep_depth: int = 8, count: int = 18):
    """Reachable (shallow + deep) and unreachable probe states."""
    table = sorted(reach._table.items(), key=lambda kv: kv[1][0])
    names = system.state_names
    states = [Valuation(dict(zip(names, key, strict=True))) for key, _ in table[:count // 3]]
    depth_cap = min(reach.diameter, deep_depth)
    states.extend(
        Valuation(dict(zip(names, key, strict=True)))
        for key, (depth, _p, _i) in table
        if depth == depth_cap
    )
    reachable_keys = {key for key, _ in table}
    spaces = [sort_values(var.sort) for var in system.state_vars]
    unreachable = []
    for combo in itertools.product(*spaces):
        if combo not in reachable_keys:
            unreachable.append(Valuation(dict(zip(names, combo, strict=True))))
            if len(unreachable) >= count // 3:
                break
    return (states + unreachable)[:count]


def _condition_workload(system):
    conditions = []
    for var in system.state_vars:
        for value in sort_values(var.sort):
            conditions.append(
                Condition(
                    kind=ConditionKind.STEP,
                    state=0,
                    state_name="q",
                    assumption=var.eq(value),
                    conclusion=var.eq(value),
                )
            )
            conditions.append(
                Condition(
                    kind=ConditionKind.STEP,
                    state=0,
                    state_name="q",
                    assumption=TRUE,
                    conclusion=lnot(var.eq(value)),
                )
            )
    return conditions


def test_ic3_engine_benchmark():
    benchmark = get_benchmark(BENCH)
    system = benchmark.system
    reach = shared_reachability(system)
    reach.explore()
    batch = _classification_batch(system, reach)
    assert len(batch) >= 12

    # -- 1. classification timings per engine ---------------------------
    engines = {}
    verdicts = {}
    for engine_name in ("explicit", "bdd", "ic3", "kinduction"):
        checker = build_spurious_checker(
            system, engine_name, respect_k=False
        )
        start = time.perf_counter()
        verdicts[engine_name] = [
            checker.classify(state, benchmark.k) for state in batch
        ]
        engines[engine_name] = round(time.perf_counter() - start, 4)
    assert verdicts["ic3"] == verdicts["explicit"] == verdicts["bdd"]
    assert SpuriousVerdict.INCONCLUSIVE not in verdicts["ic3"]
    kinduction_inconclusive = sum(
        1
        for v in verdicts["kinduction"]
        if v is SpuriousVerdict.INCONCLUSIVE
    )
    # Warm IC3: the converged invariant answers repeats without solving.
    start = time.perf_counter()
    warm = [
        build_spurious_checker(system, "ic3").classify(state, benchmark.k)
        for state in batch
    ]
    engines["ic3_warm"] = round(time.perf_counter() - start, 4)
    assert warm == verdicts["ic3"]

    # -- 2. blind vs. region strengthening ------------------------------
    conditions = _condition_workload(system)
    blind = make_oracle(
        system,
        "explicit",
        benchmark.k,
        jobs=1,
        respect_k=False,
        max_strengthenings=MAX_STRENGTHENINGS,
    )
    start = time.perf_counter()
    blind_report = blind.check_all(conditions)
    blind_seconds = time.perf_counter() - start
    ic3_oracle = make_oracle(
        system, "ic3", benchmark.k, jobs=1,
        max_strengthenings=MAX_STRENGTHENINGS,
    )
    start = time.perf_counter()
    ic3_report = ic3_oracle.check_all(conditions)
    ic3_seconds = time.perf_counter() - start
    assert [o.holds for o in ic3_report.outcomes] == [
        o.holds for o in blind_report.outcomes
    ]
    assert ic3_report.total_spurious <= blind_report.total_spurious

    # -- 3. the sharded ic3 oracle --------------------------------------
    start_method = (
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else "spawn"
    )
    serial_canonical = make_oracle(
        system, "ic3", benchmark.k, jobs=1, canonical=True,
        max_strengthenings=MAX_STRENGTHENINGS,
    )
    serial_canonical.check_all(conditions[:4])  # warm the engine
    start = time.perf_counter()
    canonical_report = serial_canonical.check_all(conditions)
    canonical_seconds = time.perf_counter() - start
    with ParallelCompletenessOracle(
        system, "ic3", benchmark.k, jobs=JOBS,
        max_strengthenings=MAX_STRENGTHENINGS, start_method=start_method,
    ) as parallel:
        parallel.check_all(conditions[:4])  # warm the pool
        start = time.perf_counter()
        parallel_report = parallel.check_all(conditions)
        parallel_seconds = time.perf_counter() - start
        assert parallel.worker_failures == 0
    assert parallel_report.outcomes == canonical_report.outcomes

    # -- 4. end-to-end loop ---------------------------------------------
    start = time.perf_counter()
    out = run_active(
        benchmark,
        benchmark.fsa(FSA),
        initial_traces=15,
        trace_length=15,
        budget_seconds=90,
        spurious_engine="ic3",
        guide_with_reachable=False,
    )
    loop_seconds = time.perf_counter() - start
    assert out.row.alpha == 1.0
    assert out.row.num_states == 4
    assert out.result.proved_invariant is not None

    cpus = _usable_cpus()
    speedup = canonical_seconds / max(parallel_seconds, 1e-9)
    record = {
        "benchmark": BENCH,
        "k": benchmark.k,
        "classification_states": len(batch),
        "classify_seconds": engines,
        "kinduction_inconclusive": kinduction_inconclusive,
        "conditions": len(_condition_workload(system)),
        "strengthening": {
            "blind_spurious_rounds": blind_report.total_spurious,
            "ic3_spurious_rounds": ic3_report.total_spurious,
            "blind_seconds": round(blind_seconds, 4),
            "ic3_seconds": round(ic3_seconds, 4),
        },
        "parallel": {
            "jobs": JOBS,
            "usable_cpus": cpus,
            "start_method": start_method,
            "serial_canonical_seconds": round(canonical_seconds, 4),
            "parallel_seconds": round(parallel_seconds, 4),
            "speedup": round(speedup, 3),
            "reports_identical": True,
        },
        "end_to_end": {
            "alpha": out.row.alpha,
            "num_states": out.row.num_states,
            "iterations": out.row.iterations,
            "seconds": round(loop_seconds, 4),
            "invariant_proved": out.result.proved_invariant is not None,
        },
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(
        f"\n{BENCH}: classify {len(batch)} states | "
        + ", ".join(f"{k} {v:.3f}s" for k, v in engines.items())
        + f" | strengthening rounds blind {blind_report.total_spurious} "
        f"vs ic3 {ic3_report.total_spurious} | jobs={JOBS} speedup "
        f"{speedup:.2f}x on {cpus} CPU(s) | recorded in {RESULT_PATH.name}"
    )
    if cpus < JOBS:
        pytest.skip(
            f"only {cpus} usable CPU(s): a {JOBS}-way wall-clock speedup "
            f"is not expressible here (measured {speedup:.2f}x, recorded)"
        )
    assert speedup >= 2.0, (
        f"sharded ic3 oracle only {speedup:.2f}x faster at jobs={JOBS}"
    )
