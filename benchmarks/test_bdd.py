"""Macro-benchmark: BDD image computation across engine configurations.

Records to ``BENCH_bdd.json`` at the repository root, for the five
largest library systems (by total BDD bits): full fixpoint exploration
under three configurations of :class:`SharedBddContext` --

* ``monolithic``   -- one compiled ``R``, single relational product;
* ``partitioned``  -- conjunctive partition with the IWLS95-style
  early-quantification schedule (the default configuration);
* ``partitioned_sifting`` -- partitioned plus Rudell sifting armed at a
  low node threshold, exercising the reorder-under-load path.

Per configuration the record keeps wall-clock exploration time, peak
node allocation, live node count after the last reorder, image-step
counts and the partition shape.  Always asserted: all three
configurations agree on diameter and reachable-state counts, and the
partitioned pipeline allocates fewer peak nodes than the monolithic one
in aggregate and on the largest system (a deterministic,
machine-independent improvement -- the small systems trade a few nodes
of cluster bookkeeping for nothing, the large ones save ~40%).  The
aggregate wall-clock comparison arms only when the
monolithic baseline is slow enough to measure (consistent with the
CPU-count gate in ``benchmarks/test_parallel_oracle.py``); on fast
hosts the numbers are still measured and recorded.

The asserted monolithic/partitioned wall-clock entries are measured in
a **fresh subprocess** (min over ``TIMING_ROUNDS`` interleaved rounds):
inside a long-lived pytest interpreter the two configurations' relative
speed is distorted by accumulated heap state -- reproducibly, by tens
of percent, in a direction that flips with unrelated code-size changes
-- while a bare interpreter measures the same ratio stably.  Structural
metrics (peak nodes, diameter, state counts, partition shape) and the
sifting configuration stay in-process; they are deterministic or not
part of the asserted ratio.

Run:  pytest benchmarks/test_bdd.py -s
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.mc.symbolic import SharedBddContext, SymbolicReachability
from repro.stateflow.library import get_benchmark

BENCHES = [
    "ModelingASecuritySystem",
    "ModelingARedundantSensorPairUsingAtomicSubchart",
    "ModelingACdPlayerradioUsingEnumeratedDataType2",
    "ModelingAnIntersectionOfTwo1wayStreetsUsingStateflow",
    "ModelingALaunchAbortSystem",
]
SIFT_THRESHOLD = 6000
# Wall-clock gate: below this aggregate baseline, timing noise dominates
# any real difference between single-threaded configurations.
MIN_MEASURABLE_SECONDS = 0.2
# Timing rounds per asserted configuration; entries keep the minimum.
TIMING_ROUNDS = 5
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_bdd.json"

CONFIGS = {
    "monolithic": {"partitioned": False, "reorder_threshold": None},
    "partitioned": {"partitioned": True, "reorder_threshold": None},
    "partitioned_sifting": {
        "partitioned": True,
        "reorder_threshold": SIFT_THRESHOLD,
    },
}


def _explore(system, **kwargs):
    ctx = SharedBddContext(system, **kwargs)
    engine = SymbolicReachability(system, context=ctx)
    start = time.perf_counter()
    engine.explore()
    states = engine.num_reachable_states()
    seconds = time.perf_counter() - start
    return ctx, engine, states, seconds


def _isolated_timings() -> dict[str, dict[str, float]]:
    """Monolithic/partitioned wall-clock per system, from a bare
    interpreter: ``{system: {config: min_seconds_over_rounds}}``."""
    script = textwrap.dedent(
        f"""
        import json, sys, time
        from repro.mc.symbolic import SharedBddContext, SymbolicReachability
        from repro.stateflow.library import get_benchmark

        best = {{}}
        for name in {BENCHES!r}:
            system = get_benchmark(name).system
            entry = best.setdefault(name, {{}})
            for _ in range({TIMING_ROUNDS}):
                for key, part in (("monolithic", False), ("partitioned", True)):
                    ctx = SharedBddContext(
                        system, partitioned=part, reorder_threshold=None
                    )
                    engine = SymbolicReachability(system, context=ctx)
                    start = time.perf_counter()
                    engine.explore()
                    engine.num_reachable_states()
                    seconds = time.perf_counter() - start
                    entry[key] = min(seconds, entry.get(key, seconds))
        print(json.dumps(best))
        """
    )
    src = Path(__file__).resolve().parents[1] / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        check=True,
        env=env,
    )
    return json.loads(out.stdout)


def test_bdd_image_benchmark():
    systems = {}
    totals = {name: 0.0 for name in CONFIGS}
    timings = _isolated_timings()
    for bench_name in BENCHES:
        system = get_benchmark(bench_name).system
        row: dict = {"total_bits": None}
        reference = None
        for config_name, kwargs in CONFIGS.items():
            ctx, engine, states, seconds = _explore(system, **kwargs)
            # The asserted configurations report the isolated timing;
            # the in-process number is unusable (see module docstring).
            seconds = timings[bench_name].get(config_name, seconds)
            row["total_bits"] = ctx.compiler.total_bits
            entry = {
                "seconds": round(seconds, 4),
                "peak_nodes": ctx.manager.peak_nodes,
                "image_computations": ctx.image_computations,
                "diameter": engine.diameter,
                "states": states,
            }
            if kwargs["partitioned"]:
                partition = ctx.partition()
                entry["clusters"] = partition.num_clusters
                entry["cluster_sizes"] = list(partition.cluster_sizes)
            if kwargs["reorder_threshold"] is not None:
                entry["reorders"] = ctx.manager.reorder_count
                entry["live_after_reorder"] = ctx.manager.last_reorder_live
                assert ctx.manager.reorder_count >= 1, (
                    f"{bench_name}: sifting never fired at "
                    f"threshold {SIFT_THRESHOLD}"
                )
            row[config_name] = entry
            totals[config_name] += seconds
            if reference is None:
                reference = (engine.diameter, states)
            else:
                assert (engine.diameter, states) == reference, (
                    bench_name,
                    config_name,
                )
        systems[bench_name] = row

    # Deterministic improvement: never materialising the monolithic
    # conjunction must pay off in aggregate and on the biggest system.
    peak_totals = {
        name: sum(row[name]["peak_nodes"] for row in systems.values())
        for name in ("monolithic", "partitioned")
    }
    assert peak_totals["partitioned"] < peak_totals["monolithic"]
    largest = max(systems, key=lambda n: systems[n]["total_bits"])
    assert (
        systems[largest]["partitioned"]["peak_nodes"]
        < systems[largest]["monolithic"]["peak_nodes"]
    ), largest

    speedup = totals["monolithic"] / max(totals["partitioned"], 1e-9)
    record = {
        "systems": systems,
        "sift_threshold": SIFT_THRESHOLD,
        "timing_rounds": TIMING_ROUNDS,
        "totals_seconds": {k: round(v, 4) for k, v in totals.items()},
        "partitioned_speedup": round(speedup, 3),
        "peak_node_reduction": {
            name: round(
                1
                - row["partitioned"]["peak_nodes"]
                / row["monolithic"]["peak_nodes"],
                3,
            )
            for name, row in systems.items()
        },
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    reductions = ", ".join(
        f"{name.removeprefix('Modeling')} {pct:.0%}"
        for name, pct in record["peak_node_reduction"].items()
    )
    print(
        f"\nBDD image: {len(BENCHES)} systems | peak-node reduction "
        f"{reductions} | partitioned speedup {speedup:.2f}x | "
        f"recorded in {RESULT_PATH.name}"
    )
    if totals["monolithic"] < MIN_MEASURABLE_SECONDS:
        pytest.skip(
            f"monolithic baseline {totals['monolithic']:.3f}s is below the "
            f"{MIN_MEASURABLE_SECONDS}s measurement floor; wall-clock "
            f"comparison not expressible here (measured "
            f"{speedup:.2f}x, recorded)"
        )
    assert speedup >= 1.0, (
        f"partitioned image only {speedup:.2f}x vs monolithic"
    )
