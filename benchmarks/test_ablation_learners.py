"""Ablation: the pluggable model-learning component (paper §II-B).

The evaluation procedure is independent of the learner: anything that
returns an NFA admitting the trace set can drive the loop.  This
benchmark runs the same active loop with the three shipped learners and
compares outcome quality:

* the T2M-style learner converges to compact, d = 1 models;
* SAT-minimal DFA identification degenerates to a permissive single
  state on positive-only data -- it converges trivially, demonstrating
  that the α = 1 guarantee is about *admission*, not informativeness;
* k-tails converges on simple systems but can *plateau* below α = 1 on
  richer ones: the completeness conditions quantify over incoming
  predicates, so a learner whose states are not determined by their
  incoming predicate may forever contain some state whose outgoing set
  under-approximates the behaviours of all matching observations.  The
  loop detects the lack of progress and stops; the §II-B contract
  (admit all training traces) still holds.  This is a genuine boundary
  of the algorithm worth knowing about when choosing a learner.

Run:  pytest benchmarks/test_ablation_learners.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.automata import transition_match_score
from repro.core import ActiveLearner
from repro.evaluation import fsa_witnesses
from repro.learn import KTailsLearner, SatDfaLearner, T2MLearner
from repro.stateflow.library import get_benchmark
from repro.traces import random_traces

BENCH = "MealyVendingMachine"
FSA = "Vend"


def _learner(kind: str, system):
    variables = {v.name: v for v in system.variables}
    mode_vars = ["Vend"]
    if kind == "t2m":
        return T2MLearner(
            mode_vars=mode_vars, variables=variables,
            prefer_vars=list(system.input_names),
        )
    if kind == "ktails":
        return KTailsLearner(k=2, mode_vars=mode_vars, variables=variables)
    return SatDfaLearner(mode_vars=mode_vars, variables=variables)


def _run(kind: str):
    bench = get_benchmark(BENCH)
    system = bench.system
    active = ActiveLearner(
        system,
        _learner(kind, system),
        k=bench.k,
        guide_with_reachable=True,
    )
    traces = random_traces(system, count=15, length=15, seed=4)
    result = active.run(traces)
    d = transition_match_score(result.model, fsa_witnesses(bench, bench.fsa(FSA)))
    return result, d


@pytest.mark.parametrize("kind", ["t2m", "satdfa"])
def test_learner_converges(benchmark, kind):
    result, d = benchmark.pedantic(
        lambda: _run(kind), iterations=1, rounds=1
    )
    print(
        f"\n{kind}: α={result.alpha} N={result.num_states} "
        f"i={result.iterations} d={d:.2f}"
    )
    assert result.converged
    assert result.alpha == 1.0
    # Admission of fresh behaviour holds once α = 1 (Theorem 1).
    fresh = random_traces(
        get_benchmark(BENCH).system, count=20, length=20, seed=77
    )
    assert result.model.admits_all(fresh)


def test_ktails_plateau_is_safe(benchmark):
    """k-tails may stop short of α = 1 here; the result must still be a
    sound over-approximation of the traces it has seen, and the loop
    must have detected the no-progress condition rather than looping."""
    result, d = benchmark.pedantic(
        lambda: _run("ktails"), iterations=1, rounds=1
    )
    print(
        f"\nktails: α={result.alpha} N={result.num_states} "
        f"i={result.iterations} d={d:.2f} converged={result.converged}"
    )
    assert result.iterations <= 10  # stopped, not spinning
    if result.converged:
        fresh = random_traces(
            get_benchmark(BENCH).system, count=20, length=20, seed=77
        )
        assert result.model.admits_all(fresh)


def test_t2m_is_most_informative(benchmark):
    def compare():
        return {kind: _run(kind) for kind in ("t2m", "ktails", "satdfa")}

    outcomes = benchmark.pedantic(compare, iterations=1, rounds=1)
    t2m_result, t2m_d = outcomes["t2m"]
    _sat_result, _ = outcomes["satdfa"]
    assert t2m_d == 1.0
    assert t2m_result.num_states == 4  # paper N for the vending machine
    assert _sat_result.num_states == 1  # degenerate but sound
