"""Ablation: guiding the checker with domain knowledge (paper §IV-B.1).

The paper attributes its timeout rows to the model checker "going
through a large number of invalid counterexamples before arriving at a
valid counterexample", and suggests "strengthening the assumption r with
domain knowledge to guide the model checker towards valid
counterexamples" as the mitigation.

This benchmark quantifies both sides on the CD player (the benchmark
family where the effect is strongest):

* **unguided** -- the literal loop: every condition check ranges over the
  full typed state space; unreachable counterexamples are excluded one
  strengthening at a time (bounded here so the benchmark terminates);
* **guided** -- the reachable-state formula is assumed up front; spurious
  counterexamples disappear entirely.

Run:  pytest benchmarks/test_ablation_guidance.py --benchmark-only -s
"""

from __future__ import annotations

from repro.core import ActiveLearner
from repro.evaluation import default_learner
from repro.stateflow.library import get_benchmark
from repro.traces import random_traces

BENCH = "ModelingACdPlayerradioUsingEnumeratedDataType"
FSA = "BehaviourModel DiscPresent"


def _run(guided: bool, budget: float):
    bench = get_benchmark(BENCH)
    spec = bench.fsa(FSA)
    active = ActiveLearner(
        bench.system,
        default_learner(bench, spec),
        k=bench.k,
        guide_with_reachable=guided,
        budget_seconds=budget,
        max_strengthenings=40,
    )
    traces = random_traces(bench.system, count=20, length=20, seed=0)
    return active.run(traces)


def _total_spurious(result) -> int:
    return sum(record.spurious_excluded for record in result.records)


def test_guided_checks_eliminate_spurious_churn(benchmark):
    result = benchmark.pedantic(
        lambda: _run(guided=True, budget=90.0), iterations=1, rounds=1
    )
    print(
        f"\nguided:   α={result.alpha} i={result.iterations} "
        f"T={result.total_seconds:.1f}s spurious={_total_spurious(result)}"
    )
    assert result.converged
    assert _total_spurious(result) == 0


def test_unguided_checks_churn_through_spurious_ces(benchmark):
    result = benchmark.pedantic(
        lambda: _run(guided=False, budget=30.0), iterations=1, rounds=1
    )
    spurious = _total_spurious(result)
    print(
        f"\nunguided: α={result.alpha} i={result.iterations} "
        f"T={result.total_seconds:.1f}s spurious={spurious} "
        f"inconclusive={result.recorded_inconclusive} "
        f"timed_out={result.timed_out}"
    )
    # The churn is the point: many unreachable counterexamples excluded
    # one at a time (the paper's timeout mechanism).
    assert spurious > 20
