"""Micro/macro-benchmark: the rewrite engine's discrimination net.

Records to ``BENCH_simplify.json`` at the repository root:

1. **Net vs sequential matching** at a ≥100-rule table (the extended
   tier plus a generated per-constant comparison family): every unique
   subterm of the launch-abort condition-extraction workload is pushed
   through :meth:`RewriteEngine.find_match` in both modes.  The modes
   return the identical first match by construction (asserted node by
   node); the net must be at least **3x** faster once the measurement
   clears the 0.2s floor -- repeats are calibrated upward until it
   does, so the assertion always arms.

2. **Downstream deltas** of the new rule tiers against the legacy
   simplifier on the five largest library systems (the
   ``BENCH_bdd.json`` set).  The workload is the completeness-check
   shape the encoder sees per CEGIS iteration *before* any
   simplification: raw outgoing-guard disjunctions, their negations and
   ``assumption ∧ ¬disjunction`` conjunctions from a learned model.
   Per system and per backend (``legacy`` / ``engine`` / ``deep``) the
   record keeps Tseitin clause counts through
   ``Encoder(presimplify=...)``, peak BDD node allocation over a full
   reachability fixpoint through ``SharedBddContext(presimplify=...)``,
   and generated compiled-evaluator source size.  Soundness is
   cross-checked (all backends agree on diameter and reachable-state
   counts); the new rules must reduce clauses or peak nodes against
   legacy on at least **3/5** systems.

   A measured trade-off worth knowing: the context-threaded tiers prune
   nested contradictions the legacy pass cannot see (fewer clauses on
   every system here), but context-*specialised* rewriting of a shared
   subterm can duplicate DAG nodes, so the deep tier is wired to the
   BDD side (canonical node store dedups semantically) while the
   default tier is what the clause criterion runs on.

Run:  pytest benchmarks/test_simplify.py -s
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.conditions import extract_conditions
from repro.evaluation import default_learner
from repro.expr import (
    EXTENDED_RULES,
    RewriteEngine,
    deep_simplify,
    land,
    legacy_simplify,
    lnot,
    lor,
    make_const_comparison_rules,
    simplify,
    walk_unique,
)
from repro.expr.compiled import generated_source
from repro.mc.symbolic import SharedBddContext, SymbolicReachability
from repro.smt.encoder import Encoder
from repro.stateflow.library import get_benchmark
from repro.traces.generate import random_traces

WORKLOAD_BENCH = "ModelingALaunchAbortSystem"
BENCHES = [
    "ModelingASecuritySystem",
    "ModelingARedundantSensorPairUsingAtomicSubchart",
    "ModelingACdPlayerradioUsingEnumeratedDataType2",
    "ModelingAnIntersectionOfTwo1wayStreetsUsingStateflow",
    "ModelingALaunchAbortSystem",
]
CONST_FAMILY = range(25)  # 4 rules per value -> 100 generated rules
MIN_RULES = 100
MIN_SPEEDUP = 3.0
MIN_IMPROVED_SYSTEMS = 3
MIN_MEASURABLE_SECONDS = 0.2
TIMING_ROUNDS = 3
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_simplify.json"


def _workload_nodes():
    """Unique subterms of the launch-abort condition-extraction
    workload: the exprs the simplifier actually sees on the §III-A
    hot path, plus the system's own relations."""
    benchmark = get_benchmark(WORKLOAD_BENCH)
    system = benchmark.system
    traces = random_traces(system, count=10, length=20, seed=3)
    model = default_learner(benchmark, benchmark.fsas[0]).learn(traces)
    roots = [system.trans] + [
        expr for _var, expr in sorted(
            system.next_exprs.items(), key=lambda kv: kv[0].name
        )
    ]
    for condition in extract_conditions(model):
        if condition.assumption is not None:
            roots.append(condition.assumption)
        roots.append(condition.conclusion)
    seen: set[int] = set()
    nodes = []
    for root in roots:
        for node in walk_unique(root):
            if node.eid not in seen:
                seen.add(node.eid)
                nodes.append(node)
    return nodes


def _time_matching(engine, nodes, repeats, *, sequential):
    best = None
    for _ in range(TIMING_ROUNDS):
        start = time.perf_counter()
        for _ in range(repeats):
            for node in nodes:
                engine.find_match(node, sequential=sequential)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def test_net_beats_sequential_matching_at_100_rules():
    rules = list(EXTENDED_RULES) + make_const_comparison_rules(CONST_FAMILY)
    assert len(rules) >= MIN_RULES
    engine = RewriteEngine(rules, name="bench", context=None)
    nodes = _workload_nodes()

    # Warm both paths (fills the flatten memo) and pin the contract:
    # identical first match, node by node.
    for node in nodes:
        fast = engine.find_match(node)
        slow = engine.find_match(node, sequential=True)
        if fast is None:
            assert slow is None
        else:
            assert slow is not None and fast[0] is slow[0]
            assert fast[1] is slow[1]

    # Calibrate repeats until the *fast* side clears the floor; the
    # slow side is then comfortably above it too.
    repeats = 1
    while True:
        net_seconds = _time_matching(engine, nodes, repeats, sequential=False)
        if net_seconds >= MIN_MEASURABLE_SECONDS:
            break
        repeats *= 2
    sequential_seconds = _time_matching(
        engine, nodes, repeats, sequential=True
    )
    speedup = sequential_seconds / max(net_seconds, 1e-9)

    record = {
        "workload": WORKLOAD_BENCH,
        "rule_count": len(rules),
        "workload_nodes": len(nodes),
        "match_repeats": repeats,
        "net_seconds": round(net_seconds, 4),
        "sequential_seconds": round(sequential_seconds, 4),
        "net_speedup": round(speedup, 3),
    }
    existing = (
        json.loads(RESULT_PATH.read_text()) if RESULT_PATH.exists() else {}
    )
    existing.update(record)
    RESULT_PATH.write_text(json.dumps(existing, indent=2) + "\n")
    print(
        f"\nnet matching: {len(rules)} rules over {len(nodes)} nodes x "
        f"{repeats} | net {net_seconds:.3f}s, sequential "
        f"{sequential_seconds:.3f}s | {speedup:.1f}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"discrimination net only {speedup:.2f}x faster than sequential "
        f"matching (needed {MIN_SPEEDUP}x at {len(rules)} rules)"
    )


BACKENDS = {
    "legacy": legacy_simplify,
    "engine": simplify,   # default backend: the engine tier
    "deep": deep_simplify,
}


def _raw_condition_literals(benchmark):
    """The completeness-check shapes *before* any simplification pass:
    outgoing disjunctions, their negations, and assumption-conjoined
    negations, from a model learned on the paper's trace regime."""
    system = benchmark.system
    traces = random_traces(system, count=10, length=20, seed=3)
    model = default_learner(benchmark, benchmark.fsas[0]).learn(traces)
    literals = []
    for state in model.states:
        guards = [t.guard for t in model.outgoing(state)]
        if not guards:
            continue
        disjunction = lor(*guards)
        literals.append(disjunction)
        literals.append(lnot(disjunction))
        for transition in model.incoming(state):
            literals.append(land(transition.guard, lnot(disjunction)))
    return system, literals


def _clause_count(literals, presimplify):
    encoder = Encoder(presimplify=presimplify)
    for literal in literals:
        encoder.encode_literal(literal)
    return encoder.clause_cursor()


def _peak_nodes(system, presimplify):
    ctx = SharedBddContext(
        system, reorder_threshold=None, presimplify=presimplify
    )
    engine = SymbolicReachability(system, context=ctx)
    engine.explore()
    return ctx.manager.peak_nodes, engine.diameter, (
        engine.num_reachable_states()
    )


def test_new_rules_improve_downstream_encodings():
    systems = {}
    improved = []
    for name in BENCHES:
        benchmark = get_benchmark(name)
        system, literals = _raw_condition_literals(benchmark)

        clauses = {
            key: _clause_count(literals, fn) for key, fn in BACKENDS.items()
        }
        peaks, shapes = {}, {}
        for key, fn in BACKENDS.items():
            peaks[key], *shapes[key] = _peak_nodes(system, fn)
        # Presimplification must not change the state space.
        assert shapes["engine"] == shapes["legacy"], name
        assert shapes["deep"] == shapes["legacy"], name
        source = {
            key: sum(len(generated_source(fn(l))) for l in literals)
            for key, fn in BACKENDS.items()
        }

        systems[name] = {
            "tseitin_clauses": clauses,
            "bdd_peak_nodes": peaks,
            "compiled_source_chars": source,
            "diameter": shapes["legacy"][0],
            "reachable_states": shapes["legacy"][1],
        }
        if (
            clauses["engine"] < clauses["legacy"]
            or min(peaks["engine"], peaks["deep"]) < peaks["legacy"]
        ):
            improved.append(name)

    record = {
        "downstream_systems": systems,
        "downstream_improved": sorted(improved),
    }
    existing = (
        json.loads(RESULT_PATH.read_text()) if RESULT_PATH.exists() else {}
    )
    existing.update(record)
    RESULT_PATH.write_text(json.dumps(existing, indent=2) + "\n")
    deltas = ", ".join(
        f"{name.removeprefix('Modeling')} "
        f"clauses {row['tseitin_clauses']['legacy']}"
        f"->{row['tseitin_clauses']['engine']} "
        f"peak {row['bdd_peak_nodes']['legacy']}"
        f"->{min(row['bdd_peak_nodes']['engine'], row['bdd_peak_nodes']['deep'])}"
        for name, row in systems.items()
    )
    print(f"\nnew-rule downstream vs legacy: {deltas}")
    assert len(improved) >= MIN_IMPROVED_SYSTEMS, (
        f"new rules reduced clauses or BDD peak vs legacy on only "
        f"{len(improved)}/{len(BENCHES)} systems: {improved}"
    )
