"""Table I, left-hand columns: the active learning algorithm.

One benchmark per Table I row (benchmark × FSA).  Each run regenerates
the row -- ``|X|``, ``k``, ``i``, ``d``, ``N``, ``α``, ``T(s)``, ``%Tm``
-- and the session fixture prints the assembled table at the end.

Expected shape versus the paper (absolute times differ; see
EXPERIMENTS.md):

* every FSA converges to α = 1 with d = 1 (the paper converges on all
  but its three timeout rows, which were CBMC-runtime artefacts);
* model sizes N land in the paper's 1..8 range for the per-machine FSAs
  and match exactly on the structural benchmarks (vending machine 4,
  cooler 2, sequence detector 5, Moore light 7, ...);
* learning iterations i stay in the paper's 1..16 range.

Run:  pytest benchmarks/test_table1_active.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from conftest import BUDGET, TRACE_LEN, TRACES, table1_rows
from repro.evaluation import run_active
from repro.stateflow.library import get_benchmark

# Paper Table I N values where our chart reconstruction is structurally
# identical (per-machine FSAs); rows not listed are checked for range only.
PAPER_N = {
    ("HomeClimateControlUsingTheTruthtableBlock", "Cooler"): 2,
    ("MealyVendingMachine", "Vend"): 4,
    ("SequenceRecognitionUsingMealyAndMooreChart", "Detect"): 5,
    ("MooreTrafficLight", "Light"): 7,
    ("CountEvents", "Counter"): 3,
    ("MonitorTestPointsInStateflowChart", "Toggle"): 2,
    ("ReuseStatesByUsingAtomicSubcharts", "Power"): 3,
    ("StatesWhenEnabling", "Enabling"): 4,
    ("ViewDifferencesBetweenMessagesEventsAndData", "Consumer"): 4,
    ("Superstep", "WithSuperStep"): 1,
    ("Superstep", "WithoutSuperStep"): 3,
    ("SchedulingSimulinkAlgorithmsUsingStateflow", "Sched"): 3,
    ("TemporalLogicScheduler", "Rate"): 4,
    ("ServerQueueingSystem", "Server"): 3,
    ("UsingSimulinkFunctionsToDesignSwitchingControllers", "Controller"): 4,
    ("LadderLogicScheduler", "Ladder"): 4,
    ("ModelingARedundantSensorPairUsingAtomicSubchart", "Selector"): 4,
    ("ModelingAnIntersectionOfTwo1wayStreetsUsingStateflow", "InRed"): 8,
    ("ModelingACdPlayerradioUsingEnumeratedDataType", "ModeManager"): 4,
    ("ModelingACdPlayerradioUsingEnumeratedDataType", "InOn"): 5,
    ("ModelingACdPlayerradioUsingEnumeratedDataType", "ModeManager Overall"): 2,
    ("ModelingASecuritySystem", "InAlarm InOn"): 4,
    ("ModelingASecuritySystem", "InDoor"): 3,
    ("ModelingASecuritySystem", "InWin"): 3,
    ("ModelingALaunchAbortSystem", "ModeLogic"): 5,
}


@pytest.mark.parametrize("name,fsa", table1_rows())
def test_table1_row(benchmark, table1_report, name, fsa):
    bench = get_benchmark(name)
    spec = bench.fsa(fsa)

    def run():
        return run_active(
            bench,
            spec,
            initial_traces=TRACES,
            trace_length=TRACE_LEN,
            budget_seconds=BUDGET,
        )

    out = benchmark.pedantic(run, iterations=1, rounds=1)
    table1_report[0].append(out.row)

    # Shape assertions (paper-level claims, not absolute numbers).
    assert out.row.alpha == 1.0, f"{name}/{fsa}: α={out.row.alpha}"
    assert out.d == 1.0, f"{name}/{fsa}: d={out.d}"
    assert 1 <= out.row.iterations <= 50
    expected_n = PAPER_N.get((name, fsa))
    if expected_n is not None:
        assert out.row.num_states == expected_n, (
            f"{name}/{fsa}: N={out.row.num_states}, paper N={expected_n}"
        )
