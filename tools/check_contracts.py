#!/usr/bin/env python
"""Contract linter entry point: enforce the repo's AST-level invariants.

Runs :mod:`repro.analysis.contracts` over the codebase and exits non-zero
on any finding.  The contracts are the load-bearing invariants of the
hash-consed expression core and the spawn-based worker pool:

* C001 -- composite Expr nodes must go through the smart constructors
  (raw instantiation bypasses interning and breaks identity equality);
* C002 -- no ``copy.deepcopy`` (deepcopy of interned nodes is a no-op by
  design; deepcopy elsewhere usually hides an aliasing bug);
* C003 -- no module/class-level containers keyed by ``Expr`` (they pin
  interned nodes forever and break across spawn boundaries; key on
  ``eid`` instead);
* C004 -- no mutable default arguments;
* C005 -- no ``time.time()`` in measured paths (use ``time.monotonic``
  or ``time.perf_counter``);
* C006 -- telemetry span names must follow the documented dotted
  lowercase scheme (``"component.phase"``; see docs/observability.md).

Suppress a deliberate violation with ``# contract: ignore[CODE] reason``
on the offending line or the line above; a suppression without a reason
is itself a finding (C000).

Usage::

    python tools/check_contracts.py            # lint src/ tests/ tools/
    python tools/check_contracts.py src/repro  # lint specific paths
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.contracts import lint_paths  # noqa: E402

DEFAULT_PATHS = ("src", "tests", "tools")


def main(argv: list[str] | None = None) -> int:
    raw = (argv if argv is not None else sys.argv[1:]) or list(DEFAULT_PATHS)
    paths = []
    for entry in raw:
        path = Path(entry)
        if not path.is_absolute():
            path = REPO_ROOT / path
        if not path.exists():
            print(f"check_contracts: no such path: {entry}", file=sys.stderr)
            return 2
        paths.append(path)
    start = time.perf_counter()
    findings = lint_paths(paths)
    elapsed = time.perf_counter() - start
    for finding in findings:
        print(finding.format())
    if findings:
        print(
            f"check_contracts: {len(findings)} finding(s) in "
            f"{elapsed:.2f}s",
            file=sys.stderr,
        )
        return 1
    print(f"check_contracts: OK ({elapsed:.2f}s)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
