#!/usr/bin/env python3
"""Reproduce the paper's Fig. 2 on the full benchmark chart.

Runs the active learning algorithm on the
HomeClimateControlUsingTheTruthtableBlock benchmark (|X| = 7) and prints
the learned cooler abstraction in the paper's notation::

    q1 --(s' = Off)--> q1
    q1 --(inp.temp > T_thresh) ∧ (s' = On)--> q2
    q2 --(s' = On)--> q2
    q2 --¬(inp.temp > T_thresh) ∧ (s' = Off)--> q1

plus the DOT rendering and the Table I row for the run.

Run:  python examples/climate_control.py
"""

from repro.automata import to_dot, to_text
from repro.core import TableRow, render_invariants
from repro.evaluation import run_active
from repro.stateflow.library import get_benchmark


def main() -> None:
    benchmark = get_benchmark("HomeClimateControlUsingTheTruthtableBlock")
    spec = benchmark.fsa("Cooler")

    out = run_active(
        benchmark, spec, initial_traces=50, trace_length=50, seed=0
    )
    state_names = [v.name for v in benchmark.system.state_vars]

    print("=" * 72)
    print("Fig. 2 reproduction: Home Climate-Control Cooler abstraction")
    print("=" * 72)
    print(to_text(out.result.model, title="learned model", primed_names=state_names))
    print()
    print(f"paper reports: N=2, d=1, α=1, i=1   (T_thresh = 30 here)")
    print(f"this run:      N={out.row.num_states}, d={out.d}, "
          f"α={out.row.alpha}, i={out.row.iterations}")
    print()
    print(TableRow.HEADER)
    print(out.row.format())
    print()
    print("Invariants over the implementation:")
    print(render_invariants(out.result.invariants))
    print()
    print("Graphviz (render with `dot -Tpng`):")
    print(to_dot(out.result.model, title="cooler", primed_names=state_names))


if __name__ == "__main__":
    main()
