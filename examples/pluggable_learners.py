#!/usr/bin/env python3
"""Demonstrate the pluggable model-learning component (paper §II-B).

The active-learning loop only requires "an NFA accepting at least the
input traces" from its learner.  This example runs the *same* loop on
the same system with three very different learners and compares the
resulting abstractions:

* T2M-style (mode states + synthesised guards)  -- the paper's choice,
* k-tails state merging (purely syntactic),
* SAT-minimal DFA identification (maximally permissive on positive data).

All three converge to α = 1 -- Theorem 1 doesn't care which learner is
used -- but the abstractions differ in size and informativeness.

Run:  python examples/pluggable_learners.py
"""

from repro.automata import to_text
from repro.core import ActiveLearner
from repro.learn import KTailsLearner, SatDfaLearner, T2MLearner
from repro.stateflow.library import get_benchmark
from repro.traces import random_traces


def main() -> None:
    benchmark = get_benchmark("SequenceRecognitionUsingMealyAndMooreChart")
    system = benchmark.system
    variables = {v.name: v for v in system.variables}
    mode_vars = ["Detect"]
    state_names = [v.name for v in system.state_vars]

    learners = {
        "T2M-style (paper)": T2MLearner(
            mode_vars=mode_vars, variables=variables,
            prefer_vars=list(system.input_names),
        ),
        "k-tails (k=2)": KTailsLearner(
            k=2, mode_vars=mode_vars, variables=variables
        ),
        "SAT-minimal DFA": SatDfaLearner(
            mode_vars=mode_vars, variables=variables
        ),
    }

    traces = random_traces(system, count=20, length=20, seed=5)
    for name, learner in learners.items():
        active = ActiveLearner(system, learner, k=benchmark.k)
        result = active.run(traces.copy())
        print("=" * 72)
        print(f"{name}: α={result.alpha}  N={result.num_states}  "
              f"i={result.iterations}  converged={result.converged}")
        print(to_text(result.model, title="abstraction", primed_names=state_names))
        print()

    print(
        "All learners satisfy Theorem 1; the T2M-style component yields the\n"
        "most informative abstraction, which is why the paper uses it."
    )


if __name__ == "__main__":
    main()
