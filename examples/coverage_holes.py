#!/usr/bin/env python3
"""Use-case from paper §VI: test-coverage evaluation and hole filling.

Scenario: a test suite for the launch-abort system exercises only
nominal missions (launch -> ascend -> orbit).  We evaluate how complete
that suite is -- the degree of completeness α of a model learned from
its traces -- and then let the model checker *generate the missing
tests*: each counterexample trace from a violated completeness condition
is precisely an input scenario the suite never covered (aborts,
failures, pad escapes).

Run:  python examples/coverage_holes.py
"""

from repro.core import (
    CompletenessOracle,
    counterexample_traces,
    extract_conditions,
)
from repro.evaluation import default_learner
from repro.learn import T2MLearner
from repro.mc import ExplicitSpuriousness, shared_reachability
from repro.stateflow.library import get_benchmark
from repro.traces import Trace, TraceSet, guided_trace


def nominal_test_suite(system) -> TraceSet:
    """Hand-written tests: power through a clean mission, twice."""
    launch = {"cmd": 1, "fail": 0}
    coast = {"cmd": 0, "fail": 0}
    suite = TraceSet()
    suite.add(guided_trace(system, [launch] + [coast] * 10))
    suite.add(guided_trace(system, [coast] * 3 + [launch] + [coast] * 9))
    return suite


def main() -> None:
    benchmark = get_benchmark("ModelingALaunchAbortSystem")
    system = benchmark.system
    spec = benchmark.fsa("Overall")

    suite = nominal_test_suite(system)
    learner = default_learner(benchmark, spec)
    model = learner.learn(suite)

    oracle = CompletenessOracle(
        system,
        ExplicitSpuriousness(system, reach=shared_reachability(system)),
        k=benchmark.k,
    )
    report = oracle.check_all(extract_conditions(model))
    print(f"test-suite coverage of system behaviour: α = {report.alpha:.2f}")
    print(f"({len(report.violations)} of {len(report.outcomes)} "
          "completeness conditions violated)\n")

    print("Generated tests for the coverage holes:")
    for outcome in report.violations:
        for trace in counterexample_traces(suite, outcome):
            final = trace[-1]
            scenario = {
                name: final[name] for name in ("cmd", "fail", "Overall")
            }
            print(f"  condition: {outcome.condition.describe()}")
            print(f"    new test reaches: {scenario}")
            break  # one representative test per hole

    # Close the loop: keep adding generated tests until the suite covers
    # every behaviour.  Coverage may dip transiently -- new behaviours
    # create new proof obligations -- before reaching 1.
    improved = suite.copy()
    progression = [report.alpha]
    current = report
    for _round in range(15):
        if current.alpha == 1.0:
            break
        for outcome in current.violations:
            improved.update(counterexample_traces(improved, outcome))
        model = learner.learn(improved)
        current = oracle.check_all(extract_conditions(model))
        progression.append(current.alpha)
    trail = " -> ".join(f"{alpha:.2f}" for alpha in progression)
    print(f"\ncoverage progression while filling holes: {trail}")
    print(f"final suite: {len(improved)} traces (from {len(suite)})")
    assert current.alpha == 1.0


if __name__ == "__main__":
    main()
