#!/usr/bin/env python3
"""Use-case from paper §VI: mine invariants and cross-check implementations.

Scenario: a team maintains two implementations of the same vending
machine design.  The second implementation contains a bug -- a dime
inserted at ten cents resets the machine to zero, swallowing the money.

1. Learn a complete abstraction of the *reference* implementation; the
   extracted completeness conditions are invariants of the reference.
2. Check those invariants against the *buggy* implementation with the
   same model checker; the violated invariant pinpoints the divergence,
   even though no requirement document mentions it.

Run:  python examples/invariant_mining.py
"""

from repro.core import ActiveLearner
from repro.expr import Var, enum_sort, eq, ite, land
from repro.learn import T2MLearner
from repro.mc import check_condition
from repro.system import make_system
from repro.traces import random_traces

COIN = enum_sort("Coin", "none", "nickel", "dime")
SLOT = enum_sort("Slot", "Zero", "Five", "Ten", "Fifteen")


def reference_machine():
    """The reference vending machine: correct dime handling."""
    coin = Var("coin", COIN)
    slot = Var("slot", SLOT)
    nickel = coin.prime().eq("nickel")
    dime = coin.prime().eq("dime")
    next_slot = ite(
        slot.eq("Zero"), ite(nickel, 1, ite(dime, 2, 0)),
        ite(
            slot.eq("Five"), ite(nickel, 2, ite(dime, 3, 1)),
            ite(
                slot.eq("Ten"), ite(nickel, 3, ite(dime, 3, 2)),
                0,  # Fifteen dispenses and resets
            ),
        ),
    )
    return make_system(
        "vending_ref", [slot], [coin], {"slot": 0}, {slot: next_slot}
    )


def buggy_machine():
    """A re-implementation that swallows a dime inserted at Ten."""
    coin = Var("coin", COIN)
    slot = Var("slot", SLOT)
    nickel = coin.prime().eq("nickel")
    dime = coin.prime().eq("dime")
    next_slot = ite(
        slot.eq("Zero"), ite(nickel, 1, ite(dime, 2, 0)),
        ite(
            slot.eq("Five"), ite(nickel, 2, ite(dime, 3, 1)),
            ite(
                slot.eq("Ten"), ite(nickel, 3, ite(dime, 0, 2)),  # BUG
                0,
            ),
        ),
    )
    return make_system(
        "vending_buggy", [slot], [coin], {"slot": 0}, {slot: next_slot}
    )


def main() -> None:
    reference = reference_machine()
    learner = T2MLearner(
        mode_vars=["slot"],
        variables={v.name: v for v in reference.variables},
        prefer_vars=["coin"],
    )
    result = ActiveLearner(reference, learner, k=10).run(
        random_traces(reference, count=20, length=20, seed=3)
    )
    assert result.converged
    print(f"Learned reference abstraction: N={result.num_states}, "
          f"α={result.alpha}, {len(result.invariants)} invariants\n")

    buggy = buggy_machine()
    print("Checking reference invariants against the new implementation:")
    failures = 0
    for index, invariant in enumerate(result.invariants, start=1):
        outcome = check_condition(buggy, invariant.assumption, invariant.conclusion)
        status = "holds" if outcome.holds else "VIOLATED"
        print(f"  [{index}] {status}: {invariant.render()}")
        if not outcome.holds:
            failures += 1
            v_t, v_t1 = outcome.counterexample
            print(f"        counterexample: {dict(v_t)} -> {dict(v_t1)}")
    print()
    if failures:
        print(
            f"{failures} invariant(s) violated -- the divergence was caught "
            "without any hand-written specification."
        )
    else:
        print("implementations agree on all mined invariants")
    assert failures > 0, "the planted bug must be caught"


if __name__ == "__main__":
    main()
