#!/usr/bin/env python3
"""Quickstart: learn a complete abstraction of a small system.

Builds the paper's running example (the Home Climate-Control cooler of
Fig. 2) from scratch -- a symbolic system with a temperature input and a
two-state mode -- then runs the active learning loop and prints:

* the learned abstraction in the paper's notation,
* the extracted invariants (the completeness conditions that now hold),
* the per-iteration refinement record.

Run:  python examples/quickstart.py
"""

from repro.automata import to_text
from repro.core import ActiveLearner, render_invariants
from repro.expr import Var, enum_sort, int_sort, ite
from repro.learn import T2MLearner
from repro.system import make_system
from repro.traces import random_traces

T_THRESH = 30


def build_cooler():
    """The system S = (X, X', R, Init): a thermostat-driven cooler."""
    temp = Var("temp", int_sort(0, 60))
    mode = Var("s", enum_sort("Mode", "Off", "On"))
    return make_system(
        name="cooler",
        state_vars=[mode],
        input_vars=[temp],
        init_state={"s": 0},
        # R: the next mode follows the next temperature reading.
        next_exprs={mode: ite(temp.prime() > T_THRESH, 1, 0)},
        # Guard-boundary inputs for the explicit-state engine.
        input_samples=[{"temp": t} for t in (0, T_THRESH, T_THRESH + 1, 60)],
    )


def main() -> None:
    system = build_cooler()

    # The pluggable model-learning component (paper §II-B): a T2M-style
    # learner that treats the mode variable as the automaton state and
    # synthesises input predicates for the switching edges.
    learner = T2MLearner(
        mode_vars=["s"],
        variables={v.name: v for v in system.variables},
        prefer_vars=["temp"],
    )

    # Deliberately starve the learner: two short random traces.  The
    # completeness conditions will expose whatever behaviour is missing.
    initial = random_traces(system, count=2, length=3, seed=7)

    active = ActiveLearner(system, learner, k=10)
    result = active.run(initial)

    print(to_text(result.model, title="Learned abstraction", primed_names=["s"]))
    print()
    print(f"degree of completeness α = {result.alpha}")
    print(f"learning iterations     i = {result.iterations}")
    print(f"final trace count         = {result.final_trace_count}")
    print()
    print("Invariants extracted from the final model (paper §VI):")
    print(render_invariants(result.invariants))
    print()
    print("Refinement history:")
    for record in result.records:
        print(
            f"  iter {record.index}: N={record.num_states} "
            f"conditions={record.conditions} violations={record.violations} "
            f"α={record.alpha:.2f} new traces={record.new_traces}"
        )

    # Theorem 1 in action: the final model admits any fresh system run.
    fresh = random_traces(system, count=50, length=50, seed=99)
    assert result.model.admits_all(fresh), "Theorem 1 violated?!"
    print("\nTheorem 1 check: 50 fresh random traces all admitted ✓")


if __name__ == "__main__":
    main()
