"""Tests for the unified instrumentation layer (:mod:`repro.core.telemetry`).

Four acceptance surfaces from the observability PR:

* span nesting/attribution properties and the metrics registry's
  snapshot/delta/merge algebra;
* disabled mode is a true no-op — the shared ``NOOP_SPAN`` singleton is
  returned by identity and no registry exists to mutate;
* cross-process aggregation is bit-for-bit deterministic: totals are
  independent of the jobs count and of worker completion order, and the
  exported deterministic view is identical across ``PYTHONHASHSEED``
  values;
* telemetry is behaviour-invariant — learned models, oracle reports and
  α are identical with telemetry on and off, serially and with jobs=2 —
  and the export round-trips through both :func:`read_events` and the
  repo's own streaming trace reader (:func:`repro.traces.io.iter_jsonl`).
"""

from __future__ import annotations

import io
import json
import os
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.core import telemetry
from repro.core.conditions import extract_conditions
from repro.core.parallel import make_oracle
from repro.core.telemetry import (
    NOOP_SPAN,
    MetricsRegistry,
    TelemetrySession,
    Tracer,
    deterministic_view,
    export_jsonl,
    merge_into,
    read_events,
    render_profile,
    snapshot_delta,
)
from repro.evaluation import default_learner, run_active
from repro.stateflow.library import get_benchmark
from repro.traces.generate import random_traces
from repro.traces.io import iter_jsonl

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(autouse=True)
def no_leaked_session():
    """Every test must leave telemetry disabled (module-global state)."""
    telemetry.stop()
    yield
    assert telemetry.active() is None, "test leaked an active session"
    telemetry.stop()


# ---------------------------------------------------------------------------
# spans
# ---------------------------------------------------------------------------


class TestSpans:
    def test_nesting_and_attribution(self):
        tracer = Tracer()
        with tracer.span("test.outer", k=1) as outer:
            assert tracer.current is outer
            with tracer.span("test.inner") as inner:
                assert inner.parent is outer
                assert tracer.current is inner
            with tracer.span("test.inner") as second:
                assert second.parent is outer
        assert tracer.current is None
        assert tracer.roots == [outer]
        assert outer.children == [inner, second]
        assert outer.depth == 0 and inner.depth == 1
        assert outer.attrs == {"k": 1}

    def test_timing_properties(self):
        tracer = Tracer()
        with tracer.span("test.outer") as outer:
            with tracer.span("test.inner"):
                pass
        assert outer.total_seconds >= 0.0
        child_total = sum(c.total_seconds for c in outer.children)
        assert outer.self_seconds == pytest.approx(
            outer.total_seconds - child_total
        )

    def test_set_is_chainable_mid_span(self):
        tracer = Tracer()
        with tracer.span("test.phase") as span:
            assert span.set(states=4, warm=True) is span
        assert span.attrs == {"states": 4, "warm": True}

    def test_iter_spans_preorder(self):
        tracer = Tracer()
        with tracer.span("test.a"):
            with tracer.span("test.b"):
                pass
            with tracer.span("test.c"):
                with tracer.span("test.d"):
                    pass
        with tracer.span("test.e"):
            pass
        names = [s.name for s in tracer.iter_spans()]
        assert names == ["test.a", "test.b", "test.c", "test.d", "test.e"]

    def test_sibling_order_is_entry_order(self):
        tracer = Tracer()
        with tracer.span("test.root"):
            for index in range(5):
                with tracer.span("test.child", index=index):
                    pass
        root = tracer.roots[0]
        assert [c.attrs["index"] for c in root.children] == list(range(5))


# ---------------------------------------------------------------------------
# disabled mode is free
# ---------------------------------------------------------------------------


class TestDisabledNoop:
    def test_span_returns_shared_singleton(self):
        assert telemetry.active() is None
        first = telemetry.span("test.anything", k=3)
        second = telemetry.span("test.other")
        assert first is NOOP_SPAN and second is NOOP_SPAN

    def test_noop_span_protocol(self):
        with telemetry.span("test.x") as span:
            assert span is NOOP_SPAN
            assert span.set(a=1) is NOOP_SPAN
        assert NOOP_SPAN.total_seconds == 0.0
        assert NOOP_SPAN.self_seconds == 0.0

    def test_metrics_and_enabled(self):
        assert telemetry.metrics() is None
        assert not telemetry.enabled()
        session = telemetry.start("test")
        try:
            assert telemetry.metrics() is session.metrics
            assert telemetry.enabled()
        finally:
            telemetry.stop()

    def test_instrumented_code_records_nothing_when_disabled(self):
        """Running instrumented engine code with no session leaves a
        later session's registry untouched (no buffered mutations)."""
        from repro.sat.cnf import CNF
        from repro.sat.solver import Solver

        cnf = CNF()
        a, b = cnf.new_vars(2)
        cnf.add_clause([a, b])
        Solver(cnf).solve()  # disabled: must not stash metrics anywhere
        session = telemetry.start("test")
        try:
            assert session.metrics.snapshot() == {
                "counters": {}, "gauges": {}, "histograms": {},
            }
        finally:
            telemetry.stop()


# ---------------------------------------------------------------------------
# metrics registry algebra
# ---------------------------------------------------------------------------


def _synthetic_registry(seed: int) -> MetricsRegistry:
    registry = MetricsRegistry()
    rng = random.Random(seed)
    for index in range(20):
        registry.inc(f"test.counter_{index % 5}", rng.randrange(1, 100))
        registry.gauge_max(f"test.gauge_{index % 3}", rng.randrange(1, 1000))
        registry.observe(f"test.hist_{index % 2}", rng.randrange(0, 4096))
    return registry


class TestMetricsRegistry:
    def test_snapshot_sorted_and_typed(self):
        registry = MetricsRegistry()
        registry.inc("test.z")
        registry.inc("test.a", 4)
        registry.gauge("test.g", 7)
        registry.observe("test.h", 3)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["test.a", "test.z"]
        assert snap["counters"]["test.a"] == 4
        assert snap["gauges"] == {"test.g": 7}
        hist = snap["histograms"]["test.h"]
        assert hist["count"] == 1 and hist["sum"] == 3
        assert hist["min"] == 3 and hist["max"] == 3
        assert hist["buckets"] == [[2, 1]]  # 2 <= 3 < 4

    def test_gauge_max_keeps_peak(self):
        registry = MetricsRegistry()
        registry.gauge_max("test.peak", 10)
        registry.gauge_max("test.peak", 3)
        assert registry.snapshot()["gauges"]["test.peak"] == 10

    def test_delta_subtracts_counters_and_histograms(self):
        registry = MetricsRegistry()
        registry.inc("test.c", 5)
        registry.observe("test.h", 1)
        before = registry.snapshot()
        registry.inc("test.c", 2)
        registry.inc("test.new", 1)
        registry.observe("test.h", 1)
        delta = registry.delta(before)
        assert delta["counters"] == {"test.c": 2, "test.new": 1}
        assert delta["histograms"]["test.h"]["count"] == 1
        # Unchanged names are omitted entirely.
        registry2 = MetricsRegistry()
        registry2.inc("test.c", 5)
        snap = registry2.snapshot()
        assert snapshot_delta(snap, snap) == {
            "counters": {}, "gauges": snap["gauges"], "histograms": {},
        }

    def test_delta_then_merge_reproduces_totals(self):
        """absorb(delta₁) ∘ absorb(delta₂) == the cumulative snapshot."""
        registry = _synthetic_registry(0)
        first = registry.snapshot()
        registry.inc("test.counter_0", 7)
        registry.observe("test.hist_0", 9)
        registry.gauge_max("test.gauge_0", 10**6)
        second = registry.snapshot()
        rebuilt = MetricsRegistry()
        merge_into(rebuilt, snapshot_delta(first, {
            "counters": {}, "gauges": {}, "histograms": {},
        }))
        merge_into(rebuilt, snapshot_delta(second, first))
        assert rebuilt.snapshot() == second

    def test_merge_semantics(self):
        registry = MetricsRegistry()
        merge_into(registry, {
            "counters": {"test.c": 3}, "gauges": {"test.g": 5},
            "histograms": {},
        })
        merge_into(registry, {
            "counters": {"test.c": 4}, "gauges": {"test.g": 2},
            "histograms": {},
        })
        snap = registry.snapshot()
        assert snap["counters"]["test.c"] == 7  # counters sum
        assert snap["gauges"]["test.g"] == 5    # gauges take the max

    def test_bucket_floor_for_non_positive(self):
        registry = MetricsRegistry()
        registry.observe("test.h", 0)
        registry.observe("test.h", -3)
        buckets = registry.snapshot()["histograms"]["test.h"]["buckets"]
        assert buckets == [[-1075, 2]]


# ---------------------------------------------------------------------------
# deterministic aggregation
# ---------------------------------------------------------------------------


def _worker_snapshots(count: int) -> list[dict]:
    """Synthetic integer-valued worker deltas (hash-order hostile: keys
    inserted in varying orders)."""
    snapshots = []
    for worker in range(count):
        names = [f"test.m{(worker + offset) % 7}" for offset in range(5)]
        counters = {name: worker + index + 1
                    for index, name in enumerate(names)}
        gauges = {f"test.g{worker % 3}": 100 + worker}
        hists = {
            "test.sizes": {
                "count": worker + 1, "sum": 10 * (worker + 1),
                "min": 1, "max": 10, "buckets": [[4, worker + 1]],
            }
        }
        snapshots.append(
            {"counters": counters, "gauges": gauges, "histograms": hists}
        )
    return snapshots


class TestAggregationDeterminism:
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_totals_independent_of_sharding_and_completion(self, jobs):
        """Absorbing the same worker deltas — sharded over any jobs
        count, arriving in any completion order — yields identical
        totals, byte for byte."""
        deltas = _worker_snapshots(8)
        # Reference: serial absorption in slot order.
        reference = TelemetrySession("test")
        for delta in deltas:
            reference.absorb(delta)
        expected = json.dumps(reference.metrics.snapshot(), sort_keys=True)

        rng = random.Random(jobs)
        for _ in range(5):
            session = TelemetrySession("test")
            # Round-robin shard like the pool, then simulate arbitrary
            # completion order per batch; the parent absorbs in slot
            # order exactly as core/pool.py does.
            slots: dict[int, list[dict]] = {s: [] for s in range(jobs)}
            for index, delta in enumerate(deltas):
                slots[index % jobs].append(delta)
            arrival = list(slots.items())
            rng.shuffle(arrival)  # completion order is not slot order
            received = dict(arrival)
            for slot in sorted(received):
                for delta in received[slot]:
                    session.absorb(delta)
            assert (
                json.dumps(session.metrics.snapshot(), sort_keys=True)
                == expected
            )

    def test_hash_seed_invariance(self):
        """The exported deterministic view is byte-identical across
        interpreter hash seeds (synthetic snapshots: real solver counters
        are hash-seed dependent by design, see docs/parallel_oracle.md)."""
        outputs = []
        for seed in ("0", "31337"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = str(REPO_ROOT / "src")
            result = subprocess.run(
                [sys.executable, "-c", _HASH_SEED_SCRIPT],
                capture_output=True, text=True, env=env,
                cwd=REPO_ROOT, check=True,
            )
            outputs.append(result.stdout)
        assert outputs[0] == outputs[1]
        assert '"event": "snapshot"' in outputs[0]

    def test_pool_ships_worker_snapshots(self, counter):
        """Real cross-process path: a telemetry-enabled segmented learn
        at jobs=2 merges worker metrics into the parent session."""
        from repro.learn import SatDfaLearner, SegmentedLearner

        traces = random_traces(counter, count=6, length=12, seed=1)
        # SAT-DFA workers exercise engine-level counters crossing the
        # process gap, not just the parent-side segment.* counters.
        learner = SatDfaLearner(
            mode_vars=[v.name for v in counter.state_vars],
            variables={
                v.name: v
                for v in (*counter.state_vars, *counter.input_vars)
            },
        )
        session = telemetry.start("test")
        try:
            with SegmentedLearner(
                learner, 6, 2, jobs=2, start_method="fork"
            ) as segmented:
                segmented.learn(traces)
            snap = session.metrics.snapshot()
        finally:
            telemetry.stop()
        assert session.worker_snapshots > 0
        assert snap["counters"]["segment.segments"] > 0
        assert snap["counters"]["pool.batches"] >= 1
        # Worker-side engine counters made it across the process gap.
        assert snap["counters"]["sat.solve_calls"] > 0


_HASH_SEED_SCRIPT = """
import json, sys
from repro.core.telemetry import TelemetrySession, deterministic_view, export_jsonl

session = TelemetrySession("hashseed-test", {"jobs": 4})
with session.tracer.span("test.root", items=8) as root:
    with session.tracer.span("test.child"):
        pass
for worker in range(8):
    names = [f"test.m{(worker + offset) % 7}" for offset in range(5)]
    session.absorb({
        "counters": {n: worker + i + 1 for i, n in enumerate(names)},
        "gauges": {f"test.g{worker % 3}": 100 + worker},
        "histograms": {"test.sizes": {
            "count": worker + 1, "sum": 10 * (worker + 1),
            "min": 1, "max": 10, "buckets": [[4, worker + 1]],
        }},
    })
out = __import__("io").StringIO()
export_jsonl(session, out)
for line in out.getvalue().splitlines():
    print(json.dumps(deterministic_view(json.loads(line)), sort_keys=True))
"""


# ---------------------------------------------------------------------------
# behaviour invariance: telemetry never changes results
# ---------------------------------------------------------------------------


def _run_fingerprint(jobs: int):
    benchmark = get_benchmark("MealyVendingMachine")
    out = run_active(
        benchmark, benchmark.fsas[0], initial_traces=5, trace_length=10,
        seed=3, budget_seconds=30, jobs=jobs,
    )
    records = [
        (r.index, r.num_states, r.num_transitions, r.conditions,
         r.violations, r.alpha, r.new_traces, r.spurious_excluded,
         r.warm_start)
        for r in out.result.records
    ]
    return (
        out.result.model.transitions,
        out.result.alpha,
        out.result.iterations,
        out.d,
        records,
    )


class TestBehaviourInvariance:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_run_active_identical_on_and_off(self, jobs):
        baseline = _run_fingerprint(jobs)
        telemetry.start("test", {"jobs": jobs})
        try:
            instrumented = _run_fingerprint(jobs)
        finally:
            telemetry.stop()
        assert instrumented == baseline

    def test_oracle_report_identical_on_and_off(self, cooler):
        learner = default_learner_for(cooler)
        traces = random_traces(cooler, count=8, length=10, seed=0)
        model = learner.learn(traces)
        conditions = extract_conditions(model)

        def report():
            with make_oracle(cooler, "explicit", 10) as oracle:
                return oracle.check_all(list(conditions))

        plain = report()
        telemetry.start("test")
        try:
            instrumented = report()
        finally:
            telemetry.stop()
        assert instrumented.alpha == plain.alpha
        assert instrumented.truncated == plain.truncated
        assert instrumented.outcomes == plain.outcomes


def default_learner_for(system):
    from repro.learn import T2MLearner

    return T2MLearner(
        mode_vars=[v.name for v in system.state_vars],
        variables={v.name: v for v in system.variables},
    )


# ---------------------------------------------------------------------------
# export + profile
# ---------------------------------------------------------------------------


def _small_session() -> TelemetrySession:
    session = TelemetrySession("test", {"seed": 0})
    with session.tracer.span("loop.run", system="toy") as run:
        with session.tracer.span("loop.learn", iteration=1):
            pass
        with session.tracer.span("loop.check", iteration=1, truncated=False):
            pass
    run.set(iterations=1)
    session.metrics.inc("sat.solve_calls", 3)
    session.metrics.gauge_max("bdd.peak_nodes", 17)
    session.metrics.observe("pool.batch_seconds", 0.25)
    return session


class TestExport:
    def test_event_stream_shape(self):
        out = io.StringIO()
        count = export_jsonl(_small_session(), out, timestamp="2026-01-01")
        events = read_events(out.getvalue().splitlines())
        assert count == len(events) == 5  # meta + 3 spans + snapshot
        assert events[0]["event"] == "meta"
        assert events[0]["ts"] == "2026-01-01"
        spans = [e for e in events if e["event"] == "span"]
        assert [s["name"] for s in spans] == [
            "loop.run", "loop.learn", "loop.check",
        ]
        assert spans[0]["parent"] == -1
        assert spans[1]["parent"] == spans[0]["id"]
        assert events[-1]["event"] == "snapshot"
        assert events[-1]["counters"] == {"sat.solve_calls": 3}

    def test_deterministic_view_drops_timing(self):
        out = io.StringIO()
        export_jsonl(_small_session(), out, timestamp="2026-01-01")
        views = [
            deterministic_view(e)
            for e in read_events(out.getvalue().splitlines())
        ]
        for view in views:
            assert "t" not in view and "ts" not in view
        snapshot = views[-1]
        assert "pool.batch_seconds" not in snapshot["histograms"]
        # Two separately-timed identical workloads agree exactly.
        out2 = io.StringIO()
        export_jsonl(_small_session(), out2, timestamp="2027-12-31")
        views2 = [
            deterministic_view(e)
            for e in read_events(out2.getvalue().splitlines())
        ]
        assert views == views2

    def test_bool_attrs_exported_as_ints_in_obs(self):
        out = io.StringIO()
        export_jsonl(_small_session(), out)
        events = read_events(out.getvalue().splitlines())
        check = next(
            e for e in events
            if e["event"] == "span" and e["name"] == "loop.check"
        )
        assert check["obs"]["truncated"] == 0
        assert check["attrs"]["truncated"] is False

    def test_telemetry_log_is_iter_jsonl_readable(self, tmp_path):
        """The trace-checking tie-in: a telemetry log parses with the
        repo's own streaming trace reader."""
        path = tmp_path / "out.telemetry.jsonl"
        with open(path, "w") as handle:
            export_jsonl(_small_session(), handle)
        with open(path) as handle:
            events = list(iter_jsonl(handle))
        assert len(events) == 5
        indices = {index for index, _ in events}
        assert indices == {0}  # one run = one trace
        kinds = [obs["kind"] for _, obs in events]
        assert kinds == [0, 1, 1, 1, 2]

    def test_render_profile(self):
        out = io.StringIO()
        export_jsonl(_small_session(), out)
        text = render_profile(read_events(out.getvalue().splitlines()))
        assert "loop.run" in text
        assert "learn-phase share" in text
        assert "sat.solve_calls" in text
        assert "bdd.peak_nodes" in text


# ---------------------------------------------------------------------------
# CLI + Table I agreement
# ---------------------------------------------------------------------------


class TestCliAndTableAgreement:
    def test_run_telemetry_and_profile_end_to_end(self, tmp_path, capsys):
        path = tmp_path / "run.telemetry.jsonl"
        code = main([
            "run", "MealyVendingMachine", "--traces", "5", "--length", "10",
            "--budget", "30", "--telemetry", str(path),
        ])
        assert code == 0
        assert "telemetry:" in capsys.readouterr().out
        assert path.exists()
        code = main(["profile", str(path)])
        assert code == 0
        text = capsys.readouterr().out
        assert "span tree" in text
        assert "loop.run" in text
        assert "learn-phase share" in text

    def test_profile_missing_file(self, tmp_path, capsys):
        assert main(["profile", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_root_total_matches_reported_t_and_tm(self):
        """Acceptance: the exported span tree's loop.run total equals the
        Table I ``T`` and the learn-phase share equals ``%Tm``."""
        benchmark = get_benchmark("MealyVendingMachine")
        session = telemetry.start("test")
        try:
            out = run_active(
                benchmark, benchmark.fsas[0], initial_traces=5,
                trace_length=10, budget_seconds=30,
            )
        finally:
            telemetry.stop()
        assert out.snapshot is not None
        buffer = io.StringIO()
        export_jsonl(session, buffer)
        events = read_events(buffer.getvalue().splitlines())
        roots = [
            e for e in events
            if e["event"] == "span" and e["parent"] == -1
            and e["name"] == "loop.run"
        ]
        assert len(roots) == 1
        assert roots[0]["t"]["total"] == out.row.time_seconds
        run_id = roots[0]["id"]
        learn_total = sum(
            e["t"]["total"] for e in events
            if e["event"] == "span" and e["name"] == "loop.learn"
            and e["parent"] == run_id
        )
        expected_tm = 100.0 * learn_total / roots[0]["t"]["total"]
        assert out.row.percent_learning == pytest.approx(expected_tm)
        text = render_profile(events)
        assert f"{expected_tm:.1f}%" in text

    def test_jobs_snapshot_merged_into_export(self, tmp_path):
        """--jobs 2 --telemetry exports a fleet snapshot with worker
        counters merged in."""
        path = tmp_path / "jobs.telemetry.jsonl"
        code = main([
            "run", "MealyVendingMachine", "--traces", "5", "--length", "10",
            "--budget", "30", "--jobs", "2", "--telemetry", str(path),
        ])
        assert code == 0
        with open(path) as handle:
            events = read_events(handle)
        snap = events[-1]
        assert snap["event"] == "snapshot"
        assert snap["workers"] > 0
        assert snap["counters"]["sat.solve_calls"] > 0
        assert snap["counters"]["pool.items"] > 0


class TestBddCacheProfiling:
    """Op-cache hit/miss accounting must be free when telemetry is off:
    plain-dict caches by default, counting caches only when a session is
    active at manager construction (or on explicit request)."""

    def _exercise(self, mgr):
        from repro.bdd.manager import BddManager

        assert isinstance(mgr, BddManager)
        a, b, c = mgr.var(0), mgr.var(1), mgr.var(2)
        f = mgr.apply_and(a, mgr.apply_or(b, c))
        g = mgr.apply_and(a, mgr.apply_or(b, c))
        assert f == g
        assert mgr.count_models(f, 3) == 3
        return f

    def test_plain_dicts_without_session(self):
        from repro.bdd.manager import BddManager

        mgr = BddManager()
        assert mgr.profile_caches is False
        self._exercise(mgr)
        stats = mgr.cache_stats
        assert all(
            value == 0
            for name, value in stats.items()
            if name.endswith(("_hits", "_misses"))
        )
        assert type(mgr._ite_cache) is dict

    def test_counting_caches_with_explicit_flag(self):
        from repro.bdd.manager import BddManager

        mgr = BddManager(profile_caches=True)
        self._exercise(mgr)
        stats = mgr.cache_stats
        assert stats["ite_misses"] > 0
        # The repeated apply_and/apply_or pair replays the same ite
        # keys, so the second pass is all hits.
        assert stats["ite_hits"] > 0
        assert stats["count_models_misses"] > 0
        # Lifetime totals survive a cache clear; the clear itself is
        # accounted.
        mgr.clear_caches()
        after = mgr.cache_stats
        assert after["ite_hits"] == stats["ite_hits"]
        assert after["ite_misses"] == stats["ite_misses"]
        assert after["clears"] == stats["clears"] + 1
        assert after["dropped"] > 0

    def test_session_enables_profiling_and_publish(self):
        from repro.bdd.manager import BddManager

        telemetry.start("test", record_spans=False)
        try:
            mgr = BddManager()
            assert mgr.profile_caches is True
            self._exercise(mgr)
            registry = telemetry.metrics()
            mgr.publish_metrics(registry)
            snap = registry.snapshot()
        finally:
            telemetry.stop()
        assert snap["counters"]["bdd.cache.ite_misses"] > 0
        assert snap["counters"]["bdd.cache.ite_hits"] > 0
        assert snap["gauges"]["bdd.peak_nodes"] > 0
